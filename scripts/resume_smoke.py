"""CI resume-equivalence smoke (bench-smoke job).

Runs the checkpoint subsystem's acceptance loop at smoke scale and
writes ``SNAPSHOT_cache.json``:

1. sweep without snapshots (reference),
2. cold sweep with a snapshot dir (publishes warmup snapshots),
3. warm sweep in a fresh runner (restores them),
4. ledger resume in a fresh runner (adopts completed cells),
5. the cold/warm benchmark pair (measured warmup-reuse speedup).

Exits non-zero on any stats mismatch or on a warm sweep that failed to
hit the snapshot store, so a silent reuse regression fails the job
instead of shipping as a perf cliff.
"""

import dataclasses
import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.micro import run_benchmarks  # noqa: E402
from repro.sim.config import SimConfig  # noqa: E402
from repro.sim.suite import SuiteRunner  # noqa: E402
from repro.workloads import find_workload  # noqa: E402

CONFIG = SimConfig.quick(measure_records=2_000, warmup_records=500)
SEED = 3
WORKLOADS = ["605.mcf_s", "623.xalancbmk_s"]
SCHEMES = ["spp", "ppf"]


def suite_stats(suite):
    return json.dumps(
        {f"{w}/{s}": dataclasses.asdict(r) for (w, s), r in sorted(suite.runs.items())},
        sort_keys=True,
    )


def main() -> int:
    workloads = [find_workload(name) for name in WORKLOADS]
    reference = suite_stats(
        SuiteRunner(CONFIG, seed=SEED, jobs=1).sweep(workloads, SCHEMES)
    )

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as td:
        root = Path(td)
        cold = SuiteRunner(CONFIG, seed=SEED, jobs=1, snapshot_dir=root / "snaps")
        cold_stats = suite_stats(cold.sweep(workloads, SCHEMES))
        warm = SuiteRunner(CONFIG, seed=SEED, jobs=1, snapshot_dir=root / "snaps")
        warm_stats = suite_stats(warm.sweep(workloads, SCHEMES))

        ledger = root / "ledger.jsonl"
        first = SuiteRunner(
            CONFIG, seed=SEED, jobs=1, cache_dir=root / "cache", ledger_path=ledger
        )
        first_stats = suite_stats(first.sweep(workloads, SCHEMES))
        resumed = SuiteRunner(CONFIG, seed=SEED, jobs=1)
        adopted = resumed.preload_from_ledger(ledger)
        resumed_stats = suite_stats(resumed.sweep(workloads, SCHEMES))

    bench = {
        r.name: r.ops_per_sec
        for r in run_benchmarks(
            names=["sweep_warmup_cold", "sweep_warmup_reuse"], scale=0.1, repeats=2
        )
    }
    speedup = bench["sweep_warmup_reuse"] / bench["sweep_warmup_cold"]

    checks = {
        "cold_sweep_byte_identical": cold_stats == reference,
        "warm_sweep_byte_identical": warm_stats == reference,
        "resumed_sweep_byte_identical": resumed_stats == first_stats,
        "warm_sweep_all_snapshot_hits": warm._exec.snapshot_hits == len(warm.memory_cache),
        "resume_adopted_every_cell": adopted == len(WORKLOADS) * (len(SCHEMES) + 1),
        "resume_simulated_nothing": resumed._exec.simulated == 0,
        "warmup_reuse_speedup_at_least_1.3x": speedup >= 1.3,
    }
    report = {
        "snapshot_hits": warm._exec.snapshot_hits,
        "snapshot_misses": warm._exec.snapshot_misses,
        "snapshot_hit_rate": warm._exec.snapshot_hits
        / max(1, warm._exec.snapshot_hits + warm._exec.snapshot_misses),
        "resumed_cells": adopted,
        "warmup_reuse_speedup": round(speedup, 3),
        "checks": checks,
        "equal": all(checks.values()),
    }
    Path("SNAPSHOT_cache.json").write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if not report["equal"]:
        failed = [name for name, ok in checks.items() if not ok]
        print(f"resume smoke FAILED: {failed}", file=sys.stderr)
        return 1
    print("resume smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
