"""CI zoo smoke (zoo-smoke job).

Exercises the prefetcher zoo end to end at smoke scale:

1. the generality cross-product — {spp, pythia, two-level} ×
   {unfiltered, filtered:<base>} over two workload families — through
   the default local pool backend,
2. the same cross-product through ``FarmBackend`` with a real worker
   subprocess, asserting the per-run stats are byte-identical (every
   zoo prefetcher must checkpoint/serialize deterministically for this
   to hold),
3. the seam identity: ``filtered:spp`` must reproduce ``ppf`` bit for
   bit on a golden-scale cell.

Writes the comparison artifact ``ZOO_generality.json`` (the
``document()`` form of the cross-product, uploaded by CI) and exits
non-zero on any failed check.
"""

import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.farm import FarmBackend  # noqa: E402
from repro.harness.generality import run_generality, suite_stats  # noqa: E402
from repro.sim.config import SimConfig  # noqa: E402
from repro.sim.single_core import run_single_core  # noqa: E402
from repro.workloads import find_workload  # noqa: E402

CONFIG = SimConfig.quick(measure_records=1_500, warmup_records=400)
SEED = 3
PREFETCHERS = ("spp", "pythia", "two-level")
FAMILIES = ("spec2017", "cloudsuite")
ARTIFACT = Path("ZOO_generality.json")


def main() -> int:
    local = run_generality(
        config=CONFIG,
        seed=SEED,
        prefetchers=PREFETCHERS,
        families=FAMILIES,
        per_family=1,
        jobs=1,
    )
    local_stats = suite_stats(local)

    with tempfile.TemporaryDirectory(prefix="repro-zoo-smoke-") as td:
        farmed = run_generality(
            config=CONFIG,
            seed=SEED,
            prefetchers=PREFETCHERS,
            families=FAMILIES,
            per_family=1,
            jobs=1,
            backend=FarmBackend(Path(td) / "queue", workers=1),
        )
        farmed_stats = suite_stats(farmed)

    golden_config = SimConfig.quick(measure_records=2_000, warmup_records=500)
    workload = find_workload("605.mcf_s")
    seam = run_single_core(workload, "filtered:spp", golden_config, seed=SEED)
    reference = run_single_core(workload, "ppf", golden_config, seed=SEED)

    checks = {
        "local_cross_product_complete": local.suite.failure_report.complete,
        "farm_cross_product_complete": farmed.suite.failure_report.complete,
        "every_cell_has_a_row": len(local.rows) == len(PREFETCHERS) * len(FAMILIES),
        "farm_byte_identical_to_local": farmed_stats == local_stats,
        "filtered_spp_is_ppf": (
            seam.instructions == reference.instructions
            and seam.cycles == reference.cycles
            and seam.stats == reference.stats
        ),
    }
    artifact = local.document()
    artifact["checks"] = checks
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    print(json.dumps({"rows": len(local.rows), "checks": checks}, indent=2))
    if not all(checks.values()):
        failed = [name for name, ok in checks.items() if not ok]
        print(f"zoo smoke FAILED: {failed}", file=sys.stderr)
        return 1
    print("zoo smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
