"""CI trace smoke (trace-smoke job).

Records a short traced run, exports every telemetry artifact, and
validates them against the ``repro.telemetry/v1`` schema:

1. run one PPF cell with tracing on (``--probe-every 500``),
2. export JSONL events + Chrome trace + time-series JSON/CSV,
3. re-read each artifact and schema-validate it,
4. assert the probe families the acceptance criteria promise
   (≥5 distinct series spanning cache/core/dram/spp/ppf),
5. prove the traced run left the statistics untouched versus an
   untraced twin (only ``telemetry.*`` bookkeeping keys may differ).

Writes ``TRACE_sim.json`` (the uploadable Perfetto trace) plus
``TRACE_smoke.json`` (the check report) into the working directory and
exits non-zero on any failed check.
"""

import json
import shutil
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sim.config import SimConfig  # noqa: E402
from repro.sim.single_core import run_single_core  # noqa: E402
from repro.telemetry import (  # noqa: E402
    Telemetry,
    TelemetrySchemaError,
    validate_chrome_trace,
    validate_timeseries,
)
from repro.telemetry.export import read_events_jsonl  # noqa: E402
from repro.workloads import find_workload  # noqa: E402

CONFIG = SimConfig.quick(measure_records=4_000, warmup_records=1_000)
WORKLOAD = "605.mcf_s"
SEED = 3
PROBE_EVERY = 500


def main() -> int:
    workload = find_workload(WORKLOAD)
    untraced = run_single_core(workload, "ppf", CONFIG, seed=SEED, telemetry=None)
    session = Telemetry(probe_every=PROBE_EVERY)
    traced = run_single_core(workload, "ppf", CONFIG, seed=SEED, telemetry=session)

    checks = {}
    with tempfile.TemporaryDirectory(prefix="repro-trace-smoke-") as td:
        paths = session.export(
            td, meta={"workload": WORKLOAD, "prefetcher": "ppf", "seed": SEED}
        )
        try:
            chrome = json.loads(Path(paths["chrome_trace"]).read_text())
            event_count = validate_chrome_trace(chrome)
            checks["chrome_trace_schema_valid"] = True
            checks["chrome_trace_has_events"] = event_count > 0
        except (TelemetrySchemaError, ValueError) as err:
            print(f"chrome trace invalid: {err}", file=sys.stderr)
            checks["chrome_trace_schema_valid"] = False

        try:
            timeseries = json.loads(Path(paths["timeseries_json"]).read_text())
            series_count = validate_timeseries(timeseries)
            checks["timeseries_schema_valid"] = True
            checks["timeseries_at_least_5_series"] = series_count >= 5
            families = {name.split(".")[0] for name in timeseries["series"]}
            checks["all_probe_families_present"] = families >= {
                "cache",
                "core",
                "dram",
                "spp",
                "ppf",
            }
        except (TelemetrySchemaError, ValueError) as err:
            print(f"timeseries invalid: {err}", file=sys.stderr)
            checks["timeseries_schema_valid"] = False
            series_count = 0

        try:
            log = read_events_jsonl(paths["events"])
            checks["events_jsonl_readable"] = (
                log["header"]["kind"] == "events" and len(log["events"]) > 0
            )
        except (ValueError, KeyError) as err:
            print(f"events log invalid: {err}", file=sys.stderr)
            checks["events_jsonl_readable"] = False

        shutil.copy(paths["chrome_trace"], "TRACE_sim.json")

    def stripped(stats):
        return {k: v for k, v in stats.items() if not k.startswith("telemetry.")}

    checks["traced_stats_bit_identical"] = (
        traced.instructions == untraced.instructions
        and traced.cycles == untraced.cycles
        and stripped(traced.stats) == stripped(untraced.stats)
    )
    checks["no_events_dropped"] = session.tracer.dropped == 0

    report = {
        "workload": WORKLOAD,
        "probe_every": PROBE_EVERY,
        "events": len(session.tracer.events()),
        "series": series_count,
        "checks": checks,
        "ok": all(checks.values()),
    }
    Path("TRACE_smoke.json").write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if not report["ok"]:
        failed = [name for name, ok in checks.items() if not ok]
        print(f"trace smoke FAILED: {failed}", file=sys.stderr)
        return 1
    print("trace smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
