"""CI trace-convert smoke (bench-smoke job).

Exercises the trace ingestion path end to end on a tiny synthetic
DRAMSim2 k6 file:

1. generate a gzipped k6 text trace in a scratch directory,
2. convert it with the real CLI (``python -m repro trace convert``),
3. convert it again and assert the digest cache serves a hit,
4. run the converted trace as one (workload, ppf) cell under both the
   scalar and batched engines and assert bit-identical stats,
5. copy the canonical artifact out as ``trace_convert_artifact.rpt``
   (uploaded by CI) and write the ``TRACE_convert_smoke.json`` report.

Exits non-zero on any failed check.
"""

import contextlib
import gzip
import io
import json
import shutil
import sys
import tempfile
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.__main__ import main as repro_main  # noqa: E402
from repro.sim.config import SimConfig  # noqa: E402
from repro.sim.single_core import run_single_core  # noqa: E402
from repro.traces import read_header, trace_workload  # noqa: E402

CONFIG = SimConfig.quick(measure_records=4_000, warmup_records=1_000)
RECORDS = 6_000
SEED = 3

_COMMANDS = ["P_MEM_RD", "P_MEM_WR", "P_FETCH"]


def _write_k6(path: Path, n: int) -> None:
    cycle = 0
    with gzip.open(path, "wt") as handle:
        for i in range(n):
            cycle += (i * 5) % 17 + 1
            addr = 0x4000000 + (i % 900) * 64
            handle.write(f"0x{addr:x} {_COMMANDS[i % 3]} {cycle}\n")


def _convert(source: Path, cache_dir: Path) -> tuple:
    """Run the real CLI; return (exit code, captured stdout)."""
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = repro_main(
            ["trace", "convert", str(source), "--cache-dir", str(cache_dir)]
        )
    return code, out.getvalue()


def main() -> int:
    checks = {}
    with tempfile.TemporaryDirectory(prefix="repro-convert-smoke-") as td:
        scratch = Path(td)
        source = scratch / "smoke.k6.gz"
        _write_k6(source, RECORDS)
        cache_dir = scratch / "trace-cache"

        code, first = _convert(source, cache_dir)
        checks["convert_exits_zero"] = code == 0
        checks["first_conversion_is_miss"] = "converted" in first
        artifacts = list(cache_dir.glob("*.rpt"))
        checks["one_canonical_artifact"] = len(artifacts) == 1

        code, second = _convert(source, cache_dir)
        checks["second_conversion_is_hit"] = code == 0 and "cache hit" in second

        records = spec = None
        if artifacts:
            records = read_header(artifacts[0])
            checks["record_count_matches"] = records == RECORDS
            spec = trace_workload(artifacts[0])
            scalar = run_single_core(spec, "ppf", CONFIG, seed=SEED)
            batched = run_single_core(
                spec, "ppf", replace(CONFIG, engine="batched"), seed=SEED
            )
            checks["engines_bit_identical"] = (
                scalar.instructions == batched.instructions
                and scalar.cycles == batched.cycles
                and scalar.stats == batched.stats
            )
            shutil.copy(artifacts[0], "trace_convert_artifact.rpt")

    report = {
        "source_records": RECORDS,
        "canonical_records": records,
        "workload": spec.name if spec else None,
        "checks": checks,
        "ok": all(checks.values()),
    }
    Path("TRACE_convert_smoke.json").write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if not report["ok"]:
        failed = [name for name, ok in checks.items() if not ok]
        print(f"trace convert smoke FAILED: {failed}", file=sys.stderr)
        return 1
    print("trace convert smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
