"""CI farm smoke (farm-smoke job).

Runs the golden suite at smoke scale through the sweep farm — a broker
plus two real worker subprocesses sharing a filesystem queue — and
asserts the outcome is bit-identical to the in-process backend:

1. reference sweep with the default local pool backend,
2. the same sweep through ``FarmBackend`` with two spawned workers,
3. a resubmission over the shared result cache (must be 100% hits),
4. a resumed sweep over the already-drained queue (adopts, never
   re-executes).

Writes ``FARM_sweep.json`` (uploaded as a CI artifact next to the run
ledger) and exits non-zero on any mismatch, so a determinism or
queue-protocol regression fails the job instead of shipping.
"""

import dataclasses
import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.farm import FarmBackend  # noqa: E402
from repro.sim.config import SimConfig  # noqa: E402
from repro.sim.suite import SuiteRunner  # noqa: E402
from repro.workloads import find_workload  # noqa: E402

CONFIG = SimConfig.quick(measure_records=2_000, warmup_records=500)
SEED = 3
WORKLOADS = ["605.mcf_s", "623.xalancbmk_s"]
SCHEMES = ["spp", "ppf"]
WORKERS = 2
LEDGER_ARTIFACT = Path("farm-ledger.jsonl")


def suite_stats(suite):
    return json.dumps(
        {f"{w}/{s}": dataclasses.asdict(r) for (w, s), r in sorted(suite.runs.items())},
        sort_keys=True,
    )


def main() -> int:
    workloads = [find_workload(name) for name in WORKLOADS]
    reference = SuiteRunner(CONFIG, seed=SEED, jobs=1).sweep(workloads, SCHEMES)
    reference_stats = suite_stats(reference)

    with tempfile.TemporaryDirectory(prefix="repro-farm-smoke-") as td:
        root = Path(td)
        farm = SuiteRunner(
            CONFIG,
            seed=SEED,
            jobs=1,
            cache_dir=root / "cache",
            ledger_path=LEDGER_ARTIFACT,
            backend=FarmBackend(root / "queue", workers=WORKERS),
        )
        farm_result = farm.sweep(workloads, SCHEMES)
        farm_stats = suite_stats(farm_result)
        workers_seen = {
            json.loads(line).get("worker")
            for line in LEDGER_ARTIFACT.read_text().splitlines()
            if '"worker"' in line
        } - {None, "broker-inline"}

        again = SuiteRunner(
            CONFIG,
            seed=SEED,
            jobs=1,
            cache_dir=root / "cache",
            backend=FarmBackend(root / "queue2", workers=0),
        )
        again_result = again.sweep(workloads, SCHEMES)

        resumed = SuiteRunner(
            CONFIG, seed=SEED, jobs=1, backend=FarmBackend(root / "queue", workers=0)
        )
        resumed_stats = suite_stats(resumed.sweep(workloads, SCHEMES))

    checks = {
        "farm_sweep_complete": farm_result.failure_report.complete,
        "farm_sweep_byte_identical": farm_stats == reference_stats,
        "worker_subprocesses_executed_cells": len(workers_seen) >= 1,
        "resubmission_all_cache_hits": again_result.cache_hit_rate == 1.0,
        "resubmission_executed_nothing": again_result.executed == 0,
        "resumed_queue_byte_identical": resumed_stats == farm_stats,
        "resumed_simulated_nothing": resumed._exec.simulated == 0,
    }
    report = {
        "cells": len(farm_result.runs),
        "workers_seen": sorted(workers_seen),
        "cache_hits_on_resubmission": again_result.cache_hits,
        "cache_hit_rate_on_resubmission": again_result.cache_hit_rate,
        "resumed_cells": resumed._exec.resumed,
        "checks": checks,
        "equal": all(checks.values()),
    }
    Path("FARM_sweep.json").write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if not report["equal"]:
        failed = [name for name, ok in checks.items() if not ok]
        print(f"farm smoke FAILED: {failed}", file=sys.stderr)
        return 1
    print("farm smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
