"""Table 1 — simulation parameters (configuration dump)."""

from conftest import run_once

from repro.harness.tables import table1_report
from repro.sim.config import SimConfig


def test_tab01_simulation_parameters(benchmark):
    report = run_once(benchmark, table1_report, SimConfig.default())
    print("\n" + report)
    # The rows the paper's Table 1 pins down.
    assert "512 KB, 8-way" in report  # L2
    assert "2048 KB/core" in report  # LLC
    assert "12.8 GB/s" in report  # DRAM bandwidth
    assert "LRU at all levels" in report
    assert "L2 demand accesses only" in report
