"""Tables 2–3 — storage overhead, matched bit-for-bit to the paper."""

from conftest import run_once

from repro.analysis.overhead import overhead_report
from repro.harness.tables import table2_report, table3_report


def test_tab02_03_storage_overhead(benchmark):
    report = run_once(benchmark, overhead_report)
    print("\n" + table2_report())
    print("\n" + table3_report())
    # Table 2: one Prefetch Table entry is exactly 85 bits.
    assert report["prefetch_table_entry_bits"] == 85
    # Table 3: perceptron weight banks are 113,280 bits.
    assert report["perceptron_weight_bits"] == 113_280
    # Table 3 bottom line: 322,240 bits = 39.34 KB.
    assert report["total_bits"] == 322_240
    assert report["total_kilobytes"] == 39.34
    # §5.6: the perceptron sum needs ceil(log2 9) = 4 adder stages.
    assert report["adder_tree_depth"] == 4
