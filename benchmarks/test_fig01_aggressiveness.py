"""Figure 1 — aggressive lookahead without a filter wastes bandwidth.

Paper shape: on 603.bwaves_s, as SPP's lookahead is re-tuned from depth
7 to 15, TOTAL_PF grows faster than GOOD_PF and IPC degrades.
"""

from conftest import run_once

from repro.harness.figure01 import report, run_figure1


def test_fig01_aggressiveness_sweep(benchmark, bench_config):
    result = run_once(
        benchmark, run_figure1, depths=(7, 9, 11, 13, 15), config=bench_config
    )
    print("\n" + report(result))
    rows = result.normalized()

    # TOTAL_PF grows with depth and ends above GOOD_PF.
    totals = [row["total_pf"] for row in rows]
    assert totals[-1] > totals[0]
    assert result.overprefetch_grows_faster

    # GOOD_PF grows slower than TOTAL_PF at every depth past the first.
    for row in rows[1:]:
        assert row["total_pf"] >= row["good_pf"]

    # IPC at max aggressiveness is below the best point of the sweep.
    assert result.ipc_degrades
