"""Figures 9–10 — single-core speedups and miss coverage (§6.1).

Paper shapes asserted here:
* PPF has the best geometric-mean speedup (paper: +3.78% over SPP on the
  memory-intensive subset) and SPP beats DA-AMPM.
* PPF nearly matches or outperforms the others on (almost) every
  application; the one loss is 607.cactuBSSN_s, where BOP wins.
* The xalancbmk story: PPF prefetches deeper and issues more useful
  prefetches than SPP despite SPP's early throttling.
* PPF's average lookahead depth exceeds stock SPP's (paper: 3.97 vs 3.28).
* Coverage: PPF covers more L2 and LLC misses than SPP and DA-AMPM.
"""

import pytest
from conftest import run_once

from repro.harness.figure09 import report as fig9_report
from repro.harness.figure09 import run_figure9
from repro.harness.figure10 import report as fig10_report
from repro.harness.figure10 import run_figure10


@pytest.fixture(scope="module")
def fig9(bench_config):
    return run_figure9(config=bench_config)


def test_fig09_single_core_speedups(benchmark, fig9):
    run_once(benchmark, lambda: None)
    print("\n" + fig9_report(fig9))

    geomeans = {s: fig9.geomean(s, memory_intensive_only=True) for s in fig9.schemes}
    # PPF on top of the mem-intensive geomean; SPP ahead of DA-AMPM.
    assert geomeans["ppf"] == max(geomeans.values())
    assert geomeans["ppf"] > geomeans["spp"]
    assert geomeans["spp"] > geomeans["da-ampm"]
    # Full-suite geomean ordering holds for PPF too.
    assert fig9.geomean("ppf") > fig9.geomean("spp")
    # Positive headline gain over SPP.
    assert fig9.ppf_over_spp_percent() > 0

    # PPF matches or beats SPP on nearly every application (19/20 in the
    # paper; allow the same single-loss slack here).
    ppf = fig9.suite.speedups("ppf")
    spp = fig9.suite.speedups("spp")
    losses = [w for w in ppf if ppf[w] < spp[w] * 0.98]
    assert len(losses) <= 2, losses

    # BOP wins 607.cactuBSSN_s; PPF (via SPP) underperforms there.
    bop = fig9.suite.speedups("bop")
    assert bop["607.cactuBSSN_s"] > ppf["607.cactuBSSN_s"]
    assert bop["607.cactuBSSN_s"] > spp["607.cactuBSSN_s"]


def test_fig09_xalancbmk_story(benchmark, fig9):
    run_once(benchmark, lambda: None)
    spp = fig9.suite.run_for("623.xalancbmk_s", "spp")
    ppf = fig9.suite.run_for("623.xalancbmk_s", "ppf")
    # PPF's accuracy check lets it speculate deeper than SPP's throttle...
    assert ppf.average_lookahead_depth > spp.average_lookahead_depth
    # ...earning more useful prefetches and more speedup.
    assert ppf.prefetches_useful > spp.prefetches_useful
    assert ppf.ipc > spp.ipc


def test_fig09_average_depth(benchmark, fig9):
    run_once(benchmark, lambda: None)
    depths = fig9.average_depths()
    assert depths["ppf"] > depths["spp"]


def test_fig10_coverage(benchmark, fig9):
    fig10 = run_once(benchmark, run_figure10, suite=fig9.suite)
    print("\n" + fig10_report(fig10))
    for level in ("l2", "llc"):
        ppf = fig10.coverage("ppf", level)
        assert ppf > fig10.coverage("spp", level), level
        assert ppf > fig10.coverage("da-ampm", level), level
        assert ppf > 0.5, level  # PPF removes the majority of misses
