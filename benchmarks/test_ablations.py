"""Ablation benches for PPF's design choices (DESIGN.md list).

Not a paper figure: these quantify the mechanisms the paper describes
qualitatively — the Reject Table's false-negative recovery, the
two-level fill thresholds, the feature set and the aggressive re-tuning
of SPP underneath the filter.
"""

import pytest
from conftest import run_once

from repro.harness.ablations import report, run_ablations
from repro.sim.config import SimConfig
from repro.workloads.spec2017 import memory_intensive_subset, workload_by_name

VARIANTS = (
    "spp",
    "ppf-full",
    "no-reject-table",
    "single-level",
    "address-only",
    "all-features",
    "stock-spp-under",
    "no-displacement",
    "no-theta",
)


def test_ablations(benchmark, bench_config):
    config = SimConfig.quick(
        measure_records=max(6_000, bench_config.measure_records // 2),
        warmup_records=bench_config.warmup_records // 2,
    )
    workloads = [
        workload_by_name(name)
        for name in ("603.bwaves_s", "623.xalancbmk_s", "605.mcf_s", "619.lbm_s")
    ]
    result = run_once(
        benchmark, run_ablations, workloads=workloads, config=config, variants=VARIANTS
    )
    print("\n" + report(result))

    full = result.geomeans["ppf-full"]
    # The full design beats plain SPP on this slice.
    assert full > result.geomeans["spp"]
    # Aggressive SPP underneath matters: stock-SPP-under gives up gain.
    assert full >= result.geomeans["stock-spp-under"] * 0.99
    # Every ablated variant still beats no prefetching.
    for variant in VARIANTS:
        assert result.geomeans[variant] > 1.0, variant
    # No ablation should *improve* on the full design by a wide margin
    # (each mechanism pays for itself or is neutral at this scale).
    for variant in VARIANTS:
        if variant != "spp":
            assert result.geomeans[variant] <= full * 1.05, variant
