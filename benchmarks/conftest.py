"""Shared configuration for the paper-reproduction benchmarks.

Each benchmark regenerates one paper table/figure at a scaled-down trace
length (pure-Python simulation; see DESIGN.md) and asserts the *shape*
claims the paper makes.  Set ``REPRO_BENCH_RECORDS`` to run closer to
paper scale.
"""

import os

import pytest

from repro.sim.config import SimConfig

#: Measured loads per single-core run (override with REPRO_BENCH_RECORDS).
BENCH_RECORDS = int(os.environ.get("REPRO_BENCH_RECORDS", "15000"))


@pytest.fixture(scope="session")
def bench_config():
    """Single-core benchmark configuration."""
    return SimConfig.quick(
        measure_records=BENCH_RECORDS, warmup_records=BENCH_RECORDS // 4
    )


@pytest.fixture(scope="session")
def multicore_records():
    """Per-core measured loads for the (much costlier) mix benches."""
    return max(2_000, BENCH_RECORDS // 3)


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
