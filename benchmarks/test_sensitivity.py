"""Threshold-sensitivity benches (the §3.2 re-tuning methodology).

Quantifies how much PPF's inference (τ) and training-saturation (θ)
thresholds matter — evidence behind the paper's statement that the
filter "adapts quickly to changes in memory behavior" with the guards
in place.
"""

import pytest
from conftest import run_once

from repro.analysis.sensitivity import report, sweep_thresholds
from repro.sim.config import SimConfig
from repro.workloads.spec2017 import workload_by_name

WORKLOADS = [
    workload_by_name("603.bwaves_s"),
    workload_by_name("623.xalancbmk_s"),
    workload_by_name("605.mcf_s"),
]


@pytest.fixture(scope="module")
def mini_config(bench_config):
    return SimConfig.quick(
        measure_records=max(5_000, bench_config.measure_records // 3),
        warmup_records=bench_config.warmup_records // 3,
    )


def test_tau_sensitivity(benchmark, mini_config):
    result = run_once(
        benchmark, sweep_thresholds, "tau", workloads=WORKLOADS, config=mini_config
    )
    print("\n" + report(result))
    # The accept rate must respond monotonically in direction: the most
    # permissive tau accepts at least as much as the strictest.
    by_setting = {p.setting: p for p in result.points}
    assert by_setting[(-20, -40)].mean_accept_rate >= by_setting[(10, 0)].mean_accept_rate
    # The default-neighbourhood settings are competitive: within 15% of
    # the best sweep point.
    default_point = by_setting[(-5, -15)]
    assert default_point.geomean_speedup >= result.best().geomean_speedup * 0.85


def test_theta_sensitivity(benchmark, mini_config):
    result = run_once(
        benchmark, sweep_thresholds, "theta", workloads=WORKLOADS, config=mini_config
    )
    print("\n" + report(result))
    by_setting = {p.setting: p for p in result.points}
    # The paper's-style guard (90) performs within 10% of the best.
    assert by_setting[(90, -90)].geomean_speedup >= result.best().geomean_speedup * 0.9
