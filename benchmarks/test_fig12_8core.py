"""Figure 12 — 8-core weighted-IPC speedups on memory-intensive mixes.

Paper shape: PPF stays ahead of SPP at 8 cores (+9.65% in the paper);
shared-resource pressure keeps the filter valuable.
"""

from conftest import run_once

from repro.harness.figures11_12 import report, run_figure12
from repro.sim.config import SimConfig


def test_fig12_8core_mixes(benchmark, multicore_records):
    records = max(1_500, multicore_records // 2)
    config = SimConfig.multicore(8)
    config.measure_records = records
    config.warmup_records = records // 4
    result = run_once(
        benchmark, run_figure12, mix_count=3, config=config, schemes=("spp", "ppf")
    )
    print("\n" + report(result))

    assert result.geomean("spp") > 1.0
    assert result.geomean("ppf") > result.geomean("spp")
    assert result.ppf_over_spp_percent() > 0
