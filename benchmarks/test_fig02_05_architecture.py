"""Figures 2–5 — architecture conformance checks.

The diagrams pin structure sizes (ST 256 / PT 512 / weight tables per
feature / 1,024-entry Prefetch and Reject tables) and the data-path
order (infer → record → retrieve → train).
"""

from conftest import run_once

from repro.harness.figures02_05 import report, run_architecture_checks


def test_fig02_05_architecture_conformance(benchmark):
    checks = run_once(benchmark, run_architecture_checks)
    print("\n" + report(checks))
    failing = [c.name for c in checks if not c.ok]
    assert not failing, f"architecture drift: {failing}"
    assert len(checks) >= 10
