"""Section 6.3 — small-LLC and low-bandwidth constraint studies.

Paper shapes: PPF stays at or ahead of SPP under both constraints;
under low DRAM bandwidth the absolute gains shrink for every scheme
(prefetching competes with demands for scarce bus slots).
"""

import pytest
from conftest import run_once

from repro.harness.constraints import report, run_constraints
from repro.sim.config import SimConfig
from repro.workloads.spec2017 import memory_intensive_subset


def test_sec63_memory_constraints(benchmark, bench_config):
    config = SimConfig.quick(
        measure_records=max(6_000, bench_config.measure_records // 2),
        warmup_records=bench_config.warmup_records // 2,
    )
    workloads = memory_intensive_subset()[:6]
    result = run_once(
        benchmark,
        run_constraints,
        workloads=workloads,
        config=config,
        schemes=("spp", "ppf"),
    )
    print("\n" + report(result))

    # PPF >= SPP under every constraint.
    for constraint in ("default", "small-llc", "low-bandwidth"):
        assert result.geomean(constraint, "ppf") >= result.geomean(constraint, "spp") * 0.99, constraint

    # Low bandwidth shrinks everyone's gains vs the default machine.
    assert result.geomean("low-bandwidth", "spp") < result.geomean("default", "spp")
    assert result.geomean("low-bandwidth", "ppf") < result.geomean("default", "ppf")

    # Both schemes still help under the small LLC.
    assert result.geomean("small-llc", "ppf") > 1.0
