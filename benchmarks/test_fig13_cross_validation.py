"""Figure 13 — cross-validation on unseen workloads (§6.4).

PPF's configuration was developed against the SPEC CPU 2017 models;
here it runs unchanged on the CloudSuite and SPEC CPU 2006 models.

Paper shapes: CloudSuite is prefetch-agnostic (small gains) but PPF
still edges out SPP; on SPEC CPU 2006 PPF leads SPP on the
memory-intensive subset and the full suite.
"""

import pytest
from conftest import run_once

from repro.harness.figure13 import report, run_figure13
from repro.sim.config import SimConfig


def test_fig13_cross_validation(benchmark, bench_config):
    config = SimConfig.quick(
        measure_records=max(6_000, bench_config.measure_records // 2),
        warmup_records=bench_config.warmup_records // 2,
    )
    result = run_once(
        benchmark,
        run_figure13,
        config=config,
        schemes=("spp", "ppf"),
        spec2006_subset=10,
    )
    print("\n" + report(result))

    # Fig 13a: CloudSuite gains are modest for every scheme...
    cloud_ppf = result.cloudsuite_geomean("ppf")
    cloud_spp = result.cloudsuite_geomean("spp")
    assert cloud_ppf < 2.0  # prefetch-agnostic: nothing doubles
    # ...but PPF does not lose to SPP on unseen server workloads.
    assert cloud_ppf >= cloud_spp * 0.99

    # Fig 13b: SPEC CPU 2006 — PPF ahead of SPP, untuned.
    assert result.spec2006_geomean("ppf", memory_intensive_only=True) > (
        result.spec2006_geomean("spp", memory_intensive_only=True)
    )
    assert result.spec2006_geomean("ppf") > result.spec2006_geomean("spp")
