"""Figure 11 — 4-core weighted-IPC speedups on memory-intensive mixes.

Paper shape: every scheme gains more than single-core; PPF leads
(paper: +11.4% over SPP) and its margin over SPP is larger than the
single-core margin because filtering protects the shared LLC and DRAM.
"""

import pytest
from conftest import run_once

from repro.harness.figures11_12 import report, run_figure11
from repro.sim.config import SimConfig


def test_fig11_4core_mixes(benchmark, multicore_records):
    config = SimConfig.multicore(4)
    config.measure_records = multicore_records
    config.warmup_records = multicore_records // 4
    result = run_once(
        benchmark, run_figure11, mix_count=4, config=config, schemes=("spp", "ppf")
    )
    print("\n" + report(result))

    # Everyone beats no-prefetching on memory-intensive mixes.
    assert result.geomean("spp") > 1.0
    assert result.geomean("ppf") > 1.0
    # PPF leads SPP.
    assert result.geomean("ppf") > result.geomean("spp")
    assert result.ppf_over_spp_percent() > 0
    # The sorted series is monotonically non-decreasing by construction.
    series = result.sorted_series("ppf")
    assert series == sorted(series)
