"""Figures 6–8 — feature-selection evidence (§5.5).

Paper shapes:
* Fig. 6 — Page⊕Confidence weights push out toward saturation (strong
  signal); Last-Signature weights concentrate near zero (rejected).
* Fig. 7 — Page⊕Confidence has the strongest global Pearson factor of
  the production features; several features show moderate-to-high |P|.
* Fig. 8 — globally-weak features (PC⊕Delta etc.) still correlate well
  on *some* traces.
"""

import pytest
from conftest import run_once

from repro.analysis.correlation import (
    histogram_concentration_near_zero,
    histogram_saturation,
)
from repro.harness.figures06_08 import (
    FIGURE8_FEATURES,
    figure6_report,
    figure7_report,
    figure8_report,
    run_feature_evidence,
)
from repro.sim.config import SimConfig
from repro.workloads.spec2017 import memory_intensive_subset


@pytest.fixture(scope="module")
def evidence(bench_config):
    config = SimConfig.quick(
        measure_records=max(6_000, bench_config.measure_records // 2),
        warmup_records=bench_config.warmup_records // 2,
    )
    return run_feature_evidence(
        workloads=memory_intensive_subset()[:6], config=config
    )


def test_fig06_weight_histograms(benchmark, evidence):
    run_once(benchmark, lambda: None)
    print("\n" + figure6_report(evidence))
    strong = evidence.histograms["page_xor_confidence"]
    weak = evidence.histograms["last_signature"]
    # The rejected feature's weights concentrate near zero more than the
    # kept feature's *touched* weights saturate toward the rails.
    assert histogram_concentration_near_zero(weak) > histogram_concentration_near_zero(
        strong
    ) or histogram_saturation(strong) > histogram_saturation(weak)


def test_fig07_global_pearson(benchmark, evidence):
    run_once(benchmark, lambda: None)
    print("\n" + figure7_report(evidence))
    pearsons = evidence.global_pearson
    production = [f.name for f in evidence.study.features[:9]]
    # The strongest production feature shows real correlation...
    assert max(abs(pearsons[name]) for name in production) > 0.5
    # ...and beats the rejected Last-Signature feature.
    best = max(production, key=lambda name: abs(pearsons[name]))
    assert abs(pearsons[best]) > abs(pearsons["last_signature"])


def test_fig08_per_trace_variation(benchmark, evidence):
    run_once(benchmark, lambda: None)
    print("\n" + figure8_report(evidence))
    for feature in FIGURE8_FEATURES:
        by_trace = evidence.per_trace[feature]
        values = [abs(v) for v in by_trace.values()]
        # Figure 8's point: weak-on-average features still earn useful
        # correlation (|P| > 0.3) on at least one trace.
        assert max(values) > 0.3, feature
        # and the spread across traces is visible
    spreads = [
        max(evidence.per_trace[f].values()) - min(evidence.per_trace[f].values())
        for f in FIGURE8_FEATURES
    ]
    assert max(spreads) > 0.1
