"""Tests for repro.harness.report rendering."""

import pytest

from repro.harness.report import format_cell, render_histogram, render_table


class TestFormatCell:
    def test_float_precision(self):
        assert format_cell(1.23456) == "1.235"
        assert format_cell(1.2, precision=1) == "1.2"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_other_types(self):
        assert format_cell(42) == "42"
        assert format_cell("x") == "x"


class TestRenderTable:
    def test_contains_headers_and_cells(self):
        out = render_table(["a", "b"], [(1, 2.5)], title="T")
        assert "T" in out
        assert "a" in out and "b" in out
        assert "2.500" in out

    def test_alignment_widths(self):
        out = render_table(["name", "v"], [("longer-than-header", 1)])
        lines = out.splitlines()
        assert len(lines[0]) == len(lines[-1])

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [(1,)])

    def test_no_title(self):
        out = render_table(["a"], [(1,)])
        assert not out.startswith("=")


class TestRenderHistogram:
    def test_bars_scale_with_counts(self):
        out = render_histogram({0: 10, 1: 5}, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_empty_histogram(self):
        out = render_histogram({0: 0})
        assert "0" in out

    def test_title(self):
        out = render_histogram({0: 1}, title="H")
        assert out.splitlines()[0] == "H"

    def test_sorted_by_value(self):
        out = render_histogram({5: 1, -3: 1, 0: 1})
        lines = out.splitlines()
        values = [int(line.split("|")[0]) for line in lines]
        assert values == sorted(values)
