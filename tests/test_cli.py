"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCLI:
    def test_experiments_lists_all(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("fig1", "fig9-10", "tab2-3", "ablations"):
            assert experiment_id in out

    def test_workloads_lists_suites(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "SPEC CPU 2017 (20)" in out
        assert "SPEC CPU 2006 (29)" in out
        assert "CloudSuite (4)" in out
        assert "memory intensive" in out

    def test_bench_runs(self, capsys):
        assert main(["bench", "641.leela_s", "--prefetcher", "spp", "--records", "2000"]) == 0
        out = capsys.readouterr().out
        assert "641.leela_s / spp" in out
        assert "speedup=" in out

    def test_bench_accepts_cross_suite_workloads(self, capsys):
        assert main(["bench", "429.mcf", "--prefetcher", "none", "--records", "1500"]) == 0
        assert "429.mcf" in capsys.readouterr().out

    def test_bench_suite_writes_report(self, capsys, tmp_path):
        report_path = tmp_path / "BENCH_sim.json"
        assert (
            main(
                [
                    "bench",
                    "--smoke",
                    "--only",
                    "cache_lookup_fill",
                    "--output",
                    str(report_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "cache_lookup_fill" in out
        report = json.loads(report_path.read_text())
        assert report["schema"] == "repro.bench/v1"
        assert report["mode"] == "smoke"
        assert "cache_lookup_fill" in report["results"]

    def test_bench_suite_rejects_unknown_benchmark(self, capsys):
        assert main(["bench", "--only", "warp_drive"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_run_with_profile_dumps_pstats(self, capsys, tmp_path):
        profile_path = tmp_path / "run.pstats"
        assert (
            main(
                [
                    "run",
                    "tab2-3",
                    "--records",
                    "1000",
                    "--profile",
                    str(profile_path),
                ]
            )
            == 0
        )
        assert profile_path.exists()
        import pstats

        stats = pstats.Stats(str(profile_path))
        assert stats.total_calls > 0

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "tab2-3", "--records", "1000"]) == 0
        assert "322240" in capsys.readouterr().out

    def test_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_bench_rejects_unknown_prefetcher(self):
        with pytest.raises(SystemExit):
            main(["bench", "641.leela_s", "--prefetcher", "oracle"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
