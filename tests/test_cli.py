"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCLI:
    def test_experiments_lists_all(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("fig1", "fig9-10", "tab2-3", "ablations"):
            assert experiment_id in out

    def test_workloads_lists_suites(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "SPEC CPU 2017 (20)" in out
        assert "SPEC CPU 2006 (29)" in out
        assert "CloudSuite (4)" in out
        assert "memory intensive" in out

    def test_bench_runs(self, capsys):
        assert main(["bench", "641.leela_s", "--prefetcher", "spp", "--records", "2000"]) == 0
        out = capsys.readouterr().out
        assert "641.leela_s / spp" in out
        assert "speedup=" in out

    def test_bench_accepts_cross_suite_workloads(self, capsys):
        assert main(["bench", "429.mcf", "--prefetcher", "none", "--records", "1500"]) == 0
        assert "429.mcf" in capsys.readouterr().out

    def test_bench_suite_writes_report(self, capsys, tmp_path):
        report_path = tmp_path / "BENCH_sim.json"
        assert (
            main(
                [
                    "bench",
                    "--smoke",
                    "--only",
                    "cache_lookup_fill",
                    "--output",
                    str(report_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "cache_lookup_fill" in out
        report = json.loads(report_path.read_text())
        assert report["schema"] == "repro.bench/v1"
        assert report["mode"] == "smoke"
        assert "cache_lookup_fill" in report["results"]

    def test_bench_suite_rejects_unknown_benchmark(self, capsys):
        assert main(["bench", "--only", "warp_drive"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_run_with_profile_dumps_pstats(self, capsys, tmp_path):
        profile_path = tmp_path / "run.pstats"
        assert (
            main(
                [
                    "run",
                    "tab2-3",
                    "--records",
                    "1000",
                    "--profile",
                    str(profile_path),
                ]
            )
            == 0
        )
        assert profile_path.exists()
        import pstats

        stats = pstats.Stats(str(profile_path))
        assert stats.total_calls > 0

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "tab2-3", "--records", "1000"]) == 0
        assert "322240" in capsys.readouterr().out

    def test_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_bench_rejects_unknown_prefetcher(self, capsys):
        assert main(["bench", "641.leela_s", "--prefetcher", "oracle"]) == 2
        assert "unknown prefetcher" in capsys.readouterr().err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestTraceCLI:
    def test_trace_record_exports_valid_artifacts(self, capsys, tmp_path):
        out_dir = tmp_path / "trace"
        assert (
            main(
                [
                    "trace",
                    "record",
                    "--workload",
                    "605.mcf_s",
                    "--records",
                    "2000",
                    "--probe-every",
                    "400",
                    "--out",
                    str(out_dir),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "605.mcf_s / ppf" in out and "series" in out

        import json

        from repro.telemetry import validate_chrome_trace, validate_timeseries

        chrome = json.loads((out_dir / "TRACE_sim.json").read_text())
        assert validate_chrome_trace(chrome) > 0
        timeseries = json.loads((out_dir / "timeseries.json").read_text())
        assert validate_timeseries(timeseries) >= 5

    def test_trace_summary_renders_series_table(self, capsys, tmp_path):
        out_dir = tmp_path / "trace"
        main(
            [
                "trace",
                "record",
                "--workload",
                "605.mcf_s",
                "--records",
                "2000",
                "--out",
                str(out_dir),
            ]
        )
        capsys.readouterr()
        assert main(["trace", "summary", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "series" in out and "core.ipc" in out and "mean" in out

    def test_trace_summary_rejects_missing_file(self, capsys, tmp_path):
        assert main(["trace", "summary", str(tmp_path / "absent")]) == 2
        assert "error" in capsys.readouterr().err

    def test_sweep_trace_and_export(self, capsys, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        trace_dir = tmp_path / "trace"
        assert (
            main(
                [
                    "sweep",
                    "--workloads",
                    "605.mcf_s",
                    "--prefetchers",
                    "spp",
                    "--records",
                    "1500",
                    "--ledger",
                    str(ledger),
                    "--trace",
                    str(trace_dir),
                    "--quiet",
                ]
            )
            == 0
        )
        capsys.readouterr()

        import json

        lifecycle = [
            json.loads(line)
            for line in ledger.read_text().splitlines()
            if json.loads(line).get("event") == "lifecycle"
        ]
        assert {entry["phase"] for entry in lifecycle} >= {"queued", "started", "finished"}

        assert main(["trace", "export", str(ledger), "--out", str(tmp_path / "x")]) == 0
        out = capsys.readouterr().out
        assert "TRACE_sweep.json" in out

        from repro.telemetry import validate_chrome_trace

        sweep_trace = json.loads((tmp_path / "x" / "TRACE_sweep.json").read_text())
        assert validate_chrome_trace(sweep_trace) > 0

    def test_trace_export_rejects_missing_ledger(self, capsys, tmp_path):
        assert main(["trace", "export", str(tmp_path / "nope.jsonl")]) == 2
        assert "no ledger" in capsys.readouterr().err

    def test_run_phase_experiment(self, capsys):
        assert main(["run", "phase", "--records", "2000"]) == 0
        out = capsys.readouterr().out
        assert "Phase plot" in out and "core.ipc" in out
