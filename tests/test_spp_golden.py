"""Golden-value tests pinning SPP's exact semantics.

Hand-computed expectations for small access sequences — a refactoring
guard: any change to signature math, counter updates or lookahead
ordering shows up here as an exact-value mismatch.
"""


from repro.memory.address import encode_delta
from repro.prefetchers.spp import SPP, update_signature


class TestSignatureGolden:
    def test_unit_stride_signature_sequence(self):
        """offsets 0,1,2,3 from signature 0: sig_k = ((sig << 3) ^ 1)."""
        expected = []
        sig = 0
        for _ in range(3):
            sig = ((sig << 3) ^ 1) & 0xFFF
            expected.append(sig)
        assert expected == [0x001, 0x009, 0x049]

    def test_negative_delta_encoding_in_signature(self):
        # delta -2 encodes as 0b1000010 = 66
        assert encode_delta(-2) == 66
        assert update_signature(0, -2) == 66

    def test_signature_wraps_at_12_bits(self):
        sig = 0xFFF
        assert update_signature(sig, 1) == ((0xFFF << 3) ^ 1) & 0xFFF


class TestPatternTableGolden:
    def test_counts_after_known_stream(self):
        spp = SPP()
        # offsets 0,1,2,3 in page 7: three delta-1 updates at signatures
        # 0x000, 0x001, 0x009 respectively.
        for offset in range(4):
            spp.train((7 << 12) | (offset << 6), 0x400, False, offset)
        table = spp._pattern_table
        cfg = spp.config
        for sig in (0x000, 0x001, 0x009):
            entry = table[sig % cfg.pattern_table_entries]
            assert entry.c_sig == 1
            assert entry.deltas == {1: 1}

    def test_csig_counts_signature_hits(self):
        spp = SPP()
        # Two different pages walking the same pattern double the counts.
        for page in (3, 5):
            for offset in range(4):
                spp.train((page << 12) | (offset << 6), 0x400, False, offset)
        entry = spp._pattern_table[0x001 % spp.config.pattern_table_entries]
        assert entry.c_sig == 2
        assert entry.deltas == {1: 2}


class TestLookaheadGolden:
    def warm(self, spp, page=9, length=20):
        out = []
        for offset in range(length):
            out = spp.train((page << 12) | (offset << 6), 0x400, False, offset)
        return out

    def test_depth1_target_is_next_block(self):
        spp = SPP()
        candidates = self.warm(spp)
        depth1 = [c for c in candidates if c.meta["depth"] == 1]
        assert len(depth1) == 1
        assert (depth1[0].addr >> 6) & 63 == 20  # trigger was offset 19

    def test_depth1_confidence_is_100_on_clean_stream(self):
        spp = SPP()
        candidates = self.warm(spp)
        depth1 = [c for c in candidates if c.meta["depth"] == 1][0]
        assert depth1.meta["confidence"] == 100

    def test_lookahead_targets_are_consecutive(self):
        spp = SPP()
        candidates = self.warm(spp)
        offsets = sorted((c.addr >> 6) & 63 for c in candidates)
        assert offsets == list(range(20, 20 + len(offsets)))

    def test_alpha_100_while_cold_gives_deep_walk(self):
        spp = SPP()  # T_p = 25: depth limited by nothing on a clean stream
        candidates = self.warm(spp)
        assert max(c.meta["depth"] for c in candidates) >= 4

    def test_signature_meta_tracks_walk(self):
        spp = SPP()
        candidates = self.warm(spp)
        by_depth = {c.meta["depth"]: c.meta["signature"] for c in candidates}
        # Each level's signature extends the previous with delta 1.
        for depth in range(1, max(by_depth)):
            if depth in by_depth and depth + 1 in by_depth:
                assert by_depth[depth + 1] == update_signature(by_depth[depth], 1)


class TestGHRGolden:
    def test_ghr_entry_contents(self):
        spp = SPP()
        # Walk to the very end of a page so lookahead crosses out.
        for offset in range(56, 64):
            spp.train((11 << 12) | (offset << 6), 0x400, False, offset)
        assert spp._ghr
        entry = spp._ghr[-1]
        assert entry.delta == 1
        assert entry.last_offset >= 56

    def test_bootstrap_produces_correct_first_prefetch(self):
        spp = SPP()
        for offset in range(56, 64):
            spp.train((11 << 12) | (offset << 6), 0x400, False, offset)
        candidates = spp.train(12 << 12, 0x400, False, 99)  # page 12, offset 0
        targets = [(c.addr >> 6) & 63 for c in candidates if c.addr >> 12 == 12]
        assert 1 in targets  # continues the unit stride immediately
