"""Config-variant behaviour tests: the §5.2/§6.3 machine knobs act as claimed."""


from repro.memory.dram import DRAM, DRAMConfig
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.sim.config import SimConfig
from repro.sim.single_core import run_single_core
from repro.workloads.spec2017 import workload_by_name

SMALL = SimConfig.quick(measure_records=3_000, warmup_records=800)


def with_records(config):
    config.warmup_records = SMALL.warmup_records
    config.measure_records = SMALL.measure_records
    return config


class TestSmallLLC:
    def test_small_llc_raises_llc_misses(self):
        workload = workload_by_name("657.xz_s")  # large-footprint irregular
        default = run_single_core(workload, "none", SMALL)
        small = run_single_core(workload, "none", with_records(SimConfig.small_llc()))
        assert small.llc_misses >= default.llc_misses

    def test_small_llc_never_beats_default(self):
        workload = workload_by_name("620.omnetpp_s")
        default = run_single_core(workload, "none", SMALL)
        small = run_single_core(workload, "none", with_records(SimConfig.small_llc()))
        assert small.ipc <= default.ipc * 1.05


class TestLowBandwidth:
    def test_low_bandwidth_slows_memory_bound_work(self):
        workload = workload_by_name("603.bwaves_s")
        default = run_single_core(workload, "none", SMALL)
        low = run_single_core(workload, "none", with_records(SimConfig.low_bandwidth()))
        assert low.ipc < default.ipc

    def test_low_bandwidth_barely_touches_compute_bound_work(self):
        workload = workload_by_name("648.exchange2_s")
        default = run_single_core(workload, "none", SMALL)
        low = run_single_core(workload, "none", with_records(SimConfig.low_bandwidth()))
        assert low.ipc > default.ipc * 0.7

    def test_transfer_occupancy_quadruples(self):
        default, low = DRAMConfig.default(), DRAMConfig.low_bandwidth()
        assert low.cycles_per_transfer == 4 * default.cycles_per_transfer


class TestHierarchyVariants:
    def test_llc_scales_with_core_count(self):
        for cores in (1, 2, 4, 8):
            hierarchy = MemoryHierarchy(num_cores=cores)
            assert hierarchy.llc.size_bytes == cores * 2 * 1024 * 1024

    def test_prefetch_queue_size_configurable(self):
        config = HierarchyConfig(prefetch_queue_size=3)
        hierarchy = MemoryHierarchy(config=config)
        assert hierarchy.config.prefetch_queue_size == 3

    def test_table1_dump_tracks_variant(self):
        rows = dict(SimConfig.low_bandwidth().describe())
        assert "3.2 GB/s" in rows["DRAM"]
        rows = dict(SimConfig.small_llc().describe())
        assert "512 KB/core" in rows["LLC"]


class TestDRAMRowPolicy:
    def test_row_stays_open_between_accesses(self):
        dram = DRAM()
        dram.access(0x0, 0)
        # Far in the future, same row: still an open-row hit.
        before = dram.stats.row_hits
        dram.access(0x40, 10_000_000)
        assert dram.stats.row_hits == before + 1

    def test_channels_partition_rows(self):
        dram = DRAM(DRAMConfig(channels=2))
        dram.access(0 << 6, 0)  # channel 0
        dram.access(1 << 6, 0)  # channel 1 — different open-row state
        assert dram.stats.row_misses == 2
