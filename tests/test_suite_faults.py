"""Fault-tolerant sweep execution: crashes, hangs, dead pools, ledger.

Every fault is injected through a workload whose trace builder
misbehaves *only inside a worker process* (detected via
``multiprocessing.parent_process()``), so the serial in-process run of
the same spec is healthy — which is exactly what lets the recovery
paths (pool retry, pool respawn, serial fallback) produce a complete
``SuiteResult`` bit-identical to a fully serial sweep.

The builders are module-level functions so the specs pickle by
reference into pool workers.
"""

import json
import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro.sim.config import SimConfig
from repro.sim.suite import CellPolicy, DegradedSweepError, SuiteRunner
from repro.workloads.spec2017 import WorkloadSpec, workload_by_name

TINY = SimConfig.quick(measure_records=1_200, warmup_records=300)
_BASE = workload_by_name("619.lbm_s")


def _in_worker() -> bool:
    return multiprocessing.parent_process() is not None


def _fault_dir() -> Path:
    return Path(os.environ["REPRO_FAULT_DIR"])


def _good_builder(n, seed):
    return _BASE.builder(n, seed)


def _crashy_builder(n, seed):
    if _in_worker():
        raise RuntimeError("injected worker crash")
    return _BASE.builder(n, seed)


def _doomed_builder(n, seed):
    raise RuntimeError("injected unconditional crash")


def _flaky_builder(n, seed):
    """Crashes on the first worker attempt, succeeds afterwards."""
    if _in_worker():
        counter = _fault_dir() / "flaky-attempts"
        attempts = int(counter.read_text()) if counter.exists() else 0
        counter.write_text(str(attempts + 1))
        if attempts < 1:
            raise RuntimeError("injected flaky crash")
    return _BASE.builder(n, seed)


def _hangy_builder(n, seed):
    if _in_worker():
        time.sleep(60)
    return _BASE.builder(n, seed)


def _sentinel_builder(n, seed, sentinel):
    yield from _BASE.builder(n, seed)
    (_fault_dir() / sentinel).touch()


def _good_a_builder(n, seed):
    return _sentinel_builder(n, seed, "a.done")


def _good_b_builder(n, seed):
    return _sentinel_builder(n, seed, "b.done")


def _pool_killer_builder(n, seed):
    """Waits until both good cells finished, then kills its worker."""
    if _in_worker():
        deadline = time.time() + 20
        while time.time() < deadline:
            if (_fault_dir() / "a.done").exists() and (_fault_dir() / "b.done").exists():
                break
            time.sleep(0.05)
        time.sleep(0.75)  # let the siblings' futures settle as done
        os._exit(13)
    return _BASE.builder(n, seed)


def _spec(name, builder):
    return WorkloadSpec(
        name=name,
        suite="fault-injection",
        memory_intensive=True,
        description=f"fault-injection probe {name}",
        builder=builder,
    )


GOOD = _spec("fault-good", _good_builder)
CRASHY = _spec("fault-crashy", _crashy_builder)
DOOMED = _spec("fault-doomed", _doomed_builder)
FLAKY = _spec("fault-flaky", _flaky_builder)
HANGY = _spec("fault-hangy", _hangy_builder)
GOOD_A = _spec("fault-good-a", _good_a_builder)
GOOD_B = _spec("fault-good-b", _good_b_builder)
POOL_KILLER = _spec("fault-pool-killer", _pool_killer_builder)


def _serial_reference(specs):
    return SuiteRunner(TINY, seed=2, jobs=1).sweep(specs, ["none"], include_baseline=False)


@pytest.mark.timeout(120)
class TestCrashingWorker:
    def test_falls_back_to_serial_and_matches_serial_run(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_DIR", str(tmp_path))
        runner = SuiteRunner(
            TINY,
            seed=2,
            jobs=2,
            policy=CellPolicy(retries=0),
            ledger_path=tmp_path / "ledger.jsonl",
        )
        result = runner.sweep([GOOD, CRASHY], ["none"], include_baseline=False)
        report = result.failure_report

        assert result.runs == _serial_reference([GOOD, CRASHY]).runs
        assert report.complete
        assert report.serial_fallbacks == 1
        assert report.timeouts == 0
        [failure] = report.failures
        assert failure.workload == "fault-crashy"
        assert failure.recovered and failure.recovery == "serial-fallback"
        assert "injected worker crash" in failure.error
        snapshot = runner.stats.snapshot()
        assert snapshot["cells.serial_fallbacks"] == 1
        assert snapshot["cells.crashes"] == 1
        assert snapshot["cells.simulated"] == 2

    def test_ledger_records_attempts_cells_and_sweep(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_DIR", str(tmp_path))
        ledger_path = tmp_path / "ledger.jsonl"
        runner = SuiteRunner(
            TINY, seed=2, jobs=2, policy=CellPolicy(retries=0), ledger_path=ledger_path
        )
        runner.sweep([GOOD, CRASHY], ["none"], include_baseline=False)

        events = [json.loads(line) for line in ledger_path.read_text().splitlines()]
        by_event = {}
        for event in events:
            by_event.setdefault(event["event"], []).append(event)

        attempts = by_event["attempt"]
        assert any(
            e["workload"] == "fault-crashy" and e["kind"] == "crash" for e in attempts
        )
        cells = by_event["cell"]
        assert all(e["status"] == "ok" for e in cells)
        crashy_cell = next(e for e in cells if e["workload"] == "fault-crashy")
        assert crashy_cell["source"] == "serial-fallback"
        assert crashy_cell["attempts"] == 2  # 1 failed pool attempt + 1 serial
        good_cell = next(e for e in cells if e["workload"] == "fault-good")
        assert good_cell["source"] == "simulated"
        assert good_cell["wall_time"] > 0
        [sweep_event] = by_event["sweep"]
        assert sweep_event["failed"] == 0
        assert sweep_event["serial_fallbacks"] == 1

    def test_retry_budget_recovers_flaky_cell_in_pool(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_DIR", str(tmp_path))
        runner = SuiteRunner(TINY, seed=2, jobs=2, policy=CellPolicy(retries=1))
        result = runner.sweep([GOOD, FLAKY], ["none"], include_baseline=False)
        report = result.failure_report

        assert result.runs == _serial_reference([GOOD, FLAKY]).runs
        assert report.complete
        assert report.retries == 1
        assert report.serial_fallbacks == 0
        [failure] = report.failures
        assert failure.recovered and failure.recovery == "pool-retry"


@pytest.mark.timeout(120)
class TestHangingWorker:
    def test_timeout_kills_worker_and_falls_back(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_DIR", str(tmp_path))
        runner = SuiteRunner(
            TINY, seed=2, jobs=2, policy=CellPolicy(timeout=5.0, retries=0)
        )
        start = time.perf_counter()
        result = runner.sweep([GOOD, HANGY], ["none"], include_baseline=False)
        elapsed = time.perf_counter() - start
        report = result.failure_report

        assert elapsed < 45  # nowhere near the injected 60s sleep
        assert result.runs == _serial_reference([GOOD, HANGY]).runs
        assert report.complete
        assert report.timeouts == 1
        assert report.serial_fallbacks == 1
        [failure] = report.failures
        assert failure.workload == "fault-hangy"
        assert failure.recovery == "serial-fallback"
        assert "no result after" in failure.error


@pytest.mark.timeout(120)
class TestKilledPool:
    def test_salvages_completed_cells_and_resubmits_lost_ones(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT_DIR", str(tmp_path))
        specs = [POOL_KILLER, GOOD_A, GOOD_B]
        runner = SuiteRunner(TINY, seed=2, jobs=2, policy=CellPolicy(retries=0))
        result = runner.sweep(specs, ["none"], include_baseline=False)
        report = result.failure_report

        assert result.runs == _serial_reference(specs).runs
        assert report.complete
        assert report.pool_breaks == 1
        # The two good cells completed before the pool died and were
        # salvaged — nothing was re-simulated besides the killer's
        # serial fallback run.
        assert report.salvaged == 2
        assert runner.simulated == 3
        [failure] = report.failures
        assert failure.workload == "fault-pool-killer"
        assert failure.recovery == "serial-fallback"


@pytest.mark.timeout(120)
class TestUnrecoveredCells:
    def test_degraded_sweep_reports_and_skips_lost_cell(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_DIR", str(tmp_path))
        runner = SuiteRunner(TINY, seed=2, jobs=2, policy=CellPolicy(retries=0))
        result = runner.sweep([GOOD, DOOMED], ["none"], include_baseline=False)
        report = result.failure_report

        assert ("fault-good", "none") in result.runs
        assert ("fault-doomed", "none") not in result.runs
        assert not report.complete
        [failure] = report.unrecovered
        assert failure.workload == "fault-doomed"
        assert failure.attempts == 2  # pool attempt + failed serial fallback
        with pytest.raises(DegradedSweepError) as excinfo:
            result.require_complete()
        assert "fault-doomed" in str(excinfo.value)
        with pytest.raises(KeyError) as keyinfo:
            result.run_for("fault-doomed", "none")
        assert "degraded" in str(keyinfo.value)

    def test_no_fallback_policy_gives_up_after_retries(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_DIR", str(tmp_path))
        runner = SuiteRunner(
            TINY,
            seed=2,
            jobs=2,
            policy=CellPolicy(retries=0, fallback_serial=False),
        )
        result = runner.sweep([GOOD, CRASHY], ["none"], include_baseline=False)
        report = result.failure_report

        assert ("fault-crashy", "none") not in result.runs
        [failure] = report.unrecovered
        assert failure.attempts == 1
        assert report.serial_fallbacks == 0

    def test_serial_sweep_degrades_instead_of_raising(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_DIR", str(tmp_path))
        runner = SuiteRunner(TINY, seed=2, jobs=1)
        result = runner.sweep([GOOD, DOOMED], ["none"], include_baseline=False)

        assert ("fault-good", "none") in result.runs
        [failure] = result.failure_report.unrecovered
        assert failure.workload == "fault-doomed"


class TestCellPolicyValidation:
    def test_rejects_bad_timeout(self):
        with pytest.raises(ValueError):
            CellPolicy(timeout=0)

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            CellPolicy(retries=-1)


@pytest.mark.timeout(120)
class TestCLIFaultSurface:
    def test_sweep_flags_and_ledger(self, tmp_path, capsys):
        from repro.__main__ import main

        ledger = tmp_path / "cli-ledger.jsonl"
        rc = main(
            [
                "sweep",
                "--workloads",
                "641.leela_s",
                "--prefetchers",
                "spp",
                "--records",
                "1500",
                "--jobs",
                "1",
                "--timeout",
                "120",
                "--retries",
                "2",
                "--ledger",
                str(ledger),
            ]
        )
        assert rc == 0
        assert "geomean" in capsys.readouterr().out
        events = [json.loads(line) for line in ledger.read_text().splitlines()]
        assert any(e["event"] == "sweep" and e["failed"] == 0 for e in events)

    def test_sweep_exits_nonzero_on_unrecovered_cells(
        self, tmp_path, monkeypatch, capsys
    ):
        import repro.__main__ as cli

        monkeypatch.setenv("REPRO_FAULT_DIR", str(tmp_path))
        monkeypatch.setattr(cli, "find_workload", lambda name: DOOMED)
        rc = cli.main(
            [
                "sweep",
                "--workloads",
                "fault-doomed",
                "--prefetchers",
                "spp",
                "--records",
                "1500",
                "--jobs",
                "2",
                "--retries",
                "0",
            ]
        )
        assert rc == 3
        captured = capsys.readouterr()
        assert "unrecovered cell" in captured.err
        assert "fault-doomed" in captured.err
