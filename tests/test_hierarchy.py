"""Tests for repro.memory.hierarchy."""

import pytest

from repro.memory.dram import DRAMConfig
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.prefetchers.base import NullPrefetcher, PrefetchCandidate, Prefetcher


class ScriptedPrefetcher(Prefetcher):
    """Returns a queued list of candidates on each train call."""

    name = "scripted"

    def __init__(self):
        super().__init__()
        self.queue = []
        self.train_calls = []
        self.evictions = []
        self.useful = []

    def train(self, addr, pc, cache_hit, cycle):
        self.train_calls.append((addr, pc, cache_hit, cycle))
        if self.queue:
            return self.queue.pop(0)
        return []

    def on_eviction(self, addr, was_prefetch, was_used):
        super().on_eviction(addr, was_prefetch, was_used)
        self.evictions.append((addr, was_prefetch, was_used))

    def on_useful_prefetch(self, addr):
        super().on_useful_prefetch(addr)
        self.useful.append(addr)


def make_hierarchy(prefetcher=None, **kwargs):
    prefetchers = [prefetcher] if prefetcher is not None else None
    return MemoryHierarchy(num_cores=1, prefetchers=prefetchers, **kwargs)


class TestConstruction:
    def test_default_single_core(self):
        h = MemoryHierarchy()
        assert len(h.l1) == 1 and len(h.l2) == 1
        assert h.llc.size_bytes == 2 * 1024 * 1024

    def test_llc_scales_with_cores(self):
        h = MemoryHierarchy(num_cores=4)
        assert h.llc.size_bytes == 8 * 1024 * 1024

    def test_small_llc_config(self):
        h = MemoryHierarchy(config=HierarchyConfig.small_llc())
        assert h.llc.size_bytes == 512 * 1024

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(num_cores=0)

    def test_rejects_prefetcher_count_mismatch(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(num_cores=2, prefetchers=[NullPrefetcher()])


class TestDemandPath:
    def test_cold_access_reaches_dram(self):
        h = make_hierarchy()
        result = h.access(0, pc=1, addr=0x10000, cycle=0)
        assert result.level == "dram"
        assert result.ready_cycle > 0

    def test_second_access_hits_l1(self):
        h = make_hierarchy()
        first = h.access(0, 1, 0x10000, 0)
        second = h.access(0, 1, 0x10000, first.ready_cycle + 1)
        assert second.level == "l1"

    def test_l1_eviction_leaves_l2_hit(self):
        h = make_hierarchy()
        cfg = h.config
        # Fill far more blocks than L1 holds, all mapping across sets.
        blocks = cfg.l1_size // 64 * 4
        cycle = 0
        for i in range(blocks):
            cycle = h.access(0, 1, 0x100000 + i * 64, cycle).ready_cycle + 1
        # The first block fell out of L1 but should still be in L2.
        result = h.access(0, 1, 0x100000, cycle)
        assert result.level == "l2"

    def test_latency_orders_l1_l2_dram(self):
        h = make_hierarchy()
        miss = h.access(0, 1, 0x20000, 0)
        hit = h.access(0, 1, 0x20000, miss.ready_cycle + 1)
        dram_latency = miss.ready_cycle
        l1_latency = hit.ready_cycle - (miss.ready_cycle + 1)
        assert l1_latency < dram_latency

    def test_demand_misses_counted_at_l2(self):
        h = make_hierarchy()
        h.access(0, 1, 0x30000, 0)
        assert h.l2[0].stats.demand_misses == 1
        assert h.l2[0].stats.demand_accesses == 1


class TestPrefetcherHooks:
    def test_trained_on_every_l2_demand_access(self):
        pf = ScriptedPrefetcher()
        h = make_hierarchy(pf)
        h.access(0, 7, 0x40000, 0)
        assert len(pf.train_calls) == 1
        addr, pc, cache_hit, _cycle = pf.train_calls[0]
        assert (addr, pc, cache_hit) == (0x40000, 7, False)

    def test_l1_hits_do_not_train(self):
        pf = ScriptedPrefetcher()
        h = make_hierarchy(pf)
        r = h.access(0, 7, 0x40000, 0)
        h.access(0, 7, 0x40000, r.ready_cycle + 1)
        assert len(pf.train_calls) == 1

    def test_prefetch_issues_and_fills_l2(self):
        pf = ScriptedPrefetcher()
        pf.queue.append([PrefetchCandidate(addr=0x50040, fill_l2=True)])
        h = make_hierarchy(pf)
        h.access(0, 1, 0x50000, 0)
        assert pf.stats.issued == 1
        assert h.l2[0].contains(0x50040)
        assert h.llc.contains(0x50040)

    def test_llc_fill_level_stays_out_of_l2(self):
        pf = ScriptedPrefetcher()
        pf.queue.append([PrefetchCandidate(addr=0x50040, fill_l2=False)])
        h = make_hierarchy(pf)
        h.access(0, 1, 0x50000, 0)
        assert not h.l2[0].contains(0x50040)
        assert h.llc.contains(0x50040)

    def test_redundant_prefetch_dropped(self):
        pf = ScriptedPrefetcher()
        pf.queue.append([PrefetchCandidate(addr=0x50000, fill_l2=True)])
        h = make_hierarchy(pf)
        h.access(0, 1, 0x50000, 0)  # demand fills 0x50000, then candidate is redundant
        assert pf.stats.issued == 0

    def test_useful_prefetch_notified_once(self):
        pf = ScriptedPrefetcher()
        pf.queue.append([PrefetchCandidate(addr=0x50040, fill_l2=True)])
        h = make_hierarchy(pf)
        r = h.access(0, 1, 0x50000, 0)
        h.access(0, 1, 0x50040, r.ready_cycle + 1000)
        h.access(0, 1, 0x50040, r.ready_cycle + 20000)
        assert pf.useful == [0x50040]

    def test_prefetch_uses_dram_bandwidth(self):
        pf = ScriptedPrefetcher()
        pf.queue.append(
            [PrefetchCandidate(addr=0x50040 + i * 64, fill_l2=True) for i in range(8)]
        )
        h = make_hierarchy(pf)
        h.access(0, 1, 0x50000, 0)
        assert h.dram.stats.prefetch_accesses == 8

    def test_max_prefetches_per_trigger_enforced(self):
        pf = ScriptedPrefetcher()
        candidates = [
            PrefetchCandidate(addr=0x900000 + i * 64, fill_l2=True) for i in range(64)
        ]
        pf.queue.append(candidates)
        h = make_hierarchy(pf)
        h.access(0, 1, 0x50000, 0)
        assert pf.stats.issued <= h.config.max_prefetches_per_trigger

    def test_l2_eviction_notifies_prefetcher(self):
        pf = ScriptedPrefetcher()
        h = make_hierarchy(pf)
        l2 = h.l2[0]
        # Fill one L2 set beyond associativity with demand accesses.
        ways = l2.associativity
        base_block = l2.num_sets  # set 0, various tags
        cycle = 0
        for i in range(ways + 1):
            addr = (i * l2.num_sets) << 6
            cycle = h.access(0, 1, addr, cycle).ready_cycle + 1
        assert len(pf.evictions) >= 1

    def test_late_prefetch_pays_residual_latency(self):
        pf = ScriptedPrefetcher()
        pf.queue.append([PrefetchCandidate(addr=0x50040, fill_l2=True)])
        h = make_hierarchy(pf)
        r = h.access(0, 1, 0x50000, 0)
        # Demand immediately: the prefetch data has not arrived yet.
        early = h.access(0, 1, 0x50040, 1)
        assert early.ready_cycle > 1 + h.l1[0].latency + h.l2[0].latency


class TestPrefetchQueue:
    def test_queue_full_drops(self):
        pf = ScriptedPrefetcher()
        pf.queue.append(
            [PrefetchCandidate(addr=0x800000 + i * 64, fill_l2=True) for i in range(10)]
        )
        h = make_hierarchy(pf, config=HierarchyConfig(prefetch_queue_size=4))
        h.access(0, 1, 0x50000, 0)
        assert pf.stats.issued == 4
        assert h.prefetches_dropped[0] == 6

    def test_queue_drains_over_time(self):
        pf = ScriptedPrefetcher()
        h = make_hierarchy(pf, config=HierarchyConfig(prefetch_queue_size=2))
        pf.queue.append([PrefetchCandidate(addr=0x800000 + i * 64) for i in range(2)])
        r = h.access(0, 1, 0x50000, 0)
        # Much later, the in-flight prefetches completed; room again.
        pf.queue.append([PrefetchCandidate(addr=0x900000 + i * 64) for i in range(2)])
        h.access(0, 1, 0x51000, r.ready_cycle + 10_000)
        assert pf.stats.issued == 4
        assert h.prefetches_dropped[0] == 0

    def test_redundant_candidates_do_not_occupy_queue(self):
        pf = ScriptedPrefetcher()
        h = make_hierarchy(pf, config=HierarchyConfig(prefetch_queue_size=1))
        r = h.access(0, 1, 0x50000, 0)
        pf.queue.append(
            [PrefetchCandidate(addr=0x50000), PrefetchCandidate(addr=0x800000)]
        )
        h.access(0, 1, 0x50040, r.ready_cycle + 10_000)
        # The first candidate was redundant (resident), so the second
        # still fit in the single-entry queue.
        assert pf.stats.issued == 1
        assert h.prefetches_dropped[0] == 0


class TestMultiCoreSharing:
    def test_private_l2_per_core(self):
        h = MemoryHierarchy(num_cores=2)
        h.access(0, 1, 0x60000, 0)
        assert h.l2[0].contains(0x60000)
        assert not h.l2[1].contains(0x60000)

    def test_shared_llc(self):
        h = MemoryHierarchy(num_cores=2)
        r = h.access(0, 1, 0x60000, 0)
        result = h.access(1, 1, 0x60000, r.ready_cycle + 1)
        assert result.level == "llc"

    def test_shared_dram_contention(self):
        h = MemoryHierarchy(num_cores=2, dram_config=DRAMConfig(channels=1))
        h.access(0, 1, 0x60000, 0)
        h.access(1, 1, 0x90000, 0)
        assert h.dram.stats.total_queue_delay > 0

    def test_reset_stats_clears_everything(self):
        h = MemoryHierarchy(num_cores=2)
        h.access(0, 1, 0x60000, 0)
        h.reset_stats()
        assert h.l2[0].stats.demand_accesses == 0
        assert h.dram.stats.accesses == 0
