"""Tests for the hashed-perceptron branch predictor (§2.3 mechanism)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.weights import WEIGHT_MAX, WEIGHT_MIN
from repro.cpu.branch import (
    BranchPredictorConfig,
    HashedPerceptronBranchPredictor,
    _fold,
)


def run_pattern(predictor, outcomes, pc=0x400):
    """Drive one branch through a pattern; return trailing accuracy."""
    correct = []
    for taken in outcomes:
        correct.append(predictor.predict_and_update(pc, taken))
    tail = correct[len(correct) // 2 :]
    return sum(tail) / len(tail)


class TestFold:
    def test_short_value_unchanged(self):
        assert _fold(0x5A, 8) == 0x5A

    def test_folds_high_bits(self):
        assert _fold(0x1000_001, 32) == (0x001 ^ 0x1 ^ 0x0)  # XOR of 12-bit chunks

    def test_masks_to_requested_bits(self):
        assert _fold(0xFFFF, 4) == 0xF


class TestLearnsPatterns:
    def test_always_taken(self):
        predictor = HashedPerceptronBranchPredictor()
        assert run_pattern(predictor, [True] * 200) > 0.95

    def test_never_taken(self):
        predictor = HashedPerceptronBranchPredictor()
        assert run_pattern(predictor, [False] * 200) > 0.95

    def test_alternating_needs_history(self):
        """T,N,T,N… is unlearnable without history; trivial with it."""
        predictor = HashedPerceptronBranchPredictor()
        pattern = [bool(i % 2) for i in range(400)]
        assert run_pattern(predictor, pattern) > 0.9

    def test_loop_exit_pattern(self):
        """Nine taken then one not-taken: classic loop branch."""
        predictor = HashedPerceptronBranchPredictor()
        pattern = ([True] * 9 + [False]) * 60
        assert run_pattern(predictor, pattern) > 0.85

    def test_correlated_branches(self):
        """Branch B repeats branch A's last outcome."""
        predictor = HashedPerceptronBranchPredictor()
        rng = random.Random(7)
        correct_b = []
        last_a = False
        for _ in range(600):
            last_a = rng.random() < 0.5
            predictor.predict_and_update(0x100, last_a)
            correct_b.append(predictor.predict_and_update(0x200, last_a))
        tail = correct_b[300:]
        assert sum(tail) / len(tail) > 0.9

    def test_random_outcomes_near_chance(self):
        predictor = HashedPerceptronBranchPredictor()
        rng = random.Random(3)
        pattern = [rng.random() < 0.5 for _ in range(600)]
        assert run_pattern(predictor, pattern) < 0.75


class TestMechanism:
    def test_theta_guard_stops_training(self):
        predictor = HashedPerceptronBranchPredictor(BranchPredictorConfig(theta=5))
        for _ in range(200):
            predictor.predict_and_update(0x400, True)
        # Training stops once the sum clears theta: far fewer than 200.
        assert predictor.stats.updates < 50

    def test_stats_accuracy(self):
        predictor = HashedPerceptronBranchPredictor()
        run_pattern(predictor, [True] * 100)
        assert predictor.stats.predictions == 100
        assert 0.0 <= predictor.stats.accuracy <= 1.0

    def test_history_is_bounded(self):
        predictor = HashedPerceptronBranchPredictor(
            BranchPredictorConfig(history_bits=8)
        )
        for _ in range(100):
            predictor.predict_and_update(0x400, True)
        assert predictor._history < (1 << 8)

    def test_storage_bits(self):
        predictor = HashedPerceptronBranchPredictor()
        expected_tables = 1 + len(predictor.config.segments)
        assert predictor.storage_bits == expected_tables * 1024 * 5

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 1 << 20), st.booleans()), max_size=150))
    def test_weights_stay_in_range(self, branches):
        predictor = HashedPerceptronBranchPredictor()
        for pc, taken in branches:
            predictor.predict_and_update(pc, taken)
        for table in predictor.tables:
            assert all(WEIGHT_MIN <= w <= WEIGHT_MAX for w in table.weights())

    def test_reset_stats(self):
        predictor = HashedPerceptronBranchPredictor()
        predictor.predict_and_update(0x400, True)
        predictor.stats.reset()
        assert predictor.stats.predictions == 0
