"""End-to-end golden stats: the hot path must stay bit-identical.

``tests/golden/single_core_stats.json`` captures full single-core runs
(every counter in the stats snapshot, instructions, cycles, lookahead
depth) for two workloads under no prefetching, stock-ish SPP and PPF,
recorded before the hot-path optimization pass.  Any optimization that
changes RNG consumption order, arithmetic, or event ordering anywhere in
``O3Core.step -> MemoryHierarchy.access -> Cache -> SPP ->
PerceptronFilter`` shows up here as an exact-value mismatch.

Regenerate (only for a deliberate semantic change, with review):

    PYTHONPATH=src python tests/test_golden_stats.py --regenerate
"""

import json
import sys
from pathlib import Path

import pytest

from repro.sim.config import SimConfig
from repro.sim.single_core import run_single_core
from repro.workloads import find_workload

GOLDEN_PATH = Path(__file__).parent / "golden" / "single_core_stats.json"

#: The exact recording configuration; changing any of these invalidates
#: the golden file.
MEASURE_RECORDS = 2_000
WARMUP_RECORDS = 500
SEED = 3


def _run_cell(workload_name: str, scheme: str):
    config = SimConfig.quick(
        measure_records=MEASURE_RECORDS, warmup_records=WARMUP_RECORDS
    )
    return run_single_core(find_workload(workload_name), scheme, config, seed=SEED)


def _load_golden():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


@pytest.mark.parametrize("cell", sorted(_load_golden()))
def test_run_matches_golden(cell):
    workload_name, scheme = cell.split("/")
    expect = _load_golden()[cell]
    result = _run_cell(workload_name, scheme)
    assert result.instructions == expect["instructions"]
    assert result.cycles == expect["cycles"]
    assert result.average_lookahead_depth == pytest.approx(
        expect["average_lookahead_depth"], abs=0
    )
    mismatched = {
        stat: (result.stats.get(stat), value)
        for stat, value in expect["stats"].items()
        if result.stats.get(stat) != value
    }
    assert not mismatched, f"{cell}: {len(mismatched)} stat(s) diverged: {mismatched}"


def test_golden_covers_all_schemes():
    """The contract spans the whole pipeline: none, spp and ppf cells."""
    golden = _load_golden()
    schemes = {cell.split("/")[1] for cell in golden}
    assert {"none", "spp", "ppf"} <= schemes
    workloads = {cell.split("/")[0] for cell in golden}
    assert len(workloads) >= 2


def _regenerate():
    golden = {}
    for workload_name in ("605.mcf_s", "623.xalancbmk_s"):
        for scheme in ("none", "spp", "ppf"):
            result = _run_cell(workload_name, scheme)
            golden[f"{workload_name}/{scheme}"] = {
                "instructions": result.instructions,
                "cycles": result.cycles,
                "average_lookahead_depth": result.average_lookahead_depth,
                "stats": result.stats,
            }
    GOLDEN_PATH.write_text(json.dumps(golden, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(golden)} cells)")


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
