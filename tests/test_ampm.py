"""Tests for repro.prefetchers.ampm (AMPM and DA-AMPM)."""


from repro.memory.dram import ROW_BITS
from repro.prefetchers.ampm import AMPM, AMPMConfig, DAAMPM, DAAMPMConfig


def feed_offsets(pf, page, offsets, pc=0x400):
    out = []
    for i, offset in enumerate(offsets):
        out.extend(pf.train((page << 12) | (offset << 6), pc, False, i))
    return out


class TestAMPM:
    def test_no_prefetch_without_pattern(self):
        ampm = AMPM()
        assert feed_offsets(ampm, 1, [0]) == []
        assert feed_offsets(ampm, 1, [7]) == []

    def test_detects_unit_stride_after_two_confirmations(self):
        ampm = AMPM()
        candidates = feed_offsets(ampm, 1, [0, 1, 2])
        targets = {(c.addr >> 6) & 63 for c in candidates}
        assert 3 in targets

    def test_detects_larger_stride(self):
        ampm = AMPM()
        candidates = feed_offsets(ampm, 1, [0, 4, 8])
        targets = {(c.addr >> 6) & 63 for c in candidates}
        assert 12 in targets

    def test_detects_negative_stride(self):
        ampm = AMPM()
        candidates = feed_offsets(ampm, 1, [20, 16, 12])
        targets = {(c.addr >> 6) & 63 for c in candidates}
        assert 8 in targets

    def test_degree_limits_lookahead(self):
        ampm = AMPM(AMPMConfig(degree=1))
        candidates = feed_offsets(ampm, 1, [0, 1, 2])
        assert len(candidates) == 1

    def test_does_not_prefetch_already_accessed(self):
        ampm = AMPM()
        candidates = feed_offsets(ampm, 1, [0, 1, 2, 1, 2])
        targets = [(c.addr >> 6) & 63 for c in candidates]
        assert len(targets) == len(set(targets)) or all(t > 2 for t in targets)

    def test_zone_capacity_lru(self):
        ampm = AMPM(AMPMConfig(zones=2))
        feed_offsets(ampm, 1, [0, 1])
        feed_offsets(ampm, 2, [0, 1])
        feed_offsets(ampm, 3, [0, 1])  # evicts page 1's map
        assert len(ampm._maps) <= 2
        assert 1 not in ampm._maps

    def test_candidates_stay_in_page(self):
        ampm = AMPM(AMPMConfig(degree=8))
        candidates = feed_offsets(ampm, 1, [50, 55, 60])
        for cand in candidates:
            assert cand.addr >> 12 == 1


class TestDAAMPM:
    def test_batches_by_row_until_batch_size(self):
        da = DAAMPM(DAAMPMConfig(batch_size=4, max_age=100))
        released = feed_offsets(da, 1, [0, 1, 2])
        # One candidate pending (same row), not yet released.
        assert da.pending_count() + len(released) >= 1

    def test_aging_forces_release(self):
        da = DAAMPM(DAAMPMConfig(batch_size=100, max_age=2))
        feed_offsets(da, 1, [0, 1, 2])
        # Trigger more accesses so pending candidates age out.
        released = feed_offsets(da, 1, [3, 4, 5])
        assert released

    def test_release_clears_pending(self):
        da = DAAMPM(DAAMPMConfig(batch_size=1, max_age=100))
        released = feed_offsets(da, 1, [0, 1, 2])
        assert released
        assert da.pending_count() == 0

    def test_released_batch_shares_row(self):
        da = DAAMPM(DAAMPMConfig(batch_size=2, max_age=1000))
        released = feed_offsets(da, 1, [0, 1, 2, 3, 4])
        rows = {c.addr >> ROW_BITS for c in released}
        # Everything in page 1 shares one 8 KB row.
        assert len(rows) <= 1 or released == []

    def test_inherits_ampm_matching(self):
        da = DAAMPM(DAAMPMConfig(batch_size=1))
        candidates = feed_offsets(da, 1, [0, 2, 4])
        targets = {(c.addr >> 6) & 63 for c in candidates}
        assert 6 in targets
