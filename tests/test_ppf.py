"""Tests for repro.core.ppf (the PPF wrapper, §3–4 data path)."""


from repro.core.filter import FilterConfig
from repro.core.ppf import PPF, make_ppf_spp
from repro.prefetchers.base import PrefetchCandidate, Prefetcher
from repro.prefetchers.spp import SPP, SPPConfig


class OneShotPrefetcher(Prefetcher):
    """Suggests exactly the queued candidates on the next train call."""

    name = "oneshot"

    def __init__(self):
        super().__init__()
        self.next_candidates = []
        self.evictions = []

    def train(self, addr, pc, cache_hit, cycle):
        out = self.next_candidates
        self.next_candidates = []
        return out

    def on_eviction(self, addr, was_prefetch, was_used):
        super().on_eviction(addr, was_prefetch, was_used)
        self.evictions.append(addr)


def candidate(addr, confidence=80, depth=1, delta=1, signature=0x1, pc=0x400):
    return PrefetchCandidate(
        addr=addr,
        fill_l2=True,
        meta={
            "pc": pc,
            "delta": delta,
            "signature": signature,
            "confidence": confidence,
            "depth": depth,
        },
    )


def make_ppf(**kwargs):
    return PPF(underlying=OneShotPrefetcher(), **kwargs)


class TestDefaults:
    def test_default_underlying_is_aggressive_spp(self):
        ppf = PPF()
        assert isinstance(ppf.underlying, SPP)
        assert ppf.underlying.config.prefetch_threshold < 25

    def test_make_ppf_spp_factory(self):
        ppf = make_ppf_spp()
        assert ppf.name == "ppf"
        assert len(ppf.filter.features) == 9


class TestInferenceAndRecording:
    def test_accepted_candidate_recorded_in_prefetch_table(self):
        ppf = make_ppf()
        ppf.underlying.next_candidates = [candidate(0x9000)]
        out = ppf.train(0x8000, 0x400, False, 0)
        assert [c.addr for c in out] == [0x9000]
        assert ppf.prefetch_table.lookup(0x9000) is not None
        assert ppf.reject_table.lookup(0x9000) is None

    def test_rejected_candidate_recorded_in_reject_table(self):
        ppf = make_ppf(filter_config=FilterConfig(tau_hi=100, tau_lo=100))
        ppf.underlying.next_candidates = [candidate(0x9000)]
        out = ppf.train(0x8000, 0x400, False, 0)
        assert out == []
        assert ppf.reject_table.lookup(0x9000) is not None

    def test_reject_table_disabled(self):
        ppf = make_ppf(
            filter_config=FilterConfig(tau_hi=100, tau_lo=100), use_reject_table=False
        )
        ppf.underlying.next_candidates = [candidate(0x9000)]
        ppf.train(0x8000, 0x400, False, 0)
        assert ppf.reject_table.lookup(0x9000) is None

    def test_fill_level_follows_decision(self):
        # tau_hi high: sums of 0 fall into the LLC band.
        ppf = make_ppf(filter_config=FilterConfig(tau_hi=50, tau_lo=-50))
        ppf.underlying.next_candidates = [candidate(0x9000)]
        out = ppf.train(0x8000, 0x400, False, 0)
        assert len(out) == 1 and not out[0].fill_l2


class TestTrainingPaths:
    def test_demand_hit_trains_positive_and_consumes(self):
        ppf = make_ppf()
        ppf.underlying.next_candidates = [candidate(0x9000)]
        ppf.train(0x8000, 0x400, False, 0)
        before = ppf.filter.stats.positive_updates
        ppf.train(0x9000, 0x404, False, 1)  # the prefetched block is demanded
        assert ppf.filter.stats.positive_updates == before + 1
        assert ppf.prefetch_table.lookup(0x9000) is None

    def test_reject_table_false_negative_recovery(self):
        ppf = make_ppf(filter_config=FilterConfig(tau_hi=100, tau_lo=100))
        ppf.underlying.next_candidates = [candidate(0x9000)]
        ppf.train(0x8000, 0x400, False, 0)
        ppf.train(0x9000, 0x404, False, 1)  # demand proves the reject wrong
        assert ppf.filter.stats.positive_updates == 1
        assert ppf.reject_table.lookup(0x9000) is None

    def test_unused_prefetch_eviction_trains_negative(self):
        ppf = make_ppf()
        ppf.underlying.next_candidates = [candidate(0x9000)]
        ppf.train(0x8000, 0x400, False, 0)
        ppf.on_eviction(0x9000, was_prefetch=True, was_used=False)
        assert ppf.filter.stats.negative_updates == 1
        assert ppf.prefetch_table.lookup(0x9000) is None

    def test_used_prefetch_eviction_does_not_train(self):
        ppf = make_ppf()
        ppf.underlying.next_candidates = [candidate(0x9000)]
        ppf.train(0x8000, 0x400, False, 0)
        ppf.on_eviction(0x9000, was_prefetch=True, was_used=True)
        assert ppf.filter.stats.negative_updates == 0

    def test_non_prefetch_eviction_does_not_train(self):
        ppf = make_ppf()
        ppf.on_eviction(0x9000, was_prefetch=False, was_used=True)
        assert ppf.filter.stats.negative_updates == 0

    def test_displacement_trains_negative(self):
        ppf = make_ppf()
        # Two addresses with the same table index, different tags.
        first = 0x9000
        second = first + (1024 << 6)
        ppf.underlying.next_candidates = [candidate(first)]
        ppf.train(0x8000, 0x400, False, 0)
        ppf.underlying.next_candidates = [candidate(second)]
        ppf.train(0x8040, 0x400, False, 1)
        assert ppf.filter.stats.negative_updates == 1

    def test_displacement_training_can_be_disabled(self):
        ppf = make_ppf(train_on_displacement=False)
        first = 0x9000
        second = first + (1024 << 6)
        ppf.underlying.next_candidates = [candidate(first)]
        ppf.train(0x8000, 0x400, False, 0)
        ppf.underlying.next_candidates = [candidate(second)]
        ppf.train(0x8040, 0x400, False, 1)
        assert ppf.filter.stats.negative_updates == 0

    def test_resuggestion_does_not_train_negative(self):
        ppf = make_ppf()
        for cycle in range(3):
            ppf.underlying.next_candidates = [candidate(0x9000)]
            ppf.train(0x8000 + cycle * 64, 0x400, False, cycle)
        assert ppf.filter.stats.negative_updates == 0

    def test_learns_to_reject_consistent_junk(self):
        ppf = make_ppf()
        # Junk at confidence 3 repeatedly evicted unused -> rejected.
        # Once rejected there is no true-negative feedback (the paper's
        # design has none), so sums hover at the reject boundary: the
        # filter must reject the bulk and never re-admit junk to the L2.
        for i in range(40):
            addr = 0x100000 + i * 64
            ppf.underlying.next_candidates = [candidate(addr, confidence=3, depth=9)]
            accepted = ppf.train(0x8000 + i * 64, 0x400, False, i)
            if accepted:
                ppf.on_eviction(addr, was_prefetch=True, was_used=False)
        assert ppf.filter.stats.rejected > 30
        ppf.underlying.next_candidates = [
            candidate(0x900000, confidence=3, depth=9)
        ]
        out = ppf.train(0xF000, 0x400, False, 99)
        assert all(not c.fill_l2 for c in out)


class TestForwarding:
    def test_issue_and_useful_forwarded_to_underlying(self):
        spp = SPP(SPPConfig.aggressive())
        ppf = PPF(underlying=spp)
        cand = candidate(0x9000)
        ppf.on_prefetch_issued(cand)
        ppf.on_useful_prefetch(0x9000)
        assert spp.stats.issued == 1
        assert spp.stats.useful == 1
        assert ppf.stats.issued == 1

    def test_eviction_forwarded_to_underlying(self):
        ppf = make_ppf()
        ppf.on_eviction(0x9000, was_prefetch=True, was_used=False)
        assert ppf.underlying.evictions == [0x9000]

    def test_average_lookahead_depth_delegates(self):
        ppf = make_ppf_spp()
        assert ppf.average_lookahead_depth == 0.0

    def test_reset_stats_cascades(self):
        ppf = make_ppf()
        ppf.on_prefetch_issued(candidate(0x9000))
        ppf.underlying.next_candidates = [candidate(0xA000)]
        ppf.train(0x8000, 0x400, False, 0)
        ppf.reset_stats()
        assert ppf.stats.issued == 0
        assert ppf.underlying.stats.issued == 0
        assert ppf.filter.stats.inferences == 0


class TestRecorder:
    def test_recorder_sees_training_events(self):
        events = []
        ppf = PPF(
            underlying=OneShotPrefetcher(),
            recorder=lambda indices, positive: events.append((indices, positive)),
        )
        ppf.underlying.next_candidates = [candidate(0x9000)]
        ppf.train(0x8000, 0x400, False, 0)
        ppf.train(0x9000, 0x404, False, 1)
        assert len(events) == 1
        indices, positive = events[0]
        assert positive
        assert len(indices) == 9


class TestPCHistory:
    def test_pc_history_shifts(self):
        ppf = make_ppf()
        for pc in (0x10, 0x20, 0x30):
            ppf.train(0x8000, pc, False, 0)
        assert ppf._pcs == (0x30, 0x20, 0x10)
