"""The unified component registry (repro.registry).

Every pluggable component kind — prefetchers, replacement policies,
workload suites, feature catalogs — resolves through one catalog, and
every unknown-name error names the offender *and* the sorted known
names, for each kind.
"""

import pytest

from repro import registry
from repro.core.features import production_features
from repro.memory.replacement import make_policy
from repro.prefetchers.base import Prefetcher
from repro.registry import RegistryView, UnknownComponentError
from repro.sim.single_core import PREFETCHER_FACTORIES, make_prefetcher
from repro.workloads import find_workload, suite, suites


class TestCatalog:
    def test_all_kinds_registered(self):
        assert {"prefetcher", "replacement", "suite", "features"} <= set(registry.kinds())

    def test_prefetcher_names(self):
        assert {"none", "next-line", "stride", "spp", "bop", "ppf"} <= set(
            registry.names("prefetcher")
        )

    def test_names_sorted(self):
        for kind in registry.kinds():
            names = registry.names(kind)
            assert names == sorted(names)

    def test_create_prefetcher(self):
        assert isinstance(registry.create("prefetcher", "spp"), Prefetcher)

    def test_factories_view_is_live_mapping(self):
        # The legacy PREFETCHER_FACTORIES dict is now a live registry view.
        assert "ppf" in PREFETCHER_FACTORIES
        assert isinstance(PREFETCHER_FACTORIES, RegistryView)
        assert set(PREFETCHER_FACTORIES) == set(registry.names("prefetcher"))
        assert len(PREFETCHER_FACTORIES) == len(registry.names("prefetcher"))

    def test_register_and_unregister(self):
        @registry.register("prefetcher", "test-dummy")
        def make_dummy():
            return registry.create("prefetcher", "none")

        try:
            assert "test-dummy" in PREFETCHER_FACTORIES
            assert isinstance(make_prefetcher("test-dummy"), Prefetcher)
        finally:
            registry.unregister("prefetcher", "test-dummy")
        assert "test-dummy" not in PREFETCHER_FACTORIES


class TestErrorMessages:
    """One test per component kind: unknown name + sorted known names."""

    def test_unknown_prefetcher(self):
        with pytest.raises(UnknownComponentError) as excinfo:
            make_prefetcher("sppp")
        message = str(excinfo.value)
        assert "sppp" in message
        for name in registry.names("prefetcher"):
            assert name in message

    def test_unknown_replacement_policy(self):
        with pytest.raises(UnknownComponentError) as excinfo:
            make_policy("belady")
        message = str(excinfo.value)
        assert "belady" in message
        for name in ("fifo", "lru", "random"):
            assert name in message

    def test_unknown_suite(self):
        with pytest.raises(UnknownComponentError) as excinfo:
            suite("spec2042")
        message = str(excinfo.value)
        assert "spec2042" in message
        for name in suites():
            assert name in message

    def test_unknown_feature_catalog(self):
        with pytest.raises(UnknownComponentError) as excinfo:
            registry.create("features", "experimental")
        message = str(excinfo.value)
        assert "experimental" in message
        for name in registry.names("features"):
            assert name in message

    def test_unknown_workload(self):
        with pytest.raises(UnknownComponentError) as excinfo:
            find_workload("999.nonesuch")
        message = str(excinfo.value)
        assert "999.nonesuch" in message
        assert "605.mcf_s" in message

    def test_unknown_kind(self):
        with pytest.raises(UnknownComponentError) as excinfo:
            registry.get("branch-predictor", "tage")
        assert "branch-predictor" in str(excinfo.value)

    def test_known_names_sorted_in_message(self):
        with pytest.raises(UnknownComponentError) as excinfo:
            make_prefetcher("nope")
        message = str(excinfo.value)
        positions = [message.index(name) for name in registry.names("prefetcher")]
        assert positions == sorted(positions)


class TestBackwardCompatibility:
    def test_unknown_error_is_keyerror_and_valueerror(self):
        # Legacy callers caught KeyError (prefetchers) or ValueError
        # (replacement policies); both must keep working.
        with pytest.raises(KeyError):
            make_prefetcher("nope")
        with pytest.raises(ValueError):
            make_policy("belady")

    def test_error_str_not_repr_quoted(self):
        # KeyError.__str__ reprs its arg; the override must keep the
        # message readable.
        err = UnknownComponentError("unknown prefetcher 'x'")
        assert str(err) == "unknown prefetcher 'x'"


class TestSuitesAndFeatures:
    def test_suite_resolution(self):
        names = suites()
        assert "spec2017" in names and "cloudsuite" in names
        assert len(suite("spec2017")) > 0

    def test_intensive_suites_are_subsets(self):
        full = {spec.name for spec in suite("spec2017")}
        intensive = {spec.name for spec in suite("spec2017-intensive")}
        assert intensive < full

    def test_feature_catalog_resolution(self):
        ours = registry.create("features", "production")
        assert [f.name for f in ours] == [f.name for f in production_features()]
