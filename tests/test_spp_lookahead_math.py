"""Focused tests on SPP's path-confidence arithmetic (§2.1).

These pin the `P_d = alpha * C_d * P_{d-1}` compounding behaviour and
its interaction with the thresholds — the mechanics PPF replaces.
"""


from repro.prefetchers.spp import SPP, SPPConfig


def warm_stream(spp, page, length=40):
    """Teach a unit-stride pattern; return the last trigger's candidates."""
    candidates = []
    for offset in range(length):
        candidates = spp.train((page << 12) | (offset << 6), 0x400, False, offset)
    return candidates


def force_alpha(spp, percent):
    """Set the global accuracy counters to an exact percentage."""
    spp._c_total = 100
    spp._c_useful = percent


class TestPathConfidence:
    def test_confidence_decreases_with_depth(self):
        spp = SPP(SPPConfig(max_depth=8, prefetch_threshold=1, lookahead_threshold=1))
        force_alpha(spp, 80)
        candidates = warm_stream(spp, page=1)
        by_depth = {}
        for cand in candidates:
            by_depth.setdefault(cand.meta["depth"], []).append(cand.meta["confidence"])
        depths = sorted(by_depth)
        assert len(depths) >= 2
        series = [max(by_depth[d]) for d in depths]
        assert all(a >= b for a, b in zip(series, series[1:]))

    def test_low_alpha_cuts_depth(self):
        def max_depth_at(alpha):
            spp = SPP(SPPConfig(max_depth=12, prefetch_threshold=5, lookahead_threshold=5))
            force_alpha(spp, alpha)
            candidates = warm_stream(spp, page=1)
            return max((c.meta["depth"] for c in candidates), default=0)

        assert max_depth_at(95) > max_depth_at(30)

    def test_depth_one_ignores_alpha(self):
        """Non-speculative prefetches use C_d only (P_0 = 1, §2.1)."""
        spp = SPP(SPPConfig(prefetch_threshold=50))
        force_alpha(spp, 1)  # terrible global accuracy
        candidates = warm_stream(spp, page=1)
        assert any(c.meta["depth"] == 1 for c in candidates)

    def test_thresholds_gate_emission(self):
        spp_strict = SPP(SPPConfig(prefetch_threshold=99, lookahead_threshold=99))
        strict = warm_stream(spp_strict, page=1)
        spp_lax = SPP(SPPConfig(prefetch_threshold=5, lookahead_threshold=5))
        lax = warm_stream(spp_lax, page=1)
        assert len(lax) >= len(strict)

    def test_fill_threshold_partitions_by_confidence(self):
        spp = SPP(SPPConfig(prefetch_threshold=5, lookahead_threshold=5, fill_threshold=60,
                            max_depth=10))
        force_alpha(spp, 85)
        candidates = warm_stream(spp, page=1)
        for cand in candidates:
            assert cand.fill_l2 == (cand.meta["confidence"] >= 60)

    def test_compound_off_keeps_confidence_flat(self):
        spp = SPP(SPPConfig.fixed_depth(8))
        force_alpha(spp, 10)  # would kill a compounding walk instantly
        candidates = warm_stream(spp, page=1)
        assert max((c.meta["depth"] for c in candidates), default=0) >= 6


class TestMultiDeltaEntries:
    def teach_mixed_deltas(self, spp):
        """Two interleaved delta behaviours under similar signatures.

        Returns every candidate emitted during teaching.
        """
        emitted = []
        offset = 0
        for i in range(120):
            delta = 1 if i % 4 else 3
            offset = (offset + delta) % 60
            emitted.extend(spp.train((5 << 12) | (offset << 6), 0x400, False, i))
        return emitted

    def test_multiple_deltas_emitted_when_aggressive(self):
        spp = SPP(SPPConfig(prefetch_threshold=1, lookahead_threshold=1))
        emitted = self.teach_mixed_deltas(spp)
        deltas = {c.meta["delta"] for c in emitted}
        # aggressive tuning exposes secondary deltas to the filter
        assert len(deltas) >= 2

    def test_dominant_delta_has_higher_confidence(self):
        spp = SPP(SPPConfig(prefetch_threshold=1, lookahead_threshold=1))
        emitted = self.teach_mixed_deltas(spp)
        depth1 = [c for c in emitted if c.meta["depth"] == 1]
        by_delta = {}
        for cand in depth1:
            by_delta.setdefault(cand.meta["delta"], []).append(cand.meta["confidence"])
        if 1 in by_delta and 3 in by_delta:
            # delta 1 occurs 3x as often as delta 3 in the teaching mix
            assert max(by_delta[1]) >= max(by_delta[3])
