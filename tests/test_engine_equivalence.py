"""Scalar/batched engine equivalence: one contract, two implementations.

The engine seam (``repro.engine``) promises that ``batched`` is
*bit-identical* with ``scalar`` — not approximately equal: the fused
kernel replays the exact scalar event order, so every counter in the
stats snapshot must match to the last unit (see docs/performance.md,
"Batched engine").  This suite enforces the contract four ways:

* every golden-stats cell (none/spp/ppf × two workloads) re-run under
  ``--engine batched`` must match the committed golden file exactly —
  the same oracle the scalar path is pinned to;
* checkpoints cross engines: a snapshot taken under one engine restores
  under the other and finishes bit-identical with a straight run, in
  both directions;
* the engine chunk size and telemetry instrumentation are pure
  throughput/observability knobs — neither may perturb results;
* the vectorized feature/decision primitives agree index-for-index and
  code-for-code with the scalar filter.

The final test is the performance gate: ``end_to_end_single_core``
under the batched engine must beat the committed pre-PR baseline by at
least 3×.  It is skipped under CI (shared hosts make wall-clock gates
flaky there) but enforced locally.
"""

import dataclasses
import json
import os
from pathlib import Path

import pytest

from repro.bench.micro import BENCHMARKS, run_benchmarks
from repro.bench.report import default_baseline_path, load_baseline
from repro.core.features import FeatureContext, production_index_batch
from repro.core.filter import DECISION_BY_CODE
from repro.engine.batched import BatchedEngine, _select_mode
from repro.sim.config import SimConfig
from repro.sim.single_core import SingleCoreSim, run_single_core
from repro.telemetry import Telemetry, activate
from repro.workloads import find_workload

GOLDEN_PATH = Path(__file__).parent / "golden" / "single_core_stats.json"

#: Must mirror tests/test_golden_stats.py — same cells, same oracle.
MEASURE_RECORDS = 2_000
WARMUP_RECORDS = 500
SEED = 3


def _config(engine: str = "scalar", **overrides) -> SimConfig:
    config = SimConfig.quick(
        measure_records=MEASURE_RECORDS, warmup_records=WARMUP_RECORDS
    )
    return dataclasses.replace(config, engine=engine, **overrides)


def _load_golden():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


def _assert_results_identical(result, other, context: str) -> None:
    assert result.instructions == other.instructions, context
    assert result.cycles == other.cycles, context
    assert result.average_lookahead_depth == other.average_lookahead_depth, context
    mismatched = {
        stat: (result.stats.get(stat), other.stats.get(stat))
        for stat in set(result.stats) | set(other.stats)
        if result.stats.get(stat) != other.stats.get(stat)
    }
    assert not mismatched, f"{context}: {len(mismatched)} stat(s): {mismatched}"


class TestGoldenCellsUnderBothEngines:
    """The batched engine answers to the same oracle as the scalar one.

    Tolerance is *zero*: the seam contract documents bit-identity, so a
    single off-by-one counter is a real kernel bug, not noise.
    """

    @pytest.mark.parametrize("cell", sorted(_load_golden()))
    @pytest.mark.parametrize("engine", ["scalar", "batched"])
    def test_cell_matches_golden(self, cell, engine):
        workload_name, scheme = cell.split("/")
        expect = _load_golden()[cell]
        result = run_single_core(
            find_workload(workload_name), scheme, _config(engine), seed=SEED
        )
        assert result.instructions == expect["instructions"], (cell, engine)
        assert result.cycles == expect["cycles"], (cell, engine)
        assert result.average_lookahead_depth == pytest.approx(
            expect["average_lookahead_depth"], abs=0
        )
        mismatched = {
            stat: (result.stats.get(stat), value)
            for stat, value in expect["stats"].items()
            if result.stats.get(stat) != value
        }
        assert not mismatched, (
            f"{cell} under {engine}: {len(mismatched)} stat(s) diverged: {mismatched}"
        )

    def test_ppf_cell_uses_the_fused_kernel(self):
        """Guard against the fused path silently falling back to generic
        (the golden comparison would still pass, but the 3× gate is won
        by the fused kernel — losing it is a performance regression)."""
        sim = SingleCoreSim(find_workload("605.mcf_s"), "ppf", _config("batched"), seed=SEED)
        assert isinstance(sim._engine, BatchedEngine)
        assert _select_mode(sim) == "ppf"
        spp_sim = SingleCoreSim(find_workload("605.mcf_s"), "spp", _config("batched"), seed=SEED)
        assert _select_mode(spp_sim) == "generic"


class TestCrossEngineCheckpoints:
    """``state_dict`` is engine-portable: the seam contract requires all
    state flushed when ``advance`` returns, so a snapshot taken under
    either engine restores under the other at the same record boundary.
    """

    @pytest.mark.parametrize(
        "warmup_engine,resume_engine",
        [("scalar", "batched"), ("batched", "scalar")],
    )
    def test_round_trip_finishes_bit_identical(self, warmup_engine, resume_engine):
        workload = find_workload("623.xalancbmk_s")
        reference = run_single_core(workload, "ppf", _config("scalar"), seed=SEED)

        first = SingleCoreSim(workload, "ppf", _config(warmup_engine), seed=SEED)
        first.warmup()
        state = first.state_dict()

        second = SingleCoreSim(workload, "ppf", _config(resume_engine), seed=SEED)
        second.load_state(state)
        second.begin_measurement()
        second.measure()
        _assert_results_identical(
            second.result(), reference, f"{warmup_engine}->{resume_engine}"
        )

    def test_mid_measure_snapshot_crosses_engines(self):
        """Chunk-interior boundaries too: a batched sim snapshotted after
        an odd number of measured records resumes scalar, and vice versa
        back — two hops, still bit-identical."""
        workload = find_workload("605.mcf_s")
        reference = run_single_core(workload, "ppf", _config("scalar"), seed=SEED)

        sim = SingleCoreSim(workload, "ppf", _config("batched"), seed=SEED)
        sim.warmup()
        sim.begin_measurement()
        sim.advance(777)
        hop = SingleCoreSim(workload, "ppf", _config("scalar"), seed=SEED)
        hop.load_state(sim.state_dict())
        hop.advance(400)
        final = SingleCoreSim(workload, "ppf", _config("batched"), seed=SEED)
        final.load_state(hop.state_dict())
        final.measure()
        _assert_results_identical(final.result(), reference, "batched->scalar->batched")


class TestKnobsDoNotPerturbResults:
    def test_engine_chunk_is_a_pure_throughput_knob(self):
        workload = find_workload("623.xalancbmk_s")
        reference = run_single_core(workload, "ppf", _config("batched"), seed=SEED)
        for chunk in (1, 63, 500):
            result = run_single_core(
                workload, "ppf", _config("batched", engine_chunk=chunk), seed=SEED
            )
            _assert_results_identical(result, reference, f"engine_chunk={chunk}")

    def test_probe_sampling_shim_is_read_only(self):
        """Instrumented batched runs sample probes at chunk boundaries;
        every non-telemetry stat must match the uninstrumented run."""
        workload = find_workload("605.mcf_s")
        plain = run_single_core(workload, "ppf", _config("batched"), seed=SEED)
        session = Telemetry(probe_every=300)
        with activate(session):
            probed = run_single_core(workload, "ppf", _config("batched"), seed=SEED)
        assert any(key.startswith("telemetry.") for key in probed.stats)
        assert plain.instructions == probed.instructions
        assert plain.cycles == probed.cycles
        mismatched = {
            stat: (plain.stats.get(stat), probed.stats.get(stat))
            for stat in plain.stats
            if plain.stats.get(stat) != probed.stats.get(stat)
        }
        assert not mismatched, mismatched


class TestVectorizedPrimitives:
    """The numpy feature/decision twins match the scalar filter exactly."""

    def _contexts(self):
        out = []
        value = 0x9E3779B97F4A7C15
        for step in range(64):
            value = (value * 6364136223846793005 + 1442695040888963407) % (1 << 64)
            bits = value
            out.append(
                FeatureContext(
                    candidate_addr=(bits >> 3) % (1 << 48),
                    trigger_addr=(bits >> 7) % (1 << 48),
                    pc=0x400000 + (bits % 4096) * 4,
                    pcs=(
                        0x400000 + ((bits >> 12) % 4096) * 4,
                        0x400000 + ((bits >> 24) % 4096) * 4,
                        0x400000 + ((bits >> 36) % 4096) * 4,
                    ),
                    delta=(bits % 129) - 64,
                    depth=bits % 12,
                    signature=bits % 4096,
                    last_signature=(bits >> 5) % 4096,
                    confidence=bits % 101,
                )
            )
        return out

    def _filter(self):
        from repro.sim.single_core import make_prefetcher

        ppf = make_prefetcher("ppf")
        return ppf.engine_view()[1]

    def test_production_index_batch_matches_feature_indices(self):
        filt = self._filter()
        contexts = self._contexts()
        matrix = production_index_batch(
            [c.candidate_addr for c in contexts],
            [c.trigger_addr for c in contexts],
            [c.pc for c in contexts],
            [c.pcs[0] for c in contexts],
            [c.pcs[1] for c in contexts],
            [c.pcs[2] for c in contexts],
            [c.delta for c in contexts],
            [c.depth for c in contexts],
            [c.signature for c in contexts],
            [c.confidence for c in contexts],
        )
        for column, ctx in enumerate(contexts):
            assert tuple(matrix[:, column].tolist()) == filt.feature_indices(ctx)

    def test_decide_batch_matches_decide(self):
        filt = self._filter()
        contexts = self._contexts()
        # Push some weights off zero so the codes actually spread.
        for ctx in contexts[::3]:
            filt.train(filt.feature_indices(ctx), positive=(ctx.depth % 2 == 0))
        matrix = production_index_batch(
            [c.candidate_addr for c in contexts],
            [c.trigger_addr for c in contexts],
            [c.pc for c in contexts],
            [c.pcs[0] for c in contexts],
            [c.pcs[1] for c in contexts],
            [c.pcs[2] for c in contexts],
            [c.delta for c in contexts],
            [c.depth for c in contexts],
            [c.signature for c in contexts],
            [c.confidence for c in contexts],
        )
        codes, totals = filt.decide_batch(matrix)
        for column, ctx in enumerate(contexts):
            code, total, _ = filt.decide(ctx)
            assert codes[column] == code, ctx
            assert totals[column] == total, ctx
            assert DECISION_BY_CODE[codes[column]] is DECISION_BY_CODE[code]


@pytest.mark.skipif(
    os.environ.get("CI") is not None,
    reason="wall-clock gate is advisory under CI (shared hosts); enforced locally",
)
def test_batched_engine_is_at_least_3x_over_committed_baseline():
    """``end_to_end_single_core`` under ``--engine batched`` vs the
    committed pre-PR baseline (benchmarks/baseline_pre_pr.json).

    Best-of-N with whole-comparison retries, same noise discipline as
    tests/test_telemetry_overhead.py.  The committed baseline was
    recorded on the pre-optimization scalar path, so the batched engine
    clears 3× with margin on any comparable host.
    """
    assert "end_to_end_single_core_batched" in BENCHMARKS
    baseline = load_baseline(default_baseline_path())
    assert baseline is not None, "committed baseline missing"
    base_ns = baseline["results"]["end_to_end_single_core"]["ns_per_op"]
    speedups = []
    for _ in range(3):
        (result,) = run_benchmarks(
            ["end_to_end_single_core_batched"], scale=0.3, repeats=3
        )
        assert result.ns_per_op > 0
        speedup = base_ns / result.ns_per_op
        speedups.append(speedup)
        if speedup >= 3.0:
            return
    pytest.fail(
        f"batched engine missed the 3x gate in every attempt: "
        f"speedups {[f'{s:.2f}x' for s in speedups]} vs baseline "
        f"{base_ns:.0f} ns/op"
    )


@pytest.mark.skipif(
    os.environ.get("CI") is not None,
    reason="wall-clock gate is advisory under CI (shared hosts); enforced locally",
)
def test_batched_multi_core_is_at_least_2_5x_over_scalar():
    """``end_to_end_multi_core_batched`` vs the live scalar multi-core
    engine, measured back-to-back in the same process.

    Unlike the single-core gate (which compares against the committed
    pre-PR baseline and clears 3x with ~20% margin), the multi-core
    gate's margin over a *recorded* baseline is thin enough that the
    ambient slowdown of a long-lived test process — allocator and GC
    state after hundreds of prior tests — can eat it.  Pairing both
    engines in one ``run_benchmarks`` call cancels that slowdown from
    the ratio, the same discipline tests/test_telemetry_overhead.py
    uses for its overhead bound.  The committed
    ``end_to_end_multi_core`` baseline entry still anchors the
    ``python -m repro bench`` regression comparison; here we assert it
    exists and was recorded on the same op count so the two views stay
    comparable.  Runs at scale 1.0: the multi-core benchmark's fixed
    per-run setup is a larger fraction of a scaled-down run, which
    would understate the steady-state speedup.
    """
    names = ["end_to_end_multi_core", "end_to_end_multi_core_batched"]
    assert all(name in BENCHMARKS for name in names)
    baseline = load_baseline(default_baseline_path())
    assert baseline is not None, "committed baseline missing"
    base = baseline["results"]["end_to_end_multi_core"]
    assert base["ops"] == BENCHMARKS["end_to_end_multi_core"][1]
    speedups = []
    for _ in range(3):
        results = {
            r.name: r for r in run_benchmarks(names, scale=1.0, repeats=3)
        }
        batched = results["end_to_end_multi_core_batched"].best_wall_s
        scalar = results["end_to_end_multi_core"].best_wall_s
        assert batched > 0
        speedup = scalar / batched
        speedups.append(speedup)
        if speedup >= 2.5:
            return
    pytest.fail(
        f"batched multi-core engine missed the 2.5x gate in every attempt: "
        f"speedups {[f'{s:.2f}x' for s in speedups]} vs the live scalar "
        f"engine"
    )
