"""Tests for repro.prefetchers.vldp (Variable Length Delta Prefetcher)."""


from repro.prefetchers.vldp import VLDP, VLDPConfig


def feed(vldp, page, offsets, pc=0x400):
    out = []
    for i, offset in enumerate(offsets):
        out.extend(vldp.train((page << 12) | (offset << 6), pc, False, i))
    return out


class TestLearning:
    def test_no_prediction_cold(self):
        vldp = VLDP()
        assert feed(vldp, 1, [0, 1]) == []

    def test_learns_unit_delta(self):
        vldp = VLDP()
        candidates = feed(vldp, 1, [0, 1, 2, 3])
        targets = {(c.addr >> 6) & 63 for c in candidates}
        assert 4 in targets or 3 in targets

    def test_learns_repeating_delta_pattern(self):
        """The variable-length tables must learn alternating deltas."""
        vldp = VLDP()
        offsets = [0]
        for _ in range(12):
            offsets.append(offsets[-1] + (1 if len(offsets) % 2 else 3))
        candidates = feed(vldp, 1, offsets)
        assert candidates  # pattern (1,3,1,3,...) becomes predictable

    def test_longest_history_wins(self):
        """Order-2 history disambiguates what order-1 cannot."""
        vldp = VLDP(VLDPConfig(degree=1))
        # Sequence: deltas 1,2,1,2,... After delta 1 comes 2 and after
        # 2 comes 1 — order-1 suffices here, but build the history and
        # check the prediction matches the alternation.
        offsets = [0, 1, 3, 4, 6, 7, 9, 10, 12]
        feed(vldp, 1, offsets)
        candidates = feed(vldp, 1, [13])  # last delta was 1 -> predict +2
        assert [(c.addr >> 6) & 63 for c in candidates] == [15]

    def test_lookahead_degree(self):
        vldp = VLDP(VLDPConfig(degree=3))
        candidates = feed(vldp, 1, range(10))
        depths = {c.meta["depth"] for c in candidates}
        assert max(depths) <= 3
        assert len(depths) > 1

    def test_first_level_fills_l2_deeper_fills_llc(self):
        vldp = VLDP(VLDPConfig(degree=3))
        candidates = feed(vldp, 1, range(10))
        for cand in candidates:
            assert cand.fill_l2 == (cand.meta["depth"] == 1)

    def test_candidates_stay_in_page(self):
        vldp = VLDP(VLDPConfig(degree=8))
        candidates = feed(vldp, 3, range(55, 64))
        for cand in candidates:
            assert cand.addr >> 12 == 3

    def test_repeated_offset_ignored(self):
        vldp = VLDP()
        assert feed(vldp, 1, [5, 5, 5]) == []


class TestOPT:
    def test_new_page_first_delta_prediction(self):
        vldp = VLDP()
        # Teach the OPT: pages starting at offset 0 continue with +2.
        for page in range(2, 8):
            feed(vldp, page, [0, 2, 4])
        candidates = feed(vldp, 100, [0])  # brand-new page, first access
        assert [(c.addr >> 6) & 63 for c in candidates] == [2]

    def test_opt_misprediction_decays(self):
        vldp = VLDP()
        for page in range(2, 6):
            feed(vldp, page, [0, 2])
        for page in range(6, 12):
            feed(vldp, page, [0, 5])
        # After enough contradiction, the OPT entry retrains to +5.
        candidates = feed(vldp, 100, [0])
        targets = [(c.addr >> 6) & 63 for c in candidates]
        assert targets in ([5], [])


class TestCapacity:
    def test_dhb_is_bounded(self):
        vldp = VLDP(VLDPConfig(dhb_entries=4))
        for page in range(20):
            feed(vldp, page, [0, 1])
        assert len(vldp._dhb) <= 4

    def test_dpt_is_bounded(self):
        vldp = VLDP(VLDPConfig(dpt_entries=8))
        import random

        rng = random.Random(0)
        offsets = [rng.randrange(64) for _ in range(300)]
        feed(vldp, 1, offsets)
        assert all(size <= 8 for size in vldp.dpt_sizes())

    def test_registered_in_factory(self):
        from repro.sim.single_core import make_prefetcher

        assert isinstance(make_prefetcher("vldp"), VLDP)
