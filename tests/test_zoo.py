"""The prefetcher zoo: checkpoints, golden stats, the filter seam.

Three contracts pinned here:

* every zoo prefetcher (and every ``filtered:<inner>`` composition)
  checkpoints bit-identically — a mid-measurement ``state_dict``
  round-tripped through JSON (the cross-process wire format) and loaded
  into a fresh sim must finish with exactly the stats of an
  uninterrupted run;
* ``filtered:spp`` *is* ``ppf`` — the seam reproduces the committed
  ``tests/golden/single_core_stats.json`` ppf cells bit for bit;
* ``tests/golden/zoo_stats.json`` pins full runs of the zoo prefetchers
  themselves.  Regenerate only for a deliberate semantic change:

      PYTHONPATH=src python tests/test_zoo.py --regenerate
"""

import json
import sys
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.checkpoint.snapshot import SnapshotError
from repro.registry import UnknownComponentError
from repro.sim.config import SimConfig
from repro.sim.single_core import SingleCoreSim, make_prefetcher, run_single_core
from repro.sim.suite import SuiteRunner
from repro.workloads import find_workload
from repro.zoo import (
    FILTER_SPEC_PREFIX,
    Pythia,
    TwoLevelFilter,
    make_filtered,
    validate_prefetcher_spec,
)

GOLDEN_PATH = Path(__file__).parent / "golden" / "zoo_stats.json"
PPF_GOLDEN_PATH = Path(__file__).parent / "golden" / "single_core_stats.json"

#: Must match test_golden_stats.py so the ppf-equivalence check can pin
#: ``filtered:spp`` against the *existing* golden cells.
MEASURE_RECORDS = 2_000
WARMUP_RECORDS = 500
SEED = 3

ZOO_SPECS = [
    "pythia",
    "two-level",
    "filtered:spp",
    "filtered:pythia",
    "filtered:two-level",
]


def _config(measure=MEASURE_RECORDS, warmup=WARMUP_RECORDS):
    return SimConfig.quick(measure_records=measure, warmup_records=warmup)


def _run_cell(workload_name, scheme, config=None):
    return run_single_core(
        find_workload(workload_name), scheme, config or _config(), seed=SEED
    )


# -- the seam itself -----------------------------------------------------------


class TestFilterSeam:
    def test_make_prefetcher_parses_filtered_specs(self):
        pf = make_prefetcher("filtered:pythia")
        assert pf.name == "filtered:pythia"
        assert pf.inner_name == "pythia"
        assert isinstance(pf.underlying, Pythia)

    def test_filtered_spp_builds_the_ppf_object_graph(self):
        from repro.prefetchers.spp import SPP, SPPConfig

        seam = make_filtered("spp")
        reference = make_prefetcher("ppf")
        assert isinstance(seam.underlying, SPP)
        assert seam.underlying.config == SPPConfig.aggressive()
        assert seam.underlying.config == reference.underlying.config
        assert seam.filter.config == reference.filter.config

    def test_filtered_two_level_disables_internal_filter(self):
        pf = make_filtered("two-level")
        assert isinstance(pf.underlying, TwoLevelFilter)
        assert not pf.underlying.config.internal_filter

    def test_validate_accepts_known_specs(self):
        for spec in ["spp", "none", *ZOO_SPECS]:
            assert validate_prefetcher_spec(spec) == spec

    def test_validate_suggests_close_matches(self):
        with pytest.raises(UnknownComponentError) as err:
            validate_prefetcher_spec("filtered:sp")
        assert "did you mean 'spp'" in str(err.value)
        with pytest.raises(UnknownComponentError) as err:
            validate_prefetcher_spec("pythi")
        assert "did you mean 'pythia'" in str(err.value)

    def test_validate_rejects_empty_and_nested_specs(self):
        with pytest.raises(UnknownComponentError):
            validate_prefetcher_spec("filtered:")
        with pytest.raises(UnknownComponentError, match="do not nest"):
            validate_prefetcher_spec("filtered:filtered:spp")

    def test_sweep_validates_schemes_eagerly(self, tmp_path):
        runner = SuiteRunner(_config(measure=500, warmup=100), seed=SEED, jobs=1)
        with pytest.raises(UnknownComponentError, match="did you mean"):
            runner.sweep([find_workload("605.mcf_s")], ["filtered:pythi"])


# -- checkpoint round-trips ----------------------------------------------------


@pytest.mark.parametrize("spec", ZOO_SPECS)
def test_checkpoint_roundtrip_bit_identical(spec):
    """state_dict -> JSON -> fresh sim -> load_state -> same finish."""
    config = _config(measure=1_500, warmup=400)
    workload = find_workload("605.mcf_s")

    straight = SingleCoreSim(workload, spec, config, seed=SEED)
    straight.warmup()
    straight.begin_measurement()
    straight.measure()
    expect = straight.result()

    half = SingleCoreSim(workload, spec, config, seed=SEED)
    half.warmup()
    half.begin_measurement()
    half.advance(700)
    payload = json.loads(json.dumps(half.state_dict()))

    resumed = SingleCoreSim(workload, spec, config, seed=SEED)
    resumed.load_state(payload)
    resumed.measure()
    got = resumed.result()

    assert got.instructions == expect.instructions
    assert got.cycles == expect.cycles
    assert got.stats == expect.stats


def test_checkpoint_rejects_mismatched_spec():
    config = _config(measure=500, warmup=100)
    workload = find_workload("605.mcf_s")
    donor = SingleCoreSim(workload, "filtered:pythia", config, seed=SEED)
    donor.warmup()
    state = donor.state_dict()
    other = SingleCoreSim(workload, "filtered:two-level", config, seed=SEED)
    with pytest.raises(SnapshotError):
        other.load_state(state)


# -- golden pins ---------------------------------------------------------------


def _load_golden(path):
    with path.open() as handle:
        return json.load(handle)


@pytest.mark.parametrize("workload_name", ["605.mcf_s", "623.xalancbmk_s"])
def test_filtered_spp_reproduces_ppf_golden(workload_name):
    """The seam composition is the paper configuration, bit for bit."""
    expect = _load_golden(PPF_GOLDEN_PATH)[f"{workload_name}/ppf"]
    result = _run_cell(workload_name, "filtered:spp")
    assert result.instructions == expect["instructions"]
    assert result.cycles == expect["cycles"]
    assert result.average_lookahead_depth == pytest.approx(
        expect["average_lookahead_depth"], abs=0
    )
    mismatched = {
        stat: (result.stats.get(stat), value)
        for stat, value in expect["stats"].items()
        if result.stats.get(stat) != value
    }
    assert not mismatched, f"{len(mismatched)} stat(s) diverged: {mismatched}"


@pytest.mark.parametrize(
    "cell", sorted(_load_golden(GOLDEN_PATH)) if GOLDEN_PATH.exists() else []
)
def test_zoo_run_matches_golden(cell):
    workload_name, scheme = cell.split("/")
    expect = _load_golden(GOLDEN_PATH)[cell]
    result = _run_cell(workload_name, scheme)
    assert result.instructions == expect["instructions"]
    assert result.cycles == expect["cycles"]
    mismatched = {
        stat: (result.stats.get(stat), value)
        for stat, value in expect["stats"].items()
        if result.stats.get(stat) != value
    }
    assert not mismatched, f"{cell}: {len(mismatched)} stat(s) diverged: {mismatched}"


def test_zoo_golden_covers_the_zoo():
    schemes = {cell.split("/")[1] for cell in _load_golden(GOLDEN_PATH)}
    assert {"pythia", "two-level"} <= schemes


# -- behaviour -----------------------------------------------------------------


def test_pythia_learns_and_reports_rewards():
    result = _run_cell("603.bwaves_s", "pythia")
    stats = result.stats
    rewarded = (
        stats["core0.prefetcher.pythia.rewards_accurate_timely"]
        + stats["core0.prefetcher.pythia.rewards_accurate_late"]
        + stats["core0.prefetcher.pythia.rewards_inaccurate"]
        + stats["core0.prefetcher.pythia.rewards_no_prefetch"]
    )
    assert rewarded > 0
    assert result.prefetches_issued > 0
    pythia = make_prefetcher("pythia")
    summary = pythia.qvalue_summary()
    assert set(summary) >= {"mean_abs_q", "q_saturation", "vault_occupancy"}


def test_two_level_adapts_thresholds():
    pf = make_prefetcher("two-level")
    config = _config(measure=4_000, warmup=500)
    run_single_core(find_workload("603.bwaves_s"), pf, config, seed=SEED)
    stats = pf.two_level_stats
    assert stats.triggers > 0
    # On a stream this regular the filter's accept accuracy leaves the
    # target band at least once, so the adaptive stage must have moved.
    assert stats.adaptations_tightened + stats.adaptations_loosened > 0


def test_filter_seam_probe_labels_inner_prefetcher():
    from repro.telemetry.probes import ProbeSet

    config = _config(measure=600, warmup=150)
    sim = SingleCoreSim(find_workload("605.mcf_s"), "filtered:pythia", config, seed=SEED)
    probes = ProbeSet.discover(sim)
    names = {probe.name for probe in probes.probes}
    assert "filter.pythia" in names
    assert "pythia" in names  # the Q-vault probe found the wrapped agent


# -- the generality experiment -------------------------------------------------


def test_generality_experiment_tiny():
    from repro.harness.generality import report, run_generality

    result = run_generality(
        config=_config(measure=600, warmup=150),
        prefetchers=("spp",),
        families=("spec2017",),
        per_family=1,
        jobs=1,
    )
    assert len(result.rows) == 1
    row = result.rows[0]
    assert row["prefetcher"] == "spp"
    for side in ("unfiltered", "filtered"):
        assert set(row[side]) == {"accuracy", "coverage", "ipc", "speedup"}
    document = result.document()
    assert document["schema"] == "repro.generality/v1"
    assert document["complete"]
    rendered = report(result)
    assert "f.speedup" in rendered and "spp" in rendered


# -- CLI -----------------------------------------------------------------------


class TestZooCLI:
    def test_registry_list_kind(self, capsys):
        assert main(["registry", "list", "--kind", "prefetcher"]) == 0
        out = capsys.readouterr().out
        for name in ("pythia", "two-level", "ppf", "spp"):
            assert name in out

    def test_registry_list_all_kinds(self, capsys):
        assert main(["registry", "list"]) == 0
        out = capsys.readouterr().out
        for kind in ("prefetcher", "engine", "suite", "probe"):
            assert kind in out

    def test_registry_list_unknown_kind_exits_2(self, capsys):
        assert main(["registry", "list", "--kind", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown component kind" in err

    def test_sweep_rejects_unknown_filtered_spec(self, capsys):
        code = main(
            ["sweep", "--prefetchers", "filtered:nope", "--records", "200", "--quiet"]
        )
        assert code == 2
        assert "unknown prefetcher" in capsys.readouterr().err

    def test_bench_accepts_filtered_spec(self, capsys):
        code = main(
            [
                "bench",
                "605.mcf_s",
                "--prefetcher",
                FILTER_SPEC_PREFIX + "pythia",
                "--records",
                "1000",
            ]
        )
        assert code == 0
        assert "filtered:pythia" in capsys.readouterr().out


# -- regeneration --------------------------------------------------------------


def _regenerate():
    golden = {}
    for workload_name in ("605.mcf_s", "623.xalancbmk_s"):
        for scheme in ("pythia", "two-level"):
            result = _run_cell(workload_name, scheme)
            golden[f"{workload_name}/{scheme}"] = {
                "instructions": result.instructions,
                "cycles": result.cycles,
                "stats": result.stats,
            }
    GOLDEN_PATH.write_text(json.dumps(golden, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(golden)} cells)")


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
