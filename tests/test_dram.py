"""Tests for repro.memory.dram."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.dram import DRAM, ROW_BITS, DRAMConfig


class TestConfig:
    def test_default_is_12_8_gbps(self):
        # 64 B / 20 cycles at 4 GHz = 12.8 GB/s
        assert DRAMConfig.default().cycles_per_transfer == 20

    def test_low_bandwidth_is_quarter(self):
        assert DRAMConfig.low_bandwidth().cycles_per_transfer == 80

    def test_multicore_channels(self):
        assert DRAMConfig.multicore(4).channels == 2
        assert DRAMConfig.multicore(8).channels == 4
        assert DRAMConfig.multicore(1).channels == 1


class TestRowBuffer:
    def test_first_access_misses_row(self):
        dram = DRAM()
        dram.access(0x1000, 0)
        assert dram.stats.row_misses == 1

    def test_same_row_hits(self):
        dram = DRAM()
        first = dram.access(0x1000, 0)
        second_start = dram.next_free_cycle(0x1040)
        ready = dram.access(0x1040, second_start)
        assert dram.stats.row_hits == 1
        assert ready - second_start == dram.config.row_hit_latency

    def test_different_row_misses(self):
        dram = DRAM()
        dram.access(0x1000, 0)
        dram.access(0x1000 + (1 << ROW_BITS), 1000)
        assert dram.stats.row_misses == 2

    def test_row_hit_is_faster(self):
        cfg = DRAMConfig()
        assert cfg.row_hit_latency < cfg.row_miss_latency


class TestBandwidth:
    def test_back_to_back_accesses_queue(self):
        dram = DRAM()
        cfg = dram.config
        first = dram.access(0x1000, 0)
        assert first == cfg.row_miss_latency
        # Second access at cycle 0 must wait for the bus occupancy window.
        second = dram.access(0x2000 + (1 << ROW_BITS), 0)
        assert second == cfg.cycles_per_transfer + cfg.row_miss_latency
        assert dram.stats.total_queue_delay == cfg.cycles_per_transfer

    def test_spaced_accesses_do_not_queue(self):
        dram = DRAM()
        dram.access(0x1000, 0)
        dram.access(0x2000, 1000)
        assert dram.stats.total_queue_delay == 0

    def test_channel_interleaving_avoids_queueing(self):
        dram = DRAM(DRAMConfig(channels=2))
        dram.access(0 << 6, 0)  # channel 0
        dram.access(1 << 6, 0)  # channel 1
        assert dram.stats.total_queue_delay == 0

    def test_low_bandwidth_queues_longer(self):
        def delay(cfg):
            dram = DRAM(cfg)
            dram.access(0x1000, 0)
            dram.access(0x2000, 0)
            return dram.stats.total_queue_delay

        assert delay(DRAMConfig.low_bandwidth()) == 4 * delay(DRAMConfig.default())

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=2, max_size=50))
    def test_ready_cycle_after_request_cycle(self, blocks):
        dram = DRAM()
        cycle = 0
        for block in blocks:
            ready = dram.access(block << 6, cycle)
            assert ready > cycle
            cycle += 5

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=2, max_size=50))
    def test_channel_next_free_is_monotonic(self, blocks):
        dram = DRAM()
        previous = 0
        for block in blocks:
            dram.access(block << 6, 0)
            current = dram.next_free_cycle(block << 6)
            assert current >= previous
            previous = current


class TestStats:
    def test_demand_vs_prefetch_counts(self):
        dram = DRAM()
        dram.access(0x1000, 0)
        dram.access(0x2000, 100, is_prefetch=True)
        assert dram.stats.demand_accesses == 1
        assert dram.stats.prefetch_accesses == 1
        assert dram.stats.accesses == 2

    def test_row_hit_rate(self):
        dram = DRAM()
        dram.access(0x1000, 0)
        dram.access(0x1040, 1000)
        assert dram.stats.row_hit_rate == 0.5

    def test_mean_queue_delay_zero_when_empty(self):
        assert DRAM().stats.mean_queue_delay == 0.0

    def test_reset(self):
        dram = DRAM()
        dram.access(0x1000, 0)
        dram.reset_stats()
        assert dram.stats.accesses == 0
