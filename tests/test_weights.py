"""Tests for repro.core.weights."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.weights import (
    WEIGHT_MAX,
    WEIGHT_MIN,
    SaturatingCounter,
    WeightTable,
    clamp_weight,
)


class TestClamp:
    def test_in_range_unchanged(self):
        for value in range(WEIGHT_MIN, WEIGHT_MAX + 1):
            assert clamp_weight(value) == value

    def test_saturates_both_ends(self):
        assert clamp_weight(100) == WEIGHT_MAX == 15
        assert clamp_weight(-100) == WEIGHT_MIN == -16

    @given(st.integers())
    def test_always_in_range(self, value):
        assert WEIGHT_MIN <= clamp_weight(value) <= WEIGHT_MAX


class TestSaturatingCounter:
    def test_increment_saturates(self):
        counter = SaturatingCounter(value=WEIGHT_MAX)
        assert counter.increment() == WEIGHT_MAX

    def test_decrement_saturates(self):
        counter = SaturatingCounter(value=WEIGHT_MIN)
        assert counter.decrement() == WEIGHT_MIN

    def test_initial_value_clamped(self):
        assert SaturatingCounter(value=1000).value == WEIGHT_MAX

    def test_custom_range(self):
        counter = SaturatingCounter(value=0, minimum=0, maximum=3)
        for _ in range(10):
            counter.increment()
        assert counter.value == 3

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            SaturatingCounter(value=0, minimum=5, maximum=1)

    @given(st.lists(st.booleans(), max_size=100))
    def test_never_leaves_range(self, steps):
        counter = SaturatingCounter()
        for up in steps:
            counter.increment() if up else counter.decrement()
            assert WEIGHT_MIN <= counter.value <= WEIGHT_MAX


class TestWeightTable:
    def test_starts_zeroed(self):
        table = WeightTable(16)
        assert all(w == 0 for w in table.weights())

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            WeightTable(100)
        with pytest.raises(ValueError):
            WeightTable(0)

    def test_index_masks_hash(self):
        table = WeightTable(16)
        assert table.index_of(0x12345) == 0x12345 & 15

    def test_bump_up_and_down(self):
        table = WeightTable(8)
        assert table.bump(3, positive=True) == 1
        assert table.bump(3, positive=False) == 0

    def test_bump_saturates(self):
        table = WeightTable(8)
        for _ in range(100):
            table.bump(0, positive=True)
        assert table.read(0) == WEIGHT_MAX

    def test_nonzero_count(self):
        table = WeightTable(8)
        table.bump(1, True)
        table.bump(2, False)
        assert table.nonzero_count() == 2

    def test_reset(self):
        table = WeightTable(8)
        table.bump(1, True)
        table.reset()
        assert table.nonzero_count() == 0

    def test_load_validates_length(self):
        table = WeightTable(4)
        with pytest.raises(ValueError):
            table.load([1, 2, 3])

    def test_load_clamps(self):
        table = WeightTable(2)
        table.load([100, -100])
        assert table.weights() == [WEIGHT_MAX, WEIGHT_MIN]

    def test_storage_bits(self):
        assert WeightTable(4096).storage_bits == 4096 * 5

    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=7), st.booleans()),
            max_size=200,
        )
    )
    def test_weights_always_in_range(self, updates):
        table = WeightTable(8)
        for index, positive in updates:
            table.bump(index, positive)
        assert all(WEIGHT_MIN <= w <= WEIGHT_MAX for w in table.weights())
