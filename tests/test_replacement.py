"""Tests for repro.memory.replacement."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    make_policy,
)


class TestLRU:
    def test_victim_is_least_recently_used(self):
        lru = LRUPolicy()
        for tag in ("a", "b", "c"):
            lru.on_insert(0, tag)
        assert lru.victim(0) == "a"

    def test_touch_refreshes(self):
        lru = LRUPolicy()
        for tag in ("a", "b", "c"):
            lru.on_insert(0, tag)
        lru.on_touch(0, "a")
        assert lru.victim(0) == "b"

    def test_evict_removes(self):
        lru = LRUPolicy()
        lru.on_insert(0, "a")
        lru.on_insert(0, "b")
        lru.on_evict(0, "a")
        assert lru.victim(0) == "b"

    def test_sets_are_independent(self):
        lru = LRUPolicy()
        lru.on_insert(0, "a")
        lru.on_insert(1, "b")
        assert lru.victim(0) == "a"
        assert lru.victim(1) == "b"

    def test_victim_on_empty_set_raises(self):
        with pytest.raises(LookupError):
            LRUPolicy().victim(0)

    def test_touch_before_insert_acts_as_insert(self):
        lru = LRUPolicy()
        lru.on_touch(0, "a")
        assert lru.victim(0) == "a"

    def test_recency_order(self):
        lru = LRUPolicy()
        for tag in ("a", "b", "c"):
            lru.on_insert(0, tag)
        lru.on_touch(0, "b")
        assert lru.recency_order(0) == ["a", "c", "b"]

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=60))
    def test_victim_is_first_unrefreshed(self, touches):
        """The victim is always the least-recently touched resident tag."""
        lru = LRUPolicy()
        last_touch = {}
        for step, tag in enumerate(touches):
            lru.on_touch(0, tag)
            last_touch[tag] = step
        expected = min(last_touch, key=last_touch.get)
        assert lru.victim(0) == expected


class TestFIFO:
    def test_victim_is_first_inserted_despite_touches(self):
        fifo = FIFOPolicy()
        for tag in ("a", "b", "c"):
            fifo.on_insert(0, tag)
        fifo.on_touch(0, "a")
        assert fifo.victim(0) == "a"

    def test_evict_removes(self):
        fifo = FIFOPolicy()
        fifo.on_insert(0, "a")
        fifo.on_insert(0, "b")
        fifo.on_evict(0, "a")
        assert fifo.victim(0) == "b"

    def test_empty_set_raises(self):
        with pytest.raises(LookupError):
            FIFOPolicy().victim(0)


class TestRandom:
    def test_victim_among_residents(self):
        policy = RandomPolicy(seed=3)
        tags = {"a", "b", "c"}
        for tag in tags:
            policy.on_insert(0, tag)
        for _ in range(20):
            assert policy.victim(0) in tags

    def test_seeded_determinism(self):
        def victims(seed):
            policy = RandomPolicy(seed=seed)
            for tag in range(10):
                policy.on_insert(0, tag)
            return [policy.victim(0) for _ in range(10)]

        assert victims(5) == victims(5)

    def test_evict_removes(self):
        policy = RandomPolicy(seed=1)
        policy.on_insert(0, "a")
        policy.on_insert(0, "b")
        policy.on_evict(0, "b")
        assert policy.victim(0) == "a"


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls", [("lru", LRUPolicy), ("fifo", FIFOPolicy), ("random", RandomPolicy)]
    )
    def test_known_policies(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_case_insensitive(self):
        assert isinstance(make_policy("LRU"), LRUPolicy)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_policy("belady")
