"""Tests for repro.cpu.o3core."""


from repro.cpu.o3core import CoreConfig, CoreResult, O3Core
from repro.cpu.trace import TraceRecord
from repro.memory.hierarchy import MemoryHierarchy


class InstantHierarchy:
    """Stub hierarchy: every access completes after a fixed latency."""

    def __init__(self, latency=0):
        self.latency = latency
        self.accesses = []

    def access(self, core, pc, addr, cycle):
        self.accesses.append((core, pc, addr, cycle))
        from repro.memory.hierarchy import AccessResult

        return AccessResult(cycle + self.latency, "stub")


def run_records(core, records):
    for rec in records:
        core.step(rec)
    core.drain()
    return core.result()


class TestRetirement:
    def test_bubble_retires_at_width(self):
        core = O3Core(0, InstantHierarchy(), CoreConfig(width=4))
        run_records(core, [TraceRecord(1, 0x1000, 40)])
        # 40 bubble instructions at width 4 = 10 cycles; load is instant.
        assert core.cycle == 10

    def test_fractional_retirement_accumulates(self):
        core = O3Core(0, InstantHierarchy(), CoreConfig(width=4))
        run_records(core, [TraceRecord(1, 0x1000, 2), TraceRecord(1, 0x2000, 2)])
        assert core.cycle == 1  # 4 bubble instructions total = 1 cycle

    def test_instruction_count(self):
        core = O3Core(0, InstantHierarchy())
        result = run_records(core, [TraceRecord(1, 0x1000, 9)] * 3)
        assert result.instructions == 30

    def test_ipc_computation(self):
        result = CoreResult(instructions=100, cycles=50)
        assert result.ipc == 2.0

    def test_zero_cycles_ipc(self):
        assert CoreResult(instructions=0, cycles=0).ipc == 0.0


class TestMemoryStalls:
    def test_fast_loads_overlap_fully(self):
        core = O3Core(0, InstantHierarchy(latency=0), CoreConfig(width=4))
        result = run_records(core, [TraceRecord(1, i * 64, 0) for i in range(10)])
        assert core.cycle == 0  # all instant, never stalls

    def test_mlp_limit_stalls(self):
        config = CoreConfig(width=4, mlp_limit=2, rob_size=1000)
        core = O3Core(0, InstantHierarchy(latency=100), config)
        run_records(core, [TraceRecord(1, i * 64, 0) for i in range(4)])
        # Loads 0,1 issue at 0; load 2 waits for load 0 (cycle 100);
        # load 3 waits for load 1 (also ready 100) -> issues at 100.
        # Drain: loads 2,3 complete at 200.
        assert core.cycle == 200

    def test_higher_mlp_overlaps_more(self):
        def cycles(mlp):
            config = CoreConfig(width=4, mlp_limit=mlp, rob_size=10_000)
            core = O3Core(0, InstantHierarchy(latency=100), config)
            run_records(core, [TraceRecord(1, i * 64, 0) for i in range(16)])
            return core.cycle

        assert cycles(8) < cycles(2)

    def test_rob_limit_stalls(self):
        # Large bubbles push the load window beyond the ROB.
        config = CoreConfig(width=4, mlp_limit=64, rob_size=100)
        core = O3Core(0, InstantHierarchy(latency=10_000), config)
        run_records(core, [TraceRecord(1, i * 64, 99) for i in range(4)])
        # Each record is 100 instructions; the second load sits exactly
        # rob_size instructions after the first, forcing a wait.
        assert core.cycle >= 10_000

    def test_drain_waits_for_outstanding(self):
        core = O3Core(0, InstantHierarchy(latency=500))
        core.step(TraceRecord(1, 0x1000, 0))
        assert core.cycle == 0
        core.drain()
        assert core.cycle == 500


class TestMeasurementWindow:
    def test_begin_measurement_resets_counters(self):
        core = O3Core(0, InstantHierarchy(latency=50))
        core.step(TraceRecord(1, 0x1000, 19))
        core.drain()
        core.begin_measurement()
        core.step(TraceRecord(1, 0x2000, 19))
        core.drain()
        result = core.result()
        assert result.instructions == 20
        assert result.cycles < core.cycle or core.cycle == result.cycles

    def test_result_cycles_at_least_one(self):
        core = O3Core(0, InstantHierarchy())
        core.begin_measurement()
        assert core.result().cycles >= 1


class TestAgainstRealHierarchy:
    def test_runs_with_memory_hierarchy(self):
        hierarchy = MemoryHierarchy()
        core = O3Core(0, hierarchy, CoreConfig())
        result = run_records(
            core, [TraceRecord(0x400, 0x10000 + i * 64, 5) for i in range(100)]
        )
        assert result.instructions == 600
        assert result.cycles > 0
        assert hierarchy.l2[0].stats.demand_accesses == 100

    def test_repeated_access_faster_than_cold(self):
        hierarchy = MemoryHierarchy()
        core = O3Core(0, hierarchy)
        cold = [TraceRecord(1, i * 64, 0) for i in range(64)]
        run_records(core, cold)
        cold_cycles = core.cycle
        core2 = O3Core(0, hierarchy)  # same hierarchy, now warm
        run_records(core2, cold)
        assert core2.cycle < cold_cycles
