"""Tests for repro.sim: config, single-core, multi-core, runner."""

import pytest

from repro.prefetchers.spp import SPP
from repro.sim.config import SimConfig
from repro.sim.multi_core import run_multi_core
from repro.sim.runner import ExperimentRunner
from repro.sim.single_core import (
    PREFETCHER_FACTORIES,
    make_prefetcher,
    run_single_core,
)
from repro.workloads.mixes import WorkloadMix
from repro.workloads.spec2017 import workload_by_name

TINY = SimConfig.quick(measure_records=2_000, warmup_records=500)


class TestSimConfig:
    def test_default_llc_is_2mb(self):
        assert SimConfig.default().hierarchy.llc_size_per_core == 2 * 1024 * 1024

    def test_small_llc_variant(self):
        assert SimConfig.small_llc().hierarchy.llc_size_per_core == 512 * 1024

    def test_low_bandwidth_variant(self):
        assert SimConfig.low_bandwidth().dram.cycles_per_transfer == 80

    def test_multicore_channels(self):
        assert SimConfig.multicore(8).dram.channels == 4

    def test_quick_sets_record_counts(self):
        cfg = SimConfig.quick(measure_records=123, warmup_records=45)
        assert cfg.measure_records == 123
        assert cfg.warmup_records == 45

    def test_describe_covers_table1_rows(self):
        labels = {label for label, _ in SimConfig.default().describe()}
        for expected in ("Core", "L1D", "L2", "LLC", "DRAM", "Block size", "Page size"):
            assert expected in labels


class TestPrefetcherRegistry:
    def test_paper_schemes_registered(self):
        for name in ("none", "bop", "da-ampm", "spp", "ppf"):
            assert name in PREFETCHER_FACTORIES

    def test_make_prefetcher(self):
        assert isinstance(make_prefetcher("spp"), SPP)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_prefetcher("oracle")


class TestSingleCore:
    def test_baseline_run_shape(self):
        result = run_single_core(workload_by_name("603.bwaves_s"), "none", TINY)
        assert result.prefetcher == "none"
        assert result.instructions > 0
        assert result.cycles > 0
        assert 0 < result.ipc < 8
        assert result.prefetches_issued == 0

    def test_accepts_prefetcher_instance(self):
        result = run_single_core(workload_by_name("603.bwaves_s"), SPP(), TINY)
        assert result.prefetcher == "spp"
        assert result.prefetches_issued > 0

    def test_prefetching_cuts_misses_on_stream(self):
        workload = workload_by_name("649.fotonik3d_s")
        base = run_single_core(workload, "none", TINY)
        spp = run_single_core(workload, "spp", TINY)
        assert spp.l2_misses < base.l2_misses

    def test_measurement_excludes_warmup(self):
        cfg_a = SimConfig.quick(measure_records=2_000, warmup_records=100)
        cfg_b = SimConfig.quick(measure_records=2_000, warmup_records=1_000)
        workload = workload_by_name("641.leela_s")
        a = run_single_core(workload, "none", cfg_a)
        b = run_single_core(workload, "none", cfg_b)
        # Instructions measured are close (same measured record count);
        # bubble randomness differs slightly across windows.
        assert abs(a.instructions - b.instructions) / a.instructions < 0.2

    def test_derived_metrics(self):
        result = run_single_core(workload_by_name("603.bwaves_s"), "spp", TINY)
        assert 0.0 <= result.accuracy <= 1.0
        assert result.l2_mpki >= result.llc_mpki >= 0

    def test_deterministic(self):
        workload = workload_by_name("605.mcf_s")
        a = run_single_core(workload, "spp", TINY, seed=4)
        b = run_single_core(workload, "spp", TINY, seed=4)
        assert a.cycles == b.cycles
        assert a.prefetches_issued == b.prefetches_issued


class TestMultiCore:
    def make_mix(self, cores=2):
        specs = [workload_by_name("603.bwaves_s"), workload_by_name("605.mcf_s")]
        return WorkloadMix(name="t", workloads=tuple(specs[:cores]))

    def test_runs_and_reports_per_core(self):
        mix = self.make_mix()
        cfg = SimConfig.multicore(2)
        cfg.warmup_records, cfg.measure_records = 300, 1_500
        result = run_multi_core(mix, "spp", cfg)
        assert len(result.cores) == 2
        assert result.cores[0].workload == "603.bwaves_s"
        assert all(c.instructions > 0 and c.cycles > 0 for c in result.cores)

    def test_totals(self):
        mix = self.make_mix()
        cfg = SimConfig.multicore(2)
        cfg.warmup_records, cfg.measure_records = 300, 1_500
        result = run_multi_core(mix, "spp", cfg)
        assert result.total_issued >= result.total_useful >= 0
        assert len(result.per_core_ipc) == 2

    def test_sharing_slows_cores_down(self):
        """A core in a 2-core mix is slower than the same workload alone."""
        workload = workload_by_name("603.bwaves_s")
        cfg = SimConfig.multicore(2)
        cfg.warmup_records, cfg.measure_records = 300, 2_000
        mix = WorkloadMix(name="t", workloads=(workload, workload))
        shared = run_multi_core(mix, "none", cfg)
        alone_cfg = SimConfig.quick(measure_records=2_000, warmup_records=300)
        alone = run_single_core(workload, "none", alone_cfg)
        assert min(shared.per_core_ipc) < alone.ipc


class TestRunner:
    def test_single_is_cached(self):
        runner = ExperimentRunner(TINY)
        workload = workload_by_name("641.leela_s")
        first = runner.single(workload, "none")
        second = runner.single(workload, "none")
        assert first is second

    def test_distinct_configs_not_conflated(self):
        runner = ExperimentRunner(TINY)
        workload = workload_by_name("641.leela_s")
        default = runner.single(workload, "none")
        other = runner.single(workload, "none", SimConfig.quick(2_000, 600))
        assert default is not other

    def test_sweep_includes_baseline(self):
        runner = ExperimentRunner(TINY)
        suite = runner.sweep([workload_by_name("603.bwaves_s")], ["spp"])
        assert ("603.bwaves_s", "none") in suite.runs
        assert ("603.bwaves_s", "spp") in suite.runs

    def test_speedups_and_geomean(self):
        runner = ExperimentRunner(TINY)
        suite = runner.sweep(
            [workload_by_name("603.bwaves_s"), workload_by_name("619.lbm_s")], ["spp"]
        )
        speedups = suite.speedups("spp")
        assert set(speedups) == {"603.bwaves_s", "619.lbm_s"}
        geomean = suite.geomean_speedup("spp")
        assert min(speedups.values()) <= geomean <= max(speedups.values())

    def test_coverage_levels(self):
        runner = ExperimentRunner(TINY)
        suite = runner.sweep([workload_by_name("603.bwaves_s")], ["spp"])
        assert -1.0 <= suite.coverage("spp", "l2") <= 1.0
        with pytest.raises(ValueError):
            suite.coverage("spp", "l4")

    def test_isolated_config_uses_full_llc(self):
        runner = ExperimentRunner(TINY)
        cfg = SimConfig.multicore(4)
        isolated = runner._isolated_config(cfg, 4)
        assert (
            isolated.hierarchy.llc_size_per_core
            == cfg.hierarchy.llc_size_per_core * 4
        )

    def test_mix_weighted_speedup_positive(self):
        cfg = SimConfig.multicore(2)
        cfg.warmup_records, cfg.measure_records = 200, 1_000
        runner = ExperimentRunner(cfg)
        mix = WorkloadMix(
            name="t",
            workloads=(workload_by_name("603.bwaves_s"), workload_by_name("619.lbm_s")),
        )
        value = runner.mix_weighted_speedup(mix, "spp", cfg)
        assert value > 0


class TestRunResultCoreViews:
    """Regression: snapshot views must honour the run's core index."""

    def _snapshot(self, core):
        prefix = f"core{core}"
        return {
            f"{prefix}.l2.demand_accesses": 10,
            f"{prefix}.l2.demand_misses": 4,
            f"{prefix}.prefetcher.prefetch.issued": 3,
            f"{prefix}.prefetcher.prefetch.useful": 2,
            f"{prefix}.prefetcher.prefetch.candidates": 5,
            f"{prefix}.prefetcher.ppf.reject_recoveries": 7,
            f"{prefix}.prefetcher.filter.per_feature_updates.PC": 11,
            f"{prefix}.prefetcher.filter.per_feature_updates.Delta": 13,
            "llc.demand_misses": 2,
            "dram.accesses": 6,
        }

    def test_from_snapshot_reads_the_requested_core(self):
        from repro.sim.single_core import RunResult

        snapshot = {**self._snapshot(1), **self._snapshot(0)}
        # Make core 0's counters distinct so a core0 fallback would show.
        snapshot["core0.prefetcher.ppf.reject_recoveries"] = 999
        snapshot["core0.prefetcher.filter.per_feature_updates.PC"] = 999
        result = RunResult.from_snapshot(
            workload="w", prefetcher="ppf", instructions=100, cycles=50,
            snapshot=snapshot, core=1,
        )
        assert result.core == 1
        assert result.l2_misses == 4
        assert result.reject_table_recoveries == 7
        assert result.per_feature_training_updates == {"PC": 11, "Delta": 13}

    def test_core_defaults_to_zero(self):
        from repro.sim.single_core import RunResult

        result = RunResult.from_snapshot(
            workload="w", prefetcher="ppf", instructions=100, cycles=50,
            snapshot=self._snapshot(0),
        )
        assert result.core == 0
        assert result.reject_table_recoveries == 7
