"""Tests for repro.sim.metrics."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.metrics import (
    accuracy,
    coverage,
    geometric_mean,
    mpki,
    percent_gain,
    speedup,
    summarize_speedups,
    weighted_ipc,
    weighted_speedup,
)

positive_floats = st.floats(min_value=0.01, max_value=100, allow_nan=False)


class TestSpeedup:
    def test_basic(self):
        assert speedup(2.0, 1.0) == 2.0

    def test_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_percent_gain(self):
        assert percent_gain(1.25) == pytest.approx(25.0)
        assert percent_gain(0.9) == pytest.approx(-10.0)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_single_value(self):
        assert geometric_mean([3.5]) == pytest.approx(3.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(positive_floats, min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9

    @given(st.lists(positive_floats, min_size=1, max_size=20))
    def test_leq_arithmetic_mean(self, values):
        gm = geometric_mean(values)
        am = sum(values) / len(values)
        assert gm <= am + 1e-9


class TestCoverage:
    def test_paper_definition(self):
        # 1000 baseline misses, 800 avoided -> 80% coverage.
        assert coverage(1000, 200) == pytest.approx(0.8)

    def test_pollution_is_negative(self):
        assert coverage(100, 150) == pytest.approx(-0.5)

    def test_zero_baseline(self):
        assert coverage(0, 0) == 0.0

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            coverage(-1, 0)


class TestAccuracy:
    def test_paper_example(self):
        # 1200 prefetches, 800 used -> 66.7% (§1).
        assert accuracy(800, 1200) == pytest.approx(2 / 3)

    def test_zero_issued(self):
        assert accuracy(0, 0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            accuracy(-1, 10)


class TestMPKI:
    def test_basic(self):
        assert mpki(50, 1000) == 50.0

    def test_rejects_zero_instructions(self):
        with pytest.raises(ValueError):
            mpki(1, 0)


class TestWeightedIPC:
    def test_equal_to_isolated_sums_to_core_count(self):
        assert weighted_ipc([1.0, 2.0], [1.0, 2.0]) == pytest.approx(2.0)

    def test_slowdown_reduces_sum(self):
        assert weighted_ipc([0.5, 1.0], [1.0, 2.0]) == pytest.approx(1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_ipc([1.0], [1.0, 2.0])

    def test_empty(self):
        with pytest.raises(ValueError):
            weighted_ipc([], [])

    def test_zero_isolated(self):
        with pytest.raises(ValueError):
            weighted_ipc([1.0], [0.0])


class TestWeightedSpeedup:
    def test_identity(self):
        assert weighted_speedup([1.0, 1.0], [2.0, 2.0], [1.0, 1.0]) == pytest.approx(1.0)

    def test_scheme_better_than_baseline(self):
        result = weighted_speedup([2.0, 2.0], [2.0, 2.0], [1.0, 1.0], [2.0, 2.0])
        assert result == pytest.approx(2.0)

    def test_default_baseline_isolated(self):
        result = weighted_speedup([1.5], [1.0], [1.0])
        assert result == pytest.approx(1.5)


class TestSummary:
    def test_summarize(self):
        summary = summarize_speedups({"a": 1.0, "b": 4.0})
        assert summary["geomean"] == pytest.approx(2.0)
        assert summary["best"] == 4.0
        assert summary["worst"] == 1.0
