"""Tests for repro.cpu.trace."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.trace import (
    TraceRecord,
    footprint_by_page,
    read_trace,
    trace_from_string,
    trace_stats,
    trace_to_string,
    write_trace,
)

records_strategy = st.lists(
    st.builds(
        TraceRecord,
        pc=st.integers(min_value=0, max_value=2**32),
        addr=st.integers(min_value=0, max_value=2**40),
        bubble=st.integers(min_value=0, max_value=500),
    ),
    max_size=50,
)


class TestTraceRecord:
    def test_instructions_counts_bubble_plus_load(self):
        assert TraceRecord(pc=1, addr=2, bubble=9).instructions == 10

    def test_rejects_negative_fields(self):
        with pytest.raises(ValueError):
            TraceRecord(pc=-1, addr=0, bubble=0)
        with pytest.raises(ValueError):
            TraceRecord(pc=0, addr=-1, bubble=0)
        with pytest.raises(ValueError):
            TraceRecord(pc=0, addr=0, bubble=-1)

    def test_frozen(self):
        rec = TraceRecord(pc=1, addr=2, bubble=3)
        with pytest.raises(AttributeError):
            rec.pc = 5


class TestSerialization:
    def test_roundtrip_simple(self):
        trace = [TraceRecord(0x400, 0x1000, 3), TraceRecord(0x404, 0x1040, 0)]
        assert trace_from_string(trace_to_string(trace)) == trace

    def test_write_returns_count(self):
        buffer = io.StringIO()
        assert write_trace([TraceRecord(1, 2, 3)] * 4, buffer) == 4

    def test_read_skips_comments_and_blanks(self):
        text = "# header\n\n400 1000 3\n"
        assert len(list(read_trace(io.StringIO(text)))) == 1

    def test_read_rejects_malformed(self):
        with pytest.raises(ValueError):
            list(read_trace(io.StringIO("400 1000\n")))

    @settings(max_examples=30, deadline=None)
    @given(records_strategy)
    def test_roundtrip_property(self, trace):
        assert trace_from_string(trace_to_string(trace)) == trace


class TestStats:
    def test_counts(self):
        trace = [
            TraceRecord(1, 0x1000, 4),
            TraceRecord(1, 0x1040, 4),
            TraceRecord(1, 0x2000, 4),
        ]
        stats = trace_stats(trace)
        assert stats.records == 3
        assert stats.instructions == 15
        assert stats.unique_blocks == 3
        assert stats.unique_pages == 2

    def test_loads_per_kilo_instruction(self):
        trace = [TraceRecord(1, 0x1000, 99)]
        assert trace_stats(trace).loads_per_kilo_instruction == 10.0

    def test_empty_trace(self):
        stats = trace_stats([])
        assert stats.records == 0
        assert stats.loads_per_kilo_instruction == 0.0

    def test_footprint_by_page(self):
        trace = [
            TraceRecord(1, 0x1000, 0),
            TraceRecord(1, 0x1040, 0),
            TraceRecord(1, 0x1040, 0),
            TraceRecord(1, 0x2000, 0),
        ]
        footprint = footprint_by_page(trace)
        assert footprint[1] == 2
        assert footprint[2] == 1
