"""Tests for repro.workloads.simpoint (§5.3 phase-sampling methodology)."""

import pytest

from repro.cpu.trace import TraceRecord
from repro.workloads.simpoint import (
    SimPoint,
    phase_count,
    select_simpoints,
    signature_vectors,
    weighted_mean,
    window_records,
)


def phase_trace(phase_specs, records_per_phase=200):
    """Build a trace with distinct phases: (pc_base, stride) per phase."""
    trace = []
    addr = 0
    for pc_base, stride in phase_specs:
        for i in range(records_per_phase):
            addr += stride * 64
            trace.append(TraceRecord(pc=pc_base + (i % 4) * 4, addr=addr, bubble=3))
    return trace


class TestSimPointDataclass:
    def test_valid(self):
        sp = SimPoint(window_index=2, weight=0.5)
        assert sp.window_index == 2

    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            SimPoint(window_index=0, weight=0.0)
        with pytest.raises(ValueError):
            SimPoint(window_index=0, weight=1.5)

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            SimPoint(window_index=-1, weight=0.5)


class TestSignatureVectors:
    def test_shape(self):
        trace = phase_trace([(0x400, 1)], records_per_phase=200)
        vectors = signature_vectors(trace, window_size=50)
        assert vectors.shape == (4, 34)

    def test_partial_tail_dropped(self):
        trace = phase_trace([(0x400, 1)], records_per_phase=105)
        vectors = signature_vectors(trace, window_size=50)
        assert vectors.shape[0] == 2

    def test_sequential_fraction_detected(self):
        trace = phase_trace([(0x400, 1)], records_per_phase=100)
        vectors = signature_vectors(trace, window_size=100)
        assert vectors[0, -1] > 0.9  # nearly all deltas are +1

    def test_distinct_phases_distinct_vectors(self):
        trace = phase_trace([(0x400, 1), (0x9000, 16)])
        vectors = signature_vectors(trace, window_size=200)
        import numpy as np

        assert np.linalg.norm(vectors[0] - vectors[1]) > 0.1

    def test_rejects_tiny_window(self):
        with pytest.raises(ValueError):
            signature_vectors(phase_trace([(0x400, 1)]), window_size=1)

    def test_rejects_short_trace(self):
        with pytest.raises(ValueError):
            signature_vectors(phase_trace([(0x400, 1)], 10), window_size=100)


class TestSelection:
    def test_weights_sum_to_one(self):
        trace = phase_trace([(0x400, 1), (0x9000, 16), (0x400, 1)])
        simpoints = select_simpoints(trace, window_size=100)
        assert sum(sp.weight for sp in simpoints) == pytest.approx(1.0)

    def test_two_phases_found(self):
        trace = phase_trace([(0x400, 1), (0x9000, 16)], records_per_phase=400)
        assert phase_count(trace, window_size=100, max_clusters=2) == 2

    def test_uniform_trace_collapses(self):
        trace = phase_trace([(0x400, 1)], records_per_phase=800)
        simpoints = select_simpoints(trace, window_size=100, max_clusters=4)
        # A single behaviour may split into a few near-identical
        # clusters, but the dominant one carries most of the weight.
        assert max(sp.weight for sp in simpoints) >= 0.25

    def test_representatives_are_valid_windows(self):
        trace = phase_trace([(0x400, 1), (0x9000, 16)])
        simpoints = select_simpoints(trace, window_size=100)
        n_windows = len(trace) // 100
        for sp in simpoints:
            assert 0 <= sp.window_index < n_windows

    def test_deterministic(self):
        trace = phase_trace([(0x400, 1), (0x9000, 16)])
        a = select_simpoints(trace, window_size=100, seed=3)
        b = select_simpoints(trace, window_size=100, seed=3)
        assert a == b

    def test_dominant_phase_gets_dominant_weight(self):
        trace = phase_trace([(0x400, 1)] * 3 + [(0x9000, 16)], records_per_phase=200)
        simpoints = select_simpoints(trace, window_size=200, max_clusters=2)
        assert max(sp.weight for sp in simpoints) >= 0.7


class TestWindowRecords:
    def test_extracts_window(self):
        trace = phase_trace([(0x400, 1)], records_per_phase=100)
        window = window_records(trace, 25, 2)
        assert window == trace[50:75]

    def test_out_of_range(self):
        trace = phase_trace([(0x400, 1)], records_per_phase=100)
        with pytest.raises(IndexError):
            window_records(trace, 50, 10)


class TestWeightedMean:
    def test_basic(self):
        assert weighted_mean([2.0, 4.0], [0.5, 0.5]) == pytest.approx(3.0)

    def test_weights_need_not_be_normalized(self):
        assert weighted_mean([2.0, 4.0], [1, 3]) == pytest.approx(3.5)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [0.5, 0.5])

    def test_empty(self):
        with pytest.raises(ValueError):
            weighted_mean([], [])

    def test_zero_weights(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [0.0])
