"""Tests for repro.workloads.synthetic pattern primitives."""

import random

import pytest

from repro.memory.address import BLOCKS_PER_PAGE, page_number, page_offset_block
from repro.workloads.synthetic import (
    HotsetPattern,
    PatternMix,
    PhaseDeltaPattern,
    PointerChasePattern,
    RandomPattern,
    ScatterGatherPattern,
    SequentialPattern,
    StridedPattern,
    interleave,
)


def take(pattern, n, seed=0):
    rng = random.Random(seed)
    return [pattern.next_address(rng) for _ in range(n)]


class TestSequential:
    def test_unit_stride(self):
        addrs = take(SequentialPattern(start_page=1, stride_blocks=1), 10)
        deltas = {(b - a) for a, b in zip(addrs, addrs[1:])}
        assert deltas == {64}

    def test_custom_stride(self):
        addrs = take(SequentialPattern(start_page=1, stride_blocks=3), 10)
        assert all(b - a == 192 for a, b in zip(addrs, addrs[1:]))

    def test_region_hop_after_span(self):
        pattern = SequentialPattern(start_page=1, stride_blocks=1, span_pages=1, region_hop=10)
        addrs = take(pattern, BLOCKS_PER_PAGE + 1)
        assert page_number(addrs[-1]) == 11

    def test_rejects_zero_stride(self):
        with pytest.raises(ValueError):
            SequentialPattern(1, 0)

    def test_block_aligned(self):
        for addr in take(SequentialPattern(1, 1), 20):
            assert addr % 64 == 0


class TestStrided:
    def test_stride_within_page_then_next_page(self):
        pattern = StridedPattern(start_page=1, stride_blocks=16)
        addrs = take(pattern, 6)
        assert [page_offset_block(a) for a in addrs[:4]] == [0, 16, 32, 48]
        assert page_number(addrs[4]) == 2

    def test_rejects_nonpositive_stride(self):
        with pytest.raises(ValueError):
            StridedPattern(1, 0)


class TestPointerChase:
    def test_visits_whole_working_set(self):
        pattern = PointerChasePattern(start_page=1, working_set_blocks=32, seed=3)
        addrs = take(pattern, 32)
        assert len(set(addrs)) == 32

    def test_cycle_repeats(self):
        pattern = PointerChasePattern(start_page=1, working_set_blocks=16, seed=3)
        first = take(pattern, 16)
        second = take(pattern, 16)
        assert first == second

    def test_order_is_shuffled(self):
        pattern = PointerChasePattern(start_page=1, working_set_blocks=64, seed=3)
        addrs = take(pattern, 64)
        assert addrs != sorted(addrs)

    def test_rejects_tiny_working_set(self):
        with pytest.raises(ValueError):
            PointerChasePattern(1, 1, seed=0)


class TestPhaseDelta:
    def test_follows_delta_schedule(self):
        pattern = PhaseDeltaPattern(start_page=1, delta_phases=[[2]], phase_length=100)
        addrs = take(pattern, 5)
        assert [page_offset_block(a) for a in addrs] == [0, 2, 4, 6, 8]

    def test_phase_switch_changes_deltas(self):
        pattern = PhaseDeltaPattern(
            start_page=1, delta_phases=[[1], [5]], phase_length=4
        )
        addrs = take(pattern, 8)
        first_deltas = [b - a for a, b in zip(addrs[:4], addrs[1:4])]
        later_deltas = [b - a for a, b in zip(addrs[4:], addrs[5:])]
        assert set(first_deltas) == {64}
        assert 5 * 64 in later_deltas

    def test_rejects_empty_phases(self):
        with pytest.raises(ValueError):
            PhaseDeltaPattern(1, [])
        with pytest.raises(ValueError):
            PhaseDeltaPattern(1, [[]])

    def test_wraps_to_next_page(self):
        pattern = PhaseDeltaPattern(start_page=1, delta_phases=[[60]], phase_length=100)
        addrs = take(pattern, 3)
        assert page_number(addrs[-1]) > 1


class TestHotset:
    def test_stays_in_hot_range_without_jumps(self):
        pattern = HotsetPattern(start_page=1, hot_blocks=16)
        base = BLOCKS_PER_PAGE  # page 1
        for addr in take(pattern, 100):
            assert base <= (addr >> 6) < base + 16

    def test_jump_every_leaves_hot_range(self):
        pattern = HotsetPattern(start_page=1, hot_blocks=4, jump_every=5)
        addrs = take(pattern, 50)
        out_of_range = [a for a in addrs if (a >> 6) >= BLOCKS_PER_PAGE + 4]
        assert out_of_range

    def test_skewed_toward_low_blocks(self):
        pattern = HotsetPattern(start_page=0, hot_blocks=100)
        addrs = take(pattern, 2000)
        low = sum(1 for a in addrs if (a >> 6) < 50)
        assert low > 1200  # triangular skew favors the low half

    def test_rejects_empty_hotset(self):
        with pytest.raises(ValueError):
            HotsetPattern(1, 0)


class TestScatterGather:
    def test_touches_per_page(self):
        pattern = ScatterGatherPattern(
            start_page=1, offset_blocks=3, touches_per_page=2, page_span=4
        )
        addrs = take(pattern, 8)
        pages = [page_number(a) for a in addrs]
        assert pages == [1, 1, 2, 2, 3, 3, 4, 4]

    def test_constant_global_offset_between_first_touches(self):
        pattern = ScatterGatherPattern(
            start_page=1, offset_blocks=3, touches_per_page=1, page_span=100
        )
        addrs = take(pattern, 10)
        deltas = {(b - a) >> 6 for a, b in zip(addrs, addrs[1:])}
        assert deltas == {BLOCKS_PER_PAGE}

    def test_laps_continue_beyond_span(self):
        pattern = ScatterGatherPattern(
            start_page=1, offset_blocks=1, touches_per_page=1, page_span=2
        )
        addrs = take(pattern, 4)
        assert page_number(addrs[2]) == 3  # next lap region


class TestRandom:
    def test_stays_in_footprint(self):
        pattern = RandomPattern(start_page=1, footprint_blocks=128)
        for addr in take(pattern, 200):
            assert BLOCKS_PER_PAGE <= (addr >> 6) < BLOCKS_PER_PAGE + 128

    def test_rejects_empty_footprint(self):
        with pytest.raises(ValueError):
            RandomPattern(1, 0)


class TestInterleave:
    def two_mixes(self):
        return [
            PatternMix(SequentialPattern(1, 1), weight=1.0, bubble_mean=4),
            PatternMix(SequentialPattern(1000, 1), weight=1.0, bubble_mean=4),
        ]

    def test_record_count(self):
        trace = list(interleave(self.two_mixes(), 100, seed=1))
        assert len(trace) == 100

    def test_deterministic_per_seed(self):
        a = list(interleave(self.two_mixes(), 50, seed=1))
        b = list(interleave(self.two_mixes(), 50, seed=1))
        assert a == b

    def test_different_seeds_differ(self):
        a = list(interleave(self.two_mixes(), 50, seed=1))
        b = list(interleave(self.two_mixes(), 50, seed=2))
        assert a != b

    def test_pcs_disjoint_per_pattern(self):
        trace = list(interleave(self.two_mixes(), 200, seed=1))
        pcs_low = {r.pc for r in trace if page_number(r.addr) < 500}
        pcs_high = {r.pc for r in trace if page_number(r.addr) >= 500}
        assert not pcs_low & pcs_high

    def test_pc_pool_size(self):
        mixes = [PatternMix(SequentialPattern(1, 1), pc_pool=2)]
        trace = list(interleave(mixes, 100, seed=1))
        assert len({r.pc for r in trace}) == 2

    def test_bubble_mean_respected(self):
        mixes = [PatternMix(SequentialPattern(1, 1), bubble_mean=10)]
        trace = list(interleave(mixes, 2000, seed=1))
        mean = sum(r.bubble for r in trace) / len(trace)
        assert 8 < mean < 12

    def test_zero_bubble(self):
        mixes = [PatternMix(SequentialPattern(1, 1), bubble_mean=0)]
        trace = list(interleave(mixes, 10, seed=1))
        assert all(r.bubble == 0 for r in trace)

    def test_weights_bias_selection(self):
        mixes = [
            PatternMix(SequentialPattern(1, 1), weight=9.0),
            PatternMix(SequentialPattern(1000, 1), weight=1.0),
        ]
        trace = list(interleave(mixes, 1000, seed=1))
        heavy = sum(1 for r in trace if page_number(r.addr) < 500)
        assert heavy > 800

    def test_rejects_empty_mixes(self):
        with pytest.raises(ValueError):
            list(interleave([], 10))

    def test_rejects_bad_mix_parameters(self):
        with pytest.raises(ValueError):
            PatternMix(SequentialPattern(1, 1), weight=0)
        with pytest.raises(ValueError):
            PatternMix(SequentialPattern(1, 1), bubble_mean=-1)
        with pytest.raises(ValueError):
            PatternMix(SequentialPattern(1, 1), pc_pool=0)
