"""Telemetry must observe, never perturb: bit-identity contracts.

The subsystem's core promise is that ``--trace`` and probes are pure
observers — a traced run reproduces the untraced run's statistics
exactly (only the ``telemetry.`` bookkeeping scope is added), including
through warmup-snapshot restores and mid-measure checkpoint resumes.
The telemetry schema version also participates in
``config_fingerprint`` so recorded artifacts invalidate caches on a
schema bump, mirroring the checkpoint-schema token.
"""

import json
from pathlib import Path

import pytest

from repro.checkpoint import SnapshotStore, save_snapshot
from repro.sim.config import SimConfig
from repro.sim.fingerprint import config_fingerprint, fingerprint_digest
from repro.sim.single_core import SingleCoreSim, run_single_core
from repro.telemetry import Telemetry, activate
from repro.workloads import find_workload

# The golden recording contract, pinned identically in
# tests/test_golden_stats.py.
GOLDEN_PATH = Path(__file__).parent / "golden" / "single_core_stats.json"
MEASURE_RECORDS = 2_000
WARMUP_RECORDS = 500
SEED = 3

GOLDEN_CONFIG = SimConfig.quick(
    measure_records=MEASURE_RECORDS, warmup_records=WARMUP_RECORDS
)


def _strip_telemetry(stats):
    return {k: v for k, v in stats.items() if not k.startswith("telemetry.")}


def _assert_equivalent(traced, untraced, context):
    assert traced.instructions == untraced.instructions, context
    assert traced.cycles == untraced.cycles, context
    assert traced.average_lookahead_depth == pytest.approx(
        untraced.average_lookahead_depth, abs=0
    ), context
    assert _strip_telemetry(traced.stats) == _strip_telemetry(untraced.stats), context


class TestTracedRunIdentity:
    @pytest.mark.parametrize("scheme", ["none", "spp", "ppf"])
    def test_traced_equals_untraced_per_scheme(self, scheme):
        workload = find_workload("605.mcf_s")
        untraced = run_single_core(workload, scheme, GOLDEN_CONFIG, seed=SEED)
        session = Telemetry(probe_every=250)
        traced = run_single_core(
            workload, scheme, GOLDEN_CONFIG, seed=SEED, telemetry=session
        )
        _assert_equivalent(traced, untraced, scheme)
        # ...and the session actually recorded something.
        assert traced.stats["telemetry.probe_samples"] > 0
        assert len(session.series()) >= 3
        assert "telemetry.probe_samples" not in untraced.stats

    def test_traced_run_still_matches_golden(self):
        cell = "605.mcf_s/ppf"
        expect = json.loads(GOLDEN_PATH.read_text())[cell]
        session = Telemetry(probe_every=500)
        with activate(session):
            result = run_single_core(
                find_workload("605.mcf_s"), "ppf", GOLDEN_CONFIG, seed=SEED
            )
        assert result.instructions == expect["instructions"]
        assert result.cycles == expect["cycles"]
        mismatched = {
            stat: (result.stats.get(stat), value)
            for stat, value in expect["stats"].items()
            if result.stats.get(stat) != value
        }
        assert not mismatched, f"{cell}: traced run diverged: {mismatched}"

    def test_probe_cadence_does_not_change_results(self):
        workload = find_workload("623.xalancbmk_s")
        untraced = run_single_core(workload, "ppf", GOLDEN_CONFIG, seed=SEED)
        for every in (100, 333, 1000):
            traced = run_single_core(
                workload,
                "ppf",
                GOLDEN_CONFIG,
                seed=SEED,
                telemetry=Telemetry(probe_every=every),
            )
            _assert_equivalent(traced, untraced, f"probe_every={every}")

    def test_explicit_none_overrides_active_session(self):
        """The sweep-worker contract: ``telemetry=None`` wins over an
        ambient session, so cached results never carry trace state."""
        session = Telemetry(probe_every=250)
        with activate(session):
            result = run_single_core(
                find_workload("605.mcf_s"),
                "ppf",
                GOLDEN_CONFIG,
                seed=SEED,
                telemetry=None,
            )
        assert "telemetry.probe_samples" not in result.stats
        assert len(session.tracer.events()) == 0


class TestTracedCheckpointIdentity:
    def test_warmup_snapshot_restore_under_tracing(self, tmp_path):
        workload = find_workload("605.mcf_s")
        untraced = run_single_core(workload, "ppf", GOLDEN_CONFIG, seed=SEED)
        store = SnapshotStore(tmp_path)
        cold = run_single_core(
            workload,
            "ppf",
            GOLDEN_CONFIG,
            seed=SEED,
            warmup_store=store,
            telemetry=Telemetry(probe_every=250),
        )
        warm_session = Telemetry(probe_every=250)
        warm = run_single_core(
            workload,
            "ppf",
            GOLDEN_CONFIG,
            seed=SEED,
            warmup_store=store,
            telemetry=warm_session,
        )
        _assert_equivalent(cold, untraced, "cold traced")
        _assert_equivalent(warm, untraced, "warm traced")
        restores = [e for e in warm_session.tracer.events() if e.name == "restored"]
        assert restores, "the restore should be visible in the trace"

    def test_mid_measure_checkpoint_resume_under_tracing(self, tmp_path):
        """Crash mid-measure, resume with tracing on: identical stats."""
        workload = find_workload("605.mcf_s")
        untraced = run_single_core(workload, "spp", GOLDEN_CONFIG, seed=SEED)

        ckpt = tmp_path / "cell.ckpt"
        sim = SingleCoreSim(workload, "spp", GOLDEN_CONFIG, seed=SEED)
        sim.warmup()
        sim.begin_measurement()
        sim.advance(800)  # "crash" partway through measurement
        save_snapshot(ckpt, sim.snapshot("measure"))

        session = Telemetry(probe_every=250)
        resumed = run_single_core(
            workload,
            "spp",
            GOLDEN_CONFIG,
            seed=SEED,
            checkpoint_path=ckpt,
            checkpoint_every=500,
            telemetry=session,
        )
        _assert_equivalent(resumed, untraced, "traced resume")
        names = {e.name for e in session.tracer.events()}
        assert "checkpoint_save" in names

    def test_checkpoint_writes_match_with_and_without_tracing(self, tmp_path):
        """Periodic checkpointing under tracing also leaves identical
        final stats versus checkpointing without tracing."""
        workload = find_workload("605.mcf_s")
        plain = run_single_core(
            workload,
            "spp",
            GOLDEN_CONFIG,
            seed=SEED,
            checkpoint_path=tmp_path / "plain.ckpt",
            checkpoint_every=700,
        )
        traced = run_single_core(
            workload,
            "spp",
            GOLDEN_CONFIG,
            seed=SEED,
            checkpoint_path=tmp_path / "traced.ckpt",
            checkpoint_every=700,
            telemetry=Telemetry(probe_every=250),
        )
        _assert_equivalent(traced, plain, "checkpointed traced")


class TestFingerprintSchemaToken:
    def test_telemetry_schema_token_participates(self):
        from repro.telemetry.schema import TELEMETRY_SCHEMA_VERSION

        fingerprint = config_fingerprint(GOLDEN_CONFIG)
        assert ("telemetry_schema", TELEMETRY_SCHEMA_VERSION) in fingerprint

    def test_schema_bump_invalidates_fingerprint(self, monkeypatch):
        import repro.telemetry.schema as telemetry_schema

        before = config_fingerprint(GOLDEN_CONFIG)
        digest_before = fingerprint_digest(GOLDEN_CONFIG)
        monkeypatch.setattr(
            telemetry_schema,
            "TELEMETRY_SCHEMA_VERSION",
            telemetry_schema.TELEMETRY_SCHEMA_VERSION + 1,
        )
        assert config_fingerprint(GOLDEN_CONFIG) != before
        assert fingerprint_digest(GOLDEN_CONFIG) != digest_before

    def test_fingerprint_stable_without_bump(self):
        assert fingerprint_digest(GOLDEN_CONFIG) == fingerprint_digest(GOLDEN_CONFIG)
