"""Whole-simulation resume: the acceptance contract of repro.checkpoint.

The strong claims proven here:

* **Golden bit-identity across processes** — warm a cell up, snapshot
  it, restore it in a *fresh spawn process* (new interpreter, no shared
  object state), measure, and land on exactly the stats pinned by
  ``tests/golden/single_core_stats.json``.  All six golden cells.
* **Sweep equivalence** — a sweep with warmup snapshot reuse produces
  byte-identical ``SuiteResult`` stats to one without.
* **Crash-resume** — completed cells adopted from a prior run's ledger
  serve without any simulation; an interrupted cell resumes from its
  periodic checkpoint and still reproduces the straight-run result.
"""

import dataclasses
import json
import multiprocessing
from pathlib import Path

import pytest

from repro.checkpoint import SnapshotStore, load_snapshot
from repro.checkpoint.replay import complete_single_core
from repro.sim.config import SimConfig
from repro.sim.single_core import SingleCoreSim, run_single_core
from repro.sim.suite import SuiteRunner, _cell_digest
from repro.workloads import find_workload

# The golden recording contract, pinned identically in
# tests/test_golden_stats.py (duplicated: test modules are not
# importable from each other under pytest's importlib mode).
GOLDEN_PATH = Path(__file__).parent / "golden" / "single_core_stats.json"
MEASURE_RECORDS = 2_000
WARMUP_RECORDS = 500
SEED = 3

GOLDEN_CONFIG = SimConfig.quick(
    measure_records=MEASURE_RECORDS, warmup_records=WARMUP_RECORDS
)


def _golden():
    return json.loads(GOLDEN_PATH.read_text())


def _assert_matches_golden(cell, result):
    expect = _golden()[cell]
    assert result.instructions == expect["instructions"], cell
    assert result.cycles == expect["cycles"], cell
    assert result.average_lookahead_depth == pytest.approx(
        expect["average_lookahead_depth"], abs=0
    )
    mismatched = {
        stat: (result.stats.get(stat), value)
        for stat, value in expect["stats"].items()
        if result.stats.get(stat) != value
    }
    assert not mismatched, f"{cell}: {len(mismatched)} stat(s) diverged"


class TestGoldenResume:
    """warmup → snapshot → restore in a fresh process → golden stats."""

    def test_all_golden_cells_resume_bit_identically(self):
        jobs = []
        for cell in sorted(_golden()):
            workload_name, scheme = cell.split("/")
            sim = SingleCoreSim(
                find_workload(workload_name), scheme, GOLDEN_CONFIG, seed=SEED
            )
            sim.warmup()
            # JSON round-trip: exactly what the on-disk snapshot applies.
            payload = json.loads(json.dumps(sim.state_dict(), separators=(",", ":")))
            jobs.append((cell, (workload_name, scheme, GOLDEN_CONFIG, SEED, payload)))

        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(1) as pool:  # one child: spawn startup dominates
            results = [pool.apply(complete_single_core, args) for _, args in jobs]
        for (cell, _), result in zip(jobs, results):
            _assert_matches_golden(cell, result)


class TestSweepEquivalence:
    WORKLOADS = ("605.mcf_s", "623.xalancbmk_s")
    SCHEMES = ["spp", "ppf"]

    def _stats(self, suite):
        return {
            f"{w}/{s}": dataclasses.asdict(r) for (w, s), r in sorted(suite.runs.items())
        }

    def test_warmup_reuse_sweep_byte_identical(self, tmp_path):
        workloads = [find_workload(name) for name in self.WORKLOADS]
        plain = SuiteRunner(GOLDEN_CONFIG, seed=SEED, jobs=1).sweep(
            workloads, self.SCHEMES
        )
        snap = tmp_path / "snaps"
        cold_runner = SuiteRunner(GOLDEN_CONFIG, seed=SEED, jobs=1, snapshot_dir=snap)
        cold = cold_runner.sweep(workloads, self.SCHEMES)
        warm_runner = SuiteRunner(GOLDEN_CONFIG, seed=SEED, jobs=1, snapshot_dir=snap)
        warm = warm_runner.sweep(workloads, self.SCHEMES)

        baseline = json.dumps(self._stats(plain), sort_keys=True)
        assert json.dumps(self._stats(cold), sort_keys=True) == baseline
        assert json.dumps(self._stats(warm), sort_keys=True) == baseline
        assert cold_runner._exec.snapshot_misses == 6
        assert warm_runner._exec.snapshot_hits == 6

    def test_warmup_snapshot_shared_across_measure_lengths(self, tmp_path):
        """The digest normalizes measure_records: one warmup, many cells."""
        workload = find_workload("605.mcf_s")
        short = dataclasses.replace(GOLDEN_CONFIG, measure_records=500)
        runner = SuiteRunner(GOLDEN_CONFIG, seed=SEED, jobs=1, snapshot_dir=tmp_path)
        runner.single(workload, "spp", short)
        runner.single(workload, "spp", GOLDEN_CONFIG)
        assert runner._exec.snapshot_misses == 1
        assert runner._exec.snapshot_hits == 1
        # And the reused-warmup long run still matches golden exactly.
        fresh = run_single_core(workload, "spp", GOLDEN_CONFIG, seed=SEED)
        reused = runner.memory_cache[
            runner._memory_key("605.mcf_s", "spp", GOLDEN_CONFIG)
        ]
        assert reused == fresh


class TestCrashResume:
    def test_ledger_preload_skips_all_simulation(self, tmp_path):
        workloads = [find_workload("605.mcf_s"), find_workload("623.xalancbmk_s")]
        ledger = tmp_path / "ledger.jsonl"
        first = SuiteRunner(
            GOLDEN_CONFIG,
            seed=SEED,
            jobs=1,
            cache_dir=tmp_path / "cache",
            ledger_path=ledger,
        )
        done = first.sweep(workloads, ["spp"])

        resumed = SuiteRunner(GOLDEN_CONFIG, seed=SEED, jobs=1)
        adopted = resumed.preload_from_ledger(ledger)
        again = resumed.sweep(workloads, ["spp"])
        assert adopted == 4
        assert resumed._exec.simulated == 0
        assert resumed._exec.resumed == 4
        assert {k: dataclasses.asdict(v) for k, v in again.runs.items()} == {
            k: dataclasses.asdict(v) for k, v in done.runs.items()
        }

    def test_ledger_preload_rejects_foreign_fingerprint_and_seed(self, tmp_path):
        workloads = [find_workload("605.mcf_s")]
        ledger = tmp_path / "ledger.jsonl"
        SuiteRunner(
            GOLDEN_CONFIG, seed=SEED, jobs=1, cache_dir=tmp_path / "c", ledger_path=ledger
        ).sweep(workloads, ["spp"])
        other_config = dataclasses.replace(GOLDEN_CONFIG, measure_records=999)
        assert SuiteRunner(other_config, seed=SEED).preload_from_ledger(ledger) == 0
        assert SuiteRunner(GOLDEN_CONFIG, seed=SEED + 1).preload_from_ledger(ledger) == 0

    def test_periodic_checkpoint_resumes_mid_measure(self, tmp_path):
        """Kill a cell mid-measure; the rerun continues from its
        checkpoint and still reproduces the straight-run stats."""
        workload = find_workload("605.mcf_s")
        straight = run_single_core(workload, "spp", GOLDEN_CONFIG, seed=SEED)

        ckpt = tmp_path / "cell.ckpt"
        sim = SingleCoreSim(workload, "spp", GOLDEN_CONFIG, seed=SEED)
        sim.warmup()
        sim.begin_measurement()
        sim.advance(800)  # "crash" partway through measurement
        from repro.checkpoint import save_snapshot

        save_snapshot(ckpt, sim.snapshot("measure"))

        resumed = run_single_core(
            workload,
            "spp",
            GOLDEN_CONFIG,
            seed=SEED,
            checkpoint_path=ckpt,
            checkpoint_every=500,
        )
        assert resumed == straight
        _assert_matches_golden("605.mcf_s/spp", resumed)

    def test_worker_cleans_up_checkpoint_after_completion(self, tmp_path):
        from repro.sim.suite import _simulate_cell

        _simulate_cell(
            find_workload("605.mcf_s"), "spp", GOLDEN_CONFIG, SEED, str(tmp_path), 500
        )
        digest = _cell_digest("605.mcf_s", "spp", GOLDEN_CONFIG, SEED)
        assert not (tmp_path / f"{digest}.ckpt").exists()
        # The warmup snapshot stays: it is the cross-run reuse artifact.
        assert list(tmp_path.glob("*.ckpt"))


class TestCheckpointCLI:
    def test_save_inspect_diff(self, tmp_path, capsys):
        from repro.__main__ import main

        a = tmp_path / "a.ckpt"
        b = tmp_path / "b.ckpt"
        base = ["checkpoint", "save", "--workload", "605.mcf_s",
                "--prefetcher", "spp", "--records", "1200"]
        assert main(base + [str(a), "--seed", "3"]) == 0
        assert main(base + [str(b), "--seed", "4"]) == 0
        assert main(["checkpoint", "inspect", str(a)]) == 0
        assert main(["checkpoint", "diff", str(a), str(a)]) == 0
        capsys.readouterr()
        assert main(["checkpoint", "diff", str(a), str(b), "--limit", "5"]) == 1
        out = json.loads(capsys.readouterr().out)
        assert out["equal"] is False and len(out["entries"]) <= 5
        assert load_snapshot(a).meta["phase"] == "warmup"

    def test_sweep_resume_flag(self, tmp_path, capsys):
        from repro.__main__ import main

        ledger = tmp_path / "ledger.jsonl"
        common = [
            "sweep", "--workloads", "605.mcf_s", "--prefetchers", "spp",
            "--records", "1000", "--seed", "3", "--jobs", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--snapshot-dir", str(tmp_path / "snaps"),
        ]
        assert main(common + ["--ledger", str(ledger)]) == 0
        capsys.readouterr()
        assert main(common + ["--resume", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "resume: adopted 2 completed cell(s)" in out


class TestWarmupStoreDirect:
    def test_store_round_trip_through_run_single_core(self, tmp_path):
        workload = find_workload("623.xalancbmk_s")
        store = SnapshotStore(tmp_path)
        cold = run_single_core(
            workload, "ppf", GOLDEN_CONFIG, seed=SEED, warmup_store=store
        )
        warm = run_single_core(
            workload, "ppf", GOLDEN_CONFIG, seed=SEED, warmup_store=store
        )
        plain = run_single_core(workload, "ppf", GOLDEN_CONFIG, seed=SEED)
        assert cold == warm == plain
        assert store.hits == 1 and store.misses == 1
