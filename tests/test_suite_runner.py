"""SuiteRunner: config fingerprinting, persistent caching, parallelism.

Includes the regression test for the stale-cache bug: the old
``_config_key`` hand-listed ten fields, so configs differing only in
e.g. ``prefetch_queue_size`` collided in the result cache.
"""

import os
import time
from dataclasses import dataclass, replace

import pytest

from repro.sim.config import SimConfig
from repro.sim.fingerprint import config_fingerprint, fingerprint_digest, value_fingerprint
from repro.sim.runner import ExperimentRunner
from repro.sim.suite import SuiteRunner
from repro.workloads.spec2017 import workload_by_name

TINY = SimConfig.quick(measure_records=1_200, warmup_records=300)


def _with_queue_size(config: SimConfig, size: int) -> SimConfig:
    return replace(config, hierarchy=replace(config.hierarchy, prefetch_queue_size=size))


class TestFingerprint:
    def test_identical_configs_agree(self):
        a = SimConfig.quick(measure_records=1_200, warmup_records=300)
        assert config_fingerprint(a) == config_fingerprint(TINY)
        assert fingerprint_digest(a) == fingerprint_digest(TINY)

    def test_every_field_contributes(self):
        # Walked automatically from the dataclass tree: any changed leaf
        # — including ones _config_key used to omit — changes the key.
        base = TINY
        variants = [
            replace(base, hierarchy=replace(base.hierarchy, l1_assoc=6)),
            replace(base, hierarchy=replace(base.hierarchy, l2_assoc=4)),
            replace(base, hierarchy=replace(base.hierarchy, l2_latency=12)),
            replace(base, hierarchy=replace(base.hierarchy, max_prefetches_per_trigger=8)),
            _with_queue_size(base, 16),
            replace(base, dram=replace(base.dram, row_hit_latency=base.dram.row_hit_latency + 10)),
            replace(base, dram=replace(base.dram, row_miss_latency=base.dram.row_miss_latency + 10)),
        ]
        fingerprints = {config_fingerprint(v) for v in variants}
        assert config_fingerprint(base) not in fingerprints
        assert len(fingerprints) == len(variants)

    def test_prefetch_queue_size_regression(self):
        """The headline stale-cache bug: two configs differing only in
        prefetch_queue_size must get distinct keys AND distinct results."""
        small = _with_queue_size(TINY, 1)
        large = _with_queue_size(TINY, 64)
        assert config_fingerprint(small) != config_fingerprint(large)
        assert fingerprint_digest(small) != fingerprint_digest(large)

        runner = ExperimentRunner(seed=3)
        wl = workload_by_name("619.lbm_s")
        a = runner.single(wl, "spp", small)
        b = runner.single(wl, "spp", large)
        # Both results live in the cache under distinct keys...
        assert len(runner._single_cache) == 2
        # ...and a 1-deep prefetch queue genuinely throttles prefetching.
        assert a.prefetches_issued < b.prefetches_issued

    def test_non_dataclass_rejected(self):
        with pytest.raises(TypeError):
            config_fingerprint({"not": "a dataclass"})

    def test_value_tokens(self):
        @dataclass
        class Inner:
            n: int = 2

        @dataclass
        class Outer:
            inner: Inner
            names: tuple = ("a", "b")

        token = value_fingerprint(Outer(inner=Inner()))
        assert token == (("inner", (("n", 2),)), ("names", ("a", "b")))
        assert hash(token) is not None  # usable as a dict key
        # Callables fingerprint by qualified name, not object address.
        assert value_fingerprint(workload_by_name) == value_fingerprint(workload_by_name)


class TestDiskCache:
    def test_second_invocation_zero_resimulations(self, tmp_path):
        workloads = [workload_by_name(n) for n in ("605.mcf_s", "619.lbm_s")]
        first = SuiteRunner(TINY, seed=2, jobs=1, cache_dir=tmp_path)
        r1 = first.sweep(workloads, ["spp"])
        assert first.simulated == 4  # 2 workloads × (none + spp)
        assert first.disk_hits == 0

        second = SuiteRunner(TINY, seed=2, jobs=1, cache_dir=tmp_path)
        r2 = second.sweep(workloads, ["spp"])
        assert second.simulated == 0
        assert second.disk_hits == 4
        assert r1.runs == r2.runs

    def test_cache_respects_config_and_seed(self, tmp_path):
        wl = workload_by_name("619.lbm_s")
        a = SuiteRunner(TINY, seed=2, cache_dir=tmp_path, jobs=1)
        a.single(wl, "spp")
        b = SuiteRunner(_with_queue_size(TINY, 1), seed=2, cache_dir=tmp_path, jobs=1)
        b.single(wl, "spp")
        assert b.simulated == 1  # different config: disk entry not reused
        c = SuiteRunner(TINY, seed=9, cache_dir=tmp_path, jobs=1)
        c.single(wl, "spp")
        assert c.simulated == 1  # different seed: disk entry not reused
        d = SuiteRunner(TINY, seed=2, cache_dir=tmp_path, jobs=1)
        d.single(wl, "spp")
        assert d.simulated == 0 and d.disk_hits == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        wl = workload_by_name("619.lbm_s")
        a = SuiteRunner(TINY, seed=2, cache_dir=tmp_path, jobs=1)
        a.single(wl, "spp")
        for entry in tmp_path.glob("*.json"):
            entry.write_text("{not json")
        b = SuiteRunner(TINY, seed=2, cache_dir=tmp_path, jobs=1)
        result = b.single(wl, "spp")
        assert b.simulated == 1
        assert result == a.single(wl, "spp")

    def test_memory_cache_without_cache_dir(self):
        runner = SuiteRunner(TINY, seed=2, jobs=1)
        wl = workload_by_name("619.lbm_s")
        runner.single(wl, "spp")
        runner.single(wl, "spp")
        assert runner.simulated == 1
        assert runner.memory_hits == 1


class TestSuiteRunner:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            SuiteRunner(TINY, jobs=0)

    def test_parallel_sweep_uses_and_fills_disk_cache(self, tmp_path):
        workloads = [workload_by_name(n) for n in ("605.mcf_s", "619.lbm_s")]
        first = SuiteRunner(TINY, seed=2, jobs=2, cache_dir=tmp_path)
        r1 = first.sweep(workloads, ["spp"])
        assert first.simulated == 4
        second = SuiteRunner(TINY, seed=2, jobs=2, cache_dir=tmp_path)
        r2 = second.sweep(workloads, ["spp"])
        assert second.simulated == 0 and second.disk_hits == 4
        assert r1.runs == r2.runs

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 4, reason="speedup acceptance needs a 4-core runner"
    )
    def test_parallel_speedup_on_multicore_host(self):
        """Acceptance: a 4×3 sweep with jobs=4 is ≥2× faster than jobs=1
        and produces identical results."""
        cfg = SimConfig.quick(measure_records=6_000, warmup_records=1_500)
        workloads = [
            workload_by_name(n)
            for n in ("605.mcf_s", "619.lbm_s", "623.xalancbmk_s", "657.xz_s")
        ]
        schemes = ["spp", "ppf", "bop"]
        start = time.perf_counter()
        serial = SuiteRunner(cfg, seed=2, jobs=1).sweep(
            workloads, schemes, include_baseline=False
        )
        serial_s = time.perf_counter() - start
        start = time.perf_counter()
        parallel = SuiteRunner(cfg, seed=2, jobs=4).sweep(
            workloads, schemes, include_baseline=False
        )
        parallel_s = time.perf_counter() - start
        assert serial.runs == parallel.runs
        assert serial_s / parallel_s >= 2.0

    def test_experiment_runner_delegates(self, tmp_path):
        runner = ExperimentRunner(TINY, seed=2, jobs=1, cache_dir=tmp_path)
        workloads = [workload_by_name("619.lbm_s")]
        suite = runner.sweep(workloads, ["spp"])
        assert set(suite.runs) == {("619.lbm_s", "none"), ("619.lbm_s", "spp")}
        # single() and sweep() share one cache through the SuiteRunner.
        runner.single(workloads[0], "spp")
        assert runner._suite.simulated == 2
        assert runner._suite.memory_hits == 1


def _stub_result(workload, prefetcher, cycles=100, l2_misses=10, llc_misses=5):
    from repro.sim.single_core import RunResult

    return RunResult(
        workload=workload,
        prefetcher=prefetcher,
        instructions=1_000,
        cycles=cycles,
        l2_demand_accesses=100,
        l2_misses=l2_misses,
        llc_misses=llc_misses,
        prefetches_issued=0,
        prefetches_useful=0,
        prefetch_candidates=0,
        dram_accesses=0,
    )


class TestResultsLayerBaselines:
    """Regression: missing baselines must not leak bare KeyErrors."""

    def _suite(self, cells):
        from repro.sim.suite import SuiteResult

        return SuiteResult(runs={key: _stub_result(*key, **kw) for key, kw in cells.items()})

    def test_speedups_raises_clear_error_without_baseline(self):
        suite = self._suite({("w1", "spp"): {}, ("w2", "spp"): {}})
        with pytest.raises(ValueError) as excinfo:
            suite.speedups("spp")
        assert "'none'" in str(excinfo.value)
        assert "w1" in str(excinfo.value)

    def test_geomean_speedup_raises_clear_error_without_baseline(self):
        suite = self._suite({("w1", "spp"): {}})
        with pytest.raises(ValueError):
            suite.geomean_speedup("spp")

    def test_speedups_skips_workloads_missing_baseline(self):
        suite = self._suite(
            {
                ("w1", "spp"): {"cycles": 50},
                ("w1", "none"): {"cycles": 100},
                ("w2", "spp"): {},  # degraded sweep: w2's baseline lost
            }
        )
        assert suite.speedups("spp") == {"w1": pytest.approx(2.0)}

    def test_speedups_against_alternate_baseline(self):
        suite = self._suite(
            {("w1", "ppf"): {"cycles": 50}, ("w1", "spp"): {"cycles": 75}}
        )
        assert suite.speedups("ppf", baseline="spp") == {"w1": pytest.approx(1.5)}

    def test_coverage_accepts_baseline_parameter(self):
        suite = self._suite(
            {
                ("w1", "ppf"): {"l2_misses": 20},
                ("w1", "spp"): {"l2_misses": 80},
            }
        )
        assert suite.coverage("ppf", "l2", baseline="spp") == pytest.approx(0.75)

    def test_coverage_raises_clear_error_without_baseline(self):
        suite = self._suite({("w1", "spp"): {}})
        with pytest.raises(ValueError) as excinfo:
            suite.coverage("spp")
        assert "baseline" in str(excinfo.value)

    def test_coverage_still_rejects_unknown_level(self):
        suite = self._suite({("w1", "spp"): {}, ("w1", "none"): {}})
        with pytest.raises(ValueError):
            suite.coverage("spp", "l4")


class TestDiskCacheAtomicity:
    """Regression: concurrent writers must never share a staging file."""

    def test_tmp_names_are_unique_per_call(self, tmp_path):
        # The suite runner's staging files now come from the shared
        # repro.ioutil helper (one tmp-rename idiom repo-wide).
        from repro.ioutil import unique_tmp as _unique_tmp

        target = tmp_path / "entry.json"
        first, second = _unique_tmp(target), _unique_tmp(target)
        assert first != second
        assert str(os.getpid()) in first.name
        assert first.suffix == ".tmp" and second.suffix == ".tmp"
        assert first.parent == target.parent

    def test_store_publishes_entry_and_leaves_no_staging_files(self, tmp_path):
        wl = workload_by_name("619.lbm_s")
        runner = SuiteRunner(TINY, seed=2, cache_dir=tmp_path, jobs=1)
        result = runner.single(wl, "spp")
        runner._disk_store(wl.name, "spp", TINY, result)  # overwrite in place
        assert list(tmp_path.glob("*.tmp")) == []
        entries = list(tmp_path.glob("*.json"))
        assert len(entries) == 1
        reloaded = runner._disk_load(wl.name, "spp", TINY)
        assert reloaded == result
