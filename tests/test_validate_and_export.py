"""Tests for the scorecard (harness.validate) and data export."""

import json

import pytest

from repro.harness.export import (
    figure1_rows,
    figure9_rows,
    figure10_rows,
    multicore_rows,
    to_csv,
    to_json,
    write_rows,
)
from repro.harness.figure01 import run_figure1
from repro.harness.figure09 import run_figure9
from repro.harness.figure10 import run_figure10
from repro.harness.validate import Scorecard, report_scorecard, validate
from repro.sim.config import SimConfig
from repro.workloads.spec2017 import workload_by_name

MINI = SimConfig.quick(measure_records=2_500, warmup_records=600)


class TestScorecard:
    def test_structural_claims_pass(self):
        scorecard = validate(include_sweeps=False)
        assert scorecard.total == 3
        assert scorecard.all_passed
        assert scorecard.failures() == []

    def test_counts(self):
        scorecard = Scorecard()
        scorecard.add("a", "first", True)
        scorecard.add("b", "second", False, "detail")
        assert scorecard.passed == 1
        assert scorecard.total == 2
        assert not scorecard.all_passed
        assert [c.id for c in scorecard.failures()] == ["b"]

    def test_report_renders(self):
        scorecard = validate(include_sweeps=False)
        out = report_scorecard(scorecard)
        assert "Reproduction scorecard" in out
        assert "3/3 claims hold" in out

    def test_cli_validate_fast(self, capsys):
        from repro.__main__ import main

        assert main(["validate", "--fast"]) == 0
        assert "claims hold" in capsys.readouterr().out


class TestExportRows:
    def test_figure1_rows(self):
        result = run_figure1(depths=(3, 5), config=MINI)
        rows = figure1_rows(result)
        assert [row["depth"] for row in rows] == [3, 5]
        assert {"depth", "ipc", "total_pf", "good_pf"} <= set(rows[0])

    @pytest.fixture(scope="class")
    def fig9(self):
        workloads = [workload_by_name("603.bwaves_s"), workload_by_name("641.leela_s")]
        return run_figure9(workloads=workloads, config=MINI, schemes=("spp", "ppf"))

    def test_figure9_rows(self, fig9):
        rows = figure9_rows(fig9)
        assert [row["workload"] for row in rows] == ["603.bwaves_s", "641.leela_s"]
        assert all("spp" in row and "ppf" in row for row in rows)

    def test_figure10_rows(self, fig9):
        fig10 = run_figure10(suite=fig9.suite, schemes=("spp", "ppf"))
        rows = figure10_rows(fig10)
        assert {row["scheme"] for row in rows} == {"spp", "ppf"}
        assert all("l2_coverage" in row for row in rows)

    def test_multicore_rows(self):
        from repro.harness.figures11_12 import run_multicore_figure
        from repro.sim.config import SimConfig

        config = SimConfig.multicore(2)
        config.measure_records, config.warmup_records = 800, 200
        result = run_multicore_figure(2, mix_count=2, config=config, schemes=("spp",))
        rows = multicore_rows(result)
        assert [row["rank"] for row in rows] == [0, 1]
        assert rows[0]["spp"] <= rows[1]["spp"]  # sorted series


class TestSerialization:
    ROWS = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}]

    def test_csv(self):
        out = to_csv(self.ROWS)
        lines = out.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"

    def test_csv_empty(self):
        assert to_csv([]) == ""

    def test_json_roundtrip(self):
        assert json.loads(to_json(self.ROWS)) == self.ROWS

    def test_write_rows_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_rows(self.ROWS, str(path))
        assert path.read_text().startswith("a,b")

    def test_write_rows_json(self, tmp_path):
        path = tmp_path / "out.json"
        write_rows(self.ROWS, str(path))
        assert json.loads(path.read_text()) == self.ROWS

    def test_write_rows_unknown_extension(self, tmp_path):
        with pytest.raises(ValueError):
            write_rows(self.ROWS, str(tmp_path / "out.xml"))
