"""Tests for the workload suites and mix builders."""


import pytest

from repro.cpu.trace import trace_stats
from repro.workloads.cloudsuite import cloudsuite_workloads
from repro.workloads.mixes import (
    build_mixes,
    memory_intensive_mixes,
    random_mixes,
)
from repro.workloads.recipes import Recipe, recipe
from repro.workloads.spec2006 import spec2006_memory_intensive, spec2006_workloads
from repro.workloads.spec2017 import (
    memory_intensive_subset,
    spec2017_workloads,
    workload_by_name,
)


class TestSpec2017Suite:
    def test_twenty_workloads(self):
        assert len(spec2017_workloads()) == 20

    def test_eleven_memory_intensive(self):
        """§5.3: 11 of 20 SPEC CPU 2017 applications have LLC MPKI > 1."""
        assert len(memory_intensive_subset()) == 11

    def test_names_are_spec_names(self):
        names = {w.name for w in spec2017_workloads()}
        for expected in ("603.bwaves_s", "605.mcf_s", "623.xalancbmk_s", "657.xz_s"):
            assert expected in names

    def test_no_duplicate_names(self):
        names = [w.name for w in spec2017_workloads()]
        assert len(names) == len(set(names))

    def test_lookup_by_name(self):
        assert workload_by_name("605.mcf_s").memory_intensive

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            workload_by_name("999.nothing")

    def test_traces_are_deterministic(self):
        spec = workload_by_name("603.bwaves_s")
        a = list(spec.trace(200, seed=5))
        b = list(spec.trace(200, seed=5))
        assert a == b

    def test_traces_differ_across_seeds(self):
        spec = workload_by_name("603.bwaves_s")
        assert list(spec.trace(200, seed=1)) != list(spec.trace(200, seed=2))

    def test_trace_length(self):
        spec = workload_by_name("619.lbm_s")
        assert len(list(spec.trace(321))) == 321

    def test_every_workload_generates(self):
        for spec in spec2017_workloads():
            records = list(spec.trace(50, seed=3))
            assert len(records) == 50
            assert all(r.addr >= 0 and r.pc > 0 for r in records)

    def test_intensive_workloads_are_denser(self):
        """Memory-intensive models carry more loads per instruction."""
        dense = trace_stats(workload_by_name("603.bwaves_s").trace(2000))
        sparse = trace_stats(workload_by_name("648.exchange2_s").trace(2000))
        assert (
            dense.loads_per_kilo_instruction > sparse.loads_per_kilo_instruction
        )

    def test_intensive_footprints_are_larger(self):
        big = trace_stats(workload_by_name("605.mcf_s").trace(3000))
        small = trace_stats(workload_by_name("641.leela_s").trace(3000))
        assert big.unique_blocks > small.unique_blocks


class TestSpec2006Suite:
    def test_twenty_nine_workloads(self):
        """§5.3: 94 simpoints across all 29 SPEC CPU 2006 applications."""
        assert len(spec2006_workloads()) == 29

    def test_sixteen_memory_intensive(self):
        assert len(spec2006_memory_intensive()) == 16

    def test_suite_label(self):
        assert all(w.suite == "spec2006" for w in spec2006_workloads())

    def test_all_generate(self):
        for spec in spec2006_workloads():
            assert len(list(spec.trace(30, seed=1))) == 30


class TestCloudSuite:
    def test_four_applications(self):
        """§5.3: four 4-core CloudSuite applications from CRC-2."""
        assert len(cloudsuite_workloads()) == 4

    def test_all_generate(self):
        for spec in cloudsuite_workloads():
            assert len(list(spec.trace(30, seed=1))) == 30


class TestRecipes:
    def test_recipe_builds_trace(self):
        rcp = recipe(("stream", {"span": 4}, 1.0, 3))
        assert len(list(rcp.build(25, seed=1))) == 25

    def test_unknown_kind_raises(self):
        rcp = recipe(("warp-drive", {}, 1.0, 3))
        with pytest.raises(ValueError):
            list(rcp.build(10, seed=1))

    def test_all_kinds_build(self):
        kinds = ["stream", "strided", "chase", "phase", "scatter", "hotset", "random"]
        rcp = Recipe(tuple((k, {}, 1.0, 2) for k in kinds))
        assert len(list(rcp.build(70, seed=1))) == 70


class TestMixes:
    def test_mix_count_and_cores(self):
        mixes = memory_intensive_mixes(4, 10, seed=1)
        assert len(mixes) == 10
        assert all(m.cores == 4 for m in mixes)

    def test_memory_intensive_mixes_only_contain_intensive(self):
        intensive = {w.name for w in memory_intensive_subset()}
        for mix in memory_intensive_mixes(4, 20, seed=2):
            assert all(w.name in intensive for w in mix.workloads)

    def test_random_mixes_draw_from_full_suite(self):
        names = set()
        for mix in random_mixes(4, 30, seed=2):
            names.update(w.name for w in mix.workloads)
        all_names = {w.name for w in spec2017_workloads()}
        assert names <= all_names
        assert len(names) > 11  # touches beyond the intensive subset

    def test_deterministic(self):
        a = memory_intensive_mixes(4, 5, seed=9)
        b = memory_intensive_mixes(4, 5, seed=9)
        assert [m.workloads for m in a] == [m.workloads for m in b]

    def test_sampling_with_replacement_allowed(self):
        mixes = build_mixes(memory_intensive_subset()[:2], 8, 5, seed=1)
        names = [w.name for w in mixes[0].workloads]
        assert len(set(names)) < len(names)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            build_mixes(memory_intensive_subset(), 0, 5)
        with pytest.raises(ValueError):
            build_mixes([], 4, 5)

    def test_mix_names_unique(self):
        mixes = memory_intensive_mixes(4, 10, seed=1)
        assert len({m.name for m in mixes}) == 10
