"""Determinism guarantees across the whole stack.

Reproducibility is a core requirement for a reproduction repo: same
seeds, same bits.  These tests cover every stochastic component.
"""

import pytest

from repro.sim.config import SimConfig
from repro.sim.multi_core import run_multi_core
from repro.sim.single_core import run_single_core
from repro.workloads.mixes import WorkloadMix, memory_intensive_mixes, random_mixes
from repro.workloads.simpoint import select_simpoints
from repro.workloads.spec2017 import spec2017_workloads, workload_by_name

TINY = SimConfig.quick(measure_records=1_500, warmup_records=400)


class TestTraceDeterminism:
    @pytest.mark.parametrize("name", [w.name for w in spec2017_workloads()[:6]])
    def test_every_workload_trace_reproducible(self, name):
        spec = workload_by_name(name)
        assert list(spec.trace(150, seed=2)) == list(spec.trace(150, seed=2))


class TestSimulationDeterminism:
    @pytest.mark.parametrize("scheme", ["none", "spp", "ppf", "bop", "da-ampm", "vldp"])
    def test_single_core_bitwise_identical(self, scheme):
        workload = workload_by_name("623.xalancbmk_s")
        a = run_single_core(workload, scheme, TINY, seed=3)
        b = run_single_core(workload, scheme, TINY, seed=3)
        assert (a.cycles, a.l2_misses, a.prefetches_issued, a.prefetches_useful) == (
            b.cycles,
            b.l2_misses,
            b.prefetches_issued,
            b.prefetches_useful,
        )

    def test_multi_core_bitwise_identical(self):
        cfg = SimConfig.multicore(2)
        cfg.warmup_records, cfg.measure_records = 200, 800
        mix = WorkloadMix(
            name="t",
            workloads=(workload_by_name("619.lbm_s"), workload_by_name("657.xz_s")),
        )
        a = run_multi_core(mix, "ppf", cfg, seed=5)
        b = run_multi_core(mix, "ppf", cfg, seed=5)
        assert [c.cycles for c in a.cores] == [c.cycles for c in b.cores]
        assert [c.prefetches_issued for c in a.cores] == [
            c.prefetches_issued for c in b.cores
        ]

    def test_seed_changes_results(self):
        workload = workload_by_name("623.xalancbmk_s")
        a = run_single_core(workload, "spp", TINY, seed=3)
        b = run_single_core(workload, "spp", TINY, seed=4)
        assert a.cycles != b.cycles


class TestParallelDeterminism:
    def test_parallel_sweep_matches_serial(self):
        """jobs=4 over a 3×3 grid is bit-identical to the serial sweep.

        Every cell is an isolated deterministic simulation, so process
        fan-out must not change a single counter anywhere in the stats
        tree (compared via RunResult equality, which includes the full
        flattened snapshot).
        """
        from repro.sim.suite import SuiteRunner

        workloads = [
            workload_by_name(n) for n in ("605.mcf_s", "619.lbm_s", "623.xalancbmk_s")
        ]
        schemes = ["spp", "ppf", "bop"]
        serial = SuiteRunner(TINY, seed=3, jobs=1).sweep(
            workloads, schemes, include_baseline=False
        )
        parallel = SuiteRunner(TINY, seed=3, jobs=4).sweep(
            workloads, schemes, include_baseline=False
        )
        assert set(serial.runs) == set(parallel.runs)
        assert len(serial.runs) == 9
        for cell in serial.runs:
            assert serial.runs[cell] == parallel.runs[cell], cell


class TestSnapshotStreamDeterminism:
    """Every workload generator's RNG stream survives a snapshot.

    Each catalog trace is advanced partway, its ``state_dict`` is JSON
    round-tripped (exactly what the on-disk snapshot applies), and the
    remaining records are produced twice: by the live stream in this
    process and by a restore in a *fresh spawn process* — so no leftover
    interpreter state can mask a broken RNG encoding.  The streams must
    match record for record.
    """

    N_RECORDS, CUT, SEED = 600, 250, 11

    def _snapshot_jobs(self):
        import json

        jobs, expected = [], []
        for spec in spec2017_workloads():
            trace = spec.trace(self.N_RECORDS, seed=self.SEED)
            it = iter(trace)
            for _ in range(self.CUT):
                next(it)
            state = json.loads(json.dumps(trace.state_dict(), separators=(",", ":")))
            jobs.append((spec.name, self.N_RECORDS, self.SEED, state))
            expected.append([(rec.pc, rec.addr, rec.bubble) for rec in it])
        return jobs, expected

    def test_every_workload_stream_resumes_in_process(self):
        from repro.checkpoint.replay import remaining_records

        jobs, expected = self._snapshot_jobs()
        for job, want in zip(jobs, expected):
            assert remaining_records(*job) == want, job[0]
            assert len(want) == self.N_RECORDS - self.CUT

    def test_every_workload_stream_resumes_in_fresh_process(self):
        import multiprocessing

        from repro.checkpoint.replay import replay_batch

        jobs, expected = self._snapshot_jobs()
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(1) as pool:  # one child: spawn startup dominates
            resumed = pool.apply(replay_batch, (jobs,))
        for job, want, got in zip(jobs, expected, resumed):
            assert got == want, job[0]


class TestSamplingDeterminism:
    def test_mix_builders(self):
        def names(mixes):
            return [[w.name for w in m.workloads] for m in mixes]

        assert names(memory_intensive_mixes(4, 6, seed=2)) == names(
            memory_intensive_mixes(4, 6, seed=2)
        )
        assert names(random_mixes(4, 6, seed=2)) == names(random_mixes(4, 6, seed=2))

    def test_simpoint_selection(self):
        trace = list(workload_by_name("623.xalancbmk_s").trace(4_000, seed=1))
        assert select_simpoints(trace, 500, seed=7) == select_simpoints(
            trace, 500, seed=7
        )
