"""Tests for repro.analysis.overhead — must match the paper bit-for-bit."""

import pytest

from repro.analysis.overhead import (
    adder_tree_depth,
    overhead_report,
    perceptron_weight_bits,
    prefetch_table_entry_fields,
    storage_inventory,
    total_storage_bits,
    total_storage_kilobytes,
)


class TestTable2:
    def test_entry_is_85_bits(self):
        assert sum(f.bits for f in prefetch_table_entry_fields()) == 85

    def test_field_names(self):
        names = [f.name for f in prefetch_table_entry_fields()]
        assert names == [
            "Valid",
            "Tag",
            "Useful",
            "Perc Decision",
            "PC",
            "Address",
            "Curr Signature",
            "PCi Hash",
            "Delta",
            "Confidence",
            "Depth",
        ]

    def test_individual_field_widths(self):
        widths = {f.name: f.bits for f in prefetch_table_entry_fields()}
        assert widths["Valid"] == 1
        assert widths["Tag"] == 6
        assert widths["PC"] == 12
        assert widths["Address"] == 24
        assert widths["Delta"] == 7
        assert widths["Depth"] == 4


class TestTable3:
    def inventory(self):
        return {s.name: s for s in storage_inventory()}

    def test_total_is_322240_bits(self):
        assert total_storage_bits() == 322_240

    def test_total_is_39_34_kb(self):
        assert total_storage_kilobytes() == pytest.approx(39.34, abs=0.005)

    def test_signature_table_bits(self):
        assert self.inventory()["Signature Table"].total_bits == 11_008

    def test_pattern_table_bits(self):
        assert self.inventory()["Pattern Table"].total_bits == 24_576

    def test_perceptron_weight_bits(self):
        assert perceptron_weight_bits() == 113_280

    def test_prefetch_table_bits(self):
        assert self.inventory()["Prefetch Table"].total_bits == 87_040

    def test_reject_table_bits(self):
        """84 bits/entry: the Reject Table drops the useful bit."""
        reject = self.inventory()["Reject Table"]
        assert reject.bits_per_entry == 84
        assert reject.total_bits == 86_016

    def test_ghr_bits(self):
        assert self.inventory()["Global History Register"].total_bits == 264

    def test_pc_trackers_bits(self):
        assert self.inventory()["Global PC Trackers"].total_bits == 36

    def test_accuracy_counters(self):
        inv = self.inventory()
        total = (
            inv["Accuracy Counter C_total"].total_bits
            + inv["Accuracy Counter C_useful"].total_bits
        )
        assert total == 20


class TestComputation:
    def test_adder_tree_depth_for_nine_features(self):
        """§5.6: ceil(log2(9)) = 4 adder stages."""
        assert adder_tree_depth(9) == 4

    def test_adder_tree_depths(self):
        assert adder_tree_depth(1) == 0
        assert adder_tree_depth(2) == 1
        assert adder_tree_depth(8) == 3
        assert adder_tree_depth(16) == 4

    def test_rejects_zero_features(self):
        with pytest.raises(ValueError):
            adder_tree_depth(0)


class TestReport:
    def test_report_summary(self):
        report = overhead_report()
        assert report["prefetch_table_entry_bits"] == 85
        assert report["total_bits"] == 322_240
        assert report["total_kilobytes"] == 39.34
        assert report["adder_tree_depth"] == 4
