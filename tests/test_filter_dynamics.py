"""Learning-dynamics tests for the perceptron filter (§3.1 behaviour).

Beyond the mechanical unit tests in test_filter.py, these verify the
*adaptive* properties the paper claims: fast retraining on phase
change, false-negative recovery through the Reject Table, and the role
of the θ saturation guards in keeping the filter plastic.
"""


from repro.core.features import FeatureContext
from repro.core.filter import Decision, FilterConfig, PerceptronFilter
from repro.core.ppf import PPF
from repro.prefetchers.base import PrefetchCandidate, Prefetcher


class QueuedPrefetcher(Prefetcher):
    name = "queued"

    def __init__(self):
        super().__init__()
        self.pending = []

    def train(self, addr, pc, cache_hit, cycle):
        out, self.pending = self.pending, []
        return out


def ctx(confidence=50, addr=0x40000, depth=1, pc=0x400):
    return FeatureContext(
        candidate_addr=addr,
        trigger_addr=addr - 0x40,
        pc=pc,
        pcs=(pc, pc - 4, pc - 8),
        delta=1,
        depth=depth,
        signature=0x3,
        last_signature=0x1,
        confidence=confidence,
    )


def candidate(addr, confidence=50, depth=1):
    return PrefetchCandidate(
        addr=addr,
        meta={"pc": 0x400, "delta": 1, "signature": 0x3,
              "confidence": confidence, "depth": depth},
    )


class TestPhaseAdaptation:
    def teach(self, filt, context, positive, rounds):
        for _ in range(rounds):
            filt.train(filt.feature_indices(context), positive)

    def test_relearn_after_phase_flip(self):
        """A context trained positive, then negative, must flip decision."""
        filt = PerceptronFilter(config=FilterConfig(theta_p=40, theta_n=-40))
        c = ctx(confidence=70)
        self.teach(filt, c, True, 30)
        assert filt.infer(c)[0].accepted
        self.teach(filt, c, False, 30)
        assert filt.infer(c)[0] is Decision.REJECT

    def test_theta_guard_bounds_relearn_time(self):
        """With guards, flipping takes few updates; without, many more."""

        def flips_needed(theta):
            filt = PerceptronFilter(
                config=FilterConfig(theta_p=theta, theta_n=-theta)
            )
            c = ctx(confidence=70)
            self.teach(filt, c, True, 60)
            count = 0
            while filt.infer(c)[0].accepted and count < 200:
                filt.train(filt.feature_indices(c), False)
                count += 1
            return count

        assert flips_needed(30) < flips_needed(10_000)


class TestRejectTableRecovery:
    def test_rejected_context_recovers_via_demand(self):
        """§3.1: a demanded-but-rejected block retrains toward accept."""
        ppf = PPF(
            underlying=QueuedPrefetcher(),
            filter_config=FilterConfig(tau_hi=100, tau_lo=100, theta_p=90, theta_n=-90),
        )
        # Everything is rejected under these taus; drive many rounds of
        # reject-then-demand so positive training accumulates.
        for i in range(40):
            addr = 0x200000 + i * 64
            ppf.underlying.pending = [candidate(addr, confidence=70)]
            assert ppf.train(0x100000 + i * 64, 0x400, False, i) == []
            ppf.train(addr, 0x404, False, i)  # demand proves rejection wrong
        # Recovery trains positively until theta_p saturates the sum —
        # the guard then suppresses further (already-convinced) updates.
        assert ppf.filter.stats.positive_updates >= 10
        assert ppf.filter.stats.suppressed_updates > 0
        assert ppf.reject_table.hits == 40
        # The trained sum for this context family is now strongly positive.
        indices = ppf.filter.feature_indices(ctx(confidence=70, addr=0x200000))
        assert ppf.filter.weight_sum(indices) > 0

    def test_without_reject_table_no_recovery(self):
        ppf = PPF(
            underlying=QueuedPrefetcher(),
            filter_config=FilterConfig(tau_hi=100, tau_lo=100),
            use_reject_table=False,
        )
        for i in range(20):
            addr = 0x200000 + i * 64
            ppf.underlying.pending = [candidate(addr, confidence=70)]
            ppf.train(0x100000 + i * 64, 0x400, False, i)
            ppf.train(addr, 0x404, False, i)
        assert ppf.filter.stats.positive_updates == 0


class TestInterference:
    def test_feature_aliasing_is_bounded_by_other_features(self):
        """Two contexts sharing ONE feature index must stay separable
        when their other features disagree consistently."""
        filt = PerceptronFilter(config=FilterConfig(theta_p=60, theta_n=-60))
        good = ctx(confidence=42, addr=0x111000, depth=1, pc=0x500)
        bad = ctx(confidence=42, addr=0x999000, depth=9, pc=0x900)
        for _ in range(40):
            filt.train(filt.feature_indices(good), True)
            filt.train(filt.feature_indices(bad), False)
        _, good_sum, _ = filt.infer(good)
        _, bad_sum, _ = filt.infer(bad)
        # The shared confidence weight cancels; the rest separates them.
        assert good_sum - bad_sum > 20

    def test_llc_band_is_between(self):
        """Sums near zero land in the LLC band — the 'moderately
        confident' middle ground of §3.1."""
        filt = PerceptronFilter(config=FilterConfig(tau_hi=8, tau_lo=-8))
        c = ctx()
        filt.train(filt.feature_indices(c), True)  # sum = +9 -> L2
        assert filt.infer(c)[0] is Decision.PREFETCH_L2
        filt.train(filt.feature_indices(c), False)  # back to 0 -> LLC band
        decision, total, _ = filt.infer(c)
        assert decision is Decision.PREFETCH_LLC
        assert -8 <= total < 8
