"""Characterization tests: workload models behave like their namesakes.

These run small simulations and check that each model's *memory
behaviour class* matches what the paper (and SPEC lore) says about the
benchmark it stands in for — the property the substitution argument in
DESIGN.md rests on.
"""

import pytest

from repro.sim.config import SimConfig
from repro.sim.runner import ExperimentRunner
from repro.workloads.spec2017 import (
    memory_intensive_subset,
    spec2017_workloads,
    workload_by_name,
)

CFG = SimConfig.quick(measure_records=6_000, warmup_records=3_000)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(CFG)


class TestIntensityClasses:
    def test_intensive_mpki_above_light(self, runner):
        """Every memory-intensive model out-misses every light model."""
        intensive_mpki = [
            runner.single(w, "none").llc_mpki for w in memory_intensive_subset()[:5]
        ]
        light = [w for w in spec2017_workloads() if not w.memory_intensive][:5]
        light_mpki = [runner.single(w, "none").llc_mpki for w in light]
        assert min(intensive_mpki) > max(light_mpki) * 0.8

    def test_intensive_subset_has_high_mpki(self, runner):
        for workload in memory_intensive_subset()[:5]:
            assert runner.single(workload, "none").llc_mpki > 3.0, workload.name

    def test_light_workloads_have_low_mpki(self, runner):
        # Short test-scale runs keep part of the hot set cold, so the
        # bound is loose; at bench scale these models sit near MPKI 1.
        for name in ("648.exchange2_s", "641.leela_s"):
            result = runner.single(workload_by_name(name), "none")
            assert result.llc_mpki < 6.0, name


class TestBehaviourClasses:
    def test_mcf_is_prefetch_averse(self, runner):
        """Pointer chasing: even the best scheme gains little."""
        workload = workload_by_name("605.mcf_s")
        base = runner.single(workload, "none")
        best = max(
            runner.single(workload, scheme).ipc for scheme in ("spp", "ppf", "bop")
        )
        assert best / base.ipc < 1.6

    def test_bwaves_is_prefetch_friendly(self, runner):
        workload = workload_by_name("603.bwaves_s")
        base = runner.single(workload, "none")
        spp = runner.single(workload, "spp")
        assert spp.ipc / base.ipc > 1.5

    def test_cactu_defeats_page_local_prefetchers(self, runner):
        """One access per ~1.5 pages: SPP and AMPM stay near baseline."""
        workload = workload_by_name("607.cactuBSSN_s")
        base = runner.single(workload, "none")
        for scheme in ("spp", "da-ampm"):
            ratio = runner.single(workload, scheme).ipc / base.ipc
            assert ratio < 1.3, scheme

    def test_xalancbmk_has_exploitable_phases(self, runner):
        """Phase-varying deltas: prefetchable, but accuracy-sensitive."""
        workload = workload_by_name("623.xalancbmk_s")
        base = runner.single(workload, "none")
        spp = runner.single(workload, "spp")
        assert spp.ipc / base.ipc > 1.4
        assert spp.accuracy < 0.9  # phase churn costs accuracy

    def test_streams_prefetch_accurately(self, runner):
        workload = workload_by_name("649.fotonik3d_s")
        result = runner.single(workload, "ppf")
        assert result.accuracy > 0.6


class TestDeterminismAcrossSuite:
    def test_fixed_seed_reproduces_results(self):
        workload = workload_by_name("619.lbm_s")
        from repro.sim.single_core import run_single_core

        a = run_single_core(workload, "ppf", CFG, seed=9)
        b = run_single_core(workload, "ppf", CFG, seed=9)
        assert (a.cycles, a.prefetches_issued, a.l2_misses) == (
            b.cycles,
            b.prefetches_issued,
            b.l2_misses,
        )
