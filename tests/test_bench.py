"""Tests for repro.bench (microbenchmarks + report) and the batch trace
generator that backs ``trace_gen_batch``."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_VERSION,
    BENCHMARKS,
    build_report,
    format_report,
    load_baseline,
    run_benchmarks,
    write_report,
)
from repro.bench.micro import BenchResult
from repro.workloads import BatchMix, batch_interleave, batch_trace


class TestRegistry:
    def test_expected_layers_present(self):
        expected = {
            "trace_gen",
            "trace_gen_batch",
            "cache_lookup_fill",
            "spp_train",
            "filter_inference",
            "filter_training",
            "end_to_end_single_core",
            "end_to_end_no_prefetch",
        }
        assert expected <= set(BENCHMARKS)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            run_benchmarks(names=["nope"])

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            run_benchmarks(names=["cache_lookup_fill"], scale=0)

    def test_bad_repeats_rejected(self):
        with pytest.raises(ValueError):
            run_benchmarks(names=["cache_lookup_fill"], repeats=0)


class TestRunBenchmarks:
    def test_smoke_scale_runs_and_measures(self):
        results = run_benchmarks(
            names=["cache_lookup_fill", "filter_inference"], scale=0.01, repeats=2
        )
        assert [r.name for r in results] == ["cache_lookup_fill", "filter_inference"]
        for result in results:
            assert result.ops >= 1_000  # scale floor
            assert result.best_wall_s > 0
            assert result.best_wall_s <= result.mean_wall_s
            assert result.repeats == 2
            assert result.ops_per_sec > 0
            assert result.ns_per_op > 0

    def test_full_op_counts_are_fixed(self):
        """Cross-version comparability: counts only move via ``scale``."""
        assert BENCHMARKS["end_to_end_single_core"][1] == 10_000
        assert BENCHMARKS["cache_lookup_fill"][1] == 200_000


class TestReport:
    def _result(self, name="cache_lookup_fill", ops=1000, wall=0.5):
        return BenchResult(
            name=name, ops=ops, best_wall_s=wall, mean_wall_s=wall, repeats=1
        )

    def test_schema_fields(self):
        report = build_report([self._result()], mode="smoke", scale=0.1)
        assert report["schema"] == BENCH_SCHEMA
        assert report["schema_version"] == BENCH_SCHEMA_VERSION
        assert report["mode"] == "smoke"
        assert report["scale"] == 0.1
        assert report["baseline"] is None
        assert report["speedup_vs_baseline"] == {}
        entry = report["results"]["cache_lookup_fill"]
        assert entry["ops_per_sec"] == pytest.approx(2000.0)
        assert entry["ns_per_op"] == pytest.approx(500_000.0)

    def test_speedup_against_baseline(self):
        baseline = {
            "source": "x",
            "results": {"cache_lookup_fill": {"ops_per_sec": 1000.0}},
        }
        report = build_report([self._result()], baseline=baseline)
        assert report["speedup_vs_baseline"]["cache_lookup_fill"] == pytest.approx(2.0)

    def test_write_and_reload_round_trip(self, tmp_path):
        report = build_report([self._result()])
        path = write_report(report, tmp_path / "BENCH_sim.json")
        reloaded = json.loads(path.read_text())
        assert reloaded["schema"] == BENCH_SCHEMA
        assert "cache_lookup_fill" in reloaded["results"]

    def test_written_report_loads_as_baseline(self, tmp_path):
        report = build_report([self._result()])
        path = write_report(report, tmp_path / "base.json")
        baseline = load_baseline(path)
        assert baseline is not None
        assert baseline["source"] == str(path)
        assert "cache_lookup_fill" in baseline["results"]

    def test_missing_baseline_is_none(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") is None

    def test_format_report_mentions_every_benchmark(self):
        report = build_report([self._result()])
        text = format_report(report)
        assert "cache_lookup_fill" in text
        assert "ops/sec" in text


class TestBatchTrace:
    def test_deterministic_per_seed(self):
        a = list(batch_trace("605.mcf_s", 3_000, seed=9))
        b = list(batch_trace("605.mcf_s", 3_000, seed=9))
        assert a == b

    def test_seeds_differ(self):
        a = list(batch_trace("605.mcf_s", 3_000, seed=1))
        b = list(batch_trace("605.mcf_s", 3_000, seed=2))
        assert a != b

    def test_chunk_size_is_not_part_of_the_stream_identity(self):
        """Every randomness consumer owns its own seed-derived stream,
        consumed in record order — so the trace is identified by the
        seed alone and the chunk size is purely a throughput knob."""
        mixes = [BatchMix("stream", 1.0, 4), BatchMix("hotset", 2.0, 6)]
        whole = list(batch_interleave(mixes, 5_000, seed=4, chunk=5_000))
        for chunk in (1, 7, 512, 4_096):
            chunked = list(batch_interleave(mixes, 5_000, seed=4, chunk=chunk))
            assert chunked == whole

    def test_shorter_trace_is_a_prefix(self):
        mixes = [BatchMix("random", 1.0, 4), BatchMix("chase", 1.0, 5)]
        long = list(batch_interleave(mixes, 4_000, seed=8, chunk=256))
        short = list(batch_interleave(mixes, 1_500, seed=8, chunk=1_024))
        assert long[:1_500] == short

    def test_records_are_block_aligned_and_valid(self):
        for rec in batch_trace("623.xalancbmk_s", 2_000, seed=5):
            assert rec.addr % 64 == 0
            assert rec.addr >= 0
            assert rec.bubble >= 0
            assert rec.pc >= 0

    def test_unknown_workload_uses_generic_recipe(self):
        records = list(batch_trace("not_a_workload", 1_000, seed=1))
        assert len(records) == 1_000

    def test_invalid_mixes_rejected(self):
        with pytest.raises(ValueError):
            batch_interleave([], 100).__next__()
        with pytest.raises(ValueError):
            BatchMix("warp", 1.0)
        with pytest.raises(ValueError):
            BatchMix("stream", -1.0)
