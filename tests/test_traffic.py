"""Tests for repro.analysis.traffic."""

import pytest

from repro.analysis.traffic import TrafficBreakdown, compare_traffic, report, traffic_breakdown
from repro.sim.config import SimConfig
from repro.workloads.spec2017 import workload_by_name

MINI = SimConfig.quick(measure_records=3_000, warmup_records=800)


class TestBreakdownProperties:
    def test_total_and_share(self):
        b = TrafficBreakdown(
            scheme="x", ipc=1.0, demand_dram=30, prefetch_dram=70,
            mean_queue_delay=0.0, useless_evictions=7, useful_prefetches=50,
            prefetches_dropped=0,
        )
        assert b.total_dram == 100
        assert b.prefetch_share == pytest.approx(0.7)
        assert b.waste_rate == pytest.approx(0.1)

    def test_zero_traffic(self):
        b = TrafficBreakdown(
            scheme="x", ipc=1.0, demand_dram=0, prefetch_dram=0,
            mean_queue_delay=0.0, useless_evictions=0, useful_prefetches=0,
            prefetches_dropped=0,
        )
        assert b.prefetch_share == 0.0
        assert b.waste_rate == 0.0


class TestMeasurement:
    @pytest.fixture(scope="class")
    def breakdowns(self):
        return compare_traffic(
            workload_by_name("603.bwaves_s"), schemes=("none", "spp", "ppf"), config=MINI
        )

    def test_baseline_has_no_prefetch_traffic(self, breakdowns):
        none = breakdowns[0]
        assert none.prefetch_dram == 0
        assert none.demand_dram > 0

    def test_prefetching_shifts_traffic(self, breakdowns):
        none, spp, _ppf = breakdowns
        assert spp.prefetch_dram > 0
        # Prefetching converts demand DRAM traffic into prefetch traffic.
        assert spp.demand_dram < none.demand_dram

    def test_ppf_wastes_less_than_spp(self, breakdowns):
        _none, spp, ppf = breakdowns
        assert ppf.useless_evictions <= spp.useless_evictions

    def test_ipc_recorded(self, breakdowns):
        assert all(b.ipc > 0 for b in breakdowns)

    def test_report_renders(self, breakdowns):
        out = report(breakdowns, "603.bwaves_s")
        assert "Memory-traffic breakdown" in out
        assert "prefetch DRAM" in out

    def test_single_breakdown_matches_compare(self):
        single = traffic_breakdown(workload_by_name("641.leela_s"), "spp", MINI)
        assert single.scheme == "spp"
        assert single.total_dram >= 0
