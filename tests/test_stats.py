"""The hierarchical stats engine (repro.stats) and its wiring.

Covers the primitives (StatGroup / StatsNode / Histogram / GroupAdapter),
the warmup/measurement reset boundary, per-core scoping in multi-core
runs, and a golden-value regression proving RunResult round-trips
identically to the pre-refactor driver.
"""

from dataclasses import dataclass, field
from typing import Dict

import pytest

from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.config import SimConfig
from repro.sim.multi_core import run_multi_core
from repro.sim.single_core import make_prefetcher, run_single_core
from repro.stats import GroupAdapter, Histogram, StatGroup, StatsNode, scoped
from repro.workloads.mixes import WorkloadMix
from repro.workloads.spec2017 import workload_by_name

TINY = SimConfig.quick(measure_records=1_500, warmup_records=400)


@dataclass
class _Group(StatGroup):
    hits: int = 0
    misses: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)

    derived = ("hit_rate",)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class TestStatGroup:
    def test_snapshot_includes_fields_dicts_and_derived(self):
        g = _Group(hits=3, misses=1)
        g.by_kind["demand"] = 4
        assert g.snapshot() == {
            "hits": 3,
            "misses": 1,
            "by_kind.demand": 4,
            "hit_rate": 0.75,
        }

    def test_reset_zeroes_fields_and_clears_dicts(self):
        g = _Group(hits=3, misses=1)
        g.by_kind["demand"] = 4
        g.reset()
        assert g.hits == 0 and g.misses == 0 and g.by_kind == {}
        assert g.snapshot()["hit_rate"] == 0.0

    def test_histogram(self):
        h = Histogram()
        h.add("l2")
        h.add("l2")
        h.add("llc", 3)
        assert h.total() == 5
        assert h.snapshot() == {"counts.l2": 2, "counts.llc": 3}
        h.reset()
        assert h.total() == 0


class TestGroupAdapter:
    def test_custom_snapshot_and_reset(self):
        state = {"events": 7, "entries": 12}

        def wipe():
            state["events"] = 0  # entries (state) survive

        adapter = GroupAdapter(lambda: dict(state), wipe)
        assert adapter.snapshot()["events"] == 7
        adapter.reset()
        assert state == {"events": 0, "entries": 12}

    def test_reset_optional(self):
        GroupAdapter(lambda: {}).reset()  # must not raise


class TestStatsNode:
    def test_dotted_path_snapshot(self):
        root = StatsNode("root")
        root.child("core0").attach("l2", _Group(hits=5))
        root.counter("ticks", 9)
        snap = root.snapshot()
        assert snap["core0.l2.hits"] == 5
        assert snap["ticks"] == 9

    def test_child_is_get_or_create(self):
        root = StatsNode("root")
        assert root.child("a") is root.child("a")
        assert list(root.children()) == ["a"]

    def test_recursive_reset(self):
        root = StatsNode("root")
        g = _Group(hits=5)
        root.child("a").child("b").attach("g", g)
        root.counter("ticks")
        root.reset()
        assert g.hits == 0
        assert root.snapshot()["ticks"] == 0

    def test_get_and_scoped(self):
        root = StatsNode("root")
        root.child("core0").attach("l2", _Group(hits=5, misses=5))
        assert root.get("core0.l2.hits") == 5
        assert root.get("nope.nothing", -1) == -1
        assert scoped(root.snapshot(), "core0")["l2.hits"] == 5


class TestWarmupBoundary:
    """Counters reset between warmup and measurement; state survives."""

    def _warmed_hierarchy(self, scheme):
        from repro.cpu.o3core import O3Core

        hierarchy = MemoryHierarchy(
            num_cores=1,
            config=TINY.hierarchy,
            dram_config=TINY.dram,
            prefetchers=[make_prefetcher(scheme)],
        )
        core = O3Core(0, hierarchy, TINY.core)
        for rec in workload_by_name("605.mcf_s").trace(600, seed=1):
            core.step(rec)
        return hierarchy

    def test_reset_zeroes_all_counters(self):
        hierarchy = self._warmed_hierarchy("spp")
        before = hierarchy.snapshot()
        assert before["core0.l1.demand_accesses"] > 0
        assert before["dram.accesses"] > 0
        hierarchy.reset_stats()
        after = hierarchy.snapshot()
        assert after["core0.l1.demand_accesses"] == 0
        assert after["core0.l2.demand_misses"] == 0
        assert after["dram.accesses"] == 0
        assert after["core0.prefetcher.prefetch.issued"] == 0

    def test_reset_preserves_ppf_table_state(self):
        hierarchy = self._warmed_hierarchy("ppf")
        before = hierarchy.snapshot()
        occupancy = before["core0.prefetcher.prefetch_table.occupancy"]
        assert occupancy > 0
        assert before["core0.prefetcher.prefetch_table.inserts"] > 0
        hierarchy.reset_stats()
        after = hierarchy.snapshot()
        # Event counters are statistics: zeroed at the boundary.
        assert after["core0.prefetcher.prefetch_table.inserts"] == 0
        # Occupancy is state: the trained entries must survive warmup.
        assert after["core0.prefetcher.prefetch_table.occupancy"] == occupancy

    def test_run_counts_measurement_only(self):
        # The trace is deterministic per seed, so doubling warmup while
        # keeping the measurement window must not inflate the counters
        # (it would if the reset boundary leaked warmup stats).
        a = SimConfig.quick(measure_records=1_000, warmup_records=200)
        b = SimConfig.quick(measure_records=1_000, warmup_records=400)
        wl = workload_by_name("619.lbm_s")
        ra = run_single_core(wl, "none", a, seed=2)
        rb = run_single_core(wl, "none", b, seed=2)
        assert ra.l2_demand_accesses < 1_200
        assert rb.l2_demand_accesses < 1_200


class TestPerCoreScoping:
    def test_multi_core_outcomes_are_scoped(self):
        cfg = SimConfig.multicore(2)
        cfg.warmup_records, cfg.measure_records = 200, 800
        mix = WorkloadMix(
            name="t",
            workloads=(workload_by_name("619.lbm_s"), workload_by_name("657.xz_s")),
        )
        result = run_multi_core(mix, "spp", cfg, seed=5)
        for outcome in result.cores:
            # The typed fields are views over the core's private scope.
            assert outcome.l2_misses == int(outcome.stats["l2.demand_misses"])
            assert outcome.prefetches_issued == int(
                outcome.stats["prefetcher.prefetch.issued"]
            )
            # No cross-core leakage: scoped snapshots carry no core prefix
            # and no shared-level stats.
            assert not any(key.startswith("core") for key in outcome.stats)
            assert "dram.accesses" not in outcome.stats
        a, b = result.cores
        assert a.stats["l2.demand_accesses"] != b.stats["l2.demand_accesses"]


class TestGoldenRoundTrip:
    """RunResult built from the stats snapshot reproduces the exact
    values the pre-refactor driver measured (fixed workload + seed)."""

    GOLDEN = {
        # scheme: (instructions, cycles, l2_misses, llc_misses, issued,
        #          useful, candidates, dram_accesses, lookahead_depth)
        "none": (12960, 78811, 1274, 1274, 0, 0, 0, 1274, 0.0),
        "spp": (12960, 61707, 623, 503, 1558, 771, 1747, 1459, 1.81048),
        "ppf": (12960, 60243, 453, 453, 1182, 821, 4561, 1635, 4.349398),
    }

    @pytest.mark.parametrize("scheme", sorted(GOLDEN))
    def test_golden_values(self, scheme):
        r = run_single_core(workload_by_name("623.xalancbmk_s"), scheme, TINY, seed=3)
        want = self.GOLDEN[scheme]
        got = (
            r.instructions,
            r.cycles,
            r.l2_misses,
            r.llc_misses,
            r.prefetches_issued,
            r.prefetches_useful,
            r.prefetch_candidates,
            r.dram_accesses,
        )
        assert got == want[:8]
        assert r.average_lookahead_depth == pytest.approx(want[8], abs=1e-6)

    def test_snapshot_views(self):
        r = run_single_core(workload_by_name("623.xalancbmk_s"), "ppf", TINY, seed=3)
        assert 0.0 < r.row_buffer_hit_rate < 1.0
        assert r.stats["core0.l2.demand_misses"] == r.l2_misses
        assert r.reject_table_recoveries >= 0
        updates = r.per_feature_training_updates
        assert updates and all(v >= 0 for v in updates.values())
        # New-metric litmus test: filter/table counters appear in the
        # flattened snapshot without any driver plumbing.
        assert "core0.prefetcher.filter.trainings" in r.stats or any(
            key.startswith("core0.prefetcher.filter.") for key in r.stats
        )
        assert any(key.startswith("core0.prefetcher.reject_table.") for key in r.stats)
