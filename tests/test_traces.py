"""Trace ingestion: formats, digest cache, file-backed workloads, CLI.

The acceptance contract of :mod:`repro.traces`:

* **Malformed inputs are typed** — truncated gzip, bad hex addresses,
  unknown command tokens, zero-length files and header/body count
  mismatches all raise :class:`TraceFormatError` carrying file (and,
  for text formats, line) context — never a bare ``ValueError``.
* **Round trips** — k6 text and ChampSim-style binary traces convert
  into the canonical format losslessly; gzip inputs decode
  transparently to the same canonical records.
* **Digest cache** — a second conversion of the same bytes is a cache
  hit; corrupt cache entries degrade to re-conversion.
* **Engine equivalence** — a converted trace simulates bit-identically
  under the scalar and batched engines.
* **Checkpoint/resume** — ``TraceFileStream`` restores mid-measure and
  reproduces the straight run exactly; digest mismatches refuse.
* **Fingerprint** — trace digests fold into ``config_fingerprint``.
* **CLI** — ``repro trace convert`` converts/hits with exit 0, fails
  with exit 2, and failed invocations leave no partial artifacts.
"""

import dataclasses
import gzip
import struct
from itertools import islice
from pathlib import Path

import numpy as np
import pytest

from repro.__main__ import main
from repro.sim.config import SimConfig
from repro.sim.fingerprint import config_fingerprint
from repro.sim.single_core import run_single_core
from repro.traces import (
    CANONICAL_MAGIC,
    TraceCache,
    TraceFileStream,
    TraceFormatError,
    detect_format,
    file_digest,
    make_format,
    read_header,
    trace_formats,
    trace_workload,
    write_canonical,
)
from repro.workloads import find_workload, suite, suites

CONFIG = SimConfig.quick(measure_records=1_500, warmup_records=400)

_COMMANDS = ["P_MEM_RD", "P_MEM_WR", "P_FETCH", "READ", "WRITE", "IFETCH"]
_RECORD = struct.Struct("<QQI")  # the ChampSim-style 20-byte record


def _k6_lines(n=400):
    cycle = 0
    lines = []
    for i in range(n):
        cycle += (i * 7) % 23 + 1
        addr = 0x2000000 + (i % 181) * 64
        lines.append(f"0x{addr:x} {_COMMANDS[i % len(_COMMANDS)]} {cycle}\n")
    return lines


def _write_k6(path, n=400, compress=False):
    text = "".join(_k6_lines(n))
    if compress:
        with gzip.open(path, "wt") as handle:
            handle.write(text)
    else:
        Path(path).write_text(text)
    return Path(path)


def _write_champsim(path, n=300):
    blob = b"".join(
        _RECORD.pack(0x400000 + (i % 5) * 0x40, 0x9000000 + i * 64, i % 12)
        for i in range(n)
    )
    Path(path).write_bytes(blob)
    return Path(path)


def _convert(tmp_path, source):
    return TraceCache(tmp_path / "cache").convert(source)


class TestMalformedInputs:
    """Every malformed input: typed TraceFormatError with context."""

    def test_truncated_gzip(self, tmp_path):
        source = _write_k6(tmp_path / "t.k6.gz", n=2_000, compress=True)
        blob = source.read_bytes()
        source.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(TraceFormatError) as err:
            _convert(tmp_path, source)
        assert "truncated" in str(err.value)
        assert str(source) in str(err.value)

    def test_bad_hex_address(self, tmp_path):
        source = tmp_path / "t.k6"
        source.write_text("0x100 P_MEM_RD 5\nnothex P_MEM_RD 9\n")
        with pytest.raises(TraceFormatError) as err:
            _convert(tmp_path, source)
        assert "bad hex address 'nothex'" in str(err.value)
        assert f"{source}:2:" in str(err.value)
        assert err.value.line == 2

    def test_unknown_command_token(self, tmp_path):
        source = tmp_path / "t.k6"
        source.write_text("0x100 P_MEM_EAT 5\n")
        with pytest.raises(TraceFormatError) as err:
            _convert(tmp_path, source)
        assert "unknown command token 'P_MEM_EAT'" in str(err.value)
        assert "P_MEM_RD" in str(err.value)  # lists the known vocabulary

    def test_zero_length_file(self, tmp_path):
        source = tmp_path / "t.k6"
        source.write_bytes(b"")
        with pytest.raises(TraceFormatError) as err:
            _convert(tmp_path, source)
        assert "empty trace" in str(err.value)

    def test_canonical_count_mismatch(self, tmp_path):
        source = _write_k6(tmp_path / "t.k6")
        converted = Path(_convert(tmp_path, source).path)
        with open(converted, "ab") as handle:
            handle.write(b"\x00" * 7)  # no longer 16 + 20 * count bytes
        with pytest.raises(TraceFormatError) as err:
            read_header(converted)
        assert "record count mismatch" in str(err.value)

    def test_champsim_trailing_bytes(self, tmp_path):
        source = _write_champsim(tmp_path / "t.champsim")
        with open(source, "ab") as handle:
            handle.write(b"\x01\x02\x03")
        with pytest.raises(TraceFormatError) as err:
            _convert(tmp_path, source)
        assert "3 trailing byte(s)" in str(err.value)

    def test_bad_field_count_and_cycle(self, tmp_path):
        for body, fragment in [
            ("0x100 P_MEM_RD\n", "expected '<address> <command> <cycle>'"),
            ("0x100 P_MEM_RD soon\n", "bad cycle count 'soon'"),
            ("0x100 P_MEM_RD -4\n", "negative cycle count"),
        ]:
            source = tmp_path / "t.k6"
            source.write_text(body)
            with pytest.raises(TraceFormatError) as err:
                make_format("k6").read_batches(source).__next__()
            assert fragment in str(err.value)

    def test_errors_are_typed_value_errors(self, tmp_path):
        """Callers can catch ValueError, but always get the typed class."""
        source = tmp_path / "t.k6"
        source.write_text("zzzz P_MEM_RD 5\n")
        with pytest.raises(ValueError) as err:
            _convert(tmp_path, source)
        assert isinstance(err.value, TraceFormatError)
        assert err.value.path == str(source)


class TestRoundTrips:
    def test_k6_conversion_counts_and_caps(self, tmp_path):
        source = _write_k6(tmp_path / "t.k6", n=400)
        outcome = _convert(tmp_path, source)
        assert outcome.records == 400
        assert outcome.format == "k6"
        stream = TraceFileStream(outcome.path, 400)
        records = list(stream)
        assert len(records) == 400
        assert all(0 <= r.bubble <= 64 for r in records)
        assert records[1].addr == 0x2000000 + 64

    def test_gzip_decodes_to_same_canonical_records(self, tmp_path):
        raw = _write_k6(tmp_path / "raw.k6", n=250)
        zipped = _write_k6(tmp_path / "zip.k6.gz", n=250, compress=True)
        a = Path(_convert(tmp_path, raw).path).read_bytes()
        b = Path(_convert(tmp_path, zipped).path).read_bytes()
        assert a == b  # canonical bytes identical; source digests differ
        assert file_digest(raw) != file_digest(zipped)

    def test_champsim_binary_roundtrip_is_lossless(self, tmp_path):
        source = _write_champsim(tmp_path / "t.champsim", n=300)
        outcome = _convert(tmp_path, source)
        assert outcome.records == 300
        stream = TraceFileStream(outcome.path, 300)
        for i, record in enumerate(stream):
            assert record.pc == 0x400000 + (i % 5) * 0x40
            assert record.addr == 0x9000000 + i * 64
            assert record.bubble == i % 12

    def test_detect_format(self, tmp_path):
        k6 = _write_k6(tmp_path / "t.k6")
        assert detect_format(k6) == "k6"
        assert detect_format(_write_champsim(tmp_path / "t.champsim")) == "champsim"
        # extension-less files fall back to a content sniff
        assert detect_format(_write_k6(tmp_path / "noext")) == "k6"
        assert detect_format(_write_champsim(tmp_path / "noext2")) == "champsim"
        converted = Path(_convert(tmp_path, k6).path)
        assert converted.read_bytes()[:4] == CANONICAL_MAGIC
        assert detect_format(converted) == "canonical"

    def test_registry_lists_formats(self):
        assert {"k6", "champsim", "canonical"} <= set(trace_formats())


class TestDigestCache:
    def test_second_conversion_is_a_hit(self, tmp_path):
        source = _write_k6(tmp_path / "t.k6")
        cache = TraceCache(tmp_path / "cache")
        first = cache.convert(source)
        second = cache.convert(source)
        assert not first.cache_hit and second.cache_hit
        assert first.path == second.path
        assert first.records == second.records == 400
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_same_bytes_different_name_still_hit(self, tmp_path):
        source = _write_k6(tmp_path / "t.k6")
        copy = tmp_path / "elsewhere.trc"
        copy.write_bytes(source.read_bytes())
        cache = TraceCache(tmp_path / "cache")
        cache.convert(source)
        assert cache.convert(copy).cache_hit

    def test_corrupt_cache_entry_reconverts(self, tmp_path):
        source = _write_k6(tmp_path / "t.k6")
        cache = TraceCache(tmp_path / "cache")
        first = cache.convert(source)
        Path(first.path).write_bytes(b"garbage")
        again = cache.convert(source)
        assert not again.cache_hit
        assert read_header(again.path) == 400


class TestEngineEquivalence:
    def test_scalar_and_batched_stats_identical(self, tmp_path):
        source = _write_k6(tmp_path / "t.k6", n=900)
        spec = trace_workload(_convert(tmp_path, source).path)
        scalar = run_single_core(spec, "ppf", CONFIG, seed=2)
        batched = run_single_core(
            spec, "ppf", dataclasses.replace(CONFIG, engine="batched"), seed=2
        )
        assert scalar.stats == batched.stats
        assert scalar.instructions == batched.instructions
        assert scalar.cycles == batched.cycles


class TestTraceFileStream:
    def _canonical(self, tmp_path, n=300):
        return Path(_convert(tmp_path, _write_k6(tmp_path / "t.k6", n=n)).path)

    def test_short_trace_wraps_around(self, tmp_path):
        path = self._canonical(tmp_path, n=100)
        records = list(TraceFileStream(path, 250))
        assert len(records) == 250
        assert records[100] == records[0] and records[249] == records[49]

    def test_state_roundtrip_matches_straight_run(self, tmp_path):
        path = self._canonical(tmp_path)
        straight = list(TraceFileStream(path, 300))

        first = TraceFileStream(path, 300)
        head = list(islice(iter(first), 120))
        state = first.state_dict()
        assert state["emitted"] == 120

        resumed = TraceFileStream(path, 300)
        resumed.load_state(state)
        tail = list(resumed)
        assert head + tail == straight

    def test_load_state_refuses_wrong_digest(self, tmp_path):
        path = self._canonical(tmp_path)
        stream = TraceFileStream(path, 300)
        state = dict(stream.state_dict(), digest="f" * 32)
        with pytest.raises(ValueError):
            TraceFileStream(path, 300).load_state(state)

    def test_workload_name_embeds_digest(self, tmp_path):
        path = self._canonical(tmp_path)
        spec = trace_workload(path)
        assert spec.suite == "traces"
        assert spec.name == f"trace:{path.stem}@{file_digest(path)[:12]}"

    def test_trace_dir_suite_resolves_by_name(self, tmp_path, monkeypatch):
        path = self._canonical(tmp_path)
        monkeypatch.setenv("REPRO_TRACE_DIR", str(path.parent))
        assert "traces" in suites()
        specs = suite("traces")
        assert [s.name for s in specs] == [trace_workload(path).name]
        found = find_workload(specs[0].name)
        assert found.builder(50).file_records == 300


class TestFingerprint:
    def test_trace_digests_fold_into_fingerprint(self):
        tagged = dataclasses.replace(CONFIG, trace_digests=("a" * 32,))
        assert config_fingerprint(tagged) != config_fingerprint(CONFIG)


class TestConvertCLI:
    def test_convert_then_hit(self, tmp_path, capsys):
        source = _write_k6(tmp_path / "t.k6.gz", compress=True)
        cache = tmp_path / "cache"
        argv = ["trace", "convert", str(source), "--cache-dir", str(cache)]
        assert main(argv) == 0
        assert "converted" in capsys.readouterr().out
        assert main(argv) == 0
        assert "cache hit" in capsys.readouterr().out
        assert len(list(cache.glob("*.rpt"))) == 1

    def test_missing_file_exits_2_without_artifacts(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(
            ["trace", "convert", str(tmp_path / "no.k6"), "--cache-dir", str(cache)]
        ) == 2
        assert "repro trace: error" in capsys.readouterr().err
        assert not cache.exists()

    def test_malformed_file_exits_2_and_preserves_cache(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        good = _write_k6(tmp_path / "good.k6")
        assert main(["trace", "convert", str(good), "--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        before = sorted(p.name for p in cache.iterdir())
        bad = tmp_path / "bad.k6"
        bad.write_text("zzzz P_MEM_RD 5\n")
        assert main(["trace", "convert", str(bad), "--cache-dir", str(cache)]) == 2
        assert "bad hex address" in capsys.readouterr().err
        # prior entries untouched, nothing partial added
        assert sorted(p.name for p in cache.iterdir()) == before

    def test_explicit_format_overrides_detection(self, tmp_path, capsys):
        source = _write_champsim(tmp_path / "oddly.named")
        assert main(
            [
                "trace", "convert", str(source),
                "--format", "champsim", "--cache-dir", str(tmp_path / "cache"),
            ]
        ) == 0
        assert "[champsim, 300 record(s)" in capsys.readouterr().out


class TestSweepCLI:
    def test_sweep_trace_file_runs_and_caches(self, tmp_path, capsys):
        source = _write_k6(tmp_path / "mix.k6", n=600)
        argv = [
            "sweep",
            "--trace-file", str(source),
            "--trace-cache", str(tmp_path / "cache"),
            "--cache-dir", str(tmp_path / "results"),
            "--records", "1200",
            "--prefetchers", "ppf",
            "--jobs", "1",
            "--quiet",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        digest = file_digest(source)[:12]
        assert f"trace:mix@{digest}" in out
        assert "simulated=2" in out
        # identical rerun: both cells come back from the result cache
        assert main(argv) == 0
        assert "simulated=0" in capsys.readouterr().out

    def test_sweep_bad_trace_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.k6"
        bad.write_text("zzzz P_MEM_RD 5\n")
        assert main(
            [
                "sweep",
                "--trace-file", str(bad),
                "--trace-cache", str(tmp_path / "cache"),
                "--quiet",
            ]
        ) == 2
        assert "repro sweep: error" in capsys.readouterr().err


class TestCheckpointResume:
    def test_mid_measure_checkpoint_resumes_bit_identically(self, tmp_path):
        """Kill a trace-backed cell mid-measure; the rerun continues from
        its checkpoint and reproduces the straight-run stats."""
        from repro.checkpoint import save_snapshot
        from repro.sim.single_core import SingleCoreSim

        source = _write_k6(tmp_path / "t.k6", n=900)
        spec = trace_workload(_convert(tmp_path, source).path)
        straight = run_single_core(spec, "ppf", CONFIG, seed=2)

        ckpt = tmp_path / "cell.ckpt"
        sim = SingleCoreSim(spec, "ppf", CONFIG, seed=2)
        sim.warmup()
        sim.begin_measurement()
        sim.advance(700)  # "crash" partway through measurement
        save_snapshot(ckpt, sim.snapshot("measure"))

        resumed = run_single_core(
            spec, "ppf", CONFIG, seed=2, checkpoint_path=ckpt, checkpoint_every=400
        )
        assert resumed == straight

    def test_checkpoint_refuses_different_trace_bytes(self, tmp_path):
        """A snapshot taken against one trace version never resumes
        against different bytes: the digest check degrades to a clean
        fresh run instead of silently mixing streams."""
        from repro.checkpoint import save_snapshot
        from repro.sim.single_core import SingleCoreSim

        cache = TraceCache(tmp_path / "cache")
        spec_a = trace_workload(
            cache.convert(_write_k6(tmp_path / "a.k6", n=500)).path, name="same"
        )
        sim = SingleCoreSim(spec_a, "ppf", CONFIG, seed=2)
        sim.warmup()
        sim.begin_measurement()
        sim.advance(300)
        ckpt = tmp_path / "cell.ckpt"
        save_snapshot(ckpt, sim.snapshot("measure"))

        other = _write_k6(tmp_path / "b.k6", n=500)
        other.write_text(other.read_text().replace("0x2000", "0x3000"))
        spec_b = trace_workload(cache.convert(other).path, name="same")
        resumed = run_single_core(
            spec_b, "ppf", CONFIG, seed=2, checkpoint_path=ckpt, checkpoint_every=400
        )
        assert resumed == run_single_core(spec_b, "ppf", CONFIG, seed=2)
