"""Tests for repro.analysis.sensitivity."""

import pytest

from repro.analysis.sensitivity import (
    SensitivityPoint,
    default_settings,
    report,
    sweep_thresholds,
)
from repro.sim.config import SimConfig
from repro.workloads.spec2017 import workload_by_name

MINI = SimConfig.quick(measure_records=2_500, warmup_records=600)
ONE = [workload_by_name("603.bwaves_s")]


class TestDefaults:
    def test_tau_grid_ordered_pairs(self):
        for tau_hi, tau_lo in default_settings("tau"):
            assert tau_lo <= tau_hi

    def test_theta_grid_ordered_pairs(self):
        for theta_p, theta_n in default_settings("theta"):
            assert theta_n <= theta_p

    def test_unknown_knob(self):
        with pytest.raises(ValueError):
            default_settings("gamma")


class TestSweep:
    @pytest.fixture(scope="class")
    def tau_result(self):
        return sweep_thresholds(
            "tau", settings=[(0, -10), (-5, -15)], workloads=ONE, config=MINI
        )

    def test_point_per_setting(self, tau_result):
        assert [p.setting for p in tau_result.points] == [(0, -10), (-5, -15)]

    def test_metrics_sane(self, tau_result):
        for point in tau_result.points:
            assert point.geomean_speedup > 0
            assert 0.0 <= point.mean_accuracy <= 1.0
            assert 0.0 <= point.mean_accept_rate <= 1.0

    def test_best_is_max(self, tau_result):
        best = tau_result.best()
        assert best.geomean_speedup == max(
            p.geomean_speedup for p in tau_result.points
        )

    def test_spread_nonnegative(self, tau_result):
        assert tau_result.spread_percent() >= 0.0

    def test_theta_sweep_runs(self):
        result = sweep_thresholds(
            "theta", settings=[(30, -30), (1000, -1000)], workloads=ONE, config=MINI
        )
        assert len(result.points) == 2

    def test_unknown_knob_raises(self):
        with pytest.raises(ValueError):
            sweep_thresholds("gamma", settings=[(0, 0)], workloads=ONE, config=MINI)

    def test_report_renders(self, tau_result):
        out = report(tau_result)
        assert "Sensitivity" in out
        assert "tau" in out


class TestAcceptRateResponds:
    def test_stricter_tau_accepts_less(self):
        lenient = sweep_thresholds(
            "tau", settings=[(-20, -40)], workloads=ONE, config=MINI
        ).points[0]
        strict = sweep_thresholds(
            "tau", settings=[(10, 5)], workloads=ONE, config=MINI
        ).points[0]
        assert strict.mean_accept_rate <= lenient.mean_accept_rate
