"""Tests for repro.core.features."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import (
    Feature,
    FeatureContext,
    exploration_features,
    feature_by_name,
    feature_names,
    production_features,
)
from repro.memory.address import encode_delta


def make_ctx(**overrides):
    defaults = dict(
        candidate_addr=0x123456789 & ~0x3F,
        trigger_addr=0x123456000,
        pc=0x401234,
        pcs=(0x401234, 0x401230, 0x40122C),
        delta=3,
        depth=2,
        signature=0xABC,
        last_signature=0x123,
        confidence=75,
    )
    defaults.update(overrides)
    return FeatureContext(**defaults)


class TestCatalogs:
    def test_production_has_nine_features(self):
        assert len(production_features()) == 9

    def test_production_names_match_paper(self):
        names = set(feature_names(production_features()))
        assert names == {
            "phys_address",
            "cache_line",
            "page_address",
            "page_xor_confidence",
            "pc_path_hash",
            "signature_xor_delta",
            "pc_xor_depth",
            "pc_xor_delta",
            "confidence",
        }

    def test_table_split_matches_table3(self):
        """Four 4096-entry, two 2048, two 1024, one 128 (Table 3)."""
        sizes = sorted(f.table_entries for f in production_features())
        assert sizes == [128, 1024, 1024, 2048, 2048, 4096, 4096, 4096, 4096]

    def test_production_weight_bits_match_paper(self):
        total = sum(f.table_entries for f in production_features()) * 5
        assert total == 113_280

    def test_exploration_has_23_features(self):
        assert len(exploration_features()) == 23

    def test_exploration_extends_production(self):
        production = set(feature_names(production_features()))
        exploration = set(feature_names(exploration_features()))
        assert production < exploration
        assert "last_signature" in exploration

    def test_feature_by_name(self):
        assert feature_by_name("confidence").table_entries == 128

    def test_feature_by_name_unknown(self):
        with pytest.raises(KeyError):
            feature_by_name("nonexistent")

    def test_no_duplicate_names(self):
        names = feature_names(exploration_features())
        assert len(names) == len(set(names))


class TestIndexing:
    def test_index_within_table(self):
        ctx = make_ctx()
        for feature in exploration_features():
            index = feature.index(ctx)
            assert 0 <= index < feature.table_entries

    @settings(max_examples=50)
    @given(
        addr=st.integers(min_value=0, max_value=2**40),
        pc=st.integers(min_value=0, max_value=2**32),
        delta=st.integers(min_value=-63, max_value=63),
        depth=st.integers(min_value=1, max_value=24),
        conf=st.integers(min_value=0, max_value=100),
        sig=st.integers(min_value=0, max_value=0xFFF),
    )
    def test_index_always_in_range(self, addr, pc, delta, depth, conf, sig):
        ctx = make_ctx(
            candidate_addr=addr & ~0x3F,
            trigger_addr=addr,
            pc=pc,
            pcs=(pc, pc >> 1, pc >> 2),
            delta=delta,
            depth=depth,
            confidence=conf,
            signature=sig,
            last_signature=sig ^ 1,
        )
        for feature in exploration_features():
            assert 0 <= feature.index(ctx) < feature.table_entries

    def test_confidence_feature_is_identity(self):
        feature = feature_by_name("confidence")
        assert feature.index(make_ctx(confidence=42)) == 42

    def test_pc_xor_depth_varies_with_depth(self):
        feature = feature_by_name("pc_xor_depth")
        a = feature.index(make_ctx(depth=1))
        b = feature.index(make_ctx(depth=2))
        assert a != b

    def test_pc_xor_delta_uses_encoded_delta(self):
        feature = feature_by_name("pc_xor_delta")
        pos = feature.index(make_ctx(delta=3))
        neg = feature.index(make_ctx(delta=-3))
        assert pos != neg  # sign bit distinguishes them

    def test_address_features_differ_by_shift(self):
        ctx = make_ctx()
        phys = feature_by_name("phys_address").extract(ctx)
        line = feature_by_name("cache_line").extract(ctx)
        page = feature_by_name("page_address").extract(ctx)
        assert phys >> 6 == line
        assert line >> 6 == page

    def test_page_xor_confidence_mixes_both(self):
        feature = feature_by_name("page_xor_confidence")
        assert feature.index(make_ctx(confidence=10)) != feature.index(
            make_ctx(confidence=90)
        )

    def test_pc_path_hash_uses_shifted_history(self):
        feature = feature_by_name("pc_path_hash")
        same_pc = make_ctx(pcs=(0x400, 0x400, 0x400))
        # Shifting avoids the all-equal-PCs-cancel-to-zero problem (§4.2).
        assert feature.extract(same_pc) != 0

    def test_signature_xor_delta(self):
        feature = feature_by_name("signature_xor_delta")
        expected = (0xABC ^ encode_delta(3)) & (feature.table_entries - 1)
        assert feature.index(make_ctx()) == expected

    def test_last_signature_reads_last_signature(self):
        feature = feature_by_name("last_signature")
        assert feature.index(make_ctx(last_signature=0x77)) == 0x77


class TestFeatureContext:
    def test_frozen(self):
        ctx = make_ctx()
        with pytest.raises(AttributeError):
            ctx.pc = 0

    def test_custom_feature_composes(self):
        custom = Feature("custom", 64, lambda ctx: ctx.depth * 7)
        assert custom.index(make_ctx(depth=3)) == 21
