"""Disabled-telemetry overhead: structural proofs plus a wall gate.

The ≤2% contract is enforced two ways.  Structurally: with telemetry
off the simulator installs no tracer and no probe set, so the
per-record loop is exactly the PR 3 hot path — the only added cost is
one ``is not None`` check per ``advance()`` call (not per record).
Empirically: the ``telemetry_disabled_overhead`` microbenchmark runs
the same workload/config as ``end_to_end_single_core`` with
``telemetry=None`` and its best-of-N wall time must land within the
contract bound (retried to ride out scheduler noise; the measured
numbers live in ``docs/performance.md``).
"""

import pytest

from repro.bench.micro import BENCHMARKS, run_benchmarks
from repro.sim.config import SimConfig
from repro.sim.single_core import SingleCoreSim, run_single_core
from repro.telemetry import Telemetry, activate
from repro.workloads import find_workload

TINY = SimConfig.quick(measure_records=1_500, warmup_records=300)


class TestStructuralZeroOverhead:
    def test_disabled_sim_installs_no_telemetry_state(self):
        sim = SingleCoreSim(find_workload("605.mcf_s"), "ppf", TINY, seed=1)
        assert sim._telemetry is None
        assert sim._probe_set is None
        sim.warmup()
        sim.measure()
        assert sim._telemetry is None  # nothing appeared mid-run

    def test_disabled_run_has_no_telemetry_stats(self):
        result = run_single_core(
            find_workload("605.mcf_s"), "ppf", TINY, seed=1, telemetry=None
        )
        assert not any(key.startswith("telemetry.") for key in result.stats)

    def test_disabled_session_is_treated_as_no_session(self):
        off = Telemetry(enabled=False)
        result = run_single_core(
            find_workload("605.mcf_s"), "ppf", TINY, seed=1, telemetry=off
        )
        assert not any(key.startswith("telemetry.") for key in result.stats)
        assert len(off.tracer.events()) == 0

    def test_attach_happens_only_under_active_session(self):
        session = Telemetry(probe_every=500)
        with activate(session):
            run_single_core(find_workload("605.mcf_s"), "ppf", TINY, seed=1)
        assert len(session.probe_sets) == 1
        # Outside the context the very same call is untouched.
        after = run_single_core(find_workload("605.mcf_s"), "ppf", TINY, seed=1)
        assert not any(key.startswith("telemetry.") for key in after.stats)
        assert len(session.probe_sets) == 1


class TestOverheadBenchmark:
    def test_benchmark_registered_with_matching_ops(self):
        assert "telemetry_disabled_overhead" in BENCHMARKS
        _, baseline_ops = BENCHMARKS["end_to_end_single_core"]
        _, overhead_ops = BENCHMARKS["telemetry_disabled_overhead"]
        assert overhead_ops == baseline_ops  # ratio compares equal work

    def test_disabled_overhead_within_contract(self):
        """Best-of-N wall ratio vs the untouched baseline, with retries.

        The two benchmarks execute the identical code path apart from
        the explicit ``telemetry=None`` argument, so any persistent gap
        is a real regression.  Transient scheduler noise on shared CI
        hosts is absorbed by taking the best of several repeats and
        retrying the whole comparison before failing; the bound adds a
        small noise floor on top of the 2% contract.
        """
        names = ["end_to_end_single_core", "telemetry_disabled_overhead"]
        ratios = []
        for _ in range(3):
            results = {
                r.name: r for r in run_benchmarks(names, scale=0.3, repeats=3)
            }
            baseline = results["end_to_end_single_core"].best_wall_s
            disabled = results["telemetry_disabled_overhead"].best_wall_s
            assert baseline > 0
            ratio = disabled / baseline
            ratios.append(ratio)
            if ratio <= 1.02:
                return
        pytest.fail(
            f"disabled telemetry exceeded the overhead contract in every "
            f"attempt: ratios {[f'{r:.4f}' for r in ratios]} (bound 1.02)"
        )
