"""Component-level snapshot round-trips and snapshot file semantics.

The contract under test: for every stateful component, driving it, then
``state_dict()`` → JSON → ``load_state()`` into a *fresh* instance, then
driving both with identical further traffic produces identical
observable behaviour AND identical final state.  JSON round-tripping in
the middle matters — it is what catches tuple keys, int keys and other
shapes that survive in-process but die in compact JSON.
"""

import json
import random

import pytest

from repro.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    Snapshot,
    SnapshotError,
    SnapshotSchemaError,
    SnapshotStore,
    load_snapshot,
    save_snapshot,
)
from repro.checkpoint.snapshot import dumps, loads
from repro.memory.cache import Cache
from repro.memory.dram import DRAM
from repro.sim.single_core import make_prefetcher


def roundtrip(state):
    """The exact transformation a snapshot applies to a state dict."""
    return json.loads(json.dumps(state, separators=(",", ":")))


# -- generic drive/compare harness ----------------------------------------------


def drive_cache(cache, rng, ops):
    """Mixed lookups/fills; returns the observable outcome stream."""
    out = []
    for i in range(ops):
        addr = rng.randrange(1 << 18) << 6
        if rng.random() < 0.5:
            line = cache.lookup(addr)
            out.append(None if line is None else (line.block, line.is_prefetch, line.used))
        else:
            evicted = cache.fill(addr, is_prefetch=rng.random() < 0.3, cycle=i)
            out.append(
                None if evicted is None else (evicted.block, evicted.is_prefetch, evicted.used)
            )
    return out


def drive_prefetcher(pf, rng, ops, base_cycle=0):
    """Train over a plausible access stream; returns emitted candidates."""
    out = []
    for i in range(ops):
        page = rng.randrange(64)
        addr = (page << 12) | (rng.randrange(64) << 6)
        pc = 0x400000 + rng.randrange(32) * 4
        candidates = pf.train(addr, pc, rng.random() < 0.5, base_cycle + i)
        out.append([(c.addr, c.fill_l2) for c in candidates])
        if rng.random() < 0.2:
            pf.on_eviction(addr ^ 0x1000, rng.random() < 0.5, rng.random() < 0.5)
    return out


class TestCacheRoundTrip:
    @pytest.mark.parametrize("policy", ["lru", "fifo", "random"])
    def test_cache_roundtrip(self, policy):
        a = Cache("l2", 16 * 1024, 4, 10, replacement=policy, replacement_seed=7)
        rng = random.Random(3)
        drive_cache(a, rng, 800)
        state = roundtrip(a.state_dict())

        b = Cache("l2", 16 * 1024, 4, 10, replacement=policy, replacement_seed=7)
        b.load_state(state)
        assert b.state_dict() == a.state_dict()

        rng_a, rng_b = random.Random(9), random.Random(9)
        assert drive_cache(a, rng_a, 400) == drive_cache(b, rng_b, 400)
        assert b.state_dict() == a.state_dict()

    def test_policy_mismatch_rejected(self):
        a = Cache("l2", 16 * 1024, 4, 10, replacement="lru")
        drive_cache(a, random.Random(1), 50)
        state = roundtrip(a.state_dict())
        b = Cache("l2", 16 * 1024, 4, 10, replacement="random")
        with pytest.raises((KeyError, ValueError, TypeError)):
            b.load_state(state)


class TestDRAMRoundTrip:
    def test_dram_roundtrip(self):
        a = DRAM()
        for i in range(300):
            a.access((i * 2897) << 6, i * 3, is_prefetch=i % 3 == 0)
        state = roundtrip(a.state_dict())
        b = DRAM()
        b.load_state(state)
        assert b.state_dict() == a.state_dict()
        for i in range(100):
            cycle = 1000 + i * 3
            assert a.access((i * 977) << 6, cycle) == b.access((i * 977) << 6, cycle)

    def test_channel_count_mismatch_rejected(self):
        from repro.memory.dram import DRAMConfig

        a = DRAM(DRAMConfig(channels=2))
        state = roundtrip(a.state_dict())
        b = DRAM(DRAMConfig(channels=1))
        with pytest.raises(ValueError):
            b.load_state(state)


class TestPrefetcherRoundTrips:
    SCHEMES = ["none", "next-line", "spp", "bop", "stride", "vldp", "ampm", "da-ampm", "ppf"]

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_roundtrip_preserves_behaviour(self, scheme):
        a = make_prefetcher(scheme)
        drive_prefetcher(a, random.Random(5), 600)
        state = roundtrip(a.state_dict())

        b = make_prefetcher(scheme)
        b.load_state(state)
        assert b.state_dict() == a.state_dict()

        rng_a, rng_b = random.Random(13), random.Random(13)
        after_a = drive_prefetcher(a, rng_a, 300, base_cycle=600)
        after_b = drive_prefetcher(b, rng_b, 300, base_cycle=600)
        assert after_a == after_b
        assert b.state_dict() == a.state_dict()

    def test_ppf_identity_mismatch_rejected(self):
        a = make_prefetcher("ppf")
        drive_prefetcher(a, random.Random(5), 100)
        state = roundtrip(a.state_dict())
        state["filter"]["tables"] = state["filter"]["tables"][:-1]
        b = make_prefetcher("ppf")
        with pytest.raises(ValueError):
            b.load_state(state)


class TestCoreRoundTrip:
    class _StubHierarchy:
        """Deterministic latency source so the core runs standalone."""

        def access(self, core_id, pc, addr, cycle):
            class _R:
                pass

            r = _R()
            r.ready_cycle = cycle + (17 if (addr >> 6) % 5 == 0 else 0)
            return r

    def test_o3core_roundtrip(self):
        from repro.cpu.o3core import O3Core
        from repro.cpu.trace import TraceRecord

        def records(rng, n):
            return [
                TraceRecord(pc=0x400000 + rng.randrange(8) * 4,
                            addr=rng.randrange(1 << 16) << 6,
                            bubble=rng.randrange(6))
                for _ in range(n)
            ]

        a = O3Core(0, self._StubHierarchy())
        for rec in records(random.Random(2), 500):
            a.step(rec)
        state = roundtrip(a.state_dict())

        b = O3Core(0, self._StubHierarchy())
        b.load_state(state)
        assert b.state_dict() == a.state_dict()
        tail = records(random.Random(4), 200)
        for rec in tail:
            a.step(rec)
        for rec in tail:
            b.step(rec)
        a.drain()
        b.drain()
        assert (a.cycle, a.instructions) == (b.cycle, b.instructions)
        assert b.state_dict() == a.state_dict()


class TestTraceStreamRoundTrip:
    def test_midstream_roundtrip(self):
        from repro.workloads.spec2017 import workload_by_name

        spec = workload_by_name("605.mcf_s")
        a = spec.trace(500, seed=8)
        it = iter(a)
        for _ in range(200):
            next(it)
        state = roundtrip(a.state_dict())
        b = spec.trace(500, seed=8)
        b.load_state(state)
        rest_a = [(r.pc, r.addr, r.bubble) for r in it]
        rest_b = [(r.pc, r.addr, r.bubble) for r in b]
        assert rest_a == rest_b
        assert len(rest_a) == 300


class TestSnapshotFiles:
    def _snapshot(self):
        return Snapshot(kind="single_core", payload={"x": [1, 2], "m": [[3, "a"]]},
                        meta={"phase": "warmup"})

    def test_bytes_roundtrip(self):
        snap = self._snapshot()
        back = loads(dumps(snap))
        assert (back.kind, back.payload, back.meta, back.schema_version) == (
            snap.kind, snap.payload, snap.meta, CHECKPOINT_SCHEMA_VERSION,
        )

    def test_file_roundtrip_atomic(self, tmp_path):
        path = tmp_path / "a.ckpt"
        save_snapshot(path, self._snapshot())
        assert load_snapshot(path).payload == self._snapshot().payload
        assert list(tmp_path.iterdir()) == [path]  # no leftover temp files

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_bytes(b"not a zlib stream")
        with pytest.raises(SnapshotError):
            load_snapshot(path)
        truncated = dumps(self._snapshot())[:10]
        path.write_bytes(truncated)
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_wrong_schema_version_rejected(self, tmp_path):
        snap = self._snapshot()
        snap.schema_version = CHECKPOINT_SCHEMA_VERSION + 1
        path = tmp_path / "future.ckpt"
        save_snapshot(path, snap)
        with pytest.raises(SnapshotSchemaError):
            load_snapshot(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SnapshotError):
            load_snapshot(tmp_path / "absent.ckpt")


class TestSnapshotStore:
    def test_miss_hit_and_corruption_fallback(self, tmp_path):
        store = SnapshotStore(tmp_path)
        assert store.load("k1") is None  # miss
        store.save("k1", Snapshot(kind="single_core", payload={"v": 1}))
        loaded = store.load("k1")  # hit
        assert loaded is not None and loaded.payload == {"v": 1}
        # Corrupt the entry on disk: the store degrades to a miss, never raises.
        store.path_for("k1").write_bytes(b"garbage")
        assert store.load("k1") is None
        assert store.hits == 1 and store.misses == 2
        assert 0.0 < store.hit_rate < 1.0
