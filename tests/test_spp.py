"""Tests for repro.prefetchers.spp (Signature Path Prefetcher)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.memory.address import encode_delta
from repro.prefetchers.base import PrefetchCandidate
from repro.prefetchers.spp import SIGNATURE_MASK, SPP, SPPConfig, update_signature


def access_stream(spp, page, offsets, pc=0x400):
    """Feed a sequence of in-page block offsets; return all candidates."""
    out = []
    for offset in offsets:
        out.extend(spp.train((page << 12) | (offset << 6), pc, False, 0))
    return out


class TestSignature:
    def test_update_rule(self):
        assert update_signature(0, 1) == 1
        assert update_signature(1, 1) == (1 << 3) ^ 1

    def test_signature_is_12_bits(self):
        sig = 0
        for delta in range(1, 100):
            sig = update_signature(sig, delta)
            assert 0 <= sig <= SIGNATURE_MASK

    def test_negative_delta_uses_sign_magnitude(self):
        assert update_signature(0, -1) == encode_delta(-1)

    @given(st.integers(min_value=0, max_value=SIGNATURE_MASK),
           st.integers(min_value=-63, max_value=63))
    def test_update_stays_in_range(self, sig, delta):
        assert 0 <= update_signature(sig, delta) <= SIGNATURE_MASK


class TestConfig:
    def test_default_thresholds(self):
        cfg = SPPConfig.default()
        assert cfg.prefetch_threshold == 25
        assert cfg.fill_threshold == 90

    def test_lookahead_threshold_defaults_to_prefetch(self):
        assert SPPConfig().lookahead_threshold == 25

    def test_aggressive_is_more_aggressive(self):
        stock, aggressive = SPPConfig.default(), SPPConfig.aggressive()
        assert aggressive.prefetch_threshold < stock.prefetch_threshold
        assert aggressive.max_depth > stock.max_depth

    def test_fixed_depth(self):
        cfg = SPPConfig.fixed_depth(9)
        assert cfg.max_depth == 9
        assert not cfg.compound_confidence


class TestLearning:
    def test_no_prefetch_without_history(self):
        spp = SPP()
        assert access_stream(spp, page=1, offsets=[0]) == []

    def test_learns_unit_stride(self):
        spp = SPP()
        candidates = access_stream(spp, page=1, offsets=range(10))
        assert candidates, "unit stride should trigger prefetches"
        # all candidates stay within the page
        for cand in candidates:
            assert cand.addr >> 12 == 1

    def test_prefetch_targets_follow_stride(self):
        spp = SPP()
        access_stream(spp, page=1, offsets=range(8))
        next_candidates = spp.train((1 << 12) | (8 << 6), 0x400, False, 0)
        targets = {(c.addr >> 6) & 63 for c in next_candidates}
        assert 9 in targets

    def test_learns_stride_two(self):
        spp = SPP()
        candidates = access_stream(spp, page=2, offsets=range(0, 30, 2))
        targets = {(c.addr >> 6) & 63 for c in candidates}
        assert targets and all(t % 2 == 0 for t in targets)

    def test_pattern_shared_across_pages(self):
        spp = SPP()
        access_stream(spp, page=1, offsets=range(12))
        # Same delta history on a fresh page re-uses the learned pattern.
        candidates = access_stream(spp, page=50, offsets=range(6))
        assert candidates

    def test_repeated_offset_is_ignored(self):
        spp = SPP()
        access_stream(spp, page=1, offsets=[3, 3, 3])
        assert spp.pattern_entry_count() == 0

    def test_signature_table_capacity(self):
        spp = SPP(SPPConfig(signature_table_entries=4))
        for page in range(10):
            access_stream(spp, page=page, offsets=[0, 1])
        assert spp.signature_entry_count() <= 4

    def test_counter_halving_on_saturation(self):
        spp = SPP(SPPConfig(counter_max=4))
        access_stream(spp, page=1, offsets=range(40))
        for entry in spp._pattern_table.values():
            assert entry.c_sig <= 4
            for count in entry.deltas.values():
                assert count <= 4

    def test_delta_slots_bounded(self):
        spp = SPP(SPPConfig(deltas_per_entry=2))
        # Alternate many deltas under one signature path.
        spp.train(0 << 6, 0, False, 0)
        for offset in [1, 4, 9, 16, 25, 36]:
            spp.train(offset << 6, 0, False, 0)
        for entry in spp._pattern_table.values():
            assert len(entry.deltas) <= 2


class TestLookahead:
    def test_depth_grows_with_confidence(self):
        spp = SPP()
        access_stream(spp, page=1, offsets=range(40))
        assert spp.average_lookahead_depth > 1.0

    def test_max_depth_respected(self):
        spp = SPP(SPPConfig.fixed_depth(3))
        candidates = access_stream(spp, page=1, offsets=range(30))
        assert max(c.meta["depth"] for c in candidates) <= 3

    def test_deeper_config_emits_more(self):
        def issued(depth):
            spp = SPP(SPPConfig.fixed_depth(depth))
            return len(access_stream(spp, page=1, offsets=range(30)))

        assert issued(8) >= issued(2)

    def test_candidates_carry_ppf_metadata(self):
        spp = SPP()
        candidates = access_stream(spp, page=1, offsets=range(10), pc=0xBEEF)
        cand = candidates[-1]
        for key in ("pc", "delta", "signature", "confidence", "depth"):
            assert key in cand.meta
        assert cand.meta["pc"] == 0xBEEF
        assert 0 <= cand.meta["confidence"] <= 100

    def test_fill_level_uses_fill_threshold(self):
        spp = SPP(SPPConfig(fill_threshold=0))
        candidates = access_stream(spp, page=1, offsets=range(10))
        assert all(c.fill_l2 for c in candidates)

    def test_high_fill_threshold_sends_to_llc(self):
        spp = SPP(SPPConfig(fill_threshold=101))
        candidates = access_stream(spp, page=1, offsets=range(10))
        assert candidates and all(not c.fill_l2 for c in candidates)

    def test_candidates_never_leave_page(self):
        spp = SPP(SPPConfig.aggressive())
        candidates = access_stream(spp, page=7, offsets=range(50, 64))
        for cand in candidates:
            assert cand.addr >> 12 == 7


class TestGHR:
    def test_cross_page_bootstrap(self):
        spp = SPP()
        # Walk to the end of page 1 so the lookahead records a
        # page-crossing in the GHR.
        access_stream(spp, page=1, offsets=range(40, 64))
        assert spp._ghr, "page-crossing walk should populate the GHR"
        # First touch of page 2 at offset 0 continues the pattern.
        candidates = spp.train(2 << 12, 0x400, False, 0)
        assert candidates, "GHR bootstrap should enable immediate prefetching"

    def test_ghr_capacity(self):
        spp = SPP(SPPConfig(ghr_entries=4))
        for page in range(10):
            access_stream(spp, page=page, offsets=range(56, 64))
        assert len(spp._ghr) <= 4


class TestAccuracyAlpha:
    def test_alpha_optimistic_when_cold(self):
        assert SPP().alpha_percent == 100

    def test_alpha_tracks_usefulness(self):
        spp = SPP()
        for _ in range(64):
            spp.on_prefetch_issued(PrefetchCandidate(addr=0x1000))
        for _ in range(16):
            spp.on_useful_prefetch(0x1000)
        assert spp.alpha_percent == 25

    def test_counters_halve_at_cap(self):
        spp = SPP(SPPConfig(accuracy_counter_max=64))
        for _ in range(200):
            spp.on_prefetch_issued(PrefetchCandidate(addr=0x1000))
        assert spp._c_total < 200

    def test_last_signature_exported(self):
        spp = SPP()
        access_stream(spp, page=1, offsets=[0, 1, 2])
        assert spp.last_signature != 0
