"""Tests for the experiment harness (registry + cheap experiments).

The expensive figure sweeps are exercised end-to-end by the benchmark
suite; here we run the cheap experiments for real and validate the
expensive ones' plumbing at miniature scale.
"""

import pytest

from repro.harness.experiments import EXPERIMENTS, experiment_ids, run_experiment
from repro.harness.figure01 import run_figure1
from repro.harness.figures02_05 import run_architecture_checks
from repro.harness.tables import table1_report, table2_report, table3_report
from repro.sim.config import SimConfig

MINI = SimConfig.quick(measure_records=3_000, warmup_records=600)


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        ids = set(experiment_ids())
        assert ids == {
            "fig1",
            "tab1",
            "fig2-5",
            "fig6-8",
            "tab2-3",
            "fig9-10",
            "fig11",
            "fig12",
            "sec6.3",
            "fig13",
            "ablations",
            "phase",
            "generality",
        }

    def test_experiments_have_anchors(self):
        for experiment in EXPERIMENTS.values():
            assert experiment.paper_anchor
            assert experiment.description

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_cheap_experiments_render(self):
        for experiment_id in ("tab1", "tab2-3", "fig2-5"):
            report = run_experiment(experiment_id, MINI)
            assert isinstance(report, str) and report


class TestTables:
    def test_table1_mentions_key_parameters(self):
        report = table1_report()
        assert "LLC" in report and "DRAM" in report and "LRU" in report

    def test_table2_total(self):
        assert "85" in table2_report()

    def test_table3_totals(self):
        report = table3_report()
        assert "322240" in report
        assert "39.34" in report


class TestArchitectureChecks:
    def test_all_checks_pass(self):
        checks = run_architecture_checks()
        failing = [c.name for c in checks if not c.ok]
        assert not failing, f"architecture drift: {failing}"

    def test_covers_all_four_figures(self):
        names = " ".join(c.name for c in run_architecture_checks())
        for figure in ("Fig 2", "Fig 3", "Fig 4", "Fig 5"):
            assert figure in names


class TestFigure1:
    def test_series_structure(self):
        result = run_figure1(depths=(3, 5), config=MINI)
        rows = result.normalized()
        assert [row["depth"] for row in rows] == [3, 5]
        assert rows[0]["ipc"] == pytest.approx(1.0)
        assert rows[0]["total_pf"] == pytest.approx(1.0)

    def test_deeper_never_issues_fewer(self):
        result = run_figure1(depths=(3, 9), config=MINI)
        assert result.total_pf[9] >= result.total_pf[3]


class TestFigure1Report:
    def test_report_renders(self):
        from repro.harness.figure01 import report

        result = run_figure1(depths=(3, 5), config=MINI)
        out = report(result)
        assert "Figure 1" in out
        assert "TOTAL_PF" in out
