"""Tests for repro.memory.address."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.address import (
    BLOCK_SIZE,
    BLOCKS_PER_PAGE,
    MAX_DELTA_MAGNITUDE,
    PAGE_SIZE,
    block_address,
    block_in_page,
    block_number,
    decode_delta,
    encode_delta,
    page_address,
    page_number,
    page_offset_block,
    same_page,
)


class TestConstants:
    def test_block_size_is_64_bytes(self):
        assert BLOCK_SIZE == 64

    def test_page_size_is_4kb(self):
        assert PAGE_SIZE == 4096

    def test_blocks_per_page(self):
        assert BLOCKS_PER_PAGE == 64


class TestDecomposition:
    def test_block_number(self):
        assert block_number(0) == 0
        assert block_number(63) == 0
        assert block_number(64) == 1
        assert block_number(0x1234) == 0x48

    def test_block_address_aligns_down(self):
        assert block_address(0x1234) == 0x1200
        assert block_address(64) == 64
        assert block_address(65) == 64

    def test_page_number(self):
        assert page_number(0) == 0
        assert page_number(4095) == 0
        assert page_number(4096) == 1

    def test_page_address_aligns_down(self):
        assert page_address(0x1FFF) == 0x1000

    def test_page_offset_block_range(self):
        assert page_offset_block(0) == 0
        assert page_offset_block(4095) == 63
        assert page_offset_block(4096) == 0

    def test_same_page(self):
        assert same_page(0, 4095)
        assert not same_page(4095, 4096)

    def test_block_in_page_composes(self):
        addr = block_in_page(5, 10)
        assert page_number(addr) == 5
        assert page_offset_block(addr) == 10

    def test_block_in_page_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            block_in_page(1, 64)
        with pytest.raises(ValueError):
            block_in_page(1, -1)

    @given(st.integers(min_value=0, max_value=2**48))
    def test_block_address_is_idempotent(self, addr):
        assert block_address(block_address(addr)) == block_address(addr)

    @given(st.integers(min_value=0, max_value=2**48))
    def test_decomposition_recomposes(self, addr):
        page = page_number(addr)
        offset = page_offset_block(addr)
        assert block_in_page(page, offset) == block_address(addr)


class TestDeltaEncoding:
    def test_zero(self):
        assert encode_delta(0) == 0
        assert decode_delta(0) == 0

    def test_positive(self):
        assert encode_delta(5) == 5
        assert decode_delta(5) == 5

    def test_negative_sets_sign_bit(self):
        assert encode_delta(-5) == (1 << 6) | 5
        assert decode_delta((1 << 6) | 5) == -5

    def test_magnitude_saturates(self):
        assert encode_delta(1000) == MAX_DELTA_MAGNITUDE
        assert encode_delta(-1000) == (1 << 6) | MAX_DELTA_MAGNITUDE

    def test_encoded_fits_seven_bits(self):
        for delta in range(-100, 101):
            assert 0 <= encode_delta(delta) < (1 << 7)

    @given(st.integers(min_value=-MAX_DELTA_MAGNITUDE, max_value=MAX_DELTA_MAGNITUDE))
    def test_roundtrip_within_magnitude(self, delta):
        assert decode_delta(encode_delta(delta)) == delta

    @given(st.integers(min_value=-63, max_value=63), st.integers(min_value=-63, max_value=63))
    def test_distinct_deltas_distinct_encodings(self, a, b):
        if a != b and not (a == 0 and b == 0):
            # sign+magnitude has a single zero; -0 cannot be expressed
            if abs(a) != abs(b) or (a >= 0) == (b >= 0):
                assert (encode_delta(a) == encode_delta(b)) == (a == b)
