"""Documentation guards: the promised docs exist and stay anchored."""

from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def read(name):
    path = ROOT / name
    assert path.exists(), f"{name} is missing"
    return path.read_text()


class TestTopLevelDocs:
    def test_readme_covers_install_quickstart_architecture(self):
        readme = read("README.md")
        for anchor in ("## Install", "## Quickstart", "## Architecture", "pip install -e ."):
            assert anchor in readme

    def test_readme_names_the_paper(self):
        readme = read("README.md")
        assert "Perceptron-Based Prefetch Filtering" in readme
        assert "ISCA 2019" in readme

    def test_design_has_substitutions_and_experiment_index(self):
        design = read("DESIGN.md")
        for anchor in (
            "## Substitutions",
            "## System inventory",
            "## Per-experiment index",
        ):
            assert anchor in design
        # every figure/table is indexed
        for artifact in ("Fig. 1", "Tab. 1", "Fig. 9", "Fig. 13", "Tab. 3", "§6.3"):
            assert artifact in design

    def test_experiments_tracks_paper_vs_measured(self):
        experiments = read("EXPERIMENTS.md")
        for anchor in ("Paper result", "Measured", "Known deviations"):
            assert anchor in experiments
        for exp_id in ("fig1", "fig9-10", "fig11", "fig12", "fig13", "tab2-3"):
            assert f"`{exp_id}`" in experiments

    def test_paper_map_covers_every_section(self):
        paper_map = read("docs/paper_map.md")
        for section in ("§1", "§2", "§3", "§4", "§5", "§6", "§7"):
            assert section in paper_map

    def test_architecture_guide_exists(self):
        architecture = read("docs/architecture.md")
        assert "MLP" in architecture
        assert "data path" in architecture.lower()

    def test_performance_guide_covers_contract_bench_and_schema(self):
        performance = read("docs/performance.md")
        for anchor in (
            "bit-identical",
            "python -m repro bench",
            "BENCH_sim.json",
            "repro.bench/v1",
            "baseline_pre_pr.json",
            "speedup_vs_baseline",
        ):
            assert anchor in performance

    def test_examples_readme_lists_every_script(self):
        listing = read("examples/README.md")
        for script in sorted((ROOT / "examples").glob("*.py")):
            assert script.name in listing, script.name


class TestDocstringCoverage:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro",
            "repro.core",
            "repro.core.filter",
            "repro.core.features",
            "repro.core.ppf",
            "repro.core.tables",
            "repro.core.weights",
            "repro.prefetchers.spp",
            "repro.prefetchers.bop",
            "repro.prefetchers.ampm",
            "repro.prefetchers.vldp",
            "repro.memory.cache",
            "repro.memory.dram",
            "repro.memory.hierarchy",
            "repro.cpu.o3core",
            "repro.cpu.branch",
            "repro.workloads.synthetic",
            "repro.workloads.simpoint",
            "repro.sim.metrics",
            "repro.analysis.overhead",
            "repro.analysis.correlation",
            "repro.harness.experiments",
        ],
    )
    def test_module_docstrings(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 30

    def test_public_classes_documented(self):
        import inspect

        import repro

        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
        assert not undocumented, undocumented
