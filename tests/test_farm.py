"""The sweep farm: queue protocol, worker faults, broker bit-identity.

The fault builders live at module level so farmed tickets can pickle
the specs by reference.  Unlike the pool fault tests, farm faults must
fire for *in-process* workers too (the broker's loopback drain runs
cells in the broker process), so misbehavior is keyed off counter
files in ``REPRO_FAULT_DIR`` rather than worker-process detection.
"""

import dataclasses
import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.farm import CellTicket, FarmBackend, FarmQueue, FarmWorker
from repro.farm.queue import DEFAULT_LEASE_TTL, QueueError
from repro.sim.config import SimConfig
from repro.sim.fingerprint import cell_digest, fingerprint_digest
from repro.sim.suite import CellPolicy, SuiteRunner
from repro.workloads.spec2017 import WorkloadSpec, workload_by_name

TINY = SimConfig.quick(measure_records=1_200, warmup_records=300)
_BASE = workload_by_name("619.lbm_s")


def _fault_dir() -> Path:
    return Path(os.environ["REPRO_FAULT_DIR"])


def _good_builder(n, seed):
    return _BASE.builder(n, seed)


def _doomed_builder(n, seed):
    raise RuntimeError("injected unconditional crash")


def _flaky_once_builder(n, seed):
    """Crashes on its first attempt anywhere, succeeds afterwards."""
    counter = _fault_dir() / "farm-flaky-attempts"
    attempts = int(counter.read_text()) if counter.exists() else 0
    counter.write_text(str(attempts + 1))
    if attempts < 1:
        raise RuntimeError("injected flaky crash")
    return _BASE.builder(n, seed)


def _spec(name, builder):
    return WorkloadSpec(
        name=name,
        suite="fault-injection",
        memory_intensive=True,
        description=f"farm fault probe {name}",
        builder=builder,
    )


GOOD = _spec("farm-good", _good_builder)
DOOMED = _spec("farm-doomed", _doomed_builder)
FLAKY = _spec("farm-flaky", _flaky_once_builder)


def _ticket(queue_dir, workload="619.lbm_s", scheme="none", seed=2, config=TINY):
    cell_id = cell_digest(workload, scheme, config, seed)
    return CellTicket.build(
        workload=workload,
        prefetcher=scheme,
        config=config,
        seed=seed,
        cell_id=cell_id,
        fingerprint=fingerprint_digest(config),
    )


class TestQueueProtocol:
    def test_claim_is_exclusive(self, tmp_path):
        queue = FarmQueue(tmp_path, lease_ttl=60.0)
        queue.ensure()
        ticket = _ticket(tmp_path)
        assert queue.submit(ticket)
        assert not queue.submit(ticket)  # idempotent re-submission
        first = queue.claim(ticket.cell_id, "worker-a")
        assert first is not None and not first.reclaimed
        # Duplicate claim race: the second claimant must lose outright.
        assert queue.claim(ticket.cell_id, "worker-b") is None
        assert queue.owns(first)

    def test_expired_lease_is_reclaimed_with_takeover_confirm(self, tmp_path):
        queue = FarmQueue(tmp_path, lease_ttl=0.05)
        queue.ensure()
        ticket = _ticket(tmp_path)
        queue.submit(ticket)
        dead = queue.claim(ticket.cell_id, "dead-worker")
        assert dead is not None
        time.sleep(0.08)
        takeover = queue.claim(ticket.cell_id, "live-worker")
        assert takeover is not None and takeover.reclaimed
        # The dead worker lost ownership: its release is now a no-op
        # and its completion attempt would not clobber the new lease.
        assert not queue.owns(dead)
        assert queue.owns(takeover)
        queue.release(dead)
        assert queue.owns(takeover)

    def test_renew_extends_only_owned_leases(self, tmp_path):
        queue = FarmQueue(tmp_path, lease_ttl=0.05)
        queue.ensure()
        ticket = _ticket(tmp_path)
        queue.submit(ticket)
        lease = queue.claim(ticket.cell_id, "worker-a")
        assert queue.renew(lease)
        time.sleep(0.08)
        stolen = queue.claim(ticket.cell_id, "worker-b")
        assert stolen is not None
        assert not queue.renew(lease)

    def test_complete_retires_ticket_and_lease(self, tmp_path):
        queue = FarmQueue(tmp_path, lease_ttl=60.0)
        queue.ensure()
        ticket = _ticket(tmp_path)
        queue.submit(ticket)
        lease = queue.claim(ticket.cell_id, "worker-a")
        queue.complete(lease, {"cell_id": ticket.cell_id, "result": {}})
        assert queue.has_result(ticket.cell_id)
        assert queue.pending_ids() == []
        assert queue.claim(ticket.cell_id, "worker-b") is None
        counts = queue.counts()
        assert counts["results"] == 1 and counts["claimed"] == 0

    def test_fail_requeues_then_poisons(self, tmp_path):
        queue = FarmQueue(tmp_path, lease_ttl=60.0)
        queue.ensure()
        ticket = _ticket(tmp_path)
        queue.submit(ticket)
        lease = queue.claim(ticket.cell_id, "worker-a")
        assert queue.fail(lease, ticket, "boom 1", retries=1) == "retry"
        assert queue.pending_ids() == [ticket.cell_id]
        lease = queue.claim(ticket.cell_id, "worker-a")
        requeued = queue.load_ticket(ticket.cell_id)
        assert queue.fail(lease, requeued, "boom 2", retries=1) == "poisoned"
        tombstone = queue.load_failure(ticket.cell_id)
        assert tombstone["attempts"] == 2
        assert tombstone["errors"] == ["boom 1", "boom 2"]
        assert queue.pending_ids() == []

    def test_event_log_is_tail_safe(self, tmp_path):
        queue = FarmQueue(tmp_path)
        queue.ensure()
        queue.emit({"n": 1})
        queue.emit({"n": 2})
        records, offset = queue.events(0)
        assert [r["n"] for r in records] == [1, 2]
        # A torn append (no trailing newline) stays invisible until the
        # writer finishes the line.
        with queue.events_path.open("a") as handle:
            handle.write('{"n": 3')
        records, offset2 = queue.events(offset)
        assert records == [] and offset2 == offset
        with queue.events_path.open("a") as handle:
            handle.write('}\n')
        records, _ = queue.events(offset2)
        assert [r["n"] for r in records] == [3]

    def test_schema_mismatch_is_refused(self, tmp_path):
        queue = FarmQueue(tmp_path)
        queue.ensure()
        manifest = json.loads(queue.manifest_path.read_text())
        manifest["schema"] = 99
        queue.manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(QueueError):
            FarmQueue(tmp_path).ensure()
        with pytest.raises(QueueError):
            FarmWorker(tmp_path)

    def test_worker_requires_a_queue(self, tmp_path):
        with pytest.raises(QueueError):
            FarmWorker(tmp_path / "nowhere")


@pytest.mark.timeout(120)
class TestFarmBackend:
    def test_loopback_farm_matches_local_backend_bit_for_bit(self, tmp_path):
        local = SuiteRunner(TINY, seed=2, jobs=1, cache_dir=tmp_path / "cache-local")
        reference = local.sweep([GOOD], ["none", "spp"], include_baseline=False)
        farm = SuiteRunner(
            TINY,
            seed=2,
            jobs=1,
            cache_dir=tmp_path / "cache-farm",
            backend=FarmBackend(tmp_path / "queue"),
        )
        result = farm.sweep([GOOD], ["none", "spp"], include_baseline=False)
        assert result.failure_report.complete
        assert result.runs.keys() == reference.runs.keys()
        for key in reference.runs:
            assert dataclasses.asdict(result.runs[key]) == dataclasses.asdict(
                reference.runs[key]
            )
        # The content-addressed cache entries agree byte for byte.
        for entry in sorted((tmp_path / "cache-local").glob("*.json")):
            twin = tmp_path / "cache-farm" / entry.name
            assert twin.read_bytes() == entry.read_bytes()

    def test_expired_lease_recovers_cell_from_dead_worker(self, tmp_path):
        # A "worker" claims the cell and dies without ever executing;
        # the broker's drain must reclaim it after the lease expires.
        config = TINY
        cell_id = cell_digest(GOOD.name, "none", config, 2)
        queue = FarmQueue(tmp_path / "queue", lease_ttl=0.3)
        queue.ensure(
            retries=1, lease_ttl=0.3, fingerprint=fingerprint_digest(config), seed=2
        )
        queue.submit(
            CellTicket.build(
                workload=GOOD.name,
                prefetcher="none",
                config=config,
                seed=2,
                cell_id=cell_id,
                fingerprint=fingerprint_digest(config),
                payload=GOOD,
            )
        )
        assert queue.claim(cell_id, "dead-worker") is not None
        runner = SuiteRunner(
            TINY,
            seed=2,
            jobs=1,
            backend=FarmBackend(tmp_path / "queue", lease_ttl=0.3),
        )
        result = runner.sweep([GOOD], ["none"], include_baseline=False)
        assert result.failure_report.complete
        assert result.failure_report.timeouts == 1
        assert runner.stats.snapshot()["cells.reclaimed"] == 1
        reference = SuiteRunner(TINY, seed=2, jobs=1).sweep(
            [GOOD], ["none"], include_baseline=False
        )
        assert dataclasses.asdict(result.runs[(GOOD.name, "none")]) == (
            dataclasses.asdict(reference.runs[(GOOD.name, "none")])
        )

    def test_flaky_cell_recovers_within_farm_retry_budget(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT_DIR", str(tmp_path))
        runner = SuiteRunner(
            TINY,
            seed=2,
            jobs=1,
            policy=CellPolicy(retries=1),
            backend=FarmBackend(tmp_path / "queue"),
        )
        result = runner.sweep([FLAKY], ["none"], include_baseline=False)
        assert result.failure_report.complete
        assert result.failure_report.retries == 1
        [failure] = result.failure_report.failures
        assert failure.recovered and failure.recovery == "farm-retry"
        assert "injected flaky crash" in failure.error or failure.attempts == 1

    def test_poisoned_cell_exhausts_retries_into_failure_report(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT_DIR", str(tmp_path))
        runner = SuiteRunner(
            TINY,
            seed=2,
            jobs=1,
            policy=CellPolicy(retries=1, fallback_serial=False),
            backend=FarmBackend(tmp_path / "queue"),
        )
        result = runner.sweep([GOOD, DOOMED], ["none"], include_baseline=False)
        report = result.failure_report
        assert not report.complete
        [failure] = report.unrecovered
        assert failure.workload == "farm-doomed"
        assert not failure.recovered
        assert "injected unconditional crash" in failure.error
        # The healthy sibling still completed.
        assert (GOOD.name, "none") in result.runs
        # The queue holds the tombstone for post-mortems...
        backend = runner.backend
        tombstone = backend.queue.load_failure(
            cell_digest(DOOMED.name, "none", TINY, 2)
        )
        assert tombstone["attempts"] == 2
        # ...and a fresh sweep over the same queue retires it, giving
        # the cell a new budget instead of refusing forever.
        retry_runner = SuiteRunner(
            TINY,
            seed=2,
            jobs=1,
            policy=CellPolicy(retries=1, fallback_serial=False),
            backend=FarmBackend(tmp_path / "queue"),
        )
        retry = retry_runner.sweep([DOOMED], ["none"], include_baseline=False)
        assert not retry.failure_report.complete  # still doomed, but re-attempted
        assert retry.failure_report.unrecovered[0].attempts == 2

    def test_half_drained_queue_resumes_without_reexecution(self, tmp_path):
        config = TINY
        fingerprint = fingerprint_digest(config)
        queue = FarmQueue(tmp_path / "queue")
        queue.ensure(retries=1, lease_ttl=DEFAULT_LEASE_TTL, fingerprint=fingerprint, seed=2)
        for scheme in ("none", "spp"):
            queue.submit(
                CellTicket.build(
                    workload="619.lbm_s",
                    prefetcher=scheme,
                    config=config,
                    seed=2,
                    cell_id=cell_digest("619.lbm_s", scheme, config, 2),
                    fingerprint=fingerprint,
                )
            )
        # A worker drains exactly one cell, then "crashes".
        drained = FarmWorker(queue, worker_id="partial").drain(max_cells=1)
        assert drained == 1
        assert len(queue.pending_ids()) == 1
        # The resuming sweep adopts the drained cell and only executes
        # the remaining one.
        runner = SuiteRunner(
            TINY, seed=2, jobs=1, backend=FarmBackend(tmp_path / "queue")
        )
        result = runner.sweep(
            [workload_by_name("619.lbm_s")], ["none", "spp"], include_baseline=False
        )
        assert result.failure_report.complete
        assert len(result.runs) == 2
        snapshot = runner.stats.snapshot()
        assert snapshot["cells.resumed"] == 1
        assert snapshot["cells.simulated"] == 1
        reference = SuiteRunner(TINY, seed=2, jobs=1).sweep(
            [workload_by_name("619.lbm_s")], ["none", "spp"], include_baseline=False
        )
        for key in reference.runs:
            assert dataclasses.asdict(result.runs[key]) == dataclasses.asdict(
                reference.runs[key]
            )

    def test_resubmission_is_served_from_the_result_cache(self, tmp_path):
        cache = tmp_path / "cache"
        first = SuiteRunner(
            TINY, seed=2, jobs=1, cache_dir=cache, backend=FarmBackend(tmp_path / "q1")
        ).sweep([GOOD], ["none", "spp"], include_baseline=False)
        assert first.cache_hit_rate == 0.0
        assert first.executed == 2
        again = SuiteRunner(
            TINY, seed=2, jobs=1, cache_dir=cache, backend=FarmBackend(tmp_path / "q2")
        ).sweep([GOOD], ["none", "spp"], include_baseline=False)
        assert again.cache_hits == 2
        assert again.executed == 0
        assert again.cache_hit_rate == 1.0

    def test_worker_events_reach_ledger_and_observers(self, tmp_path):
        seen = []
        runner = SuiteRunner(
            TINY,
            seed=2,
            jobs=1,
            ledger_path=tmp_path / "ledger.jsonl",
            backend=FarmBackend(tmp_path / "queue"),
        )
        runner.add_observer(seen.append)
        runner.sweep([GOOD], ["none"], include_baseline=False)
        phases = [r.get("phase") for r in seen if r.get("event") == "lifecycle"]
        assert "queued" in phases and "started" in phases and "finished" in phases
        entries = [
            json.loads(line)
            for line in (tmp_path / "ledger.jsonl").read_text().splitlines()
        ]
        cell_entries = [e for e in entries if e.get("event") == "cell"]
        assert cell_entries and cell_entries[0]["source"] == "farm"
        assert cell_entries[0]["worker"] == "broker-inline"
        [sweep_entry] = [e for e in entries if e.get("event") == "sweep"]
        assert sweep_entry["backend"] == "farm"
        assert "cache_hit_rate" in sweep_entry


@pytest.mark.timeout(180)
class TestWorkerSubprocess:
    def test_external_worker_process_drains_the_queue(self, tmp_path):
        config = SimConfig.quick(measure_records=600, warmup_records=150)
        fingerprint = fingerprint_digest(config)
        queue = FarmQueue(tmp_path / "queue")
        queue.ensure(retries=1, lease_ttl=60.0, fingerprint=fingerprint, seed=1)
        cell_id = cell_digest("619.lbm_s", "none", config, 1)
        queue.submit(
            CellTicket.build(
                workload="619.lbm_s",
                prefetcher="none",
                config=config,
                seed=1,
                cell_id=cell_id,
                fingerprint=fingerprint,
            )
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "farm",
                "worker",
                "--queue-dir",
                str(tmp_path / "queue"),
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "completed 1 cell(s)" in proc.stdout
        document = queue.load_result(cell_id)
        assert document["workload"] == "619.lbm_s"
        assert document["result"]["instructions"] > 0


@pytest.mark.timeout(120)
class TestFarmCLI:
    def test_sweep_backend_farm_reports_hit_rate(self, tmp_path, capsys):
        from repro.__main__ import main

        argv = [
            "sweep",
            "--workloads",
            "619.lbm_s",
            "--prefetchers",
            "spp",
            "--records",
            "1200",
            "--seed",
            "2",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--backend",
            "farm",
            "--queue-dir",
            str(tmp_path / "queue"),
            "--quiet",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "hit_rate=0.0%" in first
        assert main(argv) == 0
        again = capsys.readouterr().out
        assert "cached=2 executed=0 hit_rate=100.0%" in again

    def test_queue_dir_requires_farm_backend(self, tmp_path, capsys):
        from repro.__main__ import main

        assert (
            main(["sweep", "--queue-dir", str(tmp_path / "queue"), "--quiet"]) == 2
        )
        assert "--backend farm" in capsys.readouterr().err

    def test_farm_status_reports_counts(self, tmp_path, capsys):
        from repro.__main__ import main

        queue = FarmQueue(tmp_path / "queue")
        queue.ensure()
        queue.submit(_ticket(tmp_path / "queue"))
        assert main(["farm", "status", "--queue-dir", str(tmp_path / "queue")]) == 0
        out = capsys.readouterr().out
        assert "queued" in out and "manifest.schema = 1" in out

    def test_farm_status_without_queue_fails_cleanly(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["farm", "status", "--queue-dir", str(tmp_path / "nope")]) == 2
        assert "no queue" in capsys.readouterr().err
