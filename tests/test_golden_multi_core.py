"""Multi-core golden stats: the shared-LLC schedule must stay bit-identical.

``tests/golden/multi_core_stats.json`` captures a full 4-core mix run
(every per-core counter, instructions, cycles) for none/spp/ppf on a
pinned mix, recorded with the scalar engine.  Both engines must
reproduce every cell exactly: the cycle-quantum batched driver promises
the scalar interleaving at the shared LLC and DRAM — any change to
scheduling order, RNG consumption, or arithmetic anywhere in the
multi-core path shows up here as an exact-value mismatch.

The checkpoint tests extend the contract to mid-measure boundaries: a
snapshot taken under either engine, part-way through measurement,
resumes under the other and still finishes bit-identical.

Regenerate (only for a deliberate semantic change, with review):

    PYTHONPATH=src python tests/test_golden_multi_core.py --regenerate
"""

import dataclasses
import json
import sys
from pathlib import Path

import pytest

from repro.engine.multi_core import _core_mode
from repro.sim.config import SimConfig
from repro.sim.multi_core import MultiCoreSim, run_multi_core
from repro.workloads.mixes import WorkloadMix
from repro.workloads.spec2017 import workload_by_name

GOLDEN_PATH = Path(__file__).parent / "golden" / "multi_core_stats.json"

#: The exact recording configuration; changing any of these invalidates
#: the golden file.
MIX_WORKLOADS = ("605.mcf_s", "603.bwaves_s", "619.lbm_s", "623.xalancbmk_s")
MEASURE_RECORDS = 900
WARMUP_RECORDS = 300
SEED = 3
SCHEMES = ("none", "spp", "ppf")
ENGINES = ("scalar", "batched")


def _mix() -> WorkloadMix:
    return WorkloadMix(
        name="golden4",
        workloads=tuple(workload_by_name(name) for name in MIX_WORKLOADS),
    )


def _config(engine: str = "scalar") -> SimConfig:
    config = SimConfig.multicore(len(MIX_WORKLOADS))
    return dataclasses.replace(
        config,
        warmup_records=WARMUP_RECORDS,
        measure_records=MEASURE_RECORDS,
        engine=engine,
    )


def _run_cell(scheme: str, engine: str):
    return run_multi_core(_mix(), scheme, _config(engine), seed=SEED)


def _as_cells(result) -> list:
    return [dataclasses.asdict(outcome) for outcome in result.cores]


def _load_golden():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


def _assert_cores_match(result, expect, label: str) -> None:
    got = _as_cells(result)
    assert len(got) == len(expect), f"{label}: core count {len(got)} != {len(expect)}"
    for core_index, (got_core, want_core) in enumerate(zip(got, expect)):
        for field in ("workload", "instructions", "cycles", "l2_misses",
                      "prefetches_issued", "prefetches_useful"):
            assert got_core[field] == want_core[field], (
                f"{label} core{core_index}: {field} "
                f"{got_core[field]} != {want_core[field]}"
            )
        mismatched = {
            stat: (got_core["stats"].get(stat), value)
            for stat, value in want_core["stats"].items()
            if got_core["stats"].get(stat) != value
        }
        extra = sorted(set(got_core["stats"]) - set(want_core["stats"]))
        assert not mismatched and not extra, (
            f"{label} core{core_index}: {len(mismatched)} stat(s) diverged "
            f"{mismatched}, extra keys {extra}"
        )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_cell_matches_golden(scheme, engine):
    expect = _load_golden()[scheme]
    result = _run_cell(scheme, engine)
    _assert_cores_match(result, expect, f"{scheme}/{engine}")


def test_golden_covers_all_schemes():
    assert set(_load_golden()) == set(SCHEMES)


def test_ppf_mix_uses_the_fused_runner():
    """Guard against the fused multi-core runner silently demoting to
    the generic one (the golden comparison would still pass, but the
    2.5x gate is won by the fused runner)."""
    sim = MultiCoreSim(_mix(), "ppf", _config("batched"), seed=SEED)
    for core_index in range(len(MIX_WORKLOADS)):
        assert _core_mode(sim, core_index) == "ppf"


class TestMidMeasureCheckpoints:
    """Mid-measure multi-core snapshots are engine-portable in both
    directions: the batched driver flushes every runner before
    ``advance_multi`` returns, so any advance boundary is a valid
    scalar-reachable state."""

    @pytest.mark.parametrize(
        "first_engine,second_engine",
        [("scalar", "batched"), ("batched", "scalar")],
    )
    def test_mid_measure_resume_crosses_engines(self, first_engine, second_engine):
        reference = _run_cell("ppf", "scalar")

        sim = MultiCoreSim(_mix(), "ppf", _config(first_engine), seed=SEED)
        sim.warmup()
        sim.begin_measurement()
        sim.advance(777)  # mid-measure, not a phase boundary
        state = sim.state_dict()

        resumed = MultiCoreSim(_mix(), "ppf", _config(second_engine), seed=SEED)
        resumed.load_state(state)
        result = resumed.measure()
        _assert_cores_match(
            result, _as_cells(reference), f"{first_engine}->{second_engine}"
        )

    def test_two_hop_round_trip(self):
        """batched -> scalar -> batched across two mid-measure cursors."""
        reference = _run_cell("ppf", "scalar")

        sim = MultiCoreSim(_mix(), "ppf", _config("batched"), seed=SEED)
        sim.warmup()
        sim.begin_measurement()
        sim.advance(501)
        hop = MultiCoreSim(_mix(), "ppf", _config("scalar"), seed=SEED)
        hop.load_state(sim.state_dict())
        hop.advance(400)
        final = MultiCoreSim(_mix(), "ppf", _config("batched"), seed=SEED)
        final.load_state(hop.state_dict())
        result = final.measure()
        _assert_cores_match(
            result, _as_cells(reference), "batched->scalar->batched"
        )


def _regenerate():
    golden = {}
    for scheme in SCHEMES:
        golden[scheme] = _as_cells(_run_cell(scheme, "scalar"))
    GOLDEN_PATH.write_text(json.dumps(golden, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(golden)} cells)")


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
