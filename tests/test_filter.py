"""Tests for repro.core.filter (the hashed perceptron)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import Feature, FeatureContext, scaled_production_features
from repro.core.filter import (
    DECISION_BY_CODE,
    PREFETCH_L2_CODE,
    PREFETCH_LLC_CODE,
    REJECT_CODE,
    Decision,
    FilterConfig,
    PerceptronFilter,
)
from repro.core.weights import WEIGHT_MAX, WEIGHT_MIN


def make_ctx(**overrides):
    defaults = dict(
        candidate_addr=0x40000,
        trigger_addr=0x40000,
        pc=0x400,
        pcs=(0x400, 0x3FC, 0x3F8),
        delta=1,
        depth=1,
        signature=0x1,
        last_signature=0,
        confidence=50,
    )
    defaults.update(overrides)
    return FeatureContext(**defaults)


def tiny_filter(**config_kwargs):
    features = [
        Feature("f_conf", 128, lambda ctx: ctx.confidence),
        Feature("f_depth", 32, lambda ctx: ctx.depth),
    ]
    return PerceptronFilter(features, FilterConfig(**config_kwargs))


class TestConfig:
    def test_default_orders(self):
        cfg = FilterConfig.default()
        assert cfg.tau_lo <= cfg.tau_hi
        assert cfg.theta_n <= cfg.theta_p

    def test_invalid_tau_order_rejected(self):
        with pytest.raises(ValueError):
            FilterConfig(tau_hi=-20, tau_lo=-10)

    def test_invalid_theta_order_rejected(self):
        with pytest.raises(ValueError):
            FilterConfig(theta_p=-100, theta_n=100)

    def test_single_level_collapses_thresholds(self):
        cfg = FilterConfig.single_level()
        assert cfg.tau_hi == cfg.tau_lo


class TestInference:
    def test_default_features_are_production(self):
        assert len(PerceptronFilter().features) == 9

    def test_empty_features_rejected(self):
        with pytest.raises(ValueError):
            PerceptronFilter(features=[])

    def test_untrained_sum_is_zero(self):
        filt = tiny_filter()
        decision, total, indices = filt.infer(make_ctx())
        assert total == 0
        assert decision is Decision.PREFETCH_L2  # 0 >= tau_hi (-5)

    def test_decision_bands(self):
        filt = tiny_filter(tau_hi=4, tau_lo=-4)
        # Train confidence-50/depth-1 weights up.
        indices = filt.feature_indices(make_ctx())
        filt.train(indices, positive=True)
        filt.train(indices, positive=True)
        filt.train(indices, positive=True)
        decision, total, _ = filt.infer(make_ctx())
        assert total == 6
        assert decision is Decision.PREFETCH_L2
        # Push down into the LLC band.
        for _ in range(4):
            filt.train(indices, positive=False)
        decision, total, _ = filt.infer(make_ctx())
        assert total == -2
        assert decision is Decision.PREFETCH_LLC
        for _ in range(4):
            filt.train(indices, positive=False)
        decision, total, _ = filt.infer(make_ctx())
        assert decision is Decision.REJECT

    def test_decision_accepted_property(self):
        assert Decision.PREFETCH_L2.accepted
        assert Decision.PREFETCH_LLC.accepted
        assert not Decision.REJECT.accepted

    def test_stats_track_decisions(self):
        filt = tiny_filter()
        filt.infer(make_ctx())
        assert filt.stats.inferences == 1
        assert filt.stats.accepted_l2 == 1
        assert filt.stats.accept_rate == 1.0

    def test_distinct_contexts_index_distinct_weights(self):
        filt = tiny_filter()
        a = filt.feature_indices(make_ctx(confidence=10))
        b = filt.feature_indices(make_ctx(confidence=90))
        assert a != b

    def test_sum_bounds(self):
        filt = PerceptronFilter()
        assert filt.max_sum == 9 * WEIGHT_MAX
        assert filt.min_sum == 9 * WEIGHT_MIN


class TestTraining:
    def test_positive_training_increments_all(self):
        filt = tiny_filter()
        indices = filt.feature_indices(make_ctx())
        assert filt.train(indices, positive=True)
        assert filt.weight_sum(indices) == len(filt.features)

    def test_negative_training_decrements_all(self):
        filt = tiny_filter()
        indices = filt.feature_indices(make_ctx())
        filt.train(indices, positive=False)
        assert filt.weight_sum(indices) == -len(filt.features)

    def test_theta_p_suppresses_positive_overtraining(self):
        filt = tiny_filter(theta_p=4, theta_n=-4)
        indices = filt.feature_indices(make_ctx())
        applied = [filt.train(indices, positive=True) for _ in range(10)]
        # Stops once the re-read sum reaches theta_p.
        assert not all(applied)
        assert filt.weight_sum(indices) <= 4 + len(filt.features)
        assert filt.stats.suppressed_updates > 0

    def test_theta_n_suppresses_negative_overtraining(self):
        filt = tiny_filter(theta_p=4, theta_n=-4)
        indices = filt.feature_indices(make_ctx())
        applied = [filt.train(indices, positive=False) for _ in range(10)]
        assert not all(applied)
        assert filt.weight_sum(indices) >= -4 - len(filt.features)

    def test_weights_saturate(self):
        filt = tiny_filter(theta_p=10_000, theta_n=-10_000)
        indices = filt.feature_indices(make_ctx())
        for _ in range(100):
            filt.train(indices, positive=True)
        assert filt.weight_sum(indices) == WEIGHT_MAX * len(filt.features)

    def test_reset_clears_weights_and_stats(self):
        filt = tiny_filter()
        indices = filt.feature_indices(make_ctx())
        filt.train(indices, positive=True)
        filt.infer(make_ctx())
        filt.reset()
        assert filt.weight_sum(indices) == 0
        assert filt.stats.inferences == 0


class TestLearnability:
    def test_learns_linearly_separable_rule(self):
        """The filter must learn 'low confidence = useless' quickly."""
        filt = PerceptronFilter(config=FilterConfig(theta_p=30, theta_n=-30))
        good = make_ctx(confidence=90, candidate_addr=0x10000)
        bad = make_ctx(confidence=5, candidate_addr=0x20040, depth=9)
        for _ in range(20):
            filt.train(filt.feature_indices(good), positive=True)
            filt.train(filt.feature_indices(bad), positive=False)
        good_decision, good_sum, _ = filt.infer(good)
        bad_decision, bad_sum, _ = filt.infer(bad)
        assert good_sum > bad_sum
        assert good_decision.accepted
        assert bad_decision is Decision.REJECT

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_generalizes_over_confidence_feature(self, pc):
        """Unseen addresses with a trained confidence still classify."""
        filt = PerceptronFilter(config=FilterConfig(theta_p=50, theta_n=-50))
        for i in range(30):
            ctx = make_ctx(confidence=3, candidate_addr=i * 0x4340, pc=i * 7)
            filt.train(filt.feature_indices(ctx), positive=False)
        unseen = make_ctx(confidence=3, candidate_addr=0x77777740, pc=pc)
        _, total, _ = filt.infer(unseen)
        assert total < 0

    def test_table_for_lookup(self):
        filt = PerceptronFilter()
        assert filt.table_for("confidence").entries == 128
        with pytest.raises(KeyError):
            filt.table_for("nope")

    def test_total_weight_bits(self):
        assert PerceptronFilter().total_weight_bits() == 113_280


class TestFastPath:
    """The fused production index path and the int-code decide() twin."""

    def test_production_set_engages_fused_path(self):
        assert PerceptronFilter()._fused_indices is not None

    def test_custom_features_fall_back_to_generic(self):
        assert tiny_filter()._fused_indices is None

    def test_rescaled_tables_fall_back_to_generic(self):
        filt = PerceptronFilter(features=scaled_production_features(2.0))
        assert filt._fused_indices is None

    @settings(max_examples=200, deadline=None)
    @given(
        candidate_addr=st.integers(min_value=0, max_value=2**42 - 1),
        trigger_addr=st.integers(min_value=0, max_value=2**42 - 1),
        pc=st.integers(min_value=0, max_value=2**48 - 1),
        pcs=st.tuples(
            st.integers(min_value=0, max_value=2**48 - 1),
            st.integers(min_value=0, max_value=2**48 - 1),
            st.integers(min_value=0, max_value=2**48 - 1),
        ),
        delta=st.integers(min_value=-200, max_value=200),
        depth=st.integers(min_value=1, max_value=64),
        signature=st.integers(min_value=0, max_value=0xFFF),
        confidence=st.integers(min_value=0, max_value=100),
    )
    def test_fused_indices_match_generic_feature_walk(
        self, candidate_addr, trigger_addr, pc, pcs, delta, depth, signature, confidence
    ):
        filt = PerceptronFilter()
        ctx = make_ctx(
            candidate_addr=candidate_addr,
            trigger_addr=trigger_addr,
            pc=pc,
            pcs=pcs,
            delta=delta,
            depth=depth,
            signature=signature,
            confidence=confidence,
        )
        fused = filt.feature_indices(ctx)
        generic = tuple(feature.index(ctx) for feature in filt.features)
        assert fused == generic

    def test_decide_codes_mirror_infer_decisions(self):
        filt = tiny_filter(tau_hi=4, tau_lo=-4)
        indices = filt.feature_indices(make_ctx())
        for _ in range(3):
            filt.train(indices, positive=True)
        for expected_code, expected_decision in (
            (PREFETCH_L2_CODE, Decision.PREFETCH_L2),
            (PREFETCH_LLC_CODE, Decision.PREFETCH_LLC),
            (REJECT_CODE, Decision.REJECT),
        ):
            code, total, code_indices = filt.decide(make_ctx())
            decision, infer_total, infer_indices = filt.infer(make_ctx())
            assert code == expected_code
            assert decision is expected_decision
            assert DECISION_BY_CODE[code] is decision
            assert total == infer_total
            assert code_indices == infer_indices
            for _ in range(4):
                filt.train(indices, positive=False)

    def test_accepted_codes_are_truthy(self):
        assert PREFETCH_L2_CODE and PREFETCH_LLC_CODE
        assert not REJECT_CODE

    def test_weight_lists_survive_reset_and_load(self):
        """The cached weight references must track in-place mutation."""
        filt = tiny_filter()
        indices = filt.feature_indices(make_ctx())
        filt.train(indices, positive=True)
        assert filt.weight_sum(indices) == len(filt.features)
        filt.reset()
        assert filt.weight_sum(indices) == 0
        table = filt.tables[0]
        table.load([3] * table.entries)
        assert filt.weight_sum(indices) == 3
