"""Integration tests: the paper's shape claims at miniature scale.

These are the end-to-end checks of DESIGN.md's "shape targets", run at
a trace length small enough for the test suite.  The benchmark harness
re-runs them at larger scale.
"""

import pytest

from repro.core.ppf import make_ppf_spp
from repro.prefetchers.spp import SPP, SPPConfig
from repro.sim.config import SimConfig
from repro.sim.runner import ExperimentRunner
from repro.sim.single_core import run_single_core
from repro.workloads.spec2017 import memory_intensive_subset, workload_by_name

CFG = SimConfig.quick(measure_records=12_000, warmup_records=3_000)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(CFG)


class TestHeadlineClaims:
    def test_ppf_beats_spp_on_xalancbmk(self, runner):
        """§6.1: PPF 'considerably outperforms' on 623.xalancbmk."""
        workload = workload_by_name("623.xalancbmk_s")
        spp = runner.single(workload, "spp")
        ppf = runner.single(workload, "ppf")
        assert ppf.ipc > spp.ipc * 1.05

    def test_ppf_prefetches_deeper_than_spp_on_xalancbmk(self, runner):
        """§6.1: SPP throttles at depth ~2.1; PPF reaches ~3.3."""
        workload = workload_by_name("623.xalancbmk_s")
        spp = runner.single(workload, "spp")
        ppf = runner.single(workload, "ppf")
        assert ppf.average_lookahead_depth > spp.average_lookahead_depth

    def test_ppf_more_useful_prefetches_on_xalancbmk(self, runner):
        workload = workload_by_name("623.xalancbmk_s")
        spp = runner.single(workload, "spp")
        ppf = runner.single(workload, "ppf")
        assert ppf.prefetches_useful > spp.prefetches_useful

    def test_bop_wins_cactuBSSN(self, runner):
        """§6.1: the one benchmark where PPF fails to match BOP."""
        workload = workload_by_name("607.cactuBSSN_s")
        bop = runner.single(workload, "bop")
        ppf = runner.single(workload, "ppf")
        spp = runner.single(workload, "spp")
        assert bop.ipc > ppf.ipc
        assert bop.ipc > spp.ipc

    def test_ppf_beats_spp_on_streams(self, runner):
        for name in ("603.bwaves_s", "649.fotonik3d_s"):
            workload = workload_by_name(name)
            spp = runner.single(workload, "spp")
            ppf = runner.single(workload, "ppf")
            assert ppf.ipc >= spp.ipc * 0.99, name

    def test_ppf_raises_accuracy_over_spp(self, runner):
        """Filtering must buy accuracy on the showcase workloads."""
        for name in ("603.bwaves_s", "623.xalancbmk_s", "605.mcf_s"):
            workload = workload_by_name(name)
            spp = runner.single(workload, "spp")
            ppf = runner.single(workload, "ppf")
            assert ppf.accuracy > spp.accuracy, name

    def test_prefetching_beats_no_prefetching_on_intensive(self, runner):
        for spec in memory_intensive_subset()[:4]:
            base = runner.single(spec, "none")
            ppf = runner.single(spec, "ppf")
            assert ppf.ipc >= base.ipc * 0.98, spec.name


class TestAggressivenessClaims:
    def test_unfiltered_aggression_loses_accuracy(self):
        """Figure 1's premise: deeper fixed tuning dilutes accuracy."""
        workload = workload_by_name("603.bwaves_s")
        shallow = run_single_core(workload, SPP(SPPConfig.fixed_depth(4)), CFG)
        deep = run_single_core(workload, SPP(SPPConfig.fixed_depth(12)), CFG)
        assert deep.prefetches_issued > shallow.prefetches_issued
        assert deep.accuracy < shallow.accuracy

    def test_filter_recovers_accuracy_at_depth(self):
        workload = workload_by_name("603.bwaves_s")
        deep = run_single_core(workload, SPP(SPPConfig.fixed_depth(12)), CFG)
        ppf = run_single_core(workload, make_ppf_spp(), CFG)
        assert ppf.accuracy > deep.accuracy
        assert ppf.average_lookahead_depth > 2


class TestCoverageClaim:
    def test_ppf_coverage_at_least_spp(self, runner):
        suite = runner.sweep(
            [workload_by_name(n) for n in ("603.bwaves_s", "623.xalancbmk_s", "619.lbm_s")],
            ["spp", "ppf"],
        )
        assert suite.coverage("ppf", "l2") > suite.coverage("spp", "l2")


class TestConstraintDirections:
    def test_low_bandwidth_hurts_everyone(self, runner):
        """§6.3: under 3.2 GB/s, absolute speedups shrink."""
        workload = workload_by_name("603.bwaves_s")
        low = SimConfig.low_bandwidth()
        low.warmup_records, low.measure_records = CFG.warmup_records, CFG.measure_records
        default_ratio = (
            runner.single(workload, "spp").ipc / runner.single(workload, "none").ipc
        )
        low_ratio = (
            runner.single(workload, "spp", low).ipc
            / runner.single(workload, "none", low).ipc
        )
        assert low_ratio < default_ratio

    def test_ppf_survives_small_llc(self, runner):
        workload = workload_by_name("623.xalancbmk_s")
        small = SimConfig.small_llc()
        small.warmup_records, small.measure_records = (
            CFG.warmup_records,
            CFG.measure_records,
        )
        spp = runner.single(workload, "spp", small)
        ppf = runner.single(workload, "ppf", small)
        assert ppf.ipc >= spp.ipc
