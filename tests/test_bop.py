"""Tests for repro.prefetchers.bop (Best-Offset Prefetcher)."""


from repro.prefetchers.bop import BOP, BOPConfig, default_offset_list


def feed_stride(bop, stride_blocks, count, start_block=1 << 14, hit=False):
    """Feed a constant-stride miss stream; return the candidates."""
    out = []
    for i in range(count):
        addr = (start_block + i * stride_blocks) << 6
        out.extend(bop.train(addr, 0x400, hit, i * 10))
    return out


class TestOffsetList:
    def test_contains_known_michaud_offsets(self):
        offsets = default_offset_list()
        for value in (1, 2, 3, 4, 5, 8, 96, 192, 256):
            assert value in offsets

    def test_excludes_offsets_with_large_prime_factors(self):
        offsets = default_offset_list()
        for value in (7, 11, 13, 14, 97, 254):
            assert value not in offsets

    def test_count_is_52(self):
        # Michaud's HPCA'16 list has 52 offsets in [1, 256].
        assert len(default_offset_list()) == 52


class TestLearning:
    def test_learns_unit_stride(self):
        bop = BOP(BOPConfig(round_max=20))
        feed_stride(bop, 1, 600)
        assert bop.best_offset == 1 or bop.best_offset == 2
        assert bop.prefetch_on

    def test_learns_large_offset(self):
        bop = BOP(BOPConfig(round_max=20))
        feed_stride(bop, 96, 2000)
        assert bop.best_offset % 96 == 0
        assert bop.prefetch_on

    def test_turns_off_on_random_traffic(self):
        import random

        rng = random.Random(9)
        bop = BOP(BOPConfig(round_max=4))
        for i in range(2000):
            bop.train(rng.randrange(1 << 30) << 6, 0x400, False, i)
        assert not bop.prefetch_on

    def test_phase_end_resets_scores(self):
        bop = BOP(BOPConfig(round_max=2))
        feed_stride(bop, 1, 300)
        assert all(score <= bop.config.score_max for score in bop._scores)

    def test_score_max_ends_phase_early(self):
        bop = BOP(BOPConfig(score_max=2, round_max=100))
        feed_stride(bop, 1, 400)
        # With a tiny score_max the phase flips quickly and the winning
        # score (2) clears bad_score (1), keeping prefetching on.
        assert bop.prefetch_on


class TestPrefetching:
    def test_prefetches_best_offset_ahead(self):
        bop = BOP(BOPConfig(round_max=10))
        feed_stride(bop, 1, 400)
        block = 1 << 20
        candidates = bop.train(block << 6, 0x400, False, 0)
        assert candidates
        assert candidates[0].addr == (block + bop.best_offset) << 6

    def test_prefetch_crosses_page_boundaries(self):
        bop = BOP(BOPConfig(round_max=10))
        feed_stride(bop, 96, 2000)
        block = (1 << 20) + 32
        candidates = bop.train(block << 6, 0x400, False, 0)
        assert candidates
        assert candidates[0].addr >> 12 != (block << 6) >> 12

    def test_degree_controls_candidate_count(self):
        bop = BOP(BOPConfig(round_max=10, degree=3))
        feed_stride(bop, 1, 400)
        candidates = bop.train((1 << 20) << 6, 0x400, False, 0)
        assert len(candidates) == 3

    def test_off_means_no_candidates(self):
        bop = BOP()
        bop.prefetch_on = False
        assert bop.train(0x1000, 0x400, False, 0) == []

    def test_candidates_fill_l2(self):
        bop = BOP(BOPConfig(round_max=10))
        feed_stride(bop, 1, 400)
        candidates = bop.train((1 << 20) << 6, 0x400, False, 0)
        assert all(c.fill_l2 for c in candidates)

    def test_hits_also_learn(self):
        """L2 hits participate in offset scoring (operate on access)."""
        bop = BOP(BOPConfig(round_max=5))
        feed_stride(bop, 1, 500, hit=True)
        assert bop.prefetch_on


class TestRRTable:
    def test_rr_insert_and_hit(self):
        bop = BOP()
        bop._rr_insert(12345)
        assert bop._rr_hit(12345)
        assert not bop._rr_hit(54321)

    def test_rr_collision_overwrites(self):
        bop = BOP(BOPConfig(rr_entries=1))
        bop._rr_insert(1)
        bop._rr_insert(2)
        assert not bop._rr_hit(1)
        assert bop._rr_hit(2)
