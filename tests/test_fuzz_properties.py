"""Cross-cutting property tests: random traffic must never break invariants.

These fuzz the full prefetcher population and the hierarchy with
arbitrary access streams and check structural invariants — the kind of
guarantees a hardware unit gives by construction.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ppf import make_ppf_spp
from repro.core.weights import WEIGHT_MAX, WEIGHT_MIN
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.prefetchers.ampm import AMPM, DAAMPM
from repro.prefetchers.bop import BOP
from repro.prefetchers.next_line import NextLine
from repro.prefetchers.spp import SPP, SPPConfig
from repro.prefetchers.stride import StridePrefetcher
from repro.prefetchers.vldp import VLDP

ALL_PREFETCHERS = [SPP, BOP, AMPM, DAAMPM, NextLine, StridePrefetcher, VLDP]

accesses = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1 << 22),  # block number
        st.integers(min_value=0, max_value=1 << 16),  # pc
        st.booleans(),  # cache hit flag
    ),
    min_size=1,
    max_size=120,
)


@pytest.mark.parametrize("prefetcher_cls", ALL_PREFETCHERS)
class TestPrefetcherInvariants:
    @settings(max_examples=15, deadline=None)
    @given(stream=accesses)
    def test_candidates_are_block_aligned_and_nonnegative(self, prefetcher_cls, stream):
        prefetcher = prefetcher_cls()
        for cycle, (block, pc, hit) in enumerate(stream):
            for candidate in prefetcher.train(block << 6, pc, hit, cycle):
                assert candidate.addr >= 0
                assert candidate.addr % 64 == 0

    @settings(max_examples=10, deadline=None)
    @given(stream=accesses)
    def test_never_prefetches_trigger_block(self, prefetcher_cls, stream):
        prefetcher = prefetcher_cls()
        for cycle, (block, pc, hit) in enumerate(stream):
            for candidate in prefetcher.train(block << 6, pc, hit, cycle):
                assert candidate.addr >> 6 != block


class TestSPPFuzz:
    @settings(max_examples=15, deadline=None)
    @given(stream=accesses)
    def test_confidence_meta_in_range(self, stream):
        spp = SPP(SPPConfig.aggressive())
        for cycle, (block, pc, hit) in enumerate(stream):
            for candidate in spp.train(block << 6, pc, hit, cycle):
                assert 0 <= candidate.meta["confidence"] <= 100
                assert candidate.meta["depth"] >= 1


class TestPPFFuzz:
    @settings(max_examples=10, deadline=None)
    @given(stream=accesses)
    def test_weights_stay_saturated_range(self, stream):
        ppf = make_ppf_spp()
        for cycle, (block, pc, hit) in enumerate(stream):
            addr = block << 6
            ppf.train(addr, pc, hit, cycle)
            if cycle % 3 == 0:
                ppf.on_eviction(addr, was_prefetch=True, was_used=False)
        for table in ppf.filter.tables:
            assert all(WEIGHT_MIN <= w <= WEIGHT_MAX for w in table.weights())

    @settings(max_examples=10, deadline=None)
    @given(stream=accesses)
    def test_tables_never_hold_invalid_hits(self, stream):
        ppf = make_ppf_spp()
        for cycle, (block, pc, hit) in enumerate(stream):
            ppf.train(block << 6, pc, hit, cycle)
        assert ppf.prefetch_table.occupancy() <= ppf.prefetch_table.entries
        assert ppf.reject_table.occupancy() <= ppf.reject_table.entries


class TestHierarchyFuzz:
    @settings(max_examples=10, deadline=None)
    @given(stream=accesses)
    def test_ready_cycles_never_precede_requests(self, stream):
        hierarchy = MemoryHierarchy(
            config=HierarchyConfig(l1_size=4096, l1_assoc=4, l2_size=16384,
                                   l2_assoc=4, llc_size_per_core=65536),
            prefetchers=[SPP(SPPConfig.aggressive())],
        )
        cycle = 0
        for block, pc, _hit in stream:
            result = hierarchy.access(0, pc, block << 6, cycle)
            assert result.ready_cycle > cycle
            cycle = result.ready_cycle + 1

    @settings(max_examples=10, deadline=None)
    @given(stream=accesses)
    def test_stats_balance(self, stream):
        hierarchy = MemoryHierarchy(prefetchers=[make_ppf_spp()])
        cycle = 0
        for block, pc, _hit in stream:
            cycle = hierarchy.access(0, pc, block << 6, cycle).ready_cycle + 1
        l2 = hierarchy.l2[0].stats
        assert l2.demand_hits + l2.demand_misses == l2.demand_accesses
        pf = hierarchy.prefetchers[0].stats
        assert pf.issued == pf.issued_l2 + pf.issued_llc
        assert pf.useful <= pf.issued + l2.demand_accesses  # sanity bound
