"""PPF over other prefetchers — the §3.2 generality claim, end to end.

The paper argues PPF "can be adapted to be used over any underlying
prefetcher".  These tests wrap the filter around each implemented
prefetcher and verify the contract holds: candidates flow through
inference, the tables record decisions, training fires, and accuracy
never collapses versus the unfiltered prefetcher.
"""

import pytest

from repro.core.features import production_features
from repro.core.ppf import PPF
from repro.prefetchers.ampm import AMPM, DAAMPM
from repro.prefetchers.bop import BOP
from repro.prefetchers.next_line import NextLine
from repro.prefetchers.spp import SPP, SPPConfig
from repro.prefetchers.stride import StridePrefetcher
from repro.prefetchers.vldp import VLDP
from repro.sim.config import SimConfig
from repro.sim.single_core import run_single_core
from repro.workloads.spec2017 import workload_by_name

CFG = SimConfig.quick(measure_records=4_000, warmup_records=1_000)

AGNOSTIC = {"phys_address", "cache_line", "page_address", "pc_path_hash", "pc_xor_depth"}


def agnostic_features():
    return [f for f in production_features() if f.name in AGNOSTIC]


UNDERLYING_FACTORIES = {
    "spp": lambda: SPP(SPPConfig.aggressive()),
    "bop": BOP,
    "ampm": AMPM,
    "da-ampm": DAAMPM,
    "vldp": VLDP,
    "next-line": NextLine,
    "stride": StridePrefetcher,
}


@pytest.mark.parametrize("name", sorted(UNDERLYING_FACTORIES))
class TestWrapAnyPrefetcher:
    def make(self, name):
        return PPF(
            underlying=UNDERLYING_FACTORIES[name](), features=agnostic_features()
        )

    def test_candidates_flow_through_filter(self, name):
        ppf = self.make(name)
        workload = workload_by_name("603.bwaves_s")
        run_single_core(workload, ppf, CFG)
        if ppf.underlying.stats.candidates > 0:
            assert ppf.filter.stats.inferences > 0
            recorded = ppf.prefetch_table.inserts + ppf.reject_table.inserts
            assert recorded == ppf.filter.stats.inferences

    def test_training_fires(self, name):
        ppf = self.make(name)
        workload = workload_by_name("603.bwaves_s")
        run_single_core(workload, ppf, CFG)
        stats = ppf.filter.stats
        if stats.inferences > 50:
            assert stats.positive_updates + stats.negative_updates > 0

    def test_accuracy_not_worse_than_unfiltered(self, name):
        workload = workload_by_name("605.mcf_s")
        plain = run_single_core(workload, UNDERLYING_FACTORIES[name](), CFG)
        filtered = run_single_core(workload, self.make(name), CFG)
        if plain.prefetches_issued > 100:
            assert filtered.accuracy >= plain.accuracy * 0.9, name


class TestFeatureSubsets:
    def test_agnostic_subset_has_no_prefetcher_metadata(self):
        names = {f.name for f in agnostic_features()}
        for metadata_feature in ("confidence", "signature_xor_delta", "pc_xor_delta"):
            assert metadata_feature not in names

    def test_missing_metadata_defaults_are_safe(self):
        """Candidates without SPP metadata still index every feature."""
        ppf = PPF(underlying=NextLine())  # full 9 features, no metadata
        out = ppf.train(0x40000, 0x400, False, 0)
        assert isinstance(out, list)
