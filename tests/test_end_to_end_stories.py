"""End-to-end narrative tests: the paper's §6 stories, told by the code.

Each test walks one qualitative story from the results section through
the public API, asserting the causal chain rather than a single number.
"""

import pytest

from repro.core.filter import FilterConfig
from repro.core.ppf import PPF, make_ppf_spp
from repro.prefetchers.spp import SPP, SPPConfig
from repro.sim.config import SimConfig
from repro.sim.single_core import run_single_core
from repro.workloads.spec2017 import workload_by_name

CFG = SimConfig.quick(measure_records=10_000, warmup_records=2_500)


class TestXalancbmkStory:
    """§6.1: 'Despite SPP under performing on that application, PPF
    manages to considerably outperform all prefetchers' — because the
    varying deltas trip SPP's throttle while PPF's per-candidate check
    keeps prefetching."""

    @pytest.fixture(scope="class")
    def runs(self):
        workload = workload_by_name("623.xalancbmk_s")
        return {
            "spp": run_single_core(workload, SPP(SPPConfig.default()), CFG),
            "ppf": run_single_core(workload, make_ppf_spp(), CFG),
        }

    def test_chain_deeper_speculation(self, runs):
        assert runs["ppf"].average_lookahead_depth > runs["spp"].average_lookahead_depth

    def test_chain_more_total_prefetches(self, runs):
        assert runs["ppf"].prefetch_candidates > runs["spp"].prefetch_candidates

    def test_chain_more_useful_prefetches(self, runs):
        assert runs["ppf"].prefetches_useful > runs["spp"].prefetches_useful

    def test_chain_ends_in_speedup(self, runs):
        assert runs["ppf"].ipc > runs["spp"].ipc


class TestAccuracyCoverageTradeoffStory:
    """§1: coverage and accuracy 'generally at odds'; PPF breaks the
    trade-off — more coverage AND more accuracy than the stock tuning."""

    def test_ppf_improves_both_axes(self):
        workload = workload_by_name("649.fotonik3d_s")
        base = run_single_core(workload, "none", CFG)
        spp = run_single_core(workload, SPP(SPPConfig.default()), CFG)
        ppf = run_single_core(workload, make_ppf_spp(), CFG)
        coverage_spp = 1 - spp.l2_misses / base.l2_misses
        coverage_ppf = 1 - ppf.l2_misses / base.l2_misses
        assert coverage_ppf > coverage_spp
        assert ppf.accuracy > spp.accuracy


class TestFillLevelStory:
    """§3.1: two thresholds route moderate-confidence prefetches to the
    larger LLC rather than 'possibly pollute a significantly smaller L2'."""

    def test_two_level_filter_uses_both_destinations(self):
        workload = workload_by_name("623.xalancbmk_s")
        ppf = make_ppf_spp()
        run_single_core(workload, ppf, CFG)
        stats = ppf.filter.stats
        assert stats.accepted_l2 > 0
        assert stats.accepted_llc > 0
        assert stats.rejected > 0

    def test_collapsed_thresholds_lose_the_middle_band(self):
        workload = workload_by_name("623.xalancbmk_s")
        ppf = PPF(filter_config=FilterConfig.single_level())
        run_single_core(workload, ppf, CFG)
        assert ppf.filter.stats.accepted_llc == 0


class TestAlphaFeedbackStory:
    """§2.1/§6.1: filtering raises measured accuracy, which raises SPP's
    alpha, which un-throttles the lookahead — a positive feedback loop
    the stock prefetcher cannot reach."""

    def test_filtered_spp_holds_higher_alpha(self):
        workload = workload_by_name("605.mcf_s")
        stock = SPP(SPPConfig.default())
        run_single_core(workload, stock, CFG)
        ppf = make_ppf_spp()
        run_single_core(workload, ppf, CFG)
        assert ppf.underlying.alpha_percent >= stock.alpha_percent
