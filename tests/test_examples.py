"""Smoke tests: every example script runs end-to-end at tiny scale."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_examples_directory_has_quickstart(self):
        assert (EXAMPLES / "quickstart.py").exists()

    def test_quickstart(self):
        out = run_example("quickstart.py", "623.xalancbmk_s", "4000")
        assert "PPF quickstart" in out
        assert "PPF over aggressive SPP" in out

    def test_aggressive_tuning(self):
        out = run_example("aggressive_tuning.py", "4000")
        assert "Figure 1" in out
        assert "TOTAL_PF" in out

    def test_multicore_filtering(self):
        out = run_example("multicore_filtering.py", "2", "2500")
        assert "Weighted-IPC" in out
        assert "geomean" in out

    def test_feature_engineering(self):
        out = run_example("feature_engineering.py", "4000")
        assert "Feature audit" in out
        assert "delta_xor_page_offset" in out
        assert "Survivors" in out

    def test_filter_any_prefetcher(self):
        out = run_example("filter_any_prefetcher.py", "4000")
        assert "PPF over BOP" in out
        assert "PPF over stride" in out

    def test_traffic_analysis(self):
        out = run_example("traffic_analysis.py", "603.bwaves_s", "4000")
        assert "Memory-traffic breakdown" in out
        assert "prefetch traffic" in out

    def test_simpoint_sampling(self):
        out = run_example("simpoint_sampling.py", "8000", "2000")
        assert "Selected SimPoints" in out
        assert "SimPoint-weighted PPF speedup" in out

    def test_reproduce_paper_lists_experiments(self):
        out = run_example("reproduce_paper.py")
        assert "fig9-10" in out
        assert "tab2-3" in out

    def test_reproduce_paper_runs_cheap_experiment(self):
        out = run_example("reproduce_paper.py", "tab2-3", "--records", "1000")
        assert "322240" in out
