"""Tests for next-line and stride baselines, and the Prefetcher base."""

import pytest

from repro.prefetchers.base import (
    NullPrefetcher,
    PrefetchCandidate,
    Prefetcher,
    PrefetcherStats,
)
from repro.prefetchers.next_line import NextLine, NextLineConfig
from repro.prefetchers.stride import StrideConfig, StridePrefetcher


class TestPrefetchCandidate:
    def test_defaults(self):
        cand = PrefetchCandidate(addr=0x1000)
        assert cand.fill_l2
        assert cand.meta == {}

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            PrefetchCandidate(addr=-1)


class TestPrefetcherStats:
    def test_accuracy(self):
        stats = PrefetcherStats(issued=10, useful=4)
        assert stats.accuracy == 0.4

    def test_accuracy_zero_when_nothing_issued(self):
        assert PrefetcherStats().accuracy == 0.0

    def test_issue_accounting(self):
        pf = NullPrefetcher()
        pf.on_prefetch_issued(PrefetchCandidate(addr=0x1000, fill_l2=True))
        pf.on_prefetch_issued(PrefetchCandidate(addr=0x2000, fill_l2=False))
        assert pf.stats.issued == 2
        assert pf.stats.issued_l2 == 1
        assert pf.stats.issued_llc == 1

    def test_useless_eviction_accounting(self):
        pf = NullPrefetcher()
        pf.on_eviction(0x1000, was_prefetch=True, was_used=False)
        pf.on_eviction(0x2000, was_prefetch=True, was_used=True)
        pf.on_eviction(0x3000, was_prefetch=False, was_used=True)
        assert pf.stats.useless_evictions == 1

    def test_reset(self):
        pf = NullPrefetcher()
        pf.on_prefetch_issued(PrefetchCandidate(addr=0x1000))
        pf.reset_stats()
        assert pf.stats.issued == 0


class TestNullPrefetcher:
    def test_never_prefetches(self):
        pf = NullPrefetcher()
        assert pf.train(0x1000, 0x400, False, 0) == []


class TestNextLine:
    def test_prefetches_next_block(self):
        pf = NextLine()
        candidates = pf.train(0x1000, 0x400, False, 0)
        assert [c.addr for c in candidates] == [0x1040]

    def test_degree(self):
        pf = NextLine(NextLineConfig(degree=3))
        candidates = pf.train(0x1000, 0x400, False, 0)
        assert [c.addr for c in candidates] == [0x1040, 0x1080, 0x10C0]

    def test_stops_at_page_boundary(self):
        pf = NextLine(NextLineConfig(degree=4))
        candidates = pf.train(0xFC0, 0x400, False, 0)  # last block of page 0
        assert candidates == []


class TestStridePrefetcher:
    def test_requires_confirmation(self):
        pf = StridePrefetcher()
        assert pf.train(0x1000, 0xA, False, 0) == []
        assert pf.train(0x1040, 0xA, False, 1) == []  # stride seen once

    def test_prefetches_after_confirmation(self):
        pf = StridePrefetcher()
        for i in range(3):
            candidates = pf.train(0x1000 + i * 64, 0xA, False, i)
        assert candidates
        assert candidates[0].addr == 0x1000 + 3 * 64

    def test_different_pcs_tracked_separately(self):
        pf = StridePrefetcher()
        for i in range(3):
            pf.train(0x1000 + i * 64, 0xA, False, i)
            candidates_b = pf.train(0x800000 + i * 128, 0xB, False, i)
        assert candidates_b
        assert candidates_b[0].addr == 0x800000 + 3 * 128

    def test_stride_change_resets_confidence(self):
        pf = StridePrefetcher()
        for i in range(3):
            pf.train(0x1000 + i * 64, 0xA, False, i)
        assert pf.train(0x9000, 0xA, False, 10) == []

    def test_zero_stride_never_prefetches(self):
        pf = StridePrefetcher()
        for i in range(5):
            candidates = pf.train(0x1000, 0xA, False, i)
        assert candidates == []

    def test_table_capacity(self):
        pf = StridePrefetcher(StrideConfig(table_entries=2))
        for pc in range(5):
            pf.train(0x1000, pc, False, 0)
        assert len(pf._table) <= 2

    def test_candidates_stay_in_page(self):
        pf = StridePrefetcher(StrideConfig(degree=8))
        for i in range(4):
            candidates = pf.train(0x1000 + i * 15 * 64, 0xA, False, i)
        for cand in candidates:
            assert cand.addr >> 12 == 0x1000 >> 12 or True  # page-checked inside
            assert cand.addr >> 12 == (0x1000 + 3 * 15 * 64) >> 12
