"""The HTTP front end: submission, live event streams, cached lookups.

The service binds port 0 (ephemeral) on loopback in a daemon thread;
every test talks to it over real sockets with stdlib ``urllib`` so the
hand-rolled HTTP layer — status lines, content-length bodies, chunked
event streams — is exercised end to end.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.farm.service import FarmService, ServiceError


def _start(service: FarmService) -> str:
    ready = threading.Event()
    thread = threading.Thread(
        target=service.run_blocking,
        kwargs={"host": "127.0.0.1", "port": 0, "ready": ready},
        daemon=True,
    )
    thread.start()
    assert ready.wait(10), "service never came up"
    return f"http://127.0.0.1:{service.port}"


def _get(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=60) as response:
        return response.status, json.loads(response.read())


def _post(base: str, path: str, payload) -> tuple:
    request = urllib.request.Request(
        base + path, data=json.dumps(payload).encode(), method="POST"
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, json.loads(response.read())


def _stream(base: str, path: str):
    """All JSONL records of one (chunked) event stream, fully drained."""
    with urllib.request.urlopen(base + path, timeout=120) as response:
        return [json.loads(line) for line in response]


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    service = FarmService(
        cache_dir=tmp_path_factory.mktemp("service-cache"), jobs=1, records=600
    )
    base = _start(service)
    yield service, base
    service.request_stop()


SPEC = {"workloads": ["619.lbm_s"], "prefetchers": ["spp"], "records": 600}


@pytest.mark.timeout(180)
class TestSweepJobs:
    def test_submit_stream_and_summary(self, service):
        _service, base = service
        status, submitted = _post(base, "/sweeps", SPEC)
        assert status == 202
        assert submitted["cells"] == 2  # baseline folded in
        records = _stream(base, submitted["events_url"])
        phases = [r.get("phase") for r in records if r.get("event") == "lifecycle"]
        assert phases.count("queued") == 2
        assert "finished" in phases
        assert records[-1] == {
            "event": "job",
            "job": submitted["job"],
            "status": "done",
        }
        status, view = _get(base, f"/sweeps/{submitted['job']}")
        assert status == 200
        assert view["status"] == "done"
        assert view["summary"]["cells"] == 2
        assert view["summary"]["unrecovered"] == 0
        assert view["summary"]["geomean_speedup"]["spp"] > 0
        status, listing = _get(base, "/sweeps")
        assert submitted["job"] in [job["job"] for job in listing["jobs"]]

    def test_resubmission_served_from_cache_with_hit_rate(self, service):
        _service, base = service
        _status, first = _post(base, "/sweeps", SPEC)
        _stream(base, first["events_url"])  # wait for completion
        _status, again = _post(base, "/sweeps", SPEC)
        records = _stream(base, again["events_url"])
        assert again["fingerprint"] == first["fingerprint"]
        _status, view = _get(base, f"/sweeps/{again['job']}")
        assert view["summary"]["cache_hit_rate"] == 1.0
        assert view["summary"]["executed"] == 0
        # Nothing simulated: the stream is all cached lifecycle events.
        phases = {r.get("phase") for r in records if r.get("event") == "lifecycle"}
        assert "started" not in phases
        assert "cached" in phases

    def test_cached_result_lookup_by_fingerprint(self, service):
        _service, base = service
        _status, submitted = _post(base, "/sweeps", SPEC)
        _stream(base, submitted["events_url"])
        fingerprint = submitted["fingerprint"]
        status, document = _get(
            base, f"/results/{fingerprint}/619.lbm_s/spp?seed=1"
        )
        assert status == 200
        assert document["workload"] == "619.lbm_s"
        assert document["prefetcher"] == "spp"
        assert document["instructions"] > 0
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base, f"/results/{fingerprint}/619.lbm_s/spp?seed=7")
        assert excinfo.value.code == 404


@pytest.mark.timeout(60)
class TestRequestValidation:
    def test_healthz(self, service):
        _service, base = service
        status, body = _get(base, "/healthz")
        assert status == 200
        assert body["ok"] is True and body["backend"] == "local"

    def test_unknown_routes_are_404(self, service):
        _service, base = service
        for path in ("/nope", "/sweeps/job-999", "/results/f/w/p"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(base, path)
            assert excinfo.value.code == 404

    def test_bad_specs_are_400_with_reasons(self, service):
        _service, base = service
        for payload, fragment in (
            ({"workloads": ["no-such-workload"]}, "unknown workload"),
            ({"prefetchers": ["warp-drive"]}, "unknown prefetcher"),
            ({"records": -5}, "records"),
            ({"workloads": "619.lbm_s"}, "list"),
            ({"engine": "imaginary"}, "imaginary"),
            ([1, 2, 3], "object"),
        ):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(base, "/sweeps", payload)
            assert excinfo.value.code == 400
            body = json.loads(excinfo.value.read())
            assert fragment in body["error"]

    def test_invalid_json_body_is_400(self, service):
        _service, base = service
        request = urllib.request.Request(
            base + "/sweeps", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_service_error_carries_status(self):
        err = ServiceError("nope", status=404)
        assert err.status == 404
        assert ServiceError("default").status == 400
