"""Plumbing tests for the figure experiments at miniature scale.

The benchmark suite runs these experiments at full bench scale with the
paper's shape assertions; here we validate structure, report rendering
and the cheap invariants with tiny traces so the unit suite stays fast.
"""

import pytest

from repro.harness import ablations, constraints, figure09, figure10, figure13
from repro.harness import figures06_08, figures11_12
from repro.sim.config import SimConfig
from repro.workloads.spec2017 import workload_by_name

MINI = SimConfig.quick(measure_records=2_500, warmup_records=600)
THREE = [
    workload_by_name("603.bwaves_s"),
    workload_by_name("641.leela_s"),
    workload_by_name("623.xalancbmk_s"),
]


class TestFigure9Plumbing:
    @pytest.fixture(scope="class")
    def fig9(self):
        return figure09.run_figure9(workloads=THREE, config=MINI, schemes=("spp", "ppf"))

    def test_rows_cover_workloads(self, fig9):
        rows = fig9.speedup_rows()
        assert [row[0] for row in rows] == [w.name for w in THREE]
        assert all(len(row) == 3 for row in rows)

    def test_geomeans_positive(self, fig9):
        assert fig9.geomean("spp") > 0
        assert fig9.geomean("ppf", memory_intensive_only=True) > 0

    def test_report_renders(self, fig9):
        out = figure09.report(fig9)
        assert "Figure 9" in out
        assert "geomean (full suite)" in out
        assert "avg lookahead depth" in out

    def test_average_depths_keys(self, fig9):
        depths = fig9.average_depths()
        assert set(depths) == {"spp", "ppf"}

    def test_figure10_reuses_suite(self, fig9):
        fig10 = figure10.run_figure10(suite=fig9.suite, schemes=("spp", "ppf"))
        out = figure10.report(fig10)
        assert "Figure 10" in out
        table = fig10.coverage_table()
        assert set(table) == {"spp", "ppf"}
        for per_level in table.values():
            assert set(per_level) == {"l2", "llc"}


class TestMulticorePlumbing:
    def test_figure11_structure(self):
        config = SimConfig.multicore(2)
        config.measure_records, config.warmup_records = 1_200, 300
        result = figures11_12.run_multicore_figure(
            2, mix_count=2, config=config, schemes=("spp", "ppf")
        )
        assert result.cores == 2
        assert len(result.mixes) == 2
        assert len(result.speedups["ppf"]) == 2
        assert result.sorted_series("ppf") == sorted(result.speedups["ppf"])
        out = figures11_12.report(result)
        assert "weighted-IPC" in out

    def test_figure12_uses_8_core_label(self):
        config = SimConfig.multicore(8)
        config.measure_records, config.warmup_records = 500, 150
        result = figures11_12.run_figure12(
            mix_count=1, config=config, schemes=("spp",)
        )
        assert result.cores == 8
        assert "Figure 12" in figures11_12.report(result)


class TestFigure13Plumbing:
    def test_subset_limits_spec2006(self):
        result = figure13.run_figure13(
            config=MINI, schemes=("spp",), spec2006_subset=3
        )
        assert len(result.spec2006_workloads) == 3
        assert all(w.memory_intensive for w in result.spec2006_workloads)
        out = figure13.report(result)
        assert "Figure 13a" in out and "Figure 13b" in out

    def test_cloudsuite_geomeans(self):
        result = figure13.run_figure13(config=MINI, schemes=("spp",), spec2006_subset=2)
        assert result.cloudsuite_geomean("spp") > 0


class TestConstraintsPlumbing:
    def test_three_constraints_reported(self):
        result = constraints.run_constraints(
            workloads=THREE[:2], config=MINI, schemes=("spp",)
        )
        assert set(result.geomeans) == {"default", "small-llc", "low-bandwidth"}
        out = constraints.report(result)
        assert "small-llc" in out


class TestAblationsPlumbing:
    def test_variant_registry_contains_design_choices(self):
        variants = ablations.ablation_variants()
        for expected in (
            "spp",
            "ppf-full",
            "no-reject-table",
            "single-level",
            "address-only",
            "all-features",
            "stock-spp-under",
            "no-displacement",
            "no-theta",
            "half-budget",
            "double-budget",
        ):
            assert expected in variants

    def test_variants_instantiate(self):
        for name, factory in ablations.ablation_variants().items():
            prefetcher = factory()
            assert hasattr(prefetcher, "train"), name

    def test_run_subset(self):
        result = ablations.run_ablations(
            workloads=THREE[:1],
            config=MINI,
            variants=("spp", "ppf-full", "no-reject-table"),
        )
        assert set(result.geomeans) == {"spp", "ppf-full", "no-reject-table"}
        assert "Ablations" in ablations.report(result)

    def test_delta_vs_full(self):
        result = ablations.run_ablations(
            workloads=THREE[:1], config=MINI, variants=("ppf-full", "spp")
        )
        assert result.delta_vs_full_percent("ppf-full") == pytest.approx(0.0)


class TestFeatureEvidencePlumbing:
    def test_evidence_structure(self):
        evidence = figures06_08.run_feature_evidence(
            workloads=THREE[:2], config=MINI
        )
        assert set(evidence.histograms) == set(figures06_08.FIGURE6_FEATURES)
        assert "page_xor_confidence" in evidence.global_pearson
        for report_fn in (
            figures06_08.figure6_report,
            figures06_08.figure7_report,
            figures06_08.figure8_report,
        ):
            assert report_fn(evidence)
