"""Public API surface tests: the documented entry points stay importable."""

import pytest

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "name",
        [
            # contribution
            "PPF",
            "make_ppf_spp",
            "PerceptronFilter",
            "FilterConfig",
            "Decision",
            "FeatureContext",
            "production_features",
            "exploration_features",
            # prefetchers
            "SPP",
            "SPPConfig",
            "BOP",
            "DAAMPM",
            "AMPM",
            "NullPrefetcher",
            "Prefetcher",
            # substrate
            "MemoryHierarchy",
            "HierarchyConfig",
            "DRAMConfig",
            "Cache",
            "O3Core",
            "CoreConfig",
            "TraceRecord",
            # drivers
            "run_single_core",
            "run_multi_core",
            "ExperimentRunner",
            "SimConfig",
            "geometric_mean",
            # workloads
            "spec2017_workloads",
            "spec2006_workloads",
            "cloudsuite_workloads",
            "memory_intensive_subset",
            "memory_intensive_mixes",
            "random_mixes",
            "workload_by_name",
            "WorkloadSpec",
            "WorkloadMix",
        ],
    )
    def test_export_exists(self, name):
        assert hasattr(repro, name)
        assert name in repro.__all__

    def test_all_entries_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


class TestSubpackageSurfaces:
    def test_core_surface(self):
        from repro.core import (
            PPF,
            PerceptronFilter,
            PrefetchTable,
            RejectTable,
            WeightTable,
            scaled_production_features,
        )

        assert PerceptronFilter and PPF and WeightTable
        assert PrefetchTable and RejectTable and scaled_production_features

    def test_analysis_surface(self):
        from repro.analysis import (
            overhead_report,
            pearson,
            run_feature_study,
            sweep_thresholds,
            weight_histogram,
        )

        assert overhead_report and pearson and run_feature_study
        assert sweep_thresholds and weight_histogram

    def test_harness_surface(self):
        from repro.harness import EXPERIMENTS, render_table, run_experiment

        assert EXPERIMENTS and render_table and run_experiment

    def test_workloads_surface(self):
        from repro.workloads import select_simpoints, weighted_mean

        assert select_simpoints and weighted_mean

    def test_cpu_surface(self):
        from repro.cpu import HashedPerceptronBranchPredictor

        assert HashedPerceptronBranchPredictor

    def test_prefetchers_surface(self):
        from repro.prefetchers import VLDP, NextLine, StridePrefetcher

        assert VLDP and NextLine and StridePrefetcher
