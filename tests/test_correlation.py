"""Tests for repro.analysis.correlation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.correlation import (
    OutcomeTracker,
    all_feature_pearsons,
    feature_pearson,
    histogram_concentration_near_zero,
    histogram_saturation,
    pearson,
    weight_histogram,
)
from repro.core.features import Feature
from repro.core.filter import PerceptronFilter


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_uncorrelated_symmetric(self):
        assert pearson([1, 2, 1, 2], [1, 1, 2, 2]) == pytest.approx(0.0)

    def test_zero_variance_returns_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_empty_returns_zero(self):
        assert pearson([], []) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            pearson([1], [1, 2])

    def test_weights_change_result(self):
        x = [0, 1, 0, 10]
        y = [0, 1, 0, -10]
        unweighted = pearson(x, y)
        weighted = pearson(x, y, weights=[1, 100, 1, 0.001])
        assert weighted > unweighted

    def test_weight_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1, 2], weights=[1])

    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(
                st.floats(-100, 100, allow_nan=False),
                st.floats(-100, 100, allow_nan=False),
            ),
            min_size=2,
            max_size=30,
        )
    )
    def test_bounded(self, pairs):
        x = [p[0] for p in pairs]
        y = [p[1] for p in pairs]
        assert -1.0 - 1e-9 <= pearson(x, y) <= 1.0 + 1e-9

    @given(st.lists(st.floats(-50, 50, allow_nan=False), min_size=2, max_size=20))
    def test_self_correlation(self, xs):
        r = pearson(xs, xs)
        assert r == 0.0 or r == pytest.approx(1.0)


class TestOutcomeTracker:
    def test_records_per_feature_per_index(self):
        tracker = OutcomeTracker(2)
        tracker((1, 5), True)
        tracker((1, 6), False)
        indices, outcomes, traffic = tracker.outcome_samples(0)
        assert indices == [1]
        assert outcomes == [0.0]  # one positive, one negative
        assert traffic == [2.0]

    def test_outcome_mean_sign(self):
        tracker = OutcomeTracker(1)
        for _ in range(3):
            tracker((7,), True)
        tracker((7,), False)
        _, outcomes, _ = tracker.outcome_samples(0)
        assert outcomes[0] == pytest.approx(0.5)

    def test_wrong_arity_raises(self):
        tracker = OutcomeTracker(2)
        with pytest.raises(ValueError):
            tracker((1,), True)

    def test_merge(self):
        a, b = OutcomeTracker(1), OutcomeTracker(1)
        a((1,), True)
        b((1,), False)
        b((2,), True)
        a.merge(b)
        assert a.events == 3
        indices, _, traffic = a.outcome_samples(0)
        assert indices == [1, 2]

    def test_merge_arity_mismatch(self):
        with pytest.raises(ValueError):
            OutcomeTracker(1).merge(OutcomeTracker(2))

    def test_rejects_zero_features(self):
        with pytest.raises(ValueError):
            OutcomeTracker(0)


class TestFeaturePearson:
    def make_filter(self):
        features = [Feature("f", 16, lambda ctx: ctx.confidence)]
        return PerceptronFilter(features)

    def test_trained_feature_correlates(self):
        filt = self.make_filter()
        tracker = OutcomeTracker(1)
        # Index 2 always positive, index 9 always negative; train weights
        # accordingly so weight and outcome align.
        for _ in range(10):
            filt.train((2,), True)
            tracker((2,), True)
            filt.train((9,), False)
            tracker((9,), False)
        assert feature_pearson(filt, tracker, 0) == pytest.approx(1.0)

    def test_untrained_feature_zero(self):
        filt = self.make_filter()
        tracker = OutcomeTracker(1)
        assert feature_pearson(filt, tracker, 0) == 0.0

    def test_uninformative_feature_near_zero(self):
        """Mixed outcomes per index leave weights flat -> no correlation."""
        filt = self.make_filter()
        tracker = OutcomeTracker(1)
        for index in (2, 9):
            for _ in range(5):
                filt.train((index,), True)
                tracker((index,), True)
                filt.train((index,), False)
                tracker((index,), False)
        assert abs(feature_pearson(filt, tracker, 0)) < 0.5

    def test_all_feature_pearsons_keys(self):
        filt = self.make_filter()
        tracker = OutcomeTracker(1)
        result = all_feature_pearsons(filt, tracker)
        assert set(result) == {"f"}


class TestHistograms:
    def test_counts_values(self):
        histogram = weight_histogram([0, 0, 5, -16, 15])
        assert histogram[0] == 2
        assert histogram[5] == 1
        assert histogram[-16] == 1
        assert histogram[15] == 1

    def test_includes_empty_bins(self):
        histogram = weight_histogram([])
        assert len(histogram) == 32
        assert all(count == 0 for count in histogram.values())

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            weight_histogram([16])

    def test_concentration_near_zero(self):
        histogram = weight_histogram([0, 1, -1, 15])
        assert histogram_concentration_near_zero(histogram, radius=2) == 0.75

    def test_concentration_of_empty_is_one(self):
        assert histogram_concentration_near_zero(weight_histogram([])) == 1.0

    def test_saturation_counts_touched_extremes(self):
        histogram = weight_histogram([15, 15, -16, 1])
        assert histogram_saturation(histogram, margin=2) == pytest.approx(0.75)

    def test_saturation_of_untouched_is_zero(self):
        assert histogram_saturation(weight_histogram([0, 0])) == 0.0
