"""Tests for repro.analysis.feature_selection (§5.5 methodology)."""

import pytest

from repro.analysis.feature_selection import FeatureStudy, run_feature_study
from repro.core.features import production_features
from repro.sim.config import SimConfig
from repro.workloads.spec2017 import workload_by_name

TINY = SimConfig.quick(measure_records=4_000, warmup_records=800)


@pytest.fixture(scope="module")
def study():
    """One recorded study over two contrasting workloads (module-scoped:
    the runs are the expensive part)."""
    workloads = [workload_by_name("603.bwaves_s"), workload_by_name("623.xalancbmk_s")]
    return run_feature_study(workloads, production_features(), TINY)


class TestRunStudy:
    def test_one_run_per_workload(self, study):
        assert [run.workload for run in study.runs] == [
            "603.bwaves_s",
            "623.xalancbmk_s",
        ]

    def test_trackers_saw_events(self, study):
        assert all(run.tracker.events > 0 for run in study.runs)

    def test_filters_trained(self, study):
        for run in study.runs:
            assert any(table.nonzero_count() > 0 for table in run.filter.tables)


class TestGlobalPearson:
    def test_covers_all_features(self, study):
        result = study.global_pearson()
        assert set(result) == {f.name for f in production_features()}

    def test_values_bounded(self, study):
        for value in study.global_pearson().values():
            assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9

    def test_some_feature_correlates(self, study):
        """At least one production feature must show real correlation."""
        assert max(abs(v) for v in study.global_pearson().values()) > 0.3


class TestPerTrace:
    def test_shape(self, study):
        per_trace = study.per_trace_pearson()
        assert set(per_trace) == {f.name for f in production_features()}
        for by_workload in per_trace.values():
            assert set(by_workload) == {"603.bwaves_s", "623.xalancbmk_s"}

    def test_variation_exists(self, study):
        """Figure 8's point: per-trace correlation varies by workload."""
        per_trace = study.per_trace_pearson()
        spreads = [
            abs(by_wl["603.bwaves_s"] - by_wl["623.xalancbmk_s"])
            for by_wl in per_trace.values()
        ]
        assert max(spreads) > 0.05


class TestCrossCorrelationAndTrim:
    def test_matrix_shape_and_diagonal(self, study):
        matrix = study.cross_correlation()
        n = len(production_features())
        assert len(matrix) == n and all(len(row) == n for row in matrix)
        for i in range(n):
            assert matrix[i][i] == 1.0

    def test_matrix_symmetric(self, study):
        matrix = study.cross_correlation()
        n = len(matrix)
        for i in range(n):
            for j in range(n):
                assert matrix[i][j] == pytest.approx(matrix[j][i])

    def test_trim_returns_subset(self, study):
        survivors = study.trim(redundancy_threshold=0.9)
        names = {f.name for f in survivors}
        assert names <= {f.name for f in production_features()}
        assert survivors  # never trims everything

    def test_trim_keep_limits_count(self, study):
        survivors = study.trim(redundancy_threshold=0.9, keep=3)
        assert len(survivors) <= 3

    def test_aggressive_threshold_drops_more(self, study):
        lax = study.trim(redundancy_threshold=0.99)
        strict = study.trim(redundancy_threshold=0.3)
        assert len(strict) <= len(lax)


class TestEmptyStudy:
    def test_empty_study_is_calm(self):
        study = FeatureStudy(features=production_features())
        assert all(v == 0.0 for v in study.global_pearson().values())
        matrix = study.cross_correlation()
        assert matrix[0][1] == 0.0
