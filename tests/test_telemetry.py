"""Unit tests for the repro.telemetry subsystem.

Covers the tracer ring buffer, probes and probe discovery, session
resolution semantics (``_UNSET`` vs explicit ``None``), exporters and
schema validators, the live progress renderer, sweep lifecycle events,
and the harness phase-plot figure built on top of the time-series.
"""

import io
import json

import pytest

from repro.sim.config import SimConfig
from repro.sim.single_core import SingleCoreSim, run_single_core
from repro.sim.suite import SuiteRunner
from repro.telemetry import (
    _UNSET,
    CallableProbe,
    Event,
    LiveProgress,
    ProbeSet,
    Telemetry,
    TelemetrySchemaError,
    TimeSeries,
    Tracer,
    activate,
    current_session,
    resolve,
    validate_chrome_trace,
    validate_timeseries,
)
from repro.telemetry.export import (
    chrome_trace_document,
    export_session,
    read_events_jsonl,
    summary_rows,
    timeseries_document,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.workloads import find_workload

TINY = SimConfig.quick(measure_records=1_500, warmup_records=300)


class TestTracer:
    def test_events_in_emission_order(self):
        tracer = Tracer(capacity=8)
        tracer.instant("a", 1.0)
        tracer.counter("b", 2.0, {"x": 1})
        tracer.complete("c", 3.0, dur=4.0)
        names = [event.name for event in tracer.events()]
        assert names == ["a", "b", "c"]
        phases = [event.ph for event in tracer.events()]
        assert phases == ["I", "C", "X"]

    def test_ring_wraps_and_counts_drops(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.instant(f"e{i}", float(i))
        assert len(tracer) == 4
        assert tracer.dropped == 6
        # The survivors are the most recent four, oldest first.
        assert [event.name for event in tracer.events()] == ["e6", "e7", "e8", "e9"]

    def test_clear_resets_everything(self):
        tracer = Tracer(capacity=2)
        tracer.instant("a", 1.0)
        tracer.instant("b", 2.0)
        tracer.instant("c", 3.0)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0
        assert tracer.events() == []

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_event_to_dict_omits_absent_fields(self):
        bare = Event("a", "sim", "I", 1.0).to_dict()
        assert set(bare) == {"name", "cat", "ph", "ts"}
        full = Event("b", "sim", "X", 1.0, dur=2.0, args={"k": 1}).to_dict()
        assert full["dur"] == 2.0 and full["args"] == {"k": 1}


class TestTimeSeries:
    def test_append_and_summary(self):
        ts = TimeSeries("m", unit="u")
        for t, v in ((1.0, 2.0), (2.0, 6.0), (3.0, 4.0)):
            ts.append(t, v)
        summary = ts.summary()
        assert summary == {"count": 3, "min": 2.0, "max": 6.0, "mean": 4.0, "last": 4.0}
        assert ts.to_dict() == {"unit": "u", "t": [1.0, 2.0, 3.0], "v": [2.0, 6.0, 4.0]}

    def test_empty_summary_is_zeroes(self):
        assert TimeSeries("m").summary()["count"] == 0


class TestProbes:
    def test_probe_set_samples_callable_probe(self):
        readings = iter([{"x": 1.0, "y": 2.0}, {"x": 3.0, "y": 4.0}])
        probe_set = ProbeSet([CallableProbe("p", lambda: next(readings))])
        probe_set.sample(10.0)
        probe_set.sample(20.0)
        assert probe_set.samples == 2
        assert probe_set.series["p.x"].v == [1.0, 3.0]
        assert probe_set.series["p.y"].t == [10.0, 20.0]

    def test_sample_mirrors_counter_events_onto_tracer(self):
        tracer = Tracer(capacity=8)
        probe_set = ProbeSet([CallableProbe("p", lambda: {"x": 1.0})])
        probe_set.sample(5.0, tracer)
        (event,) = tracer.events()
        assert event.ph == "C" and event.name == "p" and event.args == {"x": 1.0}

    def test_discovery_covers_all_five_families_on_ppf(self):
        sim = SingleCoreSim(find_workload("605.mcf_s"), "ppf", TINY, seed=1)
        probe_set = ProbeSet.discover(sim)
        assert {probe.name for probe in probe_set.probes} == {
            "cache",
            "core",
            "dram",
            "ppf",
            "spp",
            "filter.spp",  # the zoo's seam probe labels ppf's inner SPP
        }

    def test_inapplicable_probes_skipped_on_no_prefetch(self):
        sim = SingleCoreSim(find_workload("605.mcf_s"), "none", TINY, seed=1)
        names = {probe.name for probe in ProbeSet.discover(sim).probes}
        assert "spp" not in names and "ppf" not in names
        assert {"cache", "core", "dram"} <= names

    def test_stats_adapter_reports_bookkeeping_only(self):
        probe_set = ProbeSet([CallableProbe("p", lambda: {"x": 1.0})])
        adapter = probe_set.stats_adapter()
        probe_set.sample(1.0)
        assert adapter.snapshot() == {"probe_samples": 1, "series": 1}
        adapter.reset()  # must NOT erase recorded series
        assert probe_set.series["p.x"].v == [1.0]


class TestSession:
    def test_resolve_semantics(self):
        session = Telemetry()
        assert resolve(None) is None
        assert resolve(session) is session
        assert resolve(_UNSET) is None  # no active session installed
        assert resolve(Telemetry(enabled=False)) is None

    def test_activate_installs_and_restores(self):
        outer, inner = Telemetry(), Telemetry()
        assert current_session() is None
        with activate(outer):
            assert resolve(_UNSET) is outer
            with activate(inner):
                assert resolve(_UNSET) is inner
            assert resolve(_UNSET) is outer
        assert current_session() is None

    def test_attach_deduplicates_labels(self):
        session = Telemetry()
        sim = SingleCoreSim(find_workload("605.mcf_s"), "none", TINY, seed=1)
        session.attach("cell", sim)
        session.attach("cell", sim)
        assert set(session.probe_sets) == {"cell", "cell-2"}

    def test_series_scoped_by_label_when_multiple_sets(self):
        session = Telemetry()
        for label in ("a", "b"):
            probe_set = ProbeSet([CallableProbe("p", lambda: {"x": 1.0})])
            session.probe_sets[label] = probe_set
            probe_set.sample(1.0)
        assert set(session.series()) == {"a/p.x", "b/p.x"}

    def test_rejects_nonpositive_cadence(self):
        with pytest.raises(ValueError):
            Telemetry(probe_every=0)


class TestExporters:
    def _session(self):
        session = Telemetry(probe_every=500)
        config = SimConfig.quick(measure_records=1_500, warmup_records=300)
        run_single_core(
            find_workload("605.mcf_s"), "ppf", config, seed=1, telemetry=session
        )
        return session

    def test_export_session_writes_valid_artifacts(self, tmp_path):
        session = self._session()
        paths = export_session(session, str(tmp_path))
        assert set(paths) == {"events", "chrome_trace", "timeseries_json", "timeseries_csv"}

        chrome = json.loads((tmp_path / "TRACE_sim.json").read_text())
        assert validate_chrome_trace(chrome) > 0
        timeseries = json.loads((tmp_path / "timeseries.json").read_text())
        assert validate_timeseries(timeseries) >= 5

        log = read_events_jsonl(str(tmp_path / "events.jsonl"))
        assert log["header"]["kind"] == "events"
        assert len(log["events"]) == len(session.tracer.events())

        csv_lines = (tmp_path / "timeseries.csv").read_text().splitlines()
        assert csv_lines[0] == "series,unit,t,v"
        assert len(csv_lines) > 1

    def test_export_is_deterministic(self, tmp_path):
        first = self._session()
        second = self._session()
        export_session(first, str(tmp_path / "a"))
        export_session(second, str(tmp_path / "b"))
        for artifact in ("events.jsonl", "TRACE_sim.json", "timeseries.json"):
            assert (tmp_path / "a" / artifact).read_bytes() == (
                tmp_path / "b" / artifact
            ).read_bytes(), artifact

    def test_chrome_trace_groups_categories_onto_tids(self):
        tracer = Tracer()
        tracer.instant("a", 1.0, cat="sim")
        tracer.counter("b", 2.0, {"x": 1})
        document = chrome_trace_document(tracer.events())
        tids = {event["cat"]: event["tid"] for event in document["traceEvents"]
                if event["ph"] != "M"}
        assert tids["sim"] != tids["probe"]

    def test_summary_rows_shape(self):
        ts = TimeSeries("m", unit="u")
        ts.append(1.0, 2.0)
        rows = summary_rows(timeseries_document({"m": ts}))
        assert rows == [["m", "u", "1", "2", "2", "2", "2"]]


class TestSchemaValidation:
    def test_rejects_unknown_phase(self):
        with pytest.raises(TelemetrySchemaError):
            validate_chrome_trace(
                {
                    "schema": "repro.telemetry/v1",
                    "otherData": {
                        "schema": "repro.telemetry/v1",
                        "schema_version": 1,
                        "kind": "chrome-trace",
                    },
                    "traceEvents": [
                        {"name": "a", "cat": "sim", "ph": "Z", "ts": 1, "pid": 1, "tid": 1}
                    ],
                }
            )

    def test_rejects_missing_pid_tid(self, tmp_path):
        tracer = Tracer()
        tracer.instant("a", 1.0)
        document = chrome_trace_document(tracer.events())
        del document["traceEvents"][-1]["pid"]
        with pytest.raises(TelemetrySchemaError, match="pid"):
            validate_chrome_trace(document)

    def test_rejects_mismatched_series_lengths(self):
        document = timeseries_document({})
        document["series"] = {"m": {"unit": "", "t": [1.0], "v": []}}
        with pytest.raises(TelemetrySchemaError, match="timestamps"):
            validate_timeseries(document)

    def test_written_chrome_trace_revalidates(self, tmp_path):
        tracer = Tracer()
        tracer.complete("slice", 1.0, dur=2.0)
        path = tmp_path / "t.json"
        write_chrome_trace(tracer.events(), str(path))
        document = json.loads(path.read_text())
        # Metadata (M) naming events count too; exactly one payload slice.
        assert validate_chrome_trace(document) >= 1
        slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 1 and slices[0]["dur"] == 2.0


class TestLiveProgress:
    def _lifecycle(self, phase, **extra):
        return {"event": "lifecycle", "phase": phase, "workload": "w",
                "prefetcher": "p", "t": 0.0, **extra}

    def test_disabled_renderer_writes_nothing(self):
        stream = io.StringIO()
        progress = LiveProgress(total=2, stream=stream, enabled=False)
        for phase in ("queued", "started", "finished"):
            progress(self._lifecycle(phase))
        progress.close()
        assert stream.getvalue() == ""

    def test_non_tty_stream_autodisables(self):
        progress = LiveProgress(stream=io.StringIO())
        assert progress.enabled is False

    def test_counts_and_final_line(self):
        stream = io.StringIO()
        progress = LiveProgress(total=2, stream=stream, enabled=True, min_interval=0.0)
        progress(self._lifecycle("cached", source="memory"))
        progress(self._lifecycle("started"))
        progress(self._lifecycle("retried"))
        progress(self._lifecycle("finished", ok=False))
        progress.close()
        assert progress.done == 2
        assert progress.counts["failed"] == 1
        out = stream.getvalue()
        assert "sweep 2/2" in out
        assert "cached 1" in out and "retried 1" in out and "failed 1" in out
        assert out.endswith("\n")

    def test_ignores_non_lifecycle_records(self):
        progress = LiveProgress(stream=io.StringIO(), enabled=True)
        progress({"event": "cell", "workload": "w"})
        assert progress.done == 0 and progress.running == 0


class TestSweepLifecycle:
    def test_lifecycle_events_reach_ledger_and_observers(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        seen = []
        runner = SuiteRunner(TINY, seed=1, jobs=1, ledger_path=ledger,
                             observers=[seen.append])
        workloads = [find_workload("605.mcf_s")]
        runner.sweep(workloads, ["spp"], include_baseline=False)

        phases = [record["phase"] for record in seen]
        assert phases.count("queued") == 1
        assert phases.count("started") == 1
        assert phases.count("finished") == 1
        assert all(record["event"] == "lifecycle" for record in seen)
        assert all(isinstance(record["t"], float) for record in seen)

        lines = [json.loads(line) for line in ledger.read_text().splitlines()]
        ledger_phases = [r["phase"] for r in lines if r.get("event") == "lifecycle"]
        assert ledger_phases == phases

    def test_cached_cells_emit_cached_not_started(self, tmp_path):
        seen = []
        runner = SuiteRunner(TINY, seed=1, jobs=1)
        workload = find_workload("605.mcf_s")
        runner.single(workload, "spp")
        runner.add_observer(seen.append)
        runner.sweep([workload], ["spp"], include_baseline=False)
        phases = [record["phase"] for record in seen]
        assert "cached" in phases and "started" not in phases

    def test_observer_exceptions_do_not_break_the_sweep(self):
        def explode(record):
            raise RuntimeError("observer bug")

        runner = SuiteRunner(TINY, seed=1, jobs=1, observers=[explode])
        suite = runner.sweep(
            [find_workload("605.mcf_s")], ["spp"], include_baseline=False
        )
        assert len(suite.runs) == 1

    def test_lifecycle_lines_are_benign_to_preload(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        workloads = [find_workload("605.mcf_s")]
        SuiteRunner(
            TINY, seed=1, jobs=1, ledger_path=ledger, cache_dir=tmp_path / "cache"
        ).sweep(workloads, ["spp"], include_baseline=False)
        resumed = SuiteRunner(TINY, seed=1, jobs=1)
        assert resumed.preload_from_ledger(ledger) == 1


class TestPhasePlot:
    def test_sparkline_resamples_and_handles_flat(self):
        from repro.harness.phase_plot import sparkline

        assert sparkline([]) == ""
        flat = sparkline([2.0, 2.0, 2.0], width=3)
        assert len(flat) == 3 and len(set(flat)) == 1
        ramp = sparkline([0.0, 1.0, 2.0, 3.0], width=4)
        assert ramp[0] == " " and ramp[-1] == "@"

    def test_report_roundtrips_through_document(self):
        from repro.harness.phase_plot import (
            report,
            result_from_document,
            run_phase_plot,
        )

        result = run_phase_plot(config=TINY, probe_every=250)
        assert len(result.series) >= 5
        rebuilt = result_from_document(result.document())
        assert rebuilt.series.keys() == result.series.keys()
        assert rebuilt.series["core.ipc"].v == result.series["core.ipc"].v
        out = report(result)
        assert "Phase plot" in out and "core.ipc" in out and "ppf.accept_rate" in out

    def test_report_notes_missing_series(self):
        from repro.harness.phase_plot import PhasePlotResult, report

        result = PhasePlotResult("w", "none", 100, series={})
        out = report(result, series_names=["spp.mean_confidence"])
        assert "no samples for" in out
