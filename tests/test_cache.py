"""Tests for repro.memory.cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import Cache, EvictedLine


def tiny_cache(sets=2, ways=2, **kwargs):
    """A 2-set, 2-way cache (256 bytes) for precise eviction control."""
    return Cache("test", 64 * sets * ways, ways, latency=10, **kwargs)


def addr_for(cache, set_index, way_salt):
    """An address mapping to ``set_index`` with a distinct tag."""
    block = set_index + way_salt * cache.num_sets
    return block << 6


class TestConstruction:
    def test_geometry(self):
        cache = Cache("l2", 512 * 1024, 8, latency=10)
        assert cache.num_sets == 1024

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            Cache("bad", 100, 3, latency=1)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Cache("bad", 0, 1, latency=1)
        with pytest.raises(ValueError):
            Cache("bad", 4096, 0, latency=1)


class TestLookupAndFill:
    def test_miss_then_hit(self):
        cache = tiny_cache()
        assert cache.lookup(0x1000) is None
        cache.fill(0x1000)
        assert cache.lookup(0x1000) is not None

    def test_same_block_addresses_share_line(self):
        cache = tiny_cache()
        cache.fill(0x1000)
        assert cache.lookup(0x103F) is not None  # last byte of the block
        assert cache.lookup(0x1040) is None  # next block

    def test_contains_has_no_side_effects(self):
        cache = tiny_cache()
        cache.fill(0x1000)
        before = cache.stats.demand_accesses
        assert cache.contains(0x1000)
        assert not cache.contains(0x2000)
        assert cache.stats.demand_accesses == before

    def test_probe_returns_line_without_stats(self):
        cache = tiny_cache()
        cache.fill(0x1000, is_prefetch=True)
        line = cache.probe(0x1000)
        assert line is not None and line.is_prefetch
        assert cache.stats.demand_accesses == 0

    def test_non_demand_lookup_does_not_mark_used(self):
        cache = tiny_cache()
        cache.fill(0x1000, is_prefetch=True)
        cache.lookup(0x1000, is_demand=False)
        assert not cache.probe(0x1000).used

    def test_eviction_at_capacity(self):
        cache = tiny_cache()
        a = addr_for(cache, 0, 0)
        b = addr_for(cache, 0, 1)
        c = addr_for(cache, 0, 2)
        cache.fill(a)
        cache.fill(b)
        evicted = cache.fill(c)
        assert isinstance(evicted, EvictedLine)
        assert evicted.block == a >> 6

    def test_lru_eviction_respects_touches(self):
        cache = tiny_cache()
        a, b, c = (addr_for(cache, 0, i) for i in range(3))
        cache.fill(a)
        cache.fill(b)
        cache.lookup(a)  # refresh a
        evicted = cache.fill(c)
        assert evicted.block == b >> 6

    def test_refill_resident_block_no_eviction(self):
        cache = tiny_cache()
        cache.fill(0x1000)
        assert cache.fill(0x1000) is None
        assert cache.resident_blocks() == 1

    def test_demand_fill_clears_prefetch_bit(self):
        cache = tiny_cache()
        cache.fill(0x1000, is_prefetch=True)
        cache.fill(0x1000, is_prefetch=False)
        assert not cache.probe(0x1000).is_prefetch

    def test_prefetch_fill_over_demand_line_keeps_demand(self):
        cache = tiny_cache()
        cache.fill(0x1000, is_prefetch=False)
        cache.fill(0x1000, is_prefetch=True)
        assert not cache.probe(0x1000).is_prefetch

    def test_invalidate(self):
        cache = tiny_cache()
        cache.fill(0x1000)
        assert cache.invalidate(0x1000)
        assert not cache.contains(0x1000)
        assert not cache.invalidate(0x1000)


class TestPrefetchTracking:
    def test_demand_hit_marks_prefetch_used(self):
        cache = tiny_cache()
        cache.fill(0x1000, is_prefetch=True)
        line = cache.lookup(0x1000)
        assert line.used
        assert cache.stats.useful_prefetches == 1

    def test_useful_counted_once(self):
        cache = tiny_cache()
        cache.fill(0x1000, is_prefetch=True)
        cache.lookup(0x1000)
        cache.lookup(0x1000)
        assert cache.stats.useful_prefetches == 1

    def test_useless_prefetch_eviction_flagged(self):
        cache = tiny_cache()
        a, b, c = (addr_for(cache, 0, i) for i in range(3))
        cache.fill(a, is_prefetch=True)
        cache.fill(b)
        evicted = cache.fill(c)
        assert evicted.was_useless_prefetch
        assert cache.stats.useless_prefetch_evictions == 1

    def test_used_prefetch_eviction_not_useless(self):
        cache = tiny_cache()
        a, b, c = (addr_for(cache, 0, i) for i in range(3))
        cache.fill(a, is_prefetch=True)
        cache.lookup(a)
        cache.fill(b)
        evicted = cache.fill(c)
        assert not evicted.was_useless_prefetch


class TestStats:
    def test_hit_and_miss_counters(self):
        cache = tiny_cache()
        cache.lookup(0x1000)
        cache.fill(0x1000)
        cache.lookup(0x1000)
        stats = cache.stats
        assert stats.demand_accesses == 2
        assert stats.demand_misses == 1
        assert stats.demand_hits == 1
        assert stats.demand_hit_rate == 0.5

    def test_fill_counters(self):
        cache = tiny_cache()
        cache.fill(0x1000)
        cache.fill(0x2000, is_prefetch=True)
        assert cache.stats.fills == 2
        assert cache.stats.prefetch_fills == 1

    def test_reset(self):
        cache = tiny_cache()
        cache.lookup(0x1000)
        cache.fill(0x1000)
        cache.reset_stats()
        assert cache.stats.demand_accesses == 0
        assert cache.stats.fills == 0

    def test_snapshot(self):
        cache = tiny_cache()
        cache.fill(0x1000)
        snap = cache.stats.snapshot()
        assert snap["fills"] == 1


class TestCapacityInvariants:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=1 << 14), min_size=1, max_size=200)
    )
    def test_occupancy_never_exceeds_capacity(self, blocks):
        cache = tiny_cache(sets=4, ways=2)
        for block in blocks:
            cache.fill(block << 6)
        assert cache.resident_blocks() <= 8
        for lines in cache._sets.values():
            assert len(lines) <= cache.associativity

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=100)
    )
    def test_fill_makes_resident(self, blocks):
        cache = tiny_cache(sets=4, ways=4)
        for block in blocks:
            cache.fill(block << 6)
            assert cache.contains(block << 6)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=150)
    )
    def test_fills_equal_residents_plus_evictions(self, blocks):
        cache = tiny_cache(sets=2, ways=2)
        unique_fills = 0
        seen_resident = set()
        for block in blocks:
            addr = block << 6
            if not cache.contains(addr):
                unique_fills += 1
            cache.fill(addr)
        assert unique_fills == cache.resident_blocks() + cache.stats.evictions
