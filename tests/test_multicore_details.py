"""Detailed multi-core driver tests: relocation, replay, weighted math."""

import pytest

from repro.sim.config import SimConfig
from repro.sim.multi_core import _EndlessTrace, run_multi_core
from repro.sim.runner import ExperimentRunner
from repro.workloads.mixes import WorkloadMix
from repro.workloads.spec2017 import workload_by_name


def tiny_multicore(cores):
    cfg = SimConfig.multicore(cores)
    cfg.warmup_records, cfg.measure_records = 200, 800
    return cfg


class TestAddressRelocation:
    def test_cores_get_disjoint_regions(self):
        workload = workload_by_name("603.bwaves_s")
        trace0 = _EndlessTrace(workload, 100, seed=1, core=0)
        trace1 = _EndlessTrace(workload, 100, seed=1, core=1)
        addrs0 = {next(trace0).addr for _ in range(50)}
        addrs1 = {next(trace1).addr for _ in range(50)}
        assert not addrs0 & addrs1

    def test_relocation_preserves_offsets(self):
        workload = workload_by_name("603.bwaves_s")
        base = list(workload.trace(50, seed=1))
        relocated_iter = _EndlessTrace(workload, 50, seed=1, core=3)
        relocated = [next(relocated_iter) for _ in range(50)]
        for rec_base, rec_reloc in zip(base, relocated):
            assert rec_reloc.addr - rec_base.addr == 3 << 44
            assert rec_reloc.pc == rec_base.pc
            assert rec_reloc.bubble == rec_base.bubble

    def test_replay_lap_changes_seed(self):
        workload = workload_by_name("605.mcf_s")
        trace = _EndlessTrace(workload, 30, seed=1, core=0)
        lap1 = [next(trace) for _ in range(30)]
        lap2 = [next(trace) for _ in range(30)]
        assert [r.addr for r in lap1] != [r.addr for r in lap2]


class TestRunStructure:
    def test_same_workload_on_all_cores(self):
        workload = workload_by_name("619.lbm_s")
        mix = WorkloadMix(name="dup", workloads=(workload, workload))
        result = run_multi_core(mix, "spp", tiny_multicore(2))
        assert [c.workload for c in result.cores] == ["619.lbm_s", "619.lbm_s"]
        # Relocated copies behave near-identically but not byte-identically.
        ipcs = result.per_core_ipc
        assert abs(ipcs[0] - ipcs[1]) / max(ipcs) < 0.5

    def test_fewer_channels_more_contention(self):
        from repro.memory.dram import DRAMConfig

        workload = workload_by_name("603.bwaves_s")
        mix = WorkloadMix(name="2", workloads=(workload,) * 2)
        narrow_cfg = tiny_multicore(2)
        narrow_cfg.dram = DRAMConfig(channels=1)
        wide_cfg = tiny_multicore(2)
        wide_cfg.dram = DRAMConfig(channels=4)
        narrow = run_multi_core(mix, "none", narrow_cfg)
        wide = run_multi_core(mix, "none", wide_cfg)
        assert sum(wide.per_core_ipc) >= sum(narrow.per_core_ipc)

    def test_all_cores_measured_fully(self):
        workload = workload_by_name("641.leela_s")
        cfg = tiny_multicore(2)
        mix = WorkloadMix(
            name="t", workloads=(workload, workload_by_name("603.bwaves_s"))
        )
        result = run_multi_core(mix, "none", cfg)
        for outcome in result.cores:
            assert outcome.instructions > cfg.measure_records  # bubbles included


class TestWeightedSpeedupPlumbing:
    def test_baseline_mix_speedup_is_one(self):
        """The baseline normalized to itself must be exactly 1."""
        cfg = tiny_multicore(2)
        runner = ExperimentRunner(cfg)
        mix = WorkloadMix(
            name="t",
            workloads=(workload_by_name("619.lbm_s"), workload_by_name("657.xz_s")),
        )
        assert runner.mix_weighted_speedup(mix, "none", cfg) == pytest.approx(1.0)

    def test_prefetching_mix_speedup_above_one_on_streams(self):
        cfg = tiny_multicore(2)
        runner = ExperimentRunner(cfg)
        mix = WorkloadMix(
            name="t",
            workloads=(
                workload_by_name("603.bwaves_s"),
                workload_by_name("649.fotonik3d_s"),
            ),
        )
        assert runner.mix_weighted_speedup(mix, "spp", cfg) > 1.0

    def test_isolated_runs_are_cached_across_mixes(self):
        cfg = tiny_multicore(2)
        runner = ExperimentRunner(cfg)
        workload = workload_by_name("619.lbm_s")
        mix_a = WorkloadMix(name="a", workloads=(workload, workload))
        mix_b = WorkloadMix(name="b", workloads=(workload, workload))
        runner.mix_weighted_speedup(mix_a, "none", cfg)
        cached = len(runner._single_cache)
        runner.mix_weighted_speedup(mix_b, "none", cfg)
        assert len(runner._single_cache) == cached  # no new isolated runs
