"""Tests for the §5.6 budget-scaling extension."""

import pytest

from repro.core.features import production_features, scaled_production_features
from repro.core.filter import PerceptronFilter
from repro.core.ppf import PPF


class TestScaledFeatures:
    def test_unit_factor_preserves_sizes(self):
        baseline = [f.table_entries for f in production_features()]
        scaled = [f.table_entries for f in scaled_production_features(1.0)]
        assert scaled == baseline

    def test_half_budget_halves_tables(self):
        scaled = {f.name: f.table_entries for f in scaled_production_features(0.5)}
        assert scaled["phys_address"] == 2048
        assert scaled["pc_xor_depth"] == 512

    def test_double_budget_doubles_tables(self):
        scaled = {f.name: f.table_entries for f in scaled_production_features(2.0)}
        assert scaled["phys_address"] == 8192
        assert scaled["confidence"] == 256

    def test_floor_at_64_entries(self):
        scaled = scaled_production_features(0.01)
        assert all(f.table_entries >= 64 for f in scaled)

    def test_sizes_are_powers_of_two(self):
        for factor in (0.3, 0.7, 1.5, 3.0):
            for feature in scaled_production_features(factor):
                entries = feature.table_entries
                assert entries & (entries - 1) == 0, (factor, feature.name)

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            scaled_production_features(0)

    def test_names_preserved(self):
        baseline = [f.name for f in production_features()]
        assert [f.name for f in scaled_production_features(0.5)] == baseline

    def test_storage_scales(self):
        half = sum(f.table_entries for f in scaled_production_features(0.5)) * 5
        full = sum(f.table_entries for f in production_features()) * 5
        assert half < full
        assert half >= full // 2  # the 64-entry floor can round up

    def test_filter_accepts_scaled_features(self):
        filt = PerceptronFilter(scaled_production_features(0.5))
        assert filt.total_weight_bits() < 113_280

    def test_ppf_runs_with_scaled_features(self):
        ppf = PPF(features=scaled_production_features(0.5))
        out = ppf.train(0x10000, 0x400, False, 0)
        assert isinstance(out, list)
