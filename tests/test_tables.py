"""Tests for repro.core.tables (Prefetch / Reject tables)."""

import pytest

from repro.core.tables import (
    INDEX_BITS,
    TABLE_ENTRIES,
    DecisionTable,
    PrefetchTable,
    RejectTable,
    split_address,
)


def addr_with(index, tag):
    """Compose a block address with the given table index and tag."""
    return ((tag << INDEX_BITS) | index) << 6


class TestSplitAddress:
    def test_paper_geometry(self):
        assert TABLE_ENTRIES == 1024
        index, tag = split_address(addr_with(5, 3))
        assert index == 5
        assert tag == 3

    def test_tag_is_six_bits(self):
        _, tag = split_address(addr_with(0, 0xFF))
        assert tag == 0xFF & 0x3F


class TestInsertLookup:
    def test_lookup_after_insert(self):
        table = DecisionTable()
        addr = addr_with(1, 1)
        table.insert(addr, (1, 2, 3), True, 5)
        entry = table.lookup(addr)
        assert entry is not None
        assert entry.feature_indices == (1, 2, 3)
        assert entry.perc_decision
        assert entry.perc_sum == 5
        assert not entry.useful

    def test_lookup_miss_on_empty(self):
        assert DecisionTable().lookup(0x1000) is None

    def test_tag_mismatch_misses(self):
        table = DecisionTable()
        table.insert(addr_with(1, 1), (), True, 0)
        assert table.lookup(addr_with(1, 2)) is None

    def test_same_block_different_bytes_match(self):
        table = DecisionTable()
        addr = addr_with(1, 1)
        table.insert(addr, (), True, 0)
        assert table.lookup(addr + 63) is not None

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            DecisionTable(entries=1000)


class TestDisplacement:
    def test_conflicting_insert_returns_displaced(self):
        table = DecisionTable()
        first = addr_with(1, 1)
        second = addr_with(1, 2)  # same index, different tag
        table.insert(first, (9,), True, 0)
        displaced = table.insert(second, (8,), True, 0)
        assert displaced is not None
        assert displaced.feature_indices == (9,)
        assert table.conflicts == 1

    def test_same_block_reinsert_is_refresh(self):
        """Re-recording the same block must NOT report a displacement —
        otherwise the lookahead's re-suggestions would train negative
        against their own pending prefetches."""
        table = DecisionTable()
        addr = addr_with(1, 1)
        table.insert(addr, (1,), True, 0)
        displaced = table.insert(addr, (2,), True, 0)
        assert displaced is None
        assert table.conflicts == 0

    def test_displaced_entry_is_gone(self):
        table = DecisionTable()
        first = addr_with(1, 1)
        table.insert(first, (), True, 0)
        table.insert(addr_with(1, 2), (), True, 0)
        assert table.lookup(first) is None

    def test_invalidated_slot_does_not_count_as_conflict(self):
        table = DecisionTable()
        addr = addr_with(1, 1)
        table.insert(addr, (), True, 0)
        table.invalidate(addr)
        displaced = table.insert(addr_with(1, 2), (), True, 0)
        assert displaced is None
        assert table.conflicts == 0


class TestInvalidate:
    def test_invalidate_consumes_entry(self):
        table = DecisionTable()
        addr = addr_with(3, 3)
        table.insert(addr, (), True, 0)
        assert table.invalidate(addr)
        assert table.lookup(addr) is None
        assert not table.invalidate(addr)

    def test_invalidate_respects_tag(self):
        table = DecisionTable()
        table.insert(addr_with(3, 3), (), True, 0)
        assert not table.invalidate(addr_with(3, 4))


class TestBookkeeping:
    def test_occupancy(self):
        table = DecisionTable()
        table.insert(addr_with(0, 1), (), True, 0)
        table.insert(addr_with(1, 1), (), True, 0)
        assert table.occupancy() == 2
        table.invalidate(addr_with(0, 1))
        assert table.occupancy() == 1

    def test_hits_counted(self):
        table = DecisionTable()
        addr = addr_with(0, 1)
        table.insert(addr, (), True, 0)
        table.lookup(addr)
        table.lookup(addr_with(0, 2))  # miss
        assert table.hits == 1

    def test_reset(self):
        table = DecisionTable()
        table.insert(addr_with(0, 1), (), True, 0)
        table.reset()
        assert table.occupancy() == 0
        assert table.inserts == 0

    def test_subclasses_share_behaviour(self):
        for cls in (PrefetchTable, RejectTable):
            table = cls()
            addr = addr_with(9, 2)
            table.insert(addr, (4,), cls is PrefetchTable, -3)
            assert table.lookup(addr).feature_indices == (4,)
