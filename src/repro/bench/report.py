"""``BENCH_sim.json`` schema, baseline comparison and writer.

The report is schema-versioned so downstream tooling (the CI artifact
trail, future regression gates) can evolve without guessing::

    {
      "schema": "repro.bench/v1",
      "schema_version": 1,
      "created_unix": 1700000000.0,
      "python": "3.11.7",
      "platform": "Linux-...",
      "mode": "full" | "smoke",
      "scale": 1.0,
      "results": {
        "<benchmark>": {
          "ops": 10000,            # operations performed
          "best_wall_s": 0.42,     # fastest repeat (wall time per layer)
          "mean_wall_s": 0.44,
          "repeats": 3,
          "ops_per_sec": 23809.5,  # ops / best_wall_s
          "ns_per_op": 42000.0     # per-access ns
        }, ...
      },
      "baseline": {                # or null when no baseline is found
        "source": "benchmarks/baseline_pre_pr.json",
        "results": { same shape as "results" }
      },
      "speedup_vs_baseline": {     # current / baseline ops_per_sec
        "<benchmark>": 1.63, ...
      }
    }

The committed ``benchmarks/baseline_pre_pr.json`` pins the throughput of
the tree *before* the hot-path optimization PR, measured with this very
harness; every later ``python -m repro bench`` reports its speedup
against that floor.  Baselines are machine-dependent — regenerate with
``python -m repro bench --rebaseline`` when moving to new hardware.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence

from ..ioutil import atomic_write
from .micro import BenchResult

BENCH_SCHEMA_VERSION = 1
BENCH_SCHEMA = f"repro.bench/v{BENCH_SCHEMA_VERSION}"

#: Default report location: the current working directory, which for
#: ``python -m repro bench`` invocations is the repo root.
DEFAULT_REPORT_NAME = "BENCH_sim.json"


def default_baseline_path() -> Path:
    """The committed pre-PR baseline, resolved relative to the repo.

    Falls back to the working directory when the package is installed
    outside a source checkout (the baseline is then simply absent).
    """
    in_tree = Path(__file__).resolve().parents[3] / "benchmarks" / "baseline_pre_pr.json"
    if in_tree.is_file():
        return in_tree
    return Path("benchmarks") / "baseline_pre_pr.json"


def load_baseline(path: Optional[Path] = None) -> Optional[Dict]:
    """Load a baseline report; None when missing or unreadable."""
    path = Path(path) if path is not None else default_baseline_path()
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or "results" not in data:
        return None
    return {"source": str(path), "results": data["results"]}


def build_report(
    results: Sequence[BenchResult],
    mode: str = "full",
    scale: float = 1.0,
    baseline: Optional[Mapping] = None,
) -> Dict:
    """Assemble the schema-versioned report dictionary."""
    result_map = {result.name: result.to_dict() for result in results}
    speedups: Dict[str, float] = {}
    if baseline:
        for name, current in result_map.items():
            recorded = baseline["results"].get(name)
            if recorded and recorded.get("ops_per_sec"):
                speedups[name] = current["ops_per_sec"] / recorded["ops_per_sec"]
    return {
        "schema": BENCH_SCHEMA,
        "schema_version": BENCH_SCHEMA_VERSION,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "argv": sys.argv[1:],
        "mode": mode,
        "scale": scale,
        "results": result_map,
        "baseline": dict(baseline) if baseline else None,
        "speedup_vs_baseline": speedups,
    }


def write_report(report: Mapping, path: Optional[Path] = None) -> Path:
    """Write the report as JSON; returns the path written.

    Atomic (unique-tmp + rename): an interrupted bench run cannot leave
    a truncated ``BENCH_sim.json`` that a later ``--baseline`` load
    would half-parse.
    """
    path = Path(path) if path is not None else Path(DEFAULT_REPORT_NAME)
    with atomic_write(path, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def format_report(report: Mapping) -> str:
    """Human-readable table for the CLI."""
    lines = [f"{'benchmark':26s} {'ops':>9s} {'wall_s':>8s} {'ops/sec':>12s} {'ns/op':>10s} {'vs base':>8s}"]
    speedups = report.get("speedup_vs_baseline", {})
    for name, r in report["results"].items():
        versus = f"{speedups[name]:.2f}x" if name in speedups else "-"
        lines.append(
            f"{name:26s} {r['ops']:9d} {r['best_wall_s']:8.3f} "
            f"{r['ops_per_sec']:12,.0f} {r['ns_per_op']:10,.0f} {versus:>8s}"
        )
    baseline = report.get("baseline")
    if baseline:
        lines.append(f"baseline: {baseline['source']}")
    else:
        lines.append("baseline: none found (speedups omitted)")
    return "\n".join(lines)
