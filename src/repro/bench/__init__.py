"""Performance microbenchmarks for the simulator hot path.

The sweeps behind every figure push thousands of per-access events
through ``O3Core.step -> MemoryHierarchy.access -> Cache -> SPP ->
PerceptronFilter``, so simulator throughput directly bounds how much of
the paper's config space a PR can explore.  This package measures that
throughput per layer and records the trajectory in a schema-versioned
``BENCH_sim.json`` (see :mod:`repro.bench.report` for the schema and
``docs/performance.md`` for the hot-path invariants the numbers guard).

* :mod:`repro.bench.micro` — the benchmark definitions: synthetic trace
  generation, cache lookup/fill, SPP training, perceptron inference and
  training, and full single-core runs.
* :mod:`repro.bench.report` — result schema, baseline comparison and the
  ``BENCH_sim.json`` writer.

Run ``python -m repro bench`` for the full suite or ``--smoke`` for the
reduced CI variant.
"""

from .micro import BENCHMARKS, BenchResult, run_benchmarks
from .report import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_VERSION,
    build_report,
    default_baseline_path,
    format_report,
    load_baseline,
    write_report,
)

__all__ = [
    "BENCHMARKS",
    "BenchResult",
    "run_benchmarks",
    "BENCH_SCHEMA",
    "BENCH_SCHEMA_VERSION",
    "build_report",
    "default_baseline_path",
    "format_report",
    "load_baseline",
    "write_report",
]
