"""Microbenchmark definitions, one per hot-path layer.

Every benchmark precomputes its inputs *outside* the timed region, runs
a fixed deterministic operation count, and reports wall time over that
count.  Fixed counts (rather than adaptive iteration) keep the measured
work identical across code versions, so ``BENCH_sim.json`` ratios are
meaningful; ``scale`` shrinks the counts uniformly for the CI smoke job.

The operation each layer counts:

* ``trace_gen``            — synthetic trace records produced (streaming)
* ``trace_gen_batch``      — records produced by the numpy batch generator
* ``cache_lookup_fill``    — cache demand lookups (misses also fill)
* ``spp_train``            — SPP training events (L2 demand accesses)
* ``filter_inference``     — perceptron inferences
* ``filter_training``      — perceptron training updates
* ``filter_inference_pythia`` — Pythia RL decisions (Q lookup, action
  choice, EQ feedback) per L2 demand access
* ``end_to_end_single_core_pythia`` — trace records through a full
  Pythia run (the zoo's end-to-end cost vs the PPF pair)
* ``end_to_end_single_core`` — trace records through a full PPF run
* ``end_to_end_single_core_batched`` — the same run pinned to the
  batched engine (the ``batched_vs_scalar`` pair: its ops_per_sec over
  ``end_to_end_single_core`` is the engine speedup, gated ≥3× versus
  the committed baseline in ``tests/test_engine_equivalence.py``)
* ``end_to_end_no_prefetch`` — trace records through a no-prefetch run
* ``end_to_end_multi_core`` — trace records through a 4-core PPF mix
  (scalar heap-scheduled engine)
* ``end_to_end_multi_core_batched`` — the same mix pinned to the
  batched engine (quantum-scheduled, fused per-core kernels; the
  pair's ops_per_sec ratio is the multi-core engine speedup, gated
  ≥2.5× versus the committed baseline in
  ``tests/test_engine_equivalence.py``)
* ``telemetry_disabled_overhead`` — the PPF run with telemetry forced off
  (its wall time vs ``end_to_end_single_core`` is the disabled-telemetry
  overhead; gated at ≤2% in ``tests/test_telemetry_overhead.py``)
* ``sweep_warmup_cold``    — records through one warmup-heavy sweep cell
* ``sweep_warmup_reuse``   — same cell served from a warmup snapshot
  (the ops_per_sec ratio of the pair is the warmup-reuse speedup)
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: name -> (builder, full-scale op count).  The builder receives the op
#: count and returns a zero-argument callable that performs the timed
#: work; input setup happens inside the builder, outside the timing.
BENCHMARKS: Dict[str, Tuple[Callable[[int], Callable[[], int]], int]] = {}

#: Engine override applied by ``run_benchmarks(engine=...)`` to the
#: end-to-end benchmarks (``repro bench --engine``).  ``None`` leaves
#: each benchmark on its own pinned/default engine, so the
#: ``end_to_end_single_core`` / ``end_to_end_single_core_batched`` pair
#: stays a same-process scalar-vs-batched comparison.
_ACTIVE_ENGINE: Optional[str] = None


@dataclass
class BenchResult:
    """One benchmark's measurement."""

    name: str
    ops: int
    best_wall_s: float
    mean_wall_s: float
    repeats: int

    @property
    def ops_per_sec(self) -> float:
        if self.best_wall_s <= 0.0:
            return 0.0
        return self.ops / self.best_wall_s

    @property
    def ns_per_op(self) -> float:
        if self.ops == 0:
            return 0.0
        return 1e9 * self.best_wall_s / self.ops

    def to_dict(self) -> Dict[str, float]:
        return {
            "ops": self.ops,
            "best_wall_s": self.best_wall_s,
            "mean_wall_s": self.mean_wall_s,
            "repeats": self.repeats,
            "ops_per_sec": self.ops_per_sec,
            "ns_per_op": self.ns_per_op,
        }


def _benchmark(name: str, ops: int):
    def decorate(builder: Callable[[int], Callable[[], int]]):
        BENCHMARKS[name] = (builder, ops)
        return builder

    return decorate


# -- layer 0: trace generation --------------------------------------------------


@_benchmark("trace_gen", ops=150_000)
def _bench_trace_gen(ops: int) -> Callable[[], int]:
    from ..workloads.spec2017 import workload_by_name

    workload = workload_by_name("605.mcf_s")

    def run() -> int:
        count = 0
        for _ in workload.trace(ops, seed=1):
            count += 1
        return count

    return run


@_benchmark("trace_gen_batch", ops=150_000)
def _bench_trace_gen_batch(ops: int) -> Callable[[], int]:
    from ..workloads.batch import batch_trace

    def run() -> int:
        count = 0
        for _ in batch_trace("605.mcf_s", ops, seed=1):
            count += 1
        return count

    return run


# -- layer 1: cache -------------------------------------------------------------


@_benchmark("cache_lookup_fill", ops=200_000)
def _bench_cache(ops: int) -> Callable[[], int]:
    from ..memory.cache import Cache

    rng = random.Random(7)
    addrs: List[int] = []
    base = 0
    for i in range(ops):
        if i % 4 == 3:  # every fourth access is a far jump (mostly misses)
            addrs.append(rng.randrange(1 << 22) << 6)
        else:  # strided stream with heavy reuse (mostly hits)
            base = (base + 64) % (1 << 18)
            addrs.append(base)

    def run() -> int:
        cache = Cache("bench-l2", 512 * 1024, 8, latency=10)
        lookup = cache.lookup
        fill = cache.fill
        for addr in addrs:
            if lookup(addr) is None:
                fill(addr, is_prefetch=False, cycle=0)
        return len(addrs)

    return run


# -- layer 2: SPP ---------------------------------------------------------------


@_benchmark("spp_train", ops=60_000)
def _bench_spp(ops: int) -> Callable[[], int]:
    from ..prefetchers.spp import SPP, SPPConfig
    from ..workloads.spec2017 import workload_by_name

    stream = [
        (rec.pc, rec.addr)
        for rec in workload_by_name("623.xalancbmk_s").trace(ops, seed=2)
    ]

    def run() -> int:
        spp = SPP(SPPConfig.aggressive())
        train = spp.train
        cycle = 0
        for pc, addr in stream:
            train(addr, pc, False, cycle)
            cycle += 10
        return len(stream)

    return run


@_benchmark("filter_inference_pythia", ops=60_000)
def _bench_pythia_train(ops: int) -> Callable[[], int]:
    """Pythia's per-access decision loop on the same stream as
    ``spp_train``, so the two learned prefetchers' hot-path costs are
    directly comparable in every BENCH_sim.json."""
    from ..workloads.spec2017 import workload_by_name
    from ..zoo.pythia import Pythia

    stream = [
        (rec.pc, rec.addr)
        for rec in workload_by_name("623.xalancbmk_s").trace(ops, seed=2)
    ]

    def run() -> int:
        pythia = Pythia()
        train = pythia.train
        cycle = 0
        for pc, addr in stream:
            train(addr, pc, False, cycle)
            cycle += 10
        return len(stream)

    return run


# -- layer 3: perceptron filter -------------------------------------------------


def _synthetic_contexts(count: int, seed: int = 3):
    from ..core.features import FeatureContext

    rng = random.Random(seed)
    contexts = []
    for _ in range(count):
        trigger = rng.randrange(1 << 30) & ~0x3F
        delta = rng.randrange(-32, 33) or 1
        contexts.append(
            FeatureContext(
                candidate_addr=(trigger + delta * 64) & ~0x3F,
                trigger_addr=trigger,
                pc=0x400000 + rng.randrange(64) * 4,
                pcs=(
                    0x400000 + rng.randrange(64) * 4,
                    0x400000 + rng.randrange(64) * 4,
                    0x400000 + rng.randrange(64) * 4,
                ),
                delta=delta,
                depth=rng.randrange(1, 12),
                signature=rng.randrange(1 << 12),
                last_signature=rng.randrange(1 << 12),
                confidence=rng.randrange(101),
            )
        )
    return contexts


@_benchmark("filter_inference", ops=150_000)
def _bench_filter_inference(ops: int) -> Callable[[], int]:
    from ..core.filter import PerceptronFilter

    contexts = _synthetic_contexts(4_096)
    n_ctx = len(contexts)

    def run() -> int:
        filt = PerceptronFilter()
        infer = filt.infer
        for i in range(ops):
            infer(contexts[i % n_ctx])
        return ops

    return run


@_benchmark("filter_training", ops=100_000)
def _bench_filter_training(ops: int) -> Callable[[], int]:
    from ..core.filter import PerceptronFilter

    contexts = _synthetic_contexts(4_096)
    setup = PerceptronFilter()
    index_sets = [setup.feature_indices(ctx) for ctx in contexts]
    n_idx = len(index_sets)

    def run() -> int:
        filt = PerceptronFilter()
        train = filt.train
        for i in range(ops):
            train(index_sets[i % n_idx], positive=(i & 3) != 0)
        return ops

    return run


# -- layer 4: full single-core runs ---------------------------------------------


def _end_to_end(prefetcher: str, ops: int, engine: Optional[str] = None) -> Callable[[], int]:
    import dataclasses

    from ..sim.config import SimConfig
    from ..sim.single_core import run_single_core
    from ..workloads.spec2017 import workload_by_name

    warmup = ops // 5
    config = SimConfig.quick(measure_records=ops - warmup, warmup_records=warmup)
    # A pinned engine (the batched_vs_scalar pair) wins over the CLI-wide
    # --engine override; an unpinned benchmark follows the override.
    engine = engine if engine is not None else _ACTIVE_ENGINE
    if engine is not None:
        config = dataclasses.replace(config, engine=engine)
    workload = workload_by_name("623.xalancbmk_s")

    def run() -> int:
        run_single_core(workload, prefetcher, config, seed=1)
        return ops

    return run


@_benchmark("end_to_end_single_core", ops=10_000)
def _bench_end_to_end_ppf(ops: int) -> Callable[[], int]:
    return _end_to_end("ppf", ops)


@_benchmark("end_to_end_single_core_batched", ops=10_000)
def _bench_end_to_end_ppf_batched(ops: int) -> Callable[[], int]:
    """The PPF run pinned to ``--engine batched`` (same trace, same
    config otherwise), so every BENCH_sim.json carries the
    scalar/batched pair measured back to back in one process."""
    return _end_to_end("ppf", ops, engine="batched")


@_benchmark("end_to_end_no_prefetch", ops=10_000)
def _bench_end_to_end_none(ops: int) -> Callable[[], int]:
    return _end_to_end("none", ops)


@_benchmark("end_to_end_single_core_pythia", ops=10_000)
def _bench_end_to_end_pythia(ops: int) -> Callable[[], int]:
    return _end_to_end("pythia", ops)


@_benchmark("telemetry_disabled_overhead", ops=10_000)
def _bench_telemetry_disabled(ops: int) -> Callable[[], int]:
    """``end_to_end_single_core`` with telemetry explicitly disabled.

    Passing ``telemetry=None`` is the exact call every sweep worker
    makes; the only extra work versus ``end_to_end_single_core`` is the
    one per-``advance`` attribute check that guards the instrumented
    branch.  The gate: this benchmark's wall time stays within 2% of
    ``end_to_end_single_core`` (asserted structurally in
    ``tests/test_telemetry_overhead.py``; measured numbers live in
    ``docs/performance.md``).
    """
    import dataclasses

    from ..sim.config import SimConfig
    from ..sim.single_core import run_single_core
    from ..workloads.spec2017 import workload_by_name

    warmup = ops // 5
    config = SimConfig.quick(measure_records=ops - warmup, warmup_records=warmup)
    if _ACTIVE_ENGINE is not None:
        config = dataclasses.replace(config, engine=_ACTIVE_ENGINE)
    workload = workload_by_name("623.xalancbmk_s")

    def run() -> int:
        run_single_core(workload, "ppf", config, seed=1, telemetry=None)
        return ops

    return run


# -- layer 4b: full multi-core runs ---------------------------------------------


def _end_to_end_multi(ops: int, engine: Optional[str] = None) -> Callable[[], int]:
    """A pinned 4-core PPF mix; ``ops`` counts nominal records (all cores).

    The mix pairs two memory-intensive workloads (605.mcf_s, 619.lbm_s)
    with two lighter ones so the shared LLC/DRAM see real contention and
    the cycle-quantum scheduler sees uneven per-core progress — the
    regime the batched multi-core engine is built for.
    """
    import dataclasses

    from ..sim.config import SimConfig
    from ..sim.multi_core import run_multi_core
    from ..workloads.mixes import WorkloadMix
    from ..workloads.spec2017 import workload_by_name

    names = ("605.mcf_s", "603.bwaves_s", "619.lbm_s", "623.xalancbmk_s")
    mix = WorkloadMix(
        name="bench4", workloads=tuple(workload_by_name(n) for n in names)
    )
    per_core = ops // len(names)
    warmup = per_core // 5
    config = dataclasses.replace(
        SimConfig.multicore(len(names)),
        warmup_records=warmup,
        measure_records=per_core - warmup,
    )
    # Same pin-beats-override rule as the single-core pair.
    engine = engine if engine is not None else _ACTIVE_ENGINE
    if engine is not None:
        config = dataclasses.replace(config, engine=engine)

    def run() -> int:
        run_multi_core(mix, "ppf", config, seed=3)
        return ops

    return run


@_benchmark("end_to_end_multi_core", ops=12_000)
def _bench_end_to_end_multi(ops: int) -> Callable[[], int]:
    return _end_to_end_multi(ops)


@_benchmark("end_to_end_multi_core_batched", ops=12_000)
def _bench_end_to_end_multi_batched(ops: int) -> Callable[[], int]:
    """The 4-core mix pinned to ``--engine batched``, completing the
    multi-core half of the scalar/batched pair in every BENCH_sim.json."""
    return _end_to_end_multi(ops, engine="batched")


# -- layer 5: sweep warmup reuse -------------------------------------------------


def _sweep_cell(ops: int, snapshot_dir: Optional[str] = None) -> Callable[[], int]:
    """One warmup-heavy sweep cell; 90% of its records are warmup.

    The skew mirrors real sweep economics (statistically meaningful
    warmup dwarfs each cell's measured region) and is what makes the
    cold/warm pair a meaningful speedup probe: reuse can at best
    eliminate the warmup fraction.
    """
    from ..sim.config import SimConfig
    from ..sim.suite import SuiteRunner
    from ..workloads.spec2017 import workload_by_name

    measure = max(1, ops // 10)
    config = SimConfig.quick(measure_records=measure, warmup_records=ops - measure)
    workload = workload_by_name("605.mcf_s")

    def run() -> int:
        # A fresh runner per repeat: no memory/result cache — only the
        # snapshot store (when given) carries work across runs.
        runner = SuiteRunner(config, seed=1, jobs=1, snapshot_dir=snapshot_dir)
        runner.sweep([workload], ["spp"], include_baseline=False)
        return ops

    return run


@_benchmark("sweep_warmup_cold", ops=20_000)
def _bench_sweep_cold(ops: int) -> Callable[[], int]:
    return _sweep_cell(ops)


@_benchmark("sweep_warmup_reuse", ops=20_000)
def _bench_sweep_warm(ops: int) -> Callable[[], int]:
    import tempfile

    store = tempfile.TemporaryDirectory(prefix="repro-bench-snap-")
    run = _sweep_cell(ops, snapshot_dir=store.name)
    run()  # untimed: publish the warmup snapshot the timed repeats reuse

    def timed() -> int:
        count = run()
        _ = store  # closure keeps the snapshot directory alive across repeats
        return count

    return timed


# -- driver ---------------------------------------------------------------------


def run_benchmarks(
    names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    repeats: int = 3,
    timer: Callable[[], float] = time.perf_counter,
    engine: Optional[str] = None,
) -> List[BenchResult]:
    """Run the selected benchmarks and return their measurements.

    ``scale`` shrinks every operation count (the smoke mode); ``repeats``
    re-runs each benchmark and keeps the best wall time (the least
    noise-disturbed run) alongside the mean.  ``engine`` overrides the
    simulation engine for the end-to-end benchmarks that aren't pinned
    to one (``repro bench --engine``); the name is validated through the
    registry so typos fail with the catalog, not mid-benchmark.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    if repeats < 1:
        raise ValueError("need at least one repeat")
    if engine is not None:
        from .. import registry
        from ..engine import make_engine  # noqa: F401  (registers engines)

        registry.create("engine", engine)  # raises UnknownComponentError
    selected = list(BENCHMARKS) if names is None else list(names)
    unknown = [name for name in selected if name not in BENCHMARKS]
    if unknown:
        raise ValueError(
            f"unknown benchmark(s) {unknown}; available: {sorted(BENCHMARKS)}"
        )
    global _ACTIVE_ENGINE
    previous_engine = _ACTIVE_ENGINE
    _ACTIVE_ENGINE = engine
    try:
        results = []
        for name in selected:
            builder, full_ops = BENCHMARKS[name]
            ops = max(1_000, int(full_ops * scale))
            run = builder(ops)
            walls = []
            for _ in range(repeats):
                start = timer()
                run()
                walls.append(timer() - start)
            results.append(
                BenchResult(
                    name=name,
                    ops=ops,
                    best_wall_s=min(walls),
                    mean_wall_s=sum(walls) / len(walls),
                    repeats=repeats,
                )
            )
    finally:
        _ACTIVE_ENGINE = previous_engine
    return results
