"""Two-level neural off-chip predictor with adaptive prefetch filtering.

A table-driven reduction of Jamet et al.'s two-level scheme — the
closest modern descendant of PPF, implemented here for the explicit
head-to-head the paper calls for:

* **Level 1** is a cheap per-PC stride/delta predictor: a bounded LRU
  table keyed by a PC hash that tracks the last block and last delta per
  instruction and, once a delta repeats (confidence builds), emits a run
  of ``degree`` stride-spaced candidates.
* **Level 2** is a hashed :class:`~repro.core.filter.PerceptronFilter`
  over a *small, custom* feature subset (deliberately not the PPF
  production catalog — the point of the comparison is the second
  level's budget), with its own Prefetch/Reject tables providing demand
  feedback exactly like PPF's.
* **Adaptive thresholds** — the paper's adaptive filtering stage: every
  ``adapt_interval`` decisions the accept accuracy over the window is
  compared against a target band and the perceptron's tau thresholds
  shift one step stricter or looser (via
  :meth:`~repro.core.filter.PerceptronFilter.retune`), bounded by
  ``tau_min``/``tau_max``.  All integer math, so adaptation is
  deterministic and snapshots restore it exactly.

With ``internal_filter=False`` the second level is bypassed entirely
and level 1's raw candidate stream is emitted — the §4.1-style tuning
used when an external PPF wraps this prefetcher (``filtered:two-level``)
so the two filters don't fight.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..checkpoint.state import group_state, load_group
from ..core.features import (
    Feature,
    _confidence_xor_depth,
    _page_address,
    _page_offset,
    _pc_xor_delta,
)
from ..core.filter import PREFETCH_L2_CODE, FilterConfig, PerceptronFilter
from ..core.ppf import _CandidateContext, _table_adapter
from ..core.tables import PrefetchTable, RejectTable
from ..prefetchers.base import PrefetchCandidate, Prefetcher
from ..registry import register
from ..stats import StatGroup, StatsNode


def two_level_features() -> List[Feature]:
    """The second level's compact feature catalog.

    Reuses production extractors at smaller table sizes (the budget is
    the experiment), so the filter takes the generic per-feature walk
    rather than the fused production kernel.
    """
    return [
        Feature("page_address", 2048, _page_address),
        Feature("pc_xor_delta", 2048, _pc_xor_delta),
        Feature("confidence_xor_depth", 256, _confidence_xor_depth),
        Feature("page_offset", 64, _page_offset),
    ]


@dataclass
class TwoLevelConfig:
    """Level-1 predictor geometry plus the adaptive filter band."""

    l1_entries: int = 512  # per-PC stride rows, LRU
    degree: int = 4  # candidates per confident trigger
    min_confidence: int = 4  # 0..15 saturating per-row counter
    max_stride: int = 64  # |delta| cap for emitted strides (blocks)
    internal_filter: bool = True  # the level-2 perceptron stage
    adapt_interval: int = 512  # decisions between threshold moves
    #: Target accept-accuracy band, in percent: below the floor the
    #: thresholds tighten, above the ceiling they loosen.
    target_accuracy_lo: int = 40
    target_accuracy_hi: int = 75
    tau_min: int = -24
    tau_max: int = 8

    def __post_init__(self) -> None:
        if self.degree <= 0 or self.l1_entries <= 0:
            raise ValueError("degree and l1_entries must be positive")
        if self.target_accuracy_lo > self.target_accuracy_hi:
            raise ValueError("target accuracy band is inverted")
        if self.tau_min > self.tau_max:
            raise ValueError("tau bounds are inverted")

    @classmethod
    def default(cls) -> "TwoLevelConfig":
        return cls()

    @classmethod
    def unfiltered(cls) -> "TwoLevelConfig":
        """Level 1 alone, tuned aggressive, for use under an external PPF.

        Mirrors §4.1: the internal throttles are discarded (no second
        level, lower confidence bar, deeper degree) so the external
        perceptron filter owns every accept/reject decision.
        """
        return cls(internal_filter=False, degree=6, min_confidence=2)


@dataclass
class TwoLevelStats(StatGroup):
    """Level-1 churn and adaptive-stage activity."""

    l1_hits: int = 0
    l1_evictions: int = 0
    triggers: int = 0  # confident rows that emitted candidates
    reject_recoveries: int = 0
    displacement_trainings: int = 0
    adaptations_tightened: int = 0
    adaptations_loosened: int = 0


class _L1Row:
    """One per-PC stride row: last block seen, last delta, confidence."""

    __slots__ = ("last_block", "last_delta", "confidence")

    def __init__(self, last_block: int, last_delta: int = 0, confidence: int = 0) -> None:
        self.last_block = last_block
        self.last_delta = last_delta
        self.confidence = confidence


@register("prefetcher", "two-level")
class TwoLevelFilter(Prefetcher):
    """Two-level predictor: per-PC strides filtered by an adaptive perceptron."""

    name = "two-level"

    def __init__(self, config: Optional[TwoLevelConfig] = None) -> None:
        super().__init__()
        self.config = config or TwoLevelConfig.default()
        self.two_level_stats = TwoLevelStats()
        self._l1: "OrderedDict[int, _L1Row]" = OrderedDict()
        self.filter = PerceptronFilter(two_level_features())
        self.prefetch_table = PrefetchTable()
        self.reject_table = RejectTable()
        self._pcs: Tuple[int, int, int] = (0, 0, 0)
        self._ctx = _CandidateContext()
        # Adaptive-stage window counters (checkpointed, not stats: they
        # must survive the measurement-boundary stats reset).
        self._window_decisions = 0
        self._window_accepted = 0
        self._window_useful = 0

    # -- level 1 -----------------------------------------------------------------

    @staticmethod
    def _pc_key(pc: int) -> int:
        return (pc >> 2) ^ (pc >> 17)

    def _l1_predict(self, block: int, pc: int) -> Tuple[int, int]:
        """Update the PC's stride row; return (delta, confidence)."""
        cfg = self.config
        table = self._l1
        key = self._pc_key(pc)
        row = table.get(key)
        if row is None:
            if len(table) >= cfg.l1_entries:
                table.popitem(last=False)
                self.two_level_stats.l1_evictions += 1
            table[key] = _L1Row(block)
            return 0, 0
        table.move_to_end(key)
        self.two_level_stats.l1_hits += 1
        delta = block - row.last_block
        if delta != 0 and delta == row.last_delta:
            row.confidence = min(row.confidence + 2, 15)
        elif row.confidence > 0:
            row.confidence -= 1
        row.last_delta = delta
        row.last_block = block
        return delta, row.confidence

    # -- main hook ---------------------------------------------------------------

    def train(
        self, addr: int, pc: int, cache_hit: bool, cycle: int
    ) -> List[PrefetchCandidate]:
        if self.config.internal_filter:
            self._train_on_demand(addr)
        pcs = (pc, self._pcs[0], self._pcs[1])
        self._pcs = pcs

        cfg = self.config
        block = addr >> 6
        delta, confidence = self._l1_predict(block, pc)
        if (
            delta == 0
            or confidence < cfg.min_confidence
            or not -cfg.max_stride <= delta <= cfg.max_stride
        ):
            return []
        self.two_level_stats.triggers += 1

        conf_pct = (100 * confidence) // 15
        signature = self._pc_key(pc) & 0xFFF
        candidates: List[PrefetchCandidate] = []
        for depth in range(1, cfg.degree + 1):
            target_block = block + delta * depth
            if target_block < 0:
                break
            meta_conf = conf_pct - 12 * (depth - 1)
            candidates.append(
                PrefetchCandidate(
                    target_block << 6,
                    True,
                    {
                        "pc": pc,
                        "delta": delta,
                        "signature": signature,
                        "confidence": meta_conf if meta_conf > 0 else 0,
                        "depth": depth,
                    },
                )
            )
        self.note_candidates(len(candidates))
        if not cfg.internal_filter:
            return candidates
        return self._filter_candidates(addr, pc, pcs, signature, candidates)

    # -- level 2 -----------------------------------------------------------------

    def _filter_candidates(
        self,
        addr: int,
        pc: int,
        pcs: Tuple[int, int, int],
        signature: int,
        candidates: List[PrefetchCandidate],
    ) -> List[PrefetchCandidate]:
        ctx = self._ctx
        ctx.trigger_addr = addr
        ctx.pcs = pcs
        ctx.last_signature = 0
        decide = self.filter.decide
        accepted: List[PrefetchCandidate] = []
        for candidate in candidates:
            meta = candidate.meta
            ctx.candidate_addr = candidate.addr
            ctx.pc = meta["pc"]
            ctx.delta = meta["delta"]
            ctx.depth = meta["depth"]
            ctx.signature = meta["signature"]
            ctx.confidence = meta["confidence"]
            code, total, indices = decide(ctx)
            self._window_decisions += 1
            if code:
                displaced = self.prefetch_table.insert(candidate.addr, indices, True, total)
                if displaced is not None and not displaced.useful:
                    self.two_level_stats.displacement_trainings += 1
                    self.filter.train(displaced.feature_indices, positive=False)
                candidate.fill_l2 = code == PREFETCH_L2_CODE
                accepted.append(candidate)
                self._window_accepted += 1
            else:
                self.reject_table.insert(candidate.addr, indices, False, total)
        if self._window_decisions >= self.config.adapt_interval:
            self._adapt_thresholds()
        return accepted

    def _train_on_demand(self, addr: int) -> None:
        entry = self.prefetch_table.lookup(addr)
        if entry is not None:
            entry.useful = True
            self._window_useful += 1
            self.filter.train(entry.feature_indices, positive=True)
            self.prefetch_table.invalidate(addr)
        rejected = self.reject_table.lookup(addr)
        if rejected is not None:
            self.two_level_stats.reject_recoveries += 1
            self.filter.train(rejected.feature_indices, positive=True)
            self.reject_table.invalidate(addr)

    def on_eviction(self, addr: int, was_prefetch: bool, was_used: bool) -> None:
        super().on_eviction(addr, was_prefetch, was_used)
        if not self.config.internal_filter:
            return
        if was_prefetch and not was_used:
            entry = self.prefetch_table.lookup(addr)
            if entry is not None and not entry.useful:
                self.filter.train(entry.feature_indices, positive=False)
                self.prefetch_table.invalidate(addr)

    # -- adaptive stage ----------------------------------------------------------

    def _adapt_thresholds(self) -> None:
        """Move the tau thresholds one step toward the accuracy band."""
        cfg = self.config
        accepted = self._window_accepted
        useful = self._window_useful
        self._window_decisions = 0
        self._window_accepted = 0
        self._window_useful = 0
        if accepted == 0:
            return
        filter_cfg = self.filter.config
        if 100 * useful < cfg.target_accuracy_lo * accepted:
            # Too permissive: raise both thresholds (stricter).
            if filter_cfg.tau_hi < cfg.tau_max:
                self.filter.retune(
                    tau_hi=filter_cfg.tau_hi + 1, tau_lo=filter_cfg.tau_lo + 1
                )
                self.two_level_stats.adaptations_tightened += 1
        elif 100 * useful > cfg.target_accuracy_hi * accepted:
            # Accurate but possibly leaving coverage behind: loosen.
            if filter_cfg.tau_lo > cfg.tau_min:
                self.filter.retune(
                    tau_hi=filter_cfg.tau_hi - 1, tau_lo=filter_cfg.tau_lo - 1
                )
                self.two_level_stats.adaptations_loosened += 1

    # -- bookkeeping -------------------------------------------------------------

    def reset_stats(self) -> None:
        super().reset_stats()
        self.two_level_stats.reset()
        self.filter.stats.reset()
        self.prefetch_table.reset_counters()
        self.reject_table.reset_counters()

    def attach_stats(self, node: StatsNode) -> None:
        super().attach_stats(node)
        node.attach("two_level", self.two_level_stats)
        if self.config.internal_filter:
            node.attach("filter", self.filter.stats)
            node.attach("prefetch_table", _table_adapter(self.prefetch_table))
            node.attach("reject_table", _table_adapter(self.reject_table))

    # -- checkpointing -----------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state.update(
            l1=[
                [key, [row.last_block, row.last_delta, row.confidence]]
                for key, row in self._l1.items()
            ],
            filter=self.filter.state_dict(),
            prefetch_table=self.prefetch_table.state_dict(),
            reject_table=self.reject_table.state_dict(),
            pcs=list(self._pcs),
            tau=[self.filter.config.tau_hi, self.filter.config.tau_lo],
            window=[self._window_decisions, self._window_accepted, self._window_useful],
            two_level_stats=group_state(self.two_level_stats),
        )
        return state

    def load_state(self, state: Dict[str, Any]) -> None:
        super().load_state(state)
        self._l1 = OrderedDict(
            (int(key), _L1Row(int(block), int(delta), int(confidence)))
            for key, (block, delta, confidence) in state["l1"]
        )
        self.filter.load_state(state["filter"])
        self.prefetch_table.load_state(state["prefetch_table"])
        self.reject_table.load_state(state["reject_table"])
        self._pcs = tuple(int(pc) for pc in state["pcs"])
        tau_hi, tau_lo = state["tau"]
        self.filter.retune(tau_hi=int(tau_hi), tau_lo=int(tau_lo))
        decisions, accepted, useful = state["window"]
        self._window_decisions = int(decisions)
        self._window_accepted = int(accepted)
        self._window_useful = int(useful)
        load_group(self.two_level_stats, state["two_level_stats"])
