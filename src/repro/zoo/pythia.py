"""Pythia: table-driven online reinforcement-learning prefetching.

A deterministic, checkpointable reduction of Bera et al., "Pythia: A
Customizable Hardware Prefetching Framework Using Online Reinforcement
Learning" (MICRO 2021) to this repo's table-driven idiom:

* **Feature-vector states** — each L2 demand access is compressed into a
  state signature folding the triggering PC, the per-page delta and a
  shifted-XOR path of the last few deltas (the paper's PC+Delta and
  delta-sequence program features), plus the page offset.
* **Q-value vault (QVStore)** — a bounded LRU table mapping state
  signatures to one fixed-point Q value per action, with explicit
  EVICT/insert semantics: inserting a new state into a full vault evicts
  the least-recently-used row wholesale.
* **Actions** — a fixed list of prefetch offsets (in blocks) including
  the no-prefetch action ``0``.  Inference is a deterministic argmax
  over the state's Q row; a counter-based exploration schedule replaces
  the paper's epsilon-greedy RNG so runs are reproducible and snapshots
  are exact.
* **Prefetch-quality rewards** — learned from demand feedback through an
  evaluation queue (EQ) of in-flight decisions: a demand access that
  *hits* on an EQ block is accurate-timely, a demand *miss* on an EQ
  block is accurate-late (the prefetch was right but not early enough),
  an entry aging out of the EQ unused is inaccurate, and the
  no-prefetch action earns its own (mildly negative) reward so the
  agent is pushed to prefetch when any offset would pay.

Q updates use integer fixed-point (``Q_SCALE``) with a shift-based
learning rate and a one-shift discount on the current state's best Q as
the bootstrap, so all arithmetic is exact and platform-independent.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..checkpoint.state import group_state, load_group
from ..memory.address import encode_delta
from ..prefetchers.base import PrefetchCandidate, Prefetcher
from ..registry import register
from ..stats import StatGroup, StatsNode

#: Fixed-point scale for stored Q values (rewards are scaled by this).
Q_SCALE = 256


@dataclass
class PythiaConfig:
    """Structure sizes, action list and reward levels.

    Sizes follow the spirit of the paper's Table 6 configuration
    (QVStore of a few thousand Q values, a 256-entry EQ, 16 actions);
    rewards follow its accurate-timely > accurate-late > no-prefetch >
    inaccurate ordering.  ``docs/paper_map.md`` maps each knob to the
    paper.
    """

    #: Prefetch offsets in blocks; action 0 is "don't prefetch".
    actions: Tuple[int, ...] = (0, 1, -1, 2, -2, 3, -3, 4, -4, 6, -6, 8, 10, 12, 16, 32)
    vault_entries: int = 1024  # QVStore rows (states); LRU EVICT/insert
    eq_entries: int = 256  # evaluation queue depth
    page_table_entries: int = 256  # per-page last-offset tracker (delta source)
    lr_shift: int = 4  # learning rate 1/16 in fixed point
    gamma_shift: int = 1  # discount 1/2 on the bootstrap term
    reward_accurate_timely: int = 20
    reward_accurate_late: int = 12
    reward_inaccurate: int = -14
    reward_no_prefetch: int = -4
    #: Take the scheduled exploratory action every N decisions (the
    #: deterministic stand-in for epsilon-greedy; N≈1/epsilon).
    explore_every: int = 64
    #: Q values are clamped to ±(clamp · Q_SCALE).
    q_clamp: int = 64
    #: Emit the top-``fanout`` positive-Q actions per trigger (1 = the
    #: paper's single argmax action).
    fanout: int = 1
    #: Minimum fixed-point Q for a prefetch action to issue.
    issue_threshold: int = 0

    def __post_init__(self) -> None:
        if not self.actions or 0 not in self.actions:
            raise ValueError("action list must include the no-prefetch action 0")
        if self.vault_entries <= 0 or self.eq_entries <= 0:
            raise ValueError("vault and EQ must have positive capacity")

    @classmethod
    def default(cls) -> "PythiaConfig":
        return cls()

    @classmethod
    def aggressive(cls) -> "PythiaConfig":
        """Pythia re-tuned to sit under an external perceptron filter.

        Mirrors §4.1 of the PPF paper: internal throttling is discarded
        so the filter owns accept/reject.  The agent emits its four best
        actions per trigger, and negative-Q actions may still issue
        (``issue_threshold`` drops below the clamp floor), so far more —
        and far less certain — candidates reach the perceptron.
        """
        return cls(fanout=4, issue_threshold=-(64 * Q_SCALE))


@dataclass
class PythiaStats(StatGroup):
    """Reward mix and vault churn beyond the shared prefetcher counters."""

    rewards_accurate_timely: int = 0
    rewards_accurate_late: int = 0
    rewards_inaccurate: int = 0
    rewards_no_prefetch: int = 0
    q_evictions: int = 0
    eq_overflows: int = 0
    explorations: int = 0


class _EQEntry:
    """One in-flight decision awaiting demand feedback."""

    __slots__ = ("state", "action")

    def __init__(self, state: int, action: int) -> None:
        self.state = state
        self.action = action


@register("prefetcher", "pythia")
class Pythia(Prefetcher):
    """Online-RL prefetcher: QVStore + evaluation queue + reward classes."""

    name = "pythia"

    def __init__(self, config: Optional[PythiaConfig] = None) -> None:
        super().__init__()
        self.config = config or PythiaConfig.default()
        self.pythia_stats = PythiaStats()
        #: QVStore: state signature -> [Q per action], LRU EVICT/insert.
        self._vault: "OrderedDict[int, List[int]]" = OrderedDict()
        #: Evaluation queue: block address -> in-flight decision, FIFO.
        self._eq: "OrderedDict[int, _EQEntry]" = OrderedDict()
        #: page -> last block offset, LRU (the per-page delta source).
        self._pages: "OrderedDict[int, int]" = OrderedDict()
        #: Shifted-XOR fold of recent deltas (the delta-sequence feature).
        self._delta_path = 0
        #: Decision counter driving the deterministic exploration schedule.
        self._decisions = 0

    # -- state construction ------------------------------------------------------

    def _state_signature(self, pc: int, offset: int, delta: int) -> int:
        """Fold the program features into one vault key.

        PC bits, the encoded trigger delta, the delta-sequence path and
        the page offset each occupy their own field so distinct feature
        vectors collide only through the vault's own capacity limit.
        """
        pc_bits = (pc >> 2) ^ (pc >> 13)
        return (
            ((pc_bits & 0x3FF) << 21)
            ^ ((encode_delta(delta) & 0x7F) << 14)
            ^ ((self._delta_path & 0xFFF) << 6)
            ^ (offset & 0x3F)
        )

    def _q_row(self, state: int) -> List[int]:
        """The state's Q row, inserted (with LRU eviction) if missing."""
        vault = self._vault
        row = vault.get(state)
        if row is not None:
            vault.move_to_end(state)
            return row
        if len(vault) >= self.config.vault_entries:
            vault.popitem(last=False)
            self.pythia_stats.q_evictions += 1
        row = [0] * len(self.config.actions)
        vault[state] = row
        return row

    # -- learning ----------------------------------------------------------------

    def _update_q(self, state: int, action: int, reward: int, bootstrap_q: int) -> None:
        """One fixed-point SARSA-style update toward R + gamma·Q'."""
        cfg = self.config
        row = self._q_row(state)
        target = reward * Q_SCALE + (bootstrap_q >> cfg.gamma_shift)
        value = row[action] + ((target - row[action]) >> cfg.lr_shift)
        clamp = cfg.q_clamp * Q_SCALE
        if value > clamp:
            value = clamp
        elif value < -clamp:
            value = -clamp
        row[action] = value

    def _resolve_feedback(self, block: int, cache_hit: bool, bootstrap_q: int) -> None:
        """Reward an in-flight decision the demand stream just judged."""
        entry = self._eq.pop(block, None)
        if entry is None:
            return
        cfg = self.config
        stats = self.pythia_stats
        if cache_hit:
            stats.rewards_accurate_timely += 1
            reward = cfg.reward_accurate_timely
        else:
            stats.rewards_accurate_late += 1
            reward = cfg.reward_accurate_late
        self._update_q(entry.state, entry.action, reward, bootstrap_q)

    def _eq_insert(self, block: int, state: int, action: int) -> None:
        eq = self._eq
        if block in eq:
            eq.move_to_end(block)
            eq[block] = _EQEntry(state, action)
            return
        if len(eq) >= self.config.eq_entries:
            _, aged = eq.popitem(last=False)
            self.pythia_stats.eq_overflows += 1
            self.pythia_stats.rewards_inaccurate += 1
            # No next state is at hand when a decision ages out; the
            # update is the undiscounted inaccuracy penalty.
            self._update_q(aged.state, aged.action, self.config.reward_inaccurate, 0)
        eq[block] = _EQEntry(state, action)

    # -- main hook ---------------------------------------------------------------

    def train(
        self, addr: int, pc: int, cache_hit: bool, cycle: int
    ) -> List[PrefetchCandidate]:
        cfg = self.config
        block = addr >> 6
        page = addr >> 12
        offset = block & 63

        pages = self._pages
        last_offset = pages.get(page)
        if last_offset is not None:
            pages.move_to_end(page)
            delta = offset - last_offset
        else:
            if len(pages) >= cfg.page_table_entries:
                pages.popitem(last=False)
            delta = 0
        pages[page] = offset
        state = self._state_signature(pc, offset, delta)
        if delta != 0:
            self._delta_path = ((self._delta_path << 3) ^ encode_delta(delta)) & 0xFFF

        row = self._q_row(state)
        best_q = max(row)
        # Feedback first: the current state's best Q is the bootstrap for
        # any decision this demand access resolves.
        self._resolve_feedback(block, cache_hit, best_q)
        # Feedback updates may have evicted and re-inserted this state's
        # row; re-fetch so inference reads the live Q values.
        row = self._q_row(state)

        self._decisions += 1
        actions = cfg.actions
        if cfg.explore_every > 0 and self._decisions % cfg.explore_every == 0:
            primary = (self._decisions // cfg.explore_every) % len(actions)
            self.pythia_stats.explorations += 1
        else:
            primary = 0
            top = row[0]
            for index in range(1, len(actions)):
                if row[index] > top:
                    top = row[index]
                    primary = index
        chosen: List[int] = [primary]
        if cfg.fanout > 1:
            order = sorted(range(len(actions)), key=lambda i: (-row[i], i))
            for index in order:
                if len(chosen) >= cfg.fanout:
                    break
                if index != primary:
                    chosen.append(index)

        candidates: List[PrefetchCandidate] = []
        for index in chosen:
            action_delta = actions[index]
            if action_delta == 0 or row[index] < cfg.issue_threshold:
                self.pythia_stats.rewards_no_prefetch += 1
                self._update_q(state, index, cfg.reward_no_prefetch, best_q)
                continue
            target = offset + action_delta
            if not 0 <= target < 64:  # stay in the physical page
                self.pythia_stats.rewards_no_prefetch += 1
                self._update_q(state, index, cfg.reward_no_prefetch, best_q)
                continue
            target_block = (page << 6) | target
            q_value = row[index]
            confidence = (q_value * 100) // (cfg.q_clamp * Q_SCALE)
            candidates.append(
                PrefetchCandidate(
                    target_block << 6,
                    True,
                    {
                        "pc": pc,
                        "delta": action_delta,
                        "signature": self._delta_path,
                        "confidence": 0 if confidence < 0 else (100 if confidence > 100 else confidence),
                        "depth": 1,
                    },
                )
            )
            self._eq_insert(target_block, state, index)
        return candidates

    # -- diagnostics -------------------------------------------------------------

    def qvalue_summary(self) -> Dict[str, float]:
        """Q-vault health for telemetry: magnitude, saturation, occupancy.

        Pure read — safe to sample mid-run.  ``q_saturation`` is the
        fraction of stored Q values pinned at the clamp rails, the
        early-warning sign that rewards have outrun the fixed-point
        range; the reward mix fractions expose what the agent is
        actually being taught.
        """
        clamp = self.config.q_clamp * Q_SCALE
        total = 0
        count = 0
        saturated = 0
        for row in self._vault.values():
            for value in row:
                total += value if value >= 0 else -value
                if value <= -clamp or value >= clamp:
                    saturated += 1
                count += 1
        stats = self.pythia_stats
        rewards = (
            stats.rewards_accurate_timely
            + stats.rewards_accurate_late
            + stats.rewards_inaccurate
            + stats.rewards_no_prefetch
        )
        return {
            "mean_abs_q": (total / (count * Q_SCALE)) if count else 0.0,
            "q_saturation": (saturated / count) if count else 0.0,
            "vault_occupancy": len(self._vault) / self.config.vault_entries,
            "eq_occupancy": len(self._eq) / self.config.eq_entries,
            "reward_accurate_timely_frac": (stats.rewards_accurate_timely / rewards) if rewards else 0.0,
            "reward_accurate_late_frac": (stats.rewards_accurate_late / rewards) if rewards else 0.0,
            "reward_inaccurate_frac": (stats.rewards_inaccurate / rewards) if rewards else 0.0,
            "reward_no_prefetch_frac": (stats.rewards_no_prefetch / rewards) if rewards else 0.0,
        }

    def reset_stats(self) -> None:
        super().reset_stats()
        self.pythia_stats.reset()

    def attach_stats(self, node: StatsNode) -> None:
        super().attach_stats(node)
        node.attach("pythia", self.pythia_stats)

    # -- checkpointing -----------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Vault, EQ and page-table pair lists preserve LRU/FIFO order."""
        state = super().state_dict()
        state.update(
            vault=[[sig, list(row)] for sig, row in self._vault.items()],
            eq=[[block, [entry.state, entry.action]] for block, entry in self._eq.items()],
            pages=[[page, offset] for page, offset in self._pages.items()],
            delta_path=self._delta_path,
            decisions=self._decisions,
            pythia_stats=group_state(self.pythia_stats),
        )
        return state

    def load_state(self, state: Dict[str, Any]) -> None:
        super().load_state(state)
        self._vault = OrderedDict(
            (int(sig), [int(q) for q in row]) for sig, row in state["vault"]
        )
        self._eq = OrderedDict(
            (int(block), _EQEntry(int(entry_state), int(action)))
            for block, (entry_state, action) in state["eq"]
        )
        self._pages = OrderedDict(
            (int(page), int(offset)) for page, offset in state["pages"]
        )
        self._delta_path = int(state["delta_path"])
        self._decisions = int(state["decisions"])
        load_group(self.pythia_stats, state["pythia_stats"])
