"""The learned-prefetcher zoo (ROADMAP item 5).

Table-driven reductions of the competitors PAPERS.md names — Pythia's
online-RL prefetcher and the Jamet-style two-level neural predictor —
plus the generic ``filtered:<inner>`` seam that composes the paper's
perceptron filter over any registered prefetcher.  Importing this
package registers every zoo component; ``repro.sim.single_core``
imports it so worker processes (pool and farm) can rehydrate zoo
prefetchers by name.
"""

from .filtered import (
    FILTER_SPEC_PREFIX,
    filter_specs,
    inner_name,
    is_filter_spec,
    make_filtered,
    validate_prefetcher_spec,
)
from .pythia import Pythia, PythiaConfig, PythiaStats
from .two_level import TwoLevelConfig, TwoLevelFilter, TwoLevelStats, two_level_features

__all__ = [
    "FILTER_SPEC_PREFIX",
    "Pythia",
    "PythiaConfig",
    "PythiaStats",
    "TwoLevelConfig",
    "TwoLevelFilter",
    "TwoLevelStats",
    "filter_specs",
    "inner_name",
    "is_filter_spec",
    "make_filtered",
    "two_level_features",
    "validate_prefetcher_spec",
]
