"""The generic filter seam: ``filtered:<inner>`` prefetcher specs.

The paper evaluates the perceptron filter over SPP; the open question is
whether the filtering generalizes.  This module makes the composition a
first-class spec: ``filtered:<inner>`` wraps *any* registered
candidate-producing prefetcher in :class:`~repro.core.ppf.PPF`, so
``ppf`` is exactly ``filtered:spp`` (bit-identical — both build a PPF
over aggressively-tuned SPP, pinned by ``tests/test_zoo.py`` against the
committed golden stats) and the generality cross-product is expressible
anywhere a prefetcher name is accepted: ``sweep --prefetchers``,
checkpoints, the farm, golden cells.

Inner prefetchers carry *filtered tunings*: per §4.1 the wrapped
prefetcher's internal throttles are discarded so the perceptron owns
every accept/reject decision.  Each known inner name maps to its
aggressive construction; unknown-but-registered names fall back to the
registry default so third-party prefetchers compose too.

:func:`validate_prefetcher_spec` is the eager front door — CLI handlers
and :meth:`SuiteRunner.sweep` call it before any cell expansion so a
typo fails fast with a did-you-mean suggestion instead of surfacing as
a raw ``UnknownComponentError`` deep inside a worker process.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict, List

from .. import registry
from ..core.ppf import PPF
from ..prefetchers.base import Prefetcher
from ..prefetchers.spp import SPP, SPPConfig
from ..registry import UnknownComponentError
from .pythia import Pythia, PythiaConfig
from .two_level import TwoLevelConfig, TwoLevelFilter

#: Spec prefix selecting the perceptron-filtered composition.
FILTER_SPEC_PREFIX = "filtered:"

#: Aggressive (§4.1 "internal throttles discarded") constructions used
#: when a prefetcher runs *under* the filter.  ``filtered:spp`` must
#: build the identical object graph to :func:`repro.core.ppf.make_ppf_spp`
#: so it reproduces the ``ppf`` golden stats bit for bit.
_FILTERED_TUNINGS: Dict[str, Callable[[], Prefetcher]] = {
    "spp": lambda: SPP(SPPConfig.aggressive()),
    "pythia": lambda: Pythia(PythiaConfig.aggressive()),
    "two-level": lambda: TwoLevelFilter(TwoLevelConfig.unfiltered()),
}


def is_filter_spec(spec: str) -> bool:
    return spec.startswith(FILTER_SPEC_PREFIX)


def inner_name(spec: str) -> str:
    """The inner prefetcher name of a ``filtered:<inner>`` spec."""
    return spec[len(FILTER_SPEC_PREFIX):]


def _suggest(name: str) -> str:
    """A did-you-mean suffix for an unknown prefetcher name (or '')."""
    known = registry.names("prefetcher")
    close = difflib.get_close_matches(name, known, n=1)
    if close:
        return f" (did you mean {close[0]!r}?)"
    return ""


def _require_prefetcher(name: str) -> None:
    try:
        registry.get("prefetcher", name)
    except UnknownComponentError as err:
        raise UnknownComponentError(err.message + _suggest(name)) from None


def validate_prefetcher_spec(spec: str) -> str:
    """Eagerly validate a prefetcher spec (plain name or ``filtered:``).

    Returns the spec unchanged when valid; raises
    :class:`UnknownComponentError` with a did-you-mean suggestion
    otherwise.  Called by the CLI and by ``SuiteRunner.sweep`` before
    any cell is expanded, mirroring the eager ``--engine`` validation.
    """
    if not is_filter_spec(spec):
        _require_prefetcher(spec)
        return spec
    inner = inner_name(spec)
    if not inner:
        raise UnknownComponentError(
            f"filter spec {spec!r} names no inner prefetcher; "
            f"expected filtered:<name>, e.g. filtered:spp"
        )
    if is_filter_spec(inner):
        raise UnknownComponentError(
            f"filter specs do not nest: {spec!r} (PPF already owns the "
            f"accept/reject decision for its inner prefetcher)"
        )
    _require_prefetcher(inner)
    return spec


def make_filtered(inner: str) -> PPF:
    """Build ``PPF(<aggressively tuned inner>)`` for a validated name.

    The returned instance reports ``name = "filtered:<inner>"`` so
    checkpoints, fingerprints and suite cells key on the full spec, and
    keeps ``inner_name`` for telemetry probes.
    """
    validate_prefetcher_spec(FILTER_SPEC_PREFIX + inner)
    tuned = _FILTERED_TUNINGS.get(inner)
    underlying = tuned() if tuned is not None else registry.create("prefetcher", inner)
    ppf = PPF(underlying=underlying)
    ppf.name = FILTER_SPEC_PREFIX + inner
    ppf.inner_name = inner
    return ppf


def filter_specs(inner_names: List[str]) -> List[str]:
    """``filtered:<name>`` specs for a list of inner prefetchers."""
    return [FILTER_SPEC_PREFIX + name for name in inner_names]
