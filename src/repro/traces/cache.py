"""Content-digest trace conversion cache.

Conversion is pure — canonical output is a function of the source bytes
alone — so the cache is content-addressed exactly like the warmup
snapshot store: the key is a streaming SHA-256 of the *source file*, the
value is ``<digest>.rpt``, and a second conversion of the same bytes
(any path, any filename) is a header-validated cache hit that reads
nothing but 16 bytes.  A source file whose content changes gets a new
digest, hence a new canonical artifact — and, because the digest is
folded into the workload identity and the sweep fingerprint (see
:mod:`repro.traces.stream`), new result-cache keys too: the result
cache can never serve stats computed from a stale trace version.

Cache *reads* degrade like the snapshot store's: an unreadable or
corrupt cached artifact counts as a miss and is re-converted over
atomically.  Conversion *errors* are typed
:class:`~repro.traces.errors.TraceFormatError` and publish nothing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from .canonical import CANONICAL_SUFFIX, read_header, write_canonical
from .errors import TraceFormatError
from .formats import DEFAULT_DECODE_CHUNK, detect_format, make_format


def file_digest(path: Path | str, chunk: int = 1 << 20) -> str:
    """Streaming SHA-256 of a file's raw bytes (32 hex chars)."""
    digest = hashlib.sha256()
    try:
        with open(path, "rb") as handle:
            while True:
                blob = handle.read(chunk)
                if not blob:
                    break
                digest.update(blob)
    except OSError as exc:
        raise TraceFormatError(f"cannot read trace: {exc}", path=path) from exc
    return digest.hexdigest()[:32]


@dataclass(frozen=True)
class ConvertResult:
    """Outcome of one conversion (or cache hit)."""

    source: str
    path: str  # canonical artifact
    format: str
    digest: str  # content digest of the source file
    records: int
    cache_hit: bool


class TraceCache:
    """Digest-keyed canonical-trace directory with hit/miss accounting."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, digest: str) -> Path:
        return self.root / f"{digest}{CANONICAL_SUFFIX}"

    def convert(
        self,
        source: Path | str,
        fmt: Optional[str] = None,
        chunk: int = DEFAULT_DECODE_CHUNK,
    ) -> ConvertResult:
        """Canonicalize ``source``, serving from cache when possible.

        ``fmt`` names a registered trace format; ``None`` auto-detects.
        The canonical artifact is published atomically, so a crashed or
        failed conversion leaves no partial file behind.
        """
        source = Path(source)
        digest = file_digest(source)
        dest = self.path_for(digest)
        if dest.exists():
            try:
                records = read_header(dest)
            except TraceFormatError:
                records = -1  # corrupt cache entry: fall through, reconvert
            if records >= 0:
                self.hits += 1
                return ConvertResult(
                    source=str(source),
                    path=str(dest),
                    format="canonical",
                    digest=digest,
                    records=records,
                    cache_hit=True,
                )
        fmt_name = fmt or detect_format(source)
        reader = make_format(fmt_name)
        records = write_canonical(reader.read_batches(source, chunk), dest)
        self.misses += 1
        return ConvertResult(
            source=str(source),
            path=str(dest),
            format=fmt_name,
            digest=digest,
            records=records,
            cache_hit=False,
        )

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
