"""External trace formats: streaming, chunk-batched decoders.

Each format is a registry component (kind ``"trace_format"``) whose
``read_batches`` yields :class:`TraceBatch` column chunks — the same
numpy ``(pcs, addrs, bubbles)`` int64 columns that
:mod:`repro.workloads.batch` produces per chunk — so an ingested trace
feeds the batched engine's chunked pipeline exactly like a synthetic
batch workload, and the scalar engine materializes records from the
same columns.

Supported external formats:

``k6``
    DRAMSim2 k6/mase text records, one access per line::

        <hex address> <command> <cycle>

    e.g. ``0x7f6418 P_FETCH 5000``.  Commands from both the k6
    (``P_MEM_RD``/``P_MEM_WR``/``P_FETCH``/``P_LOCK_RD``/``P_LOCK_WR``)
    and mase (``READ``/``WRITE``/``IFETCH``) vocabularies are accepted;
    anything else is a typed error.  These traces carry no PC, so one is
    synthesized deterministically from a small per-command pool (the
    usual handful-of-load-instructions model the synthetic generators
    use), and the instruction bubble is derived from the cycle delta
    between consecutive records, clamped to ``[0, MAX_BUBBLE]``.

``champsim``
    A fixed-width binary ChampSim-style record: the three fields this
    simulator consumes (see :mod:`repro.cpu.trace`), packed
    little-endian as ``<u64 pc, u64 addr, u32 bubble>`` — 20 bytes per
    record, no header.  A file size that is not a whole number of
    records is a typed truncation error, not a silent drop.

``canonical``
    The repo's own converted format (:mod:`repro.traces.canonical`),
    registered here too so re-converting an already-canonical file is a
    plain pass-through of the same machinery.

All formats read through :func:`repro.traces.compress.open_stream`, so
gzip/zstd inputs decode transparently, and every malformed input raises
:class:`~repro.traces.errors.TraceFormatError` with file/line context.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List

import numpy as np

from ..registry import create as registry_create
from ..registry import names as registry_names
from ..registry import register
from .compress import open_stream, reraise_truncated, sniff_compression
from .errors import TraceFormatError

#: Records decoded per yielded batch (a throughput knob, not semantics).
DEFAULT_DECODE_CHUNK = 65_536

#: Cycle deltas are clamped here when synthesizing bubbles from k6
#: timestamps: DRAM-clock gaps can be huge (page faults, idle), and a
#: bubble is "non-memory instructions retired", which the O3 core model
#: caps at ROB reach anyway.
MAX_BUBBLE = 64

#: PC synthesis for PC-less formats: per-command pools of 4 load PCs,
#: matching the synthetic generators' bases/strides so downstream
#: signature tables see familiar shapes.
_PC_BASE = 0x400000
_PC_STRIDE = 0x40
_PC_POOL = 4

#: Command token -> PC-pool slot.  k6 and mase vocabularies.
K6_COMMANDS: Dict[str, int] = {
    "P_MEM_RD": 0,
    "P_MEM_WR": 1,
    "P_FETCH": 2,
    "P_LOCK_RD": 3,
    "P_LOCK_WR": 4,
    "READ": 0,
    "WRITE": 1,
    "IFETCH": 2,
}

#: Addresses/PCs must fit a signed int64 (numpy columns, TraceRecord).
_INT63_LIMIT = 1 << 63


@dataclass
class TraceBatch:
    """One decoded chunk as the batch-workload column convention."""

    pcs: np.ndarray
    addrs: np.ndarray
    bubbles: np.ndarray

    def __len__(self) -> int:
        return len(self.addrs)


class K6TraceFormat:
    """DRAMSim2 k6/mase ``<address> <command> <cycle>`` text records."""

    name = "k6"

    def read_batches(
        self, path: Path | str, chunk: int = DEFAULT_DECODE_CHUNK
    ) -> Iterator[TraceBatch]:
        pcs: List[int] = []
        addrs: List[int] = []
        bubbles: List[int] = []
        command_counts = [0] * (max(K6_COMMANDS.values()) + 1)
        prev_cycle: int | None = None
        total = 0
        with open_stream(path) as stream:
            line_number = 0
            while True:
                try:
                    raw = stream.readline()
                except (EOFError, OSError) as exc:
                    raise reraise_truncated(exc, path) from exc
                if not raw:
                    break
                line_number += 1
                try:
                    line = raw.decode("utf-8").strip()
                except UnicodeDecodeError as exc:
                    raise TraceFormatError(
                        f"not a text trace (undecodable bytes): {exc}",
                        path=path,
                        line=line_number,
                    ) from exc
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                if len(parts) != 3:
                    raise TraceFormatError(
                        f"expected '<address> <command> <cycle>', got {line!r}",
                        path=path,
                        line=line_number,
                    )
                try:
                    addr = int(parts[0], 16)
                except ValueError as exc:
                    raise TraceFormatError(
                        f"bad hex address {parts[0]!r}", path=path, line=line_number
                    ) from exc
                if not 0 <= addr < _INT63_LIMIT:
                    raise TraceFormatError(
                        f"address {parts[0]!r} out of range",
                        path=path,
                        line=line_number,
                    )
                slot = K6_COMMANDS.get(parts[1])
                if slot is None:
                    known = ", ".join(sorted(K6_COMMANDS))
                    raise TraceFormatError(
                        f"unknown command token {parts[1]!r} (known: {known})",
                        path=path,
                        line=line_number,
                    )
                try:
                    cycle = int(parts[2])
                except ValueError as exc:
                    raise TraceFormatError(
                        f"bad cycle count {parts[2]!r}", path=path, line=line_number
                    ) from exc
                if cycle < 0:
                    raise TraceFormatError(
                        f"negative cycle count {cycle}", path=path, line=line_number
                    )
                if prev_cycle is None:
                    bubble = 0
                else:
                    bubble = min(max(cycle - prev_cycle - 1, 0), MAX_BUBBLE)
                prev_cycle = cycle
                index = command_counts[slot]
                command_counts[slot] = index + 1
                pcs.append(_PC_BASE + 0x10000 * slot + (index % _PC_POOL) * _PC_STRIDE)
                addrs.append(addr)
                bubbles.append(bubble)
                if len(addrs) >= chunk:
                    total += len(addrs)
                    yield _batch(pcs, addrs, bubbles)
                    pcs, addrs, bubbles = [], [], []
        if addrs:
            total += len(addrs)
            yield _batch(pcs, addrs, bubbles)
        if total == 0:
            raise TraceFormatError("empty trace: no records", path=path)


class ChampSimTraceFormat:
    """Fixed-width binary ChampSim-style records (20 bytes, no header)."""

    name = "champsim"

    #: Little-endian, unaligned: u64 pc, u64 addr, u32 bubble.
    RECORD_DTYPE = np.dtype(
        [("pc", "<u8"), ("addr", "<u8"), ("bubble", "<u4")]
    )
    RECORD_SIZE = RECORD_DTYPE.itemsize  # 20

    def read_batches(
        self, path: Path | str, chunk: int = DEFAULT_DECODE_CHUNK
    ) -> Iterator[TraceBatch]:
        size = self.RECORD_SIZE
        total = 0
        pending = b""
        with open_stream(path) as stream:
            while True:
                try:
                    blob = stream.read(chunk * size)
                except (EOFError, OSError) as exc:
                    raise reraise_truncated(exc, path) from exc
                if not blob:
                    break
                pending += blob
                usable = len(pending) - (len(pending) % size)
                if usable:
                    arr = np.frombuffer(pending[:usable], dtype=self.RECORD_DTYPE)
                    pending = pending[usable:]
                    total += len(arr)
                    yield _batch_from_struct(arr, path, record_start=total - len(arr))
        if pending:
            raise TraceFormatError(
                f"truncated record: {len(pending)} trailing byte(s) after "
                f"{total} complete record(s) of {size} bytes",
                path=path,
            )
        if total == 0:
            raise TraceFormatError("empty trace: no records", path=path)


def _batch(pcs: List[int], addrs: List[int], bubbles: List[int]) -> TraceBatch:
    return TraceBatch(
        pcs=np.array(pcs, dtype=np.int64),
        addrs=np.array(addrs, dtype=np.int64),
        bubbles=np.array(bubbles, dtype=np.int64),
    )


def _batch_from_struct(
    arr: np.ndarray, path: Path | str, record_start: int
) -> TraceBatch:
    """Columns from a structured record array, range-checked."""
    for fld in ("pc", "addr"):
        bad = arr[fld] >= _INT63_LIMIT
        if bad.any():
            index = record_start + int(np.argmax(bad))
            raise TraceFormatError(
                f"record {index}: {fld} 0x{int(arr[fld][np.argmax(bad)]):x} "
                "out of range",
                path=path,
            )
    return TraceBatch(
        pcs=arr["pc"].astype(np.int64),
        addrs=arr["addr"].astype(np.int64),
        bubbles=arr["bubble"].astype(np.int64),
    )


register("trace_format", "k6", K6TraceFormat)
register("trace_format", "champsim", ChampSimTraceFormat)
# "canonical" is registered by repro.traces.canonical on import (below the
# format it reads); keep the import at the bottom to avoid a cycle.


def trace_formats() -> List[str]:
    """Sorted names of every registered trace format."""
    return registry_names("trace_format")


def make_format(name: str):
    """Instantiate a registered trace format reader by name."""
    return registry_create("trace_format", name)


#: Extension hints for :func:`detect_format` (checked after stripping a
#: trailing compression suffix).
_TEXT_SUFFIXES = {".k6", ".mase", ".txt", ".trc"}
_BINARY_SUFFIXES = {".champsim", ".bin"}


def detect_format(path: Path | str) -> str:
    """Best-effort format name for ``path`` (``--format auto``).

    Canonical files are recognized by magic; otherwise the extension
    (with any ``.gz``/``.zst`` suffix stripped) decides, falling back to
    a printability sniff of the decompressed head: text → ``k6``,
    binary → ``champsim``.
    """
    from .canonical import CANONICAL_MAGIC

    path = Path(path)
    try:
        with open_stream(path) as stream:
            head = stream.read(512)
    except (EOFError, OSError) as exc:
        raise reraise_truncated(exc, path) from exc
    if head[: len(CANONICAL_MAGIC)] == CANONICAL_MAGIC:
        return "canonical"
    suffixes = [s.lower() for s in path.suffixes]
    if suffixes and suffixes[-1] in (".gz", ".zst", ".zstd"):
        suffixes = suffixes[:-1]
    if suffixes:
        if suffixes[-1] in _TEXT_SUFFIXES:
            return "k6"
        if suffixes[-1] in _BINARY_SUFFIXES:
            return "champsim"
    if not head:
        # Zero-length input: let the text reader raise the typed
        # "empty trace" error with file context.
        return "k6"
    printable = sum(
        1 for byte in head if byte in (9, 10, 13) or 32 <= byte < 127
    )
    return "k6" if printable / len(head) > 0.97 else "champsim"


__all__ = [
    "TraceBatch",
    "K6TraceFormat",
    "ChampSimTraceFormat",
    "K6_COMMANDS",
    "MAX_BUBBLE",
    "DEFAULT_DECODE_CHUNK",
    "detect_format",
    "make_format",
    "trace_formats",
    "sniff_compression",
]
