"""Transparent decompression for trace files.

External traces ship compressed (DRAMSim2's k6 corpus is ``.gz``,
ChampSim's SimPoint traces are ``.xz``/``.zst``), so every reader opens
its input through :func:`open_stream`, which sniffs the magic bytes —
not the extension, since mirrors rename files — and returns a binary
file object yielding the decompressed byte stream.

zstd support is *gated*, not assumed: the ``zstandard`` module is not
part of this repo's baked toolchain, so a ``.zst`` input on a machine
without it raises a :class:`~repro.traces.errors.TraceFormatError`
naming the missing module instead of an ``ImportError`` traceback.

Truncated compressed files surface mid-iteration as ``EOFError``/
``OSError`` from the decompressor; readers funnel those through
:func:`reraise_truncated` so callers always see ``TraceFormatError``
with file context.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import BinaryIO

from .errors import TraceFormatError

GZIP_MAGIC = b"\x1f\x8b"
ZSTD_MAGIC = b"\x28\xb5\x2f\xfd"


def sniff_compression(path: Path | str) -> str:
    """``"gzip"``, ``"zstd"`` or ``"raw"``, judged by magic bytes."""
    try:
        with open(path, "rb") as handle:
            head = handle.read(4)
    except OSError as exc:
        raise TraceFormatError(f"cannot read trace: {exc}", path=path) from exc
    if head[:2] == GZIP_MAGIC:
        return "gzip"
    if head[:4] == ZSTD_MAGIC:
        return "zstd"
    return "raw"


def open_stream(path: Path | str) -> BinaryIO:
    """Open ``path`` for reading with transparent decompression."""
    kind = sniff_compression(path)
    if kind == "gzip":
        return gzip.open(path, "rb")
    if kind == "zstd":
        try:
            import zstandard
        except ImportError as exc:
            raise TraceFormatError(
                "zstd-compressed trace, but the 'zstandard' module is not "
                "installed; decompress externally (zstd -d) or install it",
                path=path,
            ) from exc
        handle = open(path, "rb")
        return zstandard.ZstdDecompressor().stream_reader(handle, closefd=True)
    return open(path, "rb")


def reraise_truncated(exc: Exception, path: Path | str) -> TraceFormatError:
    """Wrap a decompressor's mid-stream failure with file context."""
    return TraceFormatError(
        f"corrupt or truncated compressed stream: {exc}", path=path
    )
