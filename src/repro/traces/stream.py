"""File-backed workloads: the ``TraceFileStream`` adapter.

:class:`TraceFileStream` makes a canonical trace file walk and talk
like the synthetic :class:`~repro.workloads.synthetic.TraceStream`:

* **Iteration** — ``__iter__`` hands out one persistent generator, so
  partial consumption (``islice`` for warmup, then ``for`` for
  measurement) continues a single stream; both engines pull records
  through the same path, and the decode is chunked — one numpy column
  batch per ``chunk`` records, materialized lazily.
* **Checkpointing** — ``state_dict()`` is just the record offset plus
  the file's identity (content digest and record count); ``load_state``
  on a freshly built stream verifies identity and repositions by
  seeking, so ``sweep --resume`` and mid-measure checkpoints work on
  file-backed workloads exactly as on synthetic ones — and a snapshot
  taken against one trace file can never silently resume against
  different bytes.
* **Looping** — a trace shorter than the requested record count wraps
  around to the start (the standard trace-driven convention when a
  SimPoint ends before the measurement window does).

:func:`trace_workload` wraps a canonical file as a
:class:`~repro.workloads.spec2017.WorkloadSpec` whose *name embeds the
content digest* — the sweep result cache, warmup-snapshot digests and
cell checkpoints all key on the workload name, so two versions of "the
same" trace file can never collide in any cache.  The builder is a
``functools.partial`` over module-level functions, hence picklable:
sweep workers receive file-backed specs exactly like synthetic ones.

The ``"traces"`` suite is registered next to the synthetic generators:
point ``REPRO_TRACE_DIR`` at a directory of converted ``*.rpt`` files
and they appear in ``python -m repro workloads``, resolve through
``find_workload`` and rehydrate by name in sweep workers.
"""

from __future__ import annotations

import os
from functools import partial
from pathlib import Path
from typing import Iterator, List, Optional

import numpy as np

from ..cpu.trace import TraceRecord
from ..registry import register
from ..workloads.spec2017 import WorkloadSpec
from .canonical import CANONICAL_SUFFIX, HEADER_SIZE, RECORD_DTYPE, RECORD_SIZE, read_header
from .cache import file_digest
from .errors import TraceFormatError

#: Records decoded per buffered column batch.
DEFAULT_STREAM_CHUNK = 8_192


class TraceFileStream:
    """A deterministic, checkpointable stream over a canonical trace."""

    def __init__(
        self,
        path: Path | str,
        n_records: int,
        digest: Optional[str] = None,
        chunk: int = DEFAULT_STREAM_CHUNK,
    ) -> None:
        if n_records < 0:
            raise ValueError("record count must be non-negative")
        if chunk < 1:
            raise ValueError("chunk must be positive")
        self.path = Path(path)
        self.n_records = n_records
        self.chunk = chunk
        #: Records in the file; header-validated eagerly so a missing or
        #: corrupt file fails at construction, not mid-simulation.
        self.file_records = read_header(self.path)
        if self.file_records == 0 and n_records > 0:
            raise TraceFormatError("empty trace: no records", path=self.path)
        self.digest = digest if digest is not None else file_digest(self.path)
        #: Records emitted so far (the checkpoint cursor).
        self.emitted = 0
        self._handle = None
        # Buffered columns covering file records
        # [_buffer_start, _buffer_start + len) — invalidated by
        # ``load_state`` so the generator refetches at the new cursor.
        self._buffer: Optional[tuple] = None
        self._buffer_start = 0
        self._gen = self._generate()

    def __iter__(self) -> Iterator[TraceRecord]:
        return self._gen

    def __next__(self) -> TraceRecord:
        return next(self._gen)

    def _fill(self, position: int) -> None:
        """Decode one column chunk starting at file record ``position``."""
        if self._handle is None:
            self._handle = open(self.path, "rb")
        count = min(self.chunk, self.file_records - position)
        self._handle.seek(HEADER_SIZE + position * RECORD_SIZE)
        blob = self._handle.read(count * RECORD_SIZE)
        if len(blob) != count * RECORD_SIZE:
            raise TraceFormatError(
                f"short read at record {position}: file changed underneath "
                "the stream",
                path=self.path,
            )
        arr = np.frombuffer(blob, dtype=RECORD_DTYPE)
        # .tolist() once per chunk: native ints beat per-record np
        # scalar unboxing in the record loop.
        self._buffer = (
            arr["pc"].astype(np.int64).tolist(),
            arr["addr"].astype(np.int64).tolist(),
            arr["bubble"].astype(np.int64).tolist(),
        )
        self._buffer_start = position

    def _generate(self) -> Iterator[TraceRecord]:
        while self.emitted < self.n_records:
            position = self.emitted % self.file_records
            buffer = self._buffer
            if buffer is None or not (
                self._buffer_start <= position < self._buffer_start + len(buffer[0])
            ):
                self._fill(position)
                buffer = self._buffer
            index = position - self._buffer_start
            self.emitted += 1
            yield TraceRecord(buffer[0][index], buffer[1][index], buffer[2][index])

    # -- checkpoint protocol ---------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "emitted": self.emitted,
            "digest": self.digest,
            "file_records": self.file_records,
        }

    def load_state(self, state: dict) -> None:
        if state.get("digest") != self.digest:
            raise ValueError(
                f"trace state digest {state.get('digest')!r} does not match "
                f"file {self.path} ({self.digest})"
            )
        if int(state.get("file_records", -1)) != self.file_records:
            raise ValueError(
                f"trace state holds {state.get('file_records')} file records, "
                f"file has {self.file_records}"
            )
        self.emitted = int(state["emitted"])
        self._buffer = None  # live generator refetches at the new cursor

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __del__(self) -> None:  # best-effort; close() is the real API
        try:
            self.close()
        except Exception:
            pass


def _open_trace_stream(
    path: str, digest: str, n_records: int, seed: int = 1
) -> TraceFileStream:
    """Module-level builder so file-backed WorkloadSpecs pickle.

    ``seed`` is accepted for builder-signature compatibility and
    ignored: a recorded trace is the same bytes for every seed.
    """
    return TraceFileStream(path, n_records, digest=digest)


def trace_workload(path: Path | str, name: Optional[str] = None) -> WorkloadSpec:
    """Wrap a canonical trace file as a registered-shape workload spec.

    The default name embeds the file's content digest
    (``trace:<stem>@<digest12>``): workload names key the result cache,
    warmup digests and cell checkpoints, so the digest riding the name
    is what keeps trace file *versions* apart everywhere downstream.
    """
    path = Path(path)
    records = read_header(path)  # fail fast with file context
    digest = file_digest(path)
    if name is None:
        name = f"trace:{path.stem}@{digest[:12]}"
    return WorkloadSpec(
        name=name,
        suite="traces",
        memory_intensive=True,
        description=f"file-backed trace ({records} records, {path.name})",
        builder=partial(_open_trace_stream, str(path), digest),
    )


@register("suite", "traces")
def trace_dir_workloads() -> List[WorkloadSpec]:
    """Converted traces found under ``$REPRO_TRACE_DIR`` (empty if unset).

    Unreadable or corrupt files are skipped rather than breaking the
    whole catalog — ``repro trace convert`` is the path that *reports*
    malformed inputs.
    """
    root = os.environ.get("REPRO_TRACE_DIR")
    if not root:
        return []
    specs: List[WorkloadSpec] = []
    for path in sorted(Path(root).glob(f"*{CANONICAL_SUFFIX}")):
        try:
            specs.append(trace_workload(path))
        except (TraceFormatError, OSError):
            continue
    return specs
