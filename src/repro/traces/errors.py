"""Typed errors for the trace ingestion layer.

Every malformed-input path through :mod:`repro.traces` raises
:class:`TraceFormatError` — never a bare ``ValueError`` or a leaked
``struct.error``/``zlib.error`` — and every instance carries the file
(and, for text formats, the line) it choked on, so a bad record deep in
a multi-gigabyte trace is diagnosable from the message alone.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional


class TraceFormatError(ValueError):
    """A trace file could not be decoded.

    Subclasses :class:`ValueError` so legacy ``except ValueError`` call
    sites keep working, but callers should catch this type: the message
    is prefixed with ``path[:line]`` context and the structured fields
    ride along as attributes.
    """

    def __init__(
        self,
        message: str,
        *,
        path: Optional[Path | str] = None,
        line: Optional[int] = None,
    ) -> None:
        self.path = str(path) if path is not None else None
        self.line = line
        prefix = ""
        if self.path is not None:
            prefix = self.path
            if line is not None:
                prefix += f":{line}"
            prefix += ": "
        super().__init__(prefix + message)
        self.message = message
