"""Real-trace ingestion: external formats → canonical files → workloads.

The pipeline (ROADMAP item 3) that turns this repo from
"reproduction-on-synthetics" into a simulator that accepts real traces:

1. **Readers** (:mod:`.formats`) — registry kind ``"trace_format"``:
   DRAMSim2 k6/mase text and fixed-width ChampSim-style binary records,
   decoded through transparent gzip/zstd decompression
   (:mod:`.compress`) into chunked numpy column batches.
2. **Canonical format** (:mod:`.canonical`) — one fixed binary layout
   (``.rpt``) everything downstream consumes; random access, O(1)
   record counts, atomic publication.
3. **Digest cache** (:mod:`.cache`) — conversion happens once per
   source-file *content*; re-runs are 16-byte header reads.
4. **Workload adapter** (:mod:`.stream`) — ``TraceFileStream`` and
   ``trace_workload`` make converted files first-class workloads:
   checkpointable (record-offset ``state_dict``), engine-agnostic,
   sweep-cacheable with the content digest folded into every cache key.

CLI: ``python -m repro trace convert`` and ``sweep --trace-file``.
Every malformed input raises :class:`TraceFormatError` with file/line
context.  See docs/architecture.md, "Trace ingestion".
"""

from .cache import ConvertResult, TraceCache, file_digest
from .canonical import (
    CANONICAL_MAGIC,
    CANONICAL_SUFFIX,
    CANONICAL_VERSION,
    read_header,
    write_canonical,
)
from .errors import TraceFormatError
from .formats import (
    TraceBatch,
    detect_format,
    make_format,
    trace_formats,
)
from .stream import TraceFileStream, trace_dir_workloads, trace_workload

__all__ = [
    "TraceFormatError",
    "TraceBatch",
    "TraceCache",
    "TraceFileStream",
    "ConvertResult",
    "CANONICAL_MAGIC",
    "CANONICAL_SUFFIX",
    "CANONICAL_VERSION",
    "detect_format",
    "file_digest",
    "make_format",
    "read_header",
    "trace_dir_workloads",
    "trace_formats",
    "trace_workload",
    "write_canonical",
]
