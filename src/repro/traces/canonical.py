"""The canonical on-disk trace format (``.rpt`` — repro packed trace).

Every external format converts *once* into this layout (see
:mod:`repro.traces.cache`), and everything downstream — the
:class:`~repro.traces.stream.TraceFileStream` workload adapter, both
simulation engines, checkpoint/resume — consumes only canonical files,
so random access and record counting are O(1) instead of a re-parse.

Layout (little-endian, no alignment padding)::

    offset  size  field
    0       4     magic  b"RPTC"
    4       4     u32    format version (currently 1)
    8       8     u64    record count
    16      20*N  records: <u64 pc, u64 addr, u32 bubble>

The header's record count is authoritative: a reader that finds a file
whose byte length disagrees with ``16 + 20 * count`` raises a typed
:class:`~repro.traces.errors.TraceFormatError` (the header survives a
truncating crash, the tail does not — though writes are atomic, so this
guards hand-made or externally-copied files).  Writes stage through the
shared unique-tmp + rename helper, so a converted trace is either
complete on disk or absent.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..ioutil import atomic_write
from ..registry import register
from .errors import TraceFormatError
from .formats import DEFAULT_DECODE_CHUNK, TraceBatch, _batch_from_struct

CANONICAL_MAGIC = b"RPTC"
CANONICAL_VERSION = 1
CANONICAL_SUFFIX = ".rpt"

_HEADER = struct.Struct("<4sIQ")
HEADER_SIZE = _HEADER.size  # 16

#: Same packed record as the ChampSim-style binary format.
RECORD_DTYPE = np.dtype([("pc", "<u8"), ("addr", "<u8"), ("bubble", "<u4")])
RECORD_SIZE = RECORD_DTYPE.itemsize  # 20


def pack_header(count: int) -> bytes:
    return _HEADER.pack(CANONICAL_MAGIC, CANONICAL_VERSION, count)


def read_header(path: Path | str) -> int:
    """Validate ``path``'s header + length; return the record count."""
    path = Path(path)
    try:
        size = path.stat().st_size
        with open(path, "rb") as handle:
            blob = handle.read(HEADER_SIZE)
    except OSError as exc:
        raise TraceFormatError(f"cannot read trace: {exc}", path=path) from exc
    if len(blob) < HEADER_SIZE:
        raise TraceFormatError(
            f"not a canonical trace: {len(blob)} byte(s), need a "
            f"{HEADER_SIZE}-byte header",
            path=path,
        )
    magic, version, count = _HEADER.unpack(blob)
    if magic != CANONICAL_MAGIC:
        raise TraceFormatError(
            f"not a canonical trace: bad magic {magic!r}", path=path
        )
    if version != CANONICAL_VERSION:
        raise TraceFormatError(
            f"canonical version {version} != supported {CANONICAL_VERSION}",
            path=path,
        )
    expected = HEADER_SIZE + RECORD_SIZE * count
    if size != expected:
        raise TraceFormatError(
            f"record count mismatch: header promises {count} record(s) "
            f"({expected} bytes), file holds {size} bytes",
            path=path,
        )
    return count


def write_canonical(batches: Iterable[TraceBatch], path: Path | str) -> int:
    """Stream ``batches`` into a canonical file; return the record count.

    The header is written with a zero count first and back-patched once
    the stream is exhausted, all inside the atomic-write staging file —
    a reader can never observe the intermediate state.  An empty stream
    is a typed error and publishes nothing.
    """
    path = Path(path)
    count = 0
    with atomic_write(path, "wb") as handle:
        handle.write(pack_header(0))
        for batch in batches:
            n = len(batch)
            if n == 0:
                continue
            arr = np.empty(n, dtype=RECORD_DTYPE)
            arr["pc"] = batch.pcs
            arr["addr"] = batch.addrs
            arr["bubble"] = batch.bubbles
            handle.write(arr.tobytes())
            count += n
        if count == 0:
            raise TraceFormatError("empty trace: no records", path=path)
        handle.seek(0)
        handle.write(pack_header(count))
    return count


def read_batches(
    path: Path | str, chunk: int = DEFAULT_DECODE_CHUNK
) -> Iterator[TraceBatch]:
    """Decode a canonical file as column batches (validates the header)."""
    count = read_header(path)
    read = 0
    with open(path, "rb") as handle:
        handle.seek(HEADER_SIZE)
        while read < count:
            want = min(chunk, count - read)
            blob = handle.read(want * RECORD_SIZE)
            arr = np.frombuffer(blob, dtype=RECORD_DTYPE)
            yield _batch_from_struct(arr, path, record_start=read)
            read += len(arr)


@register("trace_format", "canonical")
class CanonicalTraceFormat:
    """The canonical format, readable through the same registry seam."""

    name = "canonical"

    def read_batches(
        self, path: Path | str, chunk: int = DEFAULT_DECODE_CHUNK
    ) -> Iterator[TraceBatch]:
        return read_batches(path, chunk)
