"""Figures 2–5: architecture self-checks.

The paper's Figures 2–5 are block diagrams (SPP data path, SPP
architecture, PPF's position in the hierarchy, PPF's data path).  A
reproduction can't "measure" a diagram, but it can verify that the
implemented structures match the diagrams' shapes and that the data
path visits them in the documented order.  This module performs those
structural checks and renders them as a table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.filter import Decision
from ..core.ppf import make_ppf_spp
from ..core.tables import TABLE_ENTRIES
from ..memory.hierarchy import MemoryHierarchy
from ..prefetchers.spp import SPP, SPPConfig, update_signature
from .report import render_table


@dataclass
class ArchitectureCheck:
    name: str
    expected: str
    actual: str

    @property
    def ok(self) -> bool:
        return self.expected == self.actual


def run_architecture_checks() -> List[ArchitectureCheck]:
    """Verify structure sizes and data-path ordering against the paper."""
    checks: List[ArchitectureCheck] = []
    spp = SPP(SPPConfig.default())
    checks.append(
        ArchitectureCheck(
            "Fig 2: Signature Table entries",
            "256",
            str(spp.config.signature_table_entries),
        )
    )
    checks.append(
        ArchitectureCheck(
            "Fig 2: Pattern Table entries", "512", str(spp.config.pattern_table_entries)
        )
    )
    checks.append(
        ArchitectureCheck(
            "Fig 2: signature update rule",
            str(((0xABC << 3) ^ 5) & 0xFFF),
            str(update_signature(0xABC, 5)),
        )
    )
    checks.append(
        ArchitectureCheck(
            "Fig 3: thresholds T_p/T_f",
            "25/90",
            f"{spp.config.prefetch_threshold}/{spp.config.fill_threshold}",
        )
    )

    ppf = make_ppf_spp()
    checks.append(
        ArchitectureCheck(
            "Fig 5: weight tables (one per feature)",
            "9",
            str(len(ppf.filter.tables)),
        )
    )
    checks.append(
        ArchitectureCheck(
            "Fig 5: Prefetch Table entries",
            str(TABLE_ENTRIES),
            str(ppf.prefetch_table.entries),
        )
    )
    checks.append(
        ArchitectureCheck(
            "Fig 5: Reject Table entries",
            str(TABLE_ENTRIES),
            str(ppf.reject_table.entries),
        )
    )

    # Fig 4/5 data path: a filtered candidate must be recorded in exactly
    # one of the two tables depending on the inference decision.
    hierarchy = MemoryHierarchy(prefetchers=[ppf])
    for i in range(64):
        hierarchy.access(0, pc=0x400000, addr=0x1000000 + i * 64, cycle=i * 50)
    recorded = ppf.prefetch_table.inserts + ppf.reject_table.inserts
    checks.append(
        ArchitectureCheck(
            "Fig 5: every inference is recorded",
            str(ppf.filter.stats.inferences),
            str(recorded),
        )
    )
    checks.append(
        ArchitectureCheck(
            "Fig 4: prefetch trigger level",
            "L2 demand accesses",
            "L2 demand accesses",  # by construction: hierarchy trains at L2
        )
    )
    checks.append(
        ArchitectureCheck(
            "Fig 5: fill levels",
            "l2/llc/reject",
            "/".join(d.value for d in Decision),
        )
    )
    return checks


def report(checks: List[ArchitectureCheck]) -> str:
    rows = [(c.name, c.expected, c.actual, c.ok) for c in checks]
    return render_table(
        ["check", "paper", "implementation", "ok"],
        rows,
        title="Figures 2-5 — architecture conformance",
    )
