"""Figure 10: fraction of cache misses covered, per level (§6.1).

Coverage is the paper's definition: the ratio of misses avoided through
prefetching over the misses with no prefetching, measured separately at
the L2 and the LLC, aggregated over the suite.

Shape targets: PPF covers more than SPP and DA-AMPM at both levels
(the paper reports 75.5% L2 / 86.9% LLC for PPF).  In this reproduction
BOP's coverage is inflated by the cactuBSSN-like trace (see
EXPERIMENTS.md), so the asserted ordering is PPF > SPP and
PPF > DA-AMPM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..sim.config import SimConfig
from ..sim.runner import ExperimentRunner, SuiteResult
from ..workloads.spec2017 import WorkloadSpec, spec2017_workloads
from .figure09 import SCHEMES
from .report import render_table


@dataclass
class Figure10Result:
    suite: SuiteResult
    schemes: List[str]

    def coverage(self, scheme: str, level: str) -> float:
        return self.suite.coverage(scheme, level)

    def coverage_table(self) -> Dict[str, Dict[str, float]]:
        return {
            scheme: {level: self.coverage(scheme, level) for level in ("l2", "llc")}
            for scheme in self.schemes
        }


def run_figure10(
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    config: Optional[SimConfig] = None,
    schemes: Sequence[str] = SCHEMES,
    seed: int = 1,
    suite: Optional[SuiteResult] = None,
) -> Figure10Result:
    """Compute coverage; pass ``suite`` to reuse Figure 9's runs."""
    if suite is None:
        workload_list = list(workloads) if workloads is not None else spec2017_workloads()
        runner = ExperimentRunner(config or SimConfig.quick(), seed=seed)
        suite = runner.sweep(workload_list, list(schemes)).require_complete()
    return Figure10Result(suite=suite, schemes=list(schemes))


def report(result: Figure10Result) -> str:
    rows = [
        (scheme, result.coverage(scheme, "l2"), result.coverage(scheme, "llc"))
        for scheme in result.schemes
    ]
    return render_table(
        ["scheme", "L2 miss coverage", "LLC miss coverage"],
        rows,
        title="Figure 10 — fraction of cache misses covered",
    )
