"""Reproduction scorecard: run every shape claim programmatically.

``validate()`` executes the checkable claims from DESIGN.md's "shape
targets" at a configurable scale and returns a structured scorecard —
the machine-readable counterpart of EXPERIMENTS.md.  The CLI exposes it
as ``python -m repro validate``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..analysis.overhead import overhead_report
from ..sim.config import SimConfig
from .figure01 import run_figure1
from .figure09 import run_figure9
from .figure10 import run_figure10
from .figures02_05 import run_architecture_checks
from .report import render_table


@dataclass
class Claim:
    """One verified paper claim."""

    id: str
    description: str
    passed: bool
    detail: str = ""


@dataclass
class Scorecard:
    claims: List[Claim] = field(default_factory=list)

    def add(self, claim_id: str, description: str, passed: bool, detail: str = "") -> None:
        self.claims.append(Claim(claim_id, description, passed, detail))

    @property
    def passed(self) -> int:
        return sum(1 for claim in self.claims if claim.passed)

    @property
    def total(self) -> int:
        return len(self.claims)

    @property
    def all_passed(self) -> bool:
        return self.passed == self.total

    def failures(self) -> List[Claim]:
        return [claim for claim in self.claims if not claim.passed]


def validate(
    config: Optional[SimConfig] = None,
    include_sweeps: bool = True,
) -> Scorecard:
    """Run the shape claims; sweeps can be skipped for a fast check."""
    config = config or SimConfig.quick()
    scorecard = Scorecard()

    # -- structural claims (cheap, always run) -------------------------------
    report = overhead_report()
    scorecard.add(
        "tab2", "Prefetch Table entry is 85 bits",
        report["prefetch_table_entry_bits"] == 85,
        f"{report['prefetch_table_entry_bits']} bits",
    )
    scorecard.add(
        "tab3", "total storage 322,240 bits = 39.34 KB",
        report["total_bits"] == 322_240 and report["total_kilobytes"] == 39.34,
        f"{report['total_bits']} bits / {report['total_kilobytes']} KB",
    )
    checks = run_architecture_checks()
    scorecard.add(
        "fig2-5", "architecture matches the paper's diagrams",
        all(c.ok for c in checks),
        f"{sum(c.ok for c in checks)}/{len(checks)} checks",
    )

    if not include_sweeps:
        return scorecard

    # -- Figure 1 -------------------------------------------------------------
    fig1 = run_figure1(config=config)
    scorecard.add(
        "fig1-waste", "TOTAL_PF outgrows GOOD_PF with depth",
        fig1.overprefetch_grows_faster,
        f"total x{fig1.normalized()[-1]['total_pf']:.3f} vs good x{fig1.normalized()[-1]['good_pf']:.3f}",
    )
    scorecard.add(
        "fig1-ipc", "IPC degrades past the aggressiveness knee",
        fig1.ipc_degrades,
    )

    # -- Figures 9-10 ------------------------------------------------------------
    fig9 = run_figure9(config=config)
    geomeans = {s: fig9.geomean(s, memory_intensive_only=True) for s in fig9.schemes}
    scorecard.add(
        "fig9-geomean", "PPF has the best memory-intensive geomean",
        geomeans["ppf"] == max(geomeans.values()),
        " ".join(f"{k}={v:.3f}" for k, v in geomeans.items()),
    )
    ppf = fig9.suite.speedups("ppf")
    spp = fig9.suite.speedups("spp")
    bop = fig9.suite.speedups("bop")
    losses = [w for w in ppf if ppf[w] < spp[w] * 0.98]
    scorecard.add(
        "fig9-wins", "PPF matches/beats SPP on nearly every app (<=2 losses)",
        len(losses) <= 2,
        f"losses: {losses or 'none'}",
    )
    scorecard.add(
        "fig9-cactu", "BOP wins 607.cactuBSSN_s",
        bop["607.cactuBSSN_s"] > max(ppf["607.cactuBSSN_s"], spp["607.cactuBSSN_s"]),
        f"bop={bop['607.cactuBSSN_s']:.3f} ppf={ppf['607.cactuBSSN_s']:.3f}",
    )
    depths = fig9.average_depths()
    scorecard.add(
        "fig9-depth", "PPF speculates deeper than stock SPP",
        depths["ppf"] > depths["spp"],
        f"spp={depths['spp']:.2f} ppf={depths['ppf']:.2f}",
    )
    fig10 = run_figure10(suite=fig9.suite)
    scorecard.add(
        "fig10", "PPF coverage beats SPP and DA-AMPM at both levels",
        all(
            fig10.coverage("ppf", level) > fig10.coverage(other, level)
            for level in ("l2", "llc")
            for other in ("spp", "da-ampm")
        ),
        f"l2: ppf={fig10.coverage('ppf', 'l2'):.3f} spp={fig10.coverage('spp', 'l2'):.3f}",
    )
    return scorecard


def report_scorecard(scorecard: Scorecard) -> str:
    rows = [
        (claim.id, claim.description, claim.passed, claim.detail)
        for claim in scorecard.claims
    ]
    table = render_table(
        ["claim", "description", "ok", "detail"],
        rows,
        title="Reproduction scorecard",
    )
    return table + f"\n{scorecard.passed}/{scorecard.total} claims hold"
