"""Figures 11 and 12: multi-core weighted-IPC speedups (§6.2).

Mixes of the memory-intensive SPEC CPU 2017 subset run on 4 cores
(Figure 11) and 8 cores (Figure 12) with a shared LLC and shared DRAM
channels.  Each mix's weighted-IPC speedup is normalized to the
no-prefetching case, and the per-scheme series is sorted ascending, as
in the paper's plots.

Shape target: PPF's margin over SPP is *larger* here than single-core —
filtering useless prefetches is worth more when the LLC and DRAM are
shared (paper: +11.4% on 4 cores, +9.65% on 8 cores, vs +3.78% alone).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..sim.config import SimConfig
from ..sim.metrics import geometric_mean
from ..sim.runner import ExperimentRunner
from ..workloads.mixes import WorkloadMix, memory_intensive_mixes, random_mixes
from .figure09 import SCHEMES
from .report import render_table


@dataclass
class MulticoreResult:
    cores: int
    mixes: List[WorkloadMix]
    schemes: List[str]
    speedups: Dict[str, List[float]]  # per scheme, one entry per mix

    def sorted_series(self, scheme: str) -> List[float]:
        """The paper plots each scheme's mixes sorted ascending."""
        return sorted(self.speedups[scheme])

    def geomean(self, scheme: str) -> float:
        return geometric_mean(self.speedups[scheme])

    def ppf_over_spp_percent(self) -> float:
        return 100.0 * (self.geomean("ppf") / self.geomean("spp") - 1.0)


def run_multicore_figure(
    cores: int,
    mix_count: int = 6,
    config: Optional[SimConfig] = None,
    schemes: Sequence[str] = SCHEMES,
    seed: int = 1,
    mix_kind: str = "memory-intensive",
) -> MulticoreResult:
    """Figure 11 (cores=4) or Figure 12 (cores=8), scaled-down mixes.

    The paper uses 100 mixes; the default here is a handful because each
    mix costs ``cores`` × (mix run + isolated runs) simulations — pass a
    larger ``mix_count`` for a closer reproduction.  ``mix_kind`` selects
    the paper's memory-intensive mixes or the fully random ones it
    reports in the text ("not illustrated for space reasons").
    """
    if mix_kind == "memory-intensive":
        mixes = memory_intensive_mixes(cores, mix_count, seed=seed + cores)
    elif mix_kind == "random":
        mixes = random_mixes(cores, mix_count, seed=seed + cores)
    else:
        raise ValueError(f"unknown mix kind {mix_kind!r}")
    config = config or SimConfig.multicore(cores)
    runner = ExperimentRunner(config, seed=seed)
    speedups = runner.mix_sweep(mixes, list(schemes), config)
    return MulticoreResult(
        cores=cores, mixes=mixes, schemes=list(schemes), speedups=speedups
    )


def run_figure11(**kwargs) -> MulticoreResult:
    return run_multicore_figure(4, **kwargs)


def run_figure12(**kwargs) -> MulticoreResult:
    return run_multicore_figure(8, **kwargs)


def report(result: MulticoreResult) -> str:
    figure = 11 if result.cores == 4 else 12
    rows = []
    series = {scheme: result.sorted_series(scheme) for scheme in result.schemes}
    for rank in range(len(result.mixes)):
        rows.append([f"mix rank {rank}"] + [series[s][rank] for s in result.schemes])
    rows.append(["geomean"] + [result.geomean(s) for s in result.schemes])
    table = render_table(
        ["sorted mixes", *result.schemes],
        rows,
        title=(
            f"Figure {figure} — {result.cores}-core weighted-IPC speedup "
            "(memory-intensive mixes)"
        ),
    )
    if "ppf" in result.speedups and "spp" in result.speedups:
        table += f"\nPPF over SPP: {result.ppf_over_spp_percent():+.2f}%"
    return table
