"""Phase plots: program-phase behaviour from telemetry time-series.

A traced run samples probes every N accesses (see ``repro.telemetry``),
yielding per-metric time-series over simulated cycles.  This module
turns those series into the repo's plain-text equivalent of a phase
plot: one sparkline row per metric, aligned on the shared time axis,
plus a summary table.  It consumes either a live :class:`Telemetry`
session or an exported ``timeseries.json`` document, so
``python -m repro run --trace`` artifacts replay offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..sim.config import SimConfig
from ..telemetry import Telemetry, TimeSeries, activate
from ..telemetry.export import summary_rows, timeseries_document
from ..telemetry.schema import validate_timeseries
from .report import render_table

#: The default series shown by the ``phase`` experiment: one headline
#: metric per probe family, spanning core, cache, DRAM, SPP and PPF.
DEFAULT_SERIES = (
    "core.ipc",
    "cache.l2_mpki",
    "dram.row_hit_rate",
    "spp.mean_confidence",
    "ppf.accept_rate",
)

_SPARK_LEVELS = " .:-=+*#%@"


@dataclass
class PhasePlotResult:
    """Sampled time-series plus the context they came from."""

    workload: str
    prefetcher: str
    probe_every: int
    series: Dict[str, TimeSeries] = field(default_factory=dict)

    def document(self) -> dict:
        """The result as a schema-valid timeseries document."""
        return timeseries_document(
            self.series,
            meta={
                "workload": self.workload,
                "prefetcher": self.prefetcher,
                "probe_every": self.probe_every,
            },
        )


def run_phase_plot(
    workload_name: str = "605.mcf_s",
    prefetcher: str = "ppf",
    config: Optional[SimConfig] = None,
    seed: int = 1,
    probe_every: int = 500,
) -> PhasePlotResult:
    """Trace one single-core run and collect its probe time-series."""
    from ..sim.single_core import run_single_core
    from ..workloads import find_workload

    config = config or SimConfig.quick()
    workload = find_workload(workload_name)
    session = Telemetry(probe_every=probe_every)
    with activate(session):
        run_single_core(workload, prefetcher, config, seed=seed)
    return PhasePlotResult(
        workload=workload_name,
        prefetcher=prefetcher,
        probe_every=probe_every,
        series=dict(session.series()),
    )


def result_from_document(document: Mapping) -> PhasePlotResult:
    """Rebuild a result from an exported ``timeseries.json`` document."""
    validate_timeseries(dict(document))
    meta = document.get("meta", {})
    series: Dict[str, TimeSeries] = {}
    for name, body in document["series"].items():
        ts = TimeSeries(name, unit=body.get("unit", ""))
        for t, v in zip(body["t"], body["v"]):
            ts.append(t, v)
        series[name] = ts
    return PhasePlotResult(
        workload=str(meta.get("workload", "?")),
        prefetcher=str(meta.get("prefetcher", "?")),
        probe_every=int(meta.get("probe_every", 0)),
        series=series,
    )


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Resample ``values`` to ``width`` columns of density glyphs.

    Each column shows the mean of its time slice, scaled between the
    series min and max; a flat series renders as a flat mid line.
    """
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo
    columns: List[str] = []
    n = len(values)
    width = min(width, n)
    top = len(_SPARK_LEVELS) - 1
    for col in range(width):
        start = col * n // width
        stop = max(start + 1, (col + 1) * n // width)
        mean = sum(values[start:stop]) / (stop - start)
        level = top // 2 if span == 0 else round(top * (mean - lo) / span)
        columns.append(_SPARK_LEVELS[level])
    return "".join(columns)


def report(
    result: PhasePlotResult,
    series_names: Optional[Sequence[str]] = None,
    width: int = 60,
) -> str:
    """Render the phase plot: sparklines over time plus a summary table."""
    names = list(series_names or DEFAULT_SERIES)
    present = [name for name in names if name in result.series]
    missing = [name for name in names if name not in result.series]
    title = (
        f"Phase plot — {result.workload} / {result.prefetcher}"
        f" (probe every {result.probe_every} accesses)"
    )
    lines = [title, "=" * len(title)]
    if present:
        label_width = max(len(name) for name in present)
        for name in present:
            ts = result.series[name]
            lines.append(f"{name.ljust(label_width)} |{sparkline(ts.v, width)}|")
        first = result.series[present[0]]
        if first.t:
            axis = f"cycles {first.t[0]:.0f} .. {first.t[-1]:.0f}"
            lines.append(f"{''.ljust(label_width)}  {axis}")
    if missing:
        lines.append(f"(no samples for: {', '.join(missing)})")
    document = timeseries_document({name: result.series[name] for name in present})
    lines.append("")
    lines.append(
        render_table(
            ["series", "unit", "samples", "min", "mean", "max", "last"],
            summary_rows(document),
        )
    )
    return "\n".join(lines)
