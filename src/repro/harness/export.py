"""Export experiment data for external plotting (CSV / JSON).

The harness renders text tables; downstream users who want the paper's
actual bar charts need the raw series.  ``export_figure9`` and friends
serialize each experiment's data in a plot-ready layout.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Sequence

from ..ioutil import atomic_write
from .figure01 import Figure1Result
from .figure09 import Figure9Result
from .figure10 import Figure10Result
from .figures11_12 import MulticoreResult


def figure1_rows(result: Figure1Result) -> List[Dict[str, float]]:
    """Normalized depth series, one dict per depth."""
    return result.normalized()


def figure9_rows(result: Figure9Result) -> List[Dict[str, object]]:
    """One dict per workload: name + speedup per scheme."""
    rows = []
    per_scheme = {scheme: result.suite.speedups(scheme) for scheme in result.schemes}
    for workload in result.workloads:
        row: Dict[str, object] = {"workload": workload.name}
        for scheme in result.schemes:
            row[scheme] = per_scheme[scheme][workload.name]
        rows.append(row)
    return rows


def figure10_rows(result: Figure10Result) -> List[Dict[str, object]]:
    return [
        {
            "scheme": scheme,
            "l2_coverage": result.coverage(scheme, "l2"),
            "llc_coverage": result.coverage(scheme, "llc"),
        }
        for scheme in result.schemes
    ]


def multicore_rows(result: MulticoreResult) -> List[Dict[str, object]]:
    """Sorted per-mix series, one dict per rank (the paper's x-axis)."""
    series = {scheme: result.sorted_series(scheme) for scheme in result.schemes}
    rows = []
    for rank in range(len(result.mixes)):
        row: Dict[str, object] = {"rank": rank}
        for scheme in result.schemes:
            row[scheme] = series[scheme][rank]
        rows.append(row)
    return rows


def to_csv(rows: Sequence[Dict[str, object]]) -> str:
    """Serialize row dicts to CSV (stable column order from first row)."""
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def to_json(rows: Sequence[Dict[str, object]]) -> str:
    """Serialize row dicts to pretty JSON."""
    return json.dumps(list(rows), indent=2, sort_keys=False)


def write_rows(rows: Sequence[Dict[str, object]], path: str) -> None:
    """Write rows to ``path``; format chosen by extension (.csv/.json).

    Atomic, with ``newline=""``: the ``csv`` payload carries its own
    ``\\r\\n`` terminators, which Windows text-mode translation would
    otherwise double into ``\\r\\r\\n``.
    """
    if path.endswith(".csv"):
        payload = to_csv(rows)
    elif path.endswith(".json"):
        payload = to_json(rows)
    else:
        raise ValueError(f"unsupported export extension: {path!r}")
    with atomic_write(path, "w") as stream:
        stream.write(payload)
