"""Figure 9: single-core speedup per SPEC CPU 2017 application (§6.1).

For each application and each scheme (BOP, DA-AMPM, SPP, PPF), IPC
speedup normalized to no prefetching, followed by the geometric mean
over the memory-intensive subset and the full suite — the same rows
the paper's bar chart shows.

Shape targets (DESIGN.md): PPF geomean highest; PPF matches or beats
SPP on (nearly) every application; BOP wins only 607.cactuBSSN_s; PPF's
average lookahead depth exceeds stock SPP's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..sim.config import SimConfig
from ..sim.runner import ExperimentRunner, SuiteResult
from ..workloads.spec2017 import (
    WorkloadSpec,
    memory_intensive_subset,
    spec2017_workloads,
)
from .report import render_table

SCHEMES = ("bop", "da-ampm", "spp", "ppf")


@dataclass
class Figure9Result:
    suite: SuiteResult
    workloads: List[WorkloadSpec]
    schemes: List[str]

    def speedup_rows(self) -> List[List[object]]:
        rows: List[List[object]] = []
        for workload in self.workloads:
            row: List[object] = [workload.name]
            for scheme in self.schemes:
                row.append(self.suite.speedups(scheme)[workload.name])
            rows.append(row)
        return rows

    def geomean(self, scheme: str, memory_intensive_only: bool = False) -> float:
        names = None
        if memory_intensive_only:
            names = [w.name for w in self.workloads if w.memory_intensive]
        return self.suite.geomean_speedup(scheme, names)

    def ppf_over_spp_percent(self, memory_intensive_only: bool = True) -> float:
        """The paper's headline: PPF's gain over SPP (3.78% single-core)."""
        ppf = self.geomean("ppf", memory_intensive_only)
        spp = self.geomean("spp", memory_intensive_only)
        return 100.0 * (ppf / spp - 1.0)

    def average_depths(self) -> Dict[str, float]:
        """Mean SPP lookahead depth under stock SPP vs under PPF (§6.1)."""
        out = {}
        for scheme in ("spp", "ppf"):
            depths = [
                self.suite.run_for(w.name, scheme).average_lookahead_depth
                for w in self.workloads
            ]
            depths = [d for d in depths if d > 0]
            out[scheme] = sum(depths) / len(depths) if depths else 0.0
        return out


def run_figure9(
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    config: Optional[SimConfig] = None,
    schemes: Sequence[str] = SCHEMES,
    seed: int = 1,
) -> Figure9Result:
    workload_list = list(workloads) if workloads is not None else spec2017_workloads()
    runner = ExperimentRunner(config or SimConfig.quick(), seed=seed)
    suite = runner.sweep(workload_list, list(schemes)).require_complete()
    return Figure9Result(suite=suite, workloads=workload_list, schemes=list(schemes))


def report(result: Figure9Result) -> str:
    rows = result.speedup_rows()
    rows.append(
        ["geomean (mem-intensive)"]
        + [result.geomean(s, memory_intensive_only=True) for s in result.schemes]
    )
    rows.append(["geomean (full suite)"] + [result.geomean(s) for s in result.schemes])
    table = render_table(
        ["application", *result.schemes],
        rows,
        title="Figure 9 — single-core IPC speedup over no prefetching",
    )
    depths = result.average_depths()
    footer = (
        f"\nPPF over SPP (mem-intensive geomean): "
        f"{result.ppf_over_spp_percent():+.2f}%"
        f"\navg lookahead depth: SPP {depths.get('spp', 0):.2f} -> "
        f"PPF {depths.get('ppf', 0):.2f}"
    )
    return table + footer
