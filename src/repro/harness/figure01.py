"""Figure 1: the cost of naive aggressiveness (§1).

SPP's throttling threshold is re-tuned so its lookahead runs to a fixed
depth from 7 to 15 on the 603.bwaves_s model.  The paper's observation:
total prefetches (TOTAL_PF) grow *faster* with depth than useful
prefetches (GOOD_PF), wasting bandwidth and cache capacity until IPC
falls — motivating a filter rather than a deeper prefetcher.

All three series are normalized to the depth-7 run, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..prefetchers.spp import SPP, SPPConfig
from ..sim.config import SimConfig
from ..sim.single_core import RunResult, run_single_core
from ..workloads.spec2017 import workload_by_name
from .report import render_table


@dataclass
class Figure1Result:
    """Per-depth absolute and normalized series."""

    depths: List[int]
    ipc: Dict[int, float]
    total_pf: Dict[int, int]
    good_pf: Dict[int, int]

    def normalized(self) -> List[Dict[str, float]]:
        """Rows of depth / IPC / TOTAL_PF / GOOD_PF, depth-7-normalized."""
        base = self.depths[0]
        rows = []
        for depth in self.depths:
            rows.append(
                {
                    "depth": depth,
                    "ipc": self.ipc[depth] / self.ipc[base],
                    "total_pf": self.total_pf[depth] / max(1, self.total_pf[base]),
                    "good_pf": self.good_pf[depth] / max(1, self.good_pf[base]),
                }
            )
        return rows

    @property
    def overprefetch_grows_faster(self) -> bool:
        """The headline claim: TOTAL_PF outgrows GOOD_PF at max depth."""
        rows = self.normalized()
        return rows[-1]["total_pf"] > rows[-1]["good_pf"]

    @property
    def ipc_degrades(self) -> bool:
        """Aggressiveness eventually costs IPC vs the shallow tuning."""
        rows = self.normalized()
        return rows[-1]["ipc"] < max(row["ipc"] for row in rows)


def run_figure1(
    depths: Sequence[int] = (7, 9, 11, 13, 15),
    workload_name: str = "603.bwaves_s",
    config: Optional[SimConfig] = None,
    seed: int = 1,
) -> Figure1Result:
    """Sweep SPP's fixed lookahead depth on the bwaves model."""
    config = config or SimConfig.quick()
    workload = workload_by_name(workload_name)
    depths = list(depths)
    ipc: Dict[int, float] = {}
    total_pf: Dict[int, int] = {}
    good_pf: Dict[int, int] = {}
    for depth in depths:
        spp = SPP(SPPConfig.fixed_depth(depth))
        result: RunResult = run_single_core(workload, spp, config, seed=seed)
        ipc[depth] = result.ipc
        total_pf[depth] = result.prefetches_issued
        good_pf[depth] = result.prefetches_useful
    return Figure1Result(depths=depths, ipc=ipc, total_pf=total_pf, good_pf=good_pf)


def report(result: Figure1Result) -> str:
    rows = [
        (row["depth"], row["ipc"], row["total_pf"], row["good_pf"])
        for row in result.normalized()
    ]
    return render_table(
        ["lookahead depth", "IPC (norm)", "TOTAL_PF (norm)", "GOOD_PF (norm)"],
        rows,
        title="Figure 1 — aggressive SPP on 603.bwaves_s (normalized to depth 7)",
    )
