"""The generality experiment: does perceptron filtering go beyond SPP?

The paper evaluates the filter over SPP only; ROADMAP item 5 asks the
question it couldn't.  This experiment sweeps the full cross-product

    prefetcher × {unfiltered, filtered:<prefetcher>} × workload family

through :class:`~repro.sim.suite.SuiteRunner` (so it inherits caching,
fault tolerance and any backend — pass a farm backend to distribute it)
and reports, per cell, the three numbers that answer the question:
prefetch **accuracy**, miss **coverage** and **IPC speedup** over the
no-prefetch baseline, with the filtered-vs-unfiltered IPC delta in the
last column.  A positive delta on a non-SPP prefetcher is the filter
generalizing; a negative one is the filter fighting a candidate stream
it can't read.

``document()`` returns the JSON-serializable form the zoo-smoke CI job
uploads as the comparison artifact.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.config import SimConfig
from ..sim.single_core import RunResult
from ..sim.suite import Backend, SuiteResult, SuiteRunner
from ..workloads import WorkloadSpec, suite as workload_suite
from ..zoo.filtered import FILTER_SPEC_PREFIX
from .report import render_table

#: The head-to-head the zoo exists for.
DEFAULT_PREFETCHERS: Tuple[str, ...] = ("spp", "pythia", "two-level")
#: Three workload families ≈ three candidate-stream personalities.
DEFAULT_FAMILIES: Tuple[str, ...] = ("spec2017", "spec2006", "cloudsuite")


@dataclass
class GeneralityResult:
    """Cross-product outcome: one row per (family, workload, prefetcher)."""

    prefetchers: Tuple[str, ...]
    families: Tuple[str, ...]
    rows: List[Dict[str, object]]
    suite: SuiteResult

    def document(self) -> Dict[str, object]:
        """JSON-ready comparison artifact (the zoo-smoke upload)."""
        return {
            "schema": "repro.generality/v1",
            "prefetchers": list(self.prefetchers),
            "families": list(self.families),
            "complete": self.suite.failure_report.complete,
            "rows": self.rows,
        }


def family_workloads(
    families: Sequence[str], per_family: int = 2
) -> List[Tuple[str, WorkloadSpec]]:
    """Pick ``per_family`` workloads per family, memory-intensive first.

    Deterministic: within a family the memory-intensive workloads keep
    their suite order, then the compute-bound ones — so the default
    selection exercises the streams where prefetching actually matters.
    """
    picks: List[Tuple[str, WorkloadSpec]] = []
    for family in families:
        specs = workload_suite(family)
        ordered = [s for s in specs if s.memory_intensive] + [
            s for s in specs if not s.memory_intensive
        ]
        for spec in ordered[:per_family]:
            picks.append((family, spec))
    return picks


def _metrics(result: RunResult, baseline: RunResult) -> Dict[str, float]:
    """accuracy / coverage / ipc / speedup for one cell."""
    useful = result.prefetches_useful
    covered = useful + result.l2_misses
    return {
        "accuracy": result.accuracy,
        "coverage": (useful / covered) if covered else 0.0,
        "ipc": result.ipc,
        "speedup": (result.ipc / baseline.ipc) if baseline.ipc else 0.0,
    }


def run_generality(
    config: Optional[SimConfig] = None,
    seed: int = 3,
    prefetchers: Sequence[str] = DEFAULT_PREFETCHERS,
    families: Sequence[str] = DEFAULT_FAMILIES,
    per_family: int = 2,
    jobs: Optional[int] = None,
    cache_dir=None,
    backend: Optional[Backend] = None,
) -> GeneralityResult:
    """Sweep the generality cross-product and assemble comparison rows.

    One SuiteRunner sweep covers every scheme — ``none`` (the speedup
    baseline), each prefetcher, and each ``filtered:<prefetcher>`` —
    over the family sample, locally or on whatever ``backend`` is
    passed (the farm, say).
    """
    config = config or SimConfig.quick()
    pairs = family_workloads(families, per_family)
    workloads = [spec for _, spec in pairs]
    schemes: List[str] = []
    for base in prefetchers:
        schemes.append(base)
        schemes.append(FILTER_SPEC_PREFIX + base)
    runner = SuiteRunner(
        config, seed=seed, jobs=jobs, cache_dir=cache_dir, backend=backend
    )
    suite = runner.sweep(workloads, schemes)

    rows: List[Dict[str, object]] = []
    for family, spec in pairs:
        baseline = suite.runs.get((spec.name, "none"))
        if baseline is None:
            continue
        for base in prefetchers:
            unfiltered = suite.runs.get((spec.name, base))
            filtered = suite.runs.get((spec.name, FILTER_SPEC_PREFIX + base))
            if unfiltered is None or filtered is None:
                continue
            plain = _metrics(unfiltered, baseline)
            wrapped = _metrics(filtered, baseline)
            rows.append(
                {
                    "family": family,
                    "workload": spec.name,
                    "prefetcher": base,
                    "unfiltered": plain,
                    "filtered": wrapped,
                    "ipc_delta_pct": 100.0 * (wrapped["ipc"] - plain["ipc"]) / plain["ipc"]
                    if plain["ipc"]
                    else 0.0,
                }
            )
    return GeneralityResult(
        prefetchers=tuple(prefetchers),
        families=tuple(families),
        rows=rows,
        suite=suite,
    )


def report(result: GeneralityResult) -> str:
    """The per-cell comparison table answering the paper's question."""
    headers = [
        "family",
        "workload",
        "prefetcher",
        "acc",
        "cov",
        "speedup",
        "f.acc",
        "f.cov",
        "f.speedup",
        "dIPC%",
    ]
    table_rows = []
    for row in result.rows:
        plain = row["unfiltered"]
        wrapped = row["filtered"]
        table_rows.append(
            [
                row["family"],
                row["workload"],
                row["prefetcher"],
                plain["accuracy"],
                plain["coverage"],
                plain["speedup"],
                wrapped["accuracy"],
                wrapped["coverage"],
                wrapped["speedup"],
                row["ipc_delta_pct"],
            ]
        )
    title = (
        "Generality: prefetcher x {unfiltered, filtered} x family "
        "(f.* columns = under the perceptron filter)"
    )
    out = render_table(headers, table_rows, title=title)
    if not result.suite.failure_report.complete:
        out += "\n" + result.suite.failure_report.summary()
    return out


def suite_stats(result: GeneralityResult) -> str:
    """Canonical JSON of every run, for backend bit-identity checks."""
    import json

    payload = {
        f"{workload}/{scheme}": dataclasses.asdict(run)
        for (workload, scheme), run in sorted(result.suite.runs.items())
    }
    return json.dumps(payload, sort_keys=True)
