"""Ablation studies of PPF's design choices (DESIGN.md list).

Each ablation removes or weakens one mechanism and re-measures the
geomean speedup on a slice of the memory-intensive subset:

* ``no-reject-table``   — drop false-negative recovery (§3.1 Recording)
* ``single-level``      — collapse the two fill thresholds into one
* ``address-only``      — only the three address features
* ``all-features``      — the untrimmed 23-feature catalog
* ``stock-spp-under``   — PPF over *unmodified* SPP (no §4.1 re-tuning)
* ``no-displacement``   — wait for L2 evictions only (no displacement
  training; see DESIGN.md substitutions)
* ``no-theta``          — disable the over-training guards θ_p/θ_n
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.features import (
    exploration_features,
    production_features,
    scaled_production_features,
)
from ..core.filter import FilterConfig
from ..core.ppf import PPF
from ..prefetchers.base import Prefetcher
from ..prefetchers.spp import SPP, SPPConfig
from ..sim.config import SimConfig
from ..sim.metrics import geometric_mean
from ..sim.single_core import run_single_core
from ..workloads.spec2017 import WorkloadSpec, memory_intensive_subset
from .report import render_table

VariantFactory = Callable[[], Prefetcher]


def _address_only_features():
    keep = {"phys_address", "cache_line", "page_address"}
    return [f for f in production_features() if f.name in keep]


def ablation_variants() -> Dict[str, VariantFactory]:
    """Named PPF variants, plus the full design and the SPP reference."""
    return {
        "spp": lambda: SPP(SPPConfig.default()),
        "ppf-full": lambda: PPF(),
        "no-reject-table": lambda: PPF(use_reject_table=False),
        "single-level": lambda: PPF(filter_config=FilterConfig.single_level()),
        "address-only": lambda: PPF(features=_address_only_features()),
        "all-features": lambda: PPF(features=exploration_features()),
        "stock-spp-under": lambda: PPF(underlying=SPP(SPPConfig.default())),
        "no-displacement": lambda: PPF(train_on_displacement=False),
        "no-theta": lambda: PPF(
            filter_config=FilterConfig(theta_p=10_000, theta_n=-10_000)
        ),
        # §5.6: weight tables scaled to half / double hardware budget.
        "half-budget": lambda: PPF(features=scaled_production_features(0.5)),
        "double-budget": lambda: PPF(features=scaled_production_features(2.0)),
    }


@dataclass
class AblationResult:
    variants: List[str]
    geomeans: Dict[str, float]
    per_workload: Dict[str, Dict[str, float]]  # variant -> workload -> speedup

    def delta_vs_full_percent(self, variant: str) -> float:
        return 100.0 * (self.geomeans[variant] / self.geomeans["ppf-full"] - 1.0)


def run_ablations(
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    config: Optional[SimConfig] = None,
    variants: Optional[Sequence[str]] = None,
    seed: int = 1,
) -> AblationResult:
    workload_list = (
        list(workloads) if workloads is not None else memory_intensive_subset()[:4]
    )
    config = config or SimConfig.quick()
    factories = ablation_variants()
    chosen = list(variants) if variants is not None else list(factories)
    baseline: Dict[str, float] = {}
    for workload in workload_list:
        baseline[workload.name] = run_single_core(workload, "none", config, seed=seed).ipc
    per_workload: Dict[str, Dict[str, float]] = {}
    geomeans: Dict[str, float] = {}
    for variant in chosen:
        factory = factories[variant]
        speedups = {}
        for workload in workload_list:
            result = run_single_core(workload, factory(), config, seed=seed)
            speedups[workload.name] = result.ipc / baseline[workload.name]
        per_workload[variant] = speedups
        geomeans[variant] = geometric_mean(speedups.values())
    return AblationResult(
        variants=chosen, geomeans=geomeans, per_workload=per_workload
    )


def report(result: AblationResult) -> str:
    rows = []
    for variant in result.variants:
        delta = (
            result.delta_vs_full_percent(variant)
            if "ppf-full" in result.geomeans
            else 0.0
        )
        rows.append((variant, result.geomeans[variant], f"{delta:+.2f}%"))
    return render_table(
        ["variant", "geomean speedup", "vs ppf-full"],
        rows,
        title="Ablations — PPF design choices",
    )
