"""Plain-text report rendering for the experiment harness.

Every experiment returns structured data plus a rendered table that
matches the rows/series of the corresponding paper figure, so running a
bench prints something directly comparable to the paper.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_cell(value: object, precision: int = 3) -> str:
    """Uniform cell formatting: floats get fixed precision."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render an aligned ASCII table."""
    rendered_rows: List[List[str]] = [
        [format_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_histogram(
    histogram: dict, title: Optional[str] = None, width: int = 40
) -> str:
    """ASCII bar chart of a value->count histogram (Figure 6 style)."""
    peak = max(histogram.values(), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
    for value in sorted(histogram):
        count = histogram[value]
        bar = "#" * (0 if peak == 0 else round(width * count / peak))
        lines.append(f"{value:>4d} | {bar} {count}")
    return "\n".join(lines)
