"""§6.3: additional memory constraints (small LLC, low DRAM bandwidth).

Two DPC-2 constraint configurations stress the single-core system:

* **small LLC** — 512 KB instead of 2 MB: prefetch pollution costs more
  capacity, so an accurate filter should shine ("PPF provides a greater
  improvement under small LLC condition");
* **low bandwidth** — 3.2 GB/s instead of 12.8: every useless prefetch
  steals scarce bus slots ("PPF ... matches the best prefetcher, BOP,
  under low DRAM bandwidth conditions").

Run on the memory-intensive subset, reporting geomean speedups per
scheme under each constraint next to the unconstrained default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..sim.config import SimConfig
from ..sim.runner import ExperimentRunner
from ..workloads.spec2017 import WorkloadSpec, memory_intensive_subset
from .figure09 import SCHEMES
from .report import render_table


@dataclass
class ConstraintResult:
    schemes: List[str]
    geomeans: Dict[str, Dict[str, float]]  # constraint -> scheme -> geomean

    def geomean(self, constraint: str, scheme: str) -> float:
        return self.geomeans[constraint][scheme]


def _constraint_configs(base: SimConfig) -> Dict[str, SimConfig]:
    small = SimConfig.small_llc()
    low = SimConfig.low_bandwidth()
    for cfg in (small, low):
        cfg.warmup_records = base.warmup_records
        cfg.measure_records = base.measure_records
    return {"default": base, "small-llc": small, "low-bandwidth": low}


def run_constraints(
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    config: Optional[SimConfig] = None,
    schemes: Sequence[str] = SCHEMES,
    seed: int = 1,
) -> ConstraintResult:
    workload_list = (
        list(workloads) if workloads is not None else memory_intensive_subset()
    )
    base = config or SimConfig.quick()
    runner = ExperimentRunner(base, seed=seed)
    geomeans: Dict[str, Dict[str, float]] = {}
    for constraint, cfg in _constraint_configs(base).items():
        suite = runner.sweep(workload_list, list(schemes), cfg).require_complete()
        geomeans[constraint] = {
            scheme: suite.geomean_speedup(scheme) for scheme in schemes
        }
    return ConstraintResult(schemes=list(schemes), geomeans=geomeans)


def report(result: ConstraintResult) -> str:
    rows = []
    for constraint, per_scheme in result.geomeans.items():
        rows.append([constraint] + [per_scheme[s] for s in result.schemes])
    return render_table(
        ["constraint", *result.schemes],
        rows,
        title="Section 6.3 — geomean speedup under memory constraints "
        "(memory-intensive subset)",
    )
