"""Tables 1–3: configuration dump and bit-exact storage accounting."""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..analysis.overhead import (
    overhead_report,
    prefetch_table_entry_fields,
    storage_inventory,
    total_storage_bits,
    total_storage_kilobytes,
)
from ..sim.config import SimConfig
from .report import render_table


def table1_report(config: Optional[SimConfig] = None) -> str:
    """Table 1: simulation parameters."""
    config = config or SimConfig.default()
    return render_table(
        ["parameter", "value"],
        config.describe(),
        title="Table 1 — simulation parameters",
    )


def table2_report() -> str:
    """Table 2: metadata stored in each Prefetch Table entry (85 bits)."""
    fields = prefetch_table_entry_fields()
    rows: List[Tuple[str, int, str]] = [(f.name, f.bits, f.comment) for f in fields]
    rows.append(("Total", sum(f.bits for f in fields), ""))
    return render_table(
        ["field", "bits", "comment"],
        rows,
        title="Table 2 — Prefetch Table entry",
    )


def table3_report() -> str:
    """Table 3: storage overhead of the whole SPP+PPF design."""
    rows = []
    for structure in storage_inventory():
        rows.append(
            (
                structure.name,
                structure.entries,
                structure.bits_per_entry,
                structure.total_bits,
            )
        )
    rows.append(("Total", "", "", total_storage_bits()))
    table = render_table(
        ["structure", "entries", "bits/entry", "total bits"],
        rows,
        title="Table 3 — SPP+PPF storage overhead",
    )
    return table + f"\nTotal: {total_storage_bits()} bits = {total_storage_kilobytes():.2f} KB"


def tables_summary() -> dict:
    """Machine-checkable numbers for tests and benches."""
    return overhead_report()
