"""Experiment registry: every paper table/figure, runnable by id.

``run_experiment("fig9")`` runs the experiment at a test-friendly scale
and returns its rendered report.  The benchmark suite and the
``examples/reproduce_paper.py`` script both drive this registry, so
there is exactly one definition of each experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..sim.config import SimConfig
from . import ablations, constraints, figure01, figure09, figure10, figure13
from . import figures02_05, figures06_08, figures11_12, generality, phase_plot, tables


@dataclass(frozen=True)
class Experiment:
    """One registered experiment: id, paper anchor, and a runner."""

    id: str
    paper_anchor: str
    description: str
    run: Callable[[Optional[SimConfig]], str]


def _fig1(config: Optional[SimConfig]) -> str:
    return figure01.report(figure01.run_figure1(config=config))


def _tab1(config: Optional[SimConfig]) -> str:
    return tables.table1_report(config)


def _fig2_5(config: Optional[SimConfig]) -> str:
    return figures02_05.report(figures02_05.run_architecture_checks())


def _fig6_8(config: Optional[SimConfig]) -> str:
    evidence = figures06_08.run_feature_evidence(config=config)
    return "\n\n".join(
        (
            figures06_08.figure6_report(evidence),
            figures06_08.figure7_report(evidence),
            figures06_08.figure8_report(evidence),
        )
    )


def _tab2_3(config: Optional[SimConfig]) -> str:
    return tables.table2_report() + "\n\n" + tables.table3_report()


def _fig9_10(config: Optional[SimConfig]) -> str:
    fig9 = figure09.run_figure9(config=config)
    fig10 = figure10.run_figure10(suite=fig9.suite)
    return figure09.report(fig9) + "\n\n" + figure10.report(fig10)


def _fig11(config: Optional[SimConfig]) -> str:
    return figures11_12.report(figures11_12.run_figure11(config=config))


def _fig12(config: Optional[SimConfig]) -> str:
    return figures11_12.report(figures11_12.run_figure12(config=config))


def _sec63(config: Optional[SimConfig]) -> str:
    return constraints.report(constraints.run_constraints(config=config))


def _fig13(config: Optional[SimConfig]) -> str:
    return figure13.report(figure13.run_figure13(config=config, spec2006_subset=8))


def _ablations(config: Optional[SimConfig]) -> str:
    return ablations.report(ablations.run_ablations(config=config))


def _phase(config: Optional[SimConfig]) -> str:
    return phase_plot.report(phase_plot.run_phase_plot(config=config))


def _generality(config: Optional[SimConfig]) -> str:
    return generality.report(generality.run_generality(config=config))


EXPERIMENTS: Dict[str, Experiment] = {
    exp.id: exp
    for exp in (
        Experiment("fig1", "Figure 1", "aggressiveness hurts without a filter", _fig1),
        Experiment("tab1", "Table 1", "simulation parameters", _tab1),
        Experiment("fig2-5", "Figures 2-5", "architecture conformance", _fig2_5),
        Experiment("fig6-8", "Figures 6-8", "feature-selection evidence", _fig6_8),
        Experiment("tab2-3", "Tables 2-3", "storage overhead accounting", _tab2_3),
        Experiment("fig9-10", "Figures 9-10", "single-core speedup and coverage", _fig9_10),
        Experiment("fig11", "Figure 11", "4-core weighted speedup", _fig11),
        Experiment("fig12", "Figure 12", "8-core weighted speedup", _fig12),
        Experiment("sec6.3", "Section 6.3", "memory-constraint studies", _sec63),
        Experiment("fig13", "Figure 13", "cross-validation on unseen workloads", _fig13),
        Experiment("ablations", "DESIGN.md", "PPF design-choice ablations", _ablations),
        Experiment("phase", "Telemetry", "probe time-series phase plot", _phase),
        Experiment(
            "generality",
            "ROADMAP item 5",
            "prefetcher zoo x filter cross-product",
            _generality,
        ),
    )
}


def experiment_ids() -> List[str]:
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str, config: Optional[SimConfig] = None) -> str:
    """Run one experiment by id; returns its rendered report."""
    try:
        experiment = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}") from None
    return experiment.run(config)
