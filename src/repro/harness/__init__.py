"""Experiment harness: one runnable experiment per paper table/figure."""

from .ablations import AblationResult, ablation_variants, run_ablations
from .constraints import ConstraintResult, run_constraints
from .experiments import EXPERIMENTS, Experiment, experiment_ids, run_experiment
from .figure01 import Figure1Result, run_figure1
from .figure09 import Figure9Result, run_figure9
from .figure10 import Figure10Result, run_figure10
from .figure13 import Figure13Result, run_figure13
from .figures02_05 import ArchitectureCheck, run_architecture_checks
from .figures06_08 import FeatureEvidence, run_feature_evidence
from .figures11_12 import MulticoreResult, run_figure11, run_figure12
from .report import render_histogram, render_table
from .validate import Claim, Scorecard, report_scorecard, validate
from .tables import table1_report, table2_report, table3_report, tables_summary

__all__ = [
    "AblationResult",
    "ablation_variants",
    "run_ablations",
    "ConstraintResult",
    "run_constraints",
    "EXPERIMENTS",
    "Experiment",
    "experiment_ids",
    "run_experiment",
    "Figure1Result",
    "run_figure1",
    "Figure9Result",
    "run_figure9",
    "Figure10Result",
    "run_figure10",
    "Figure13Result",
    "run_figure13",
    "ArchitectureCheck",
    "run_architecture_checks",
    "FeatureEvidence",
    "run_feature_evidence",
    "MulticoreResult",
    "run_figure11",
    "run_figure12",
    "Claim",
    "Scorecard",
    "report_scorecard",
    "validate",
    "render_histogram",
    "render_table",
    "table1_report",
    "table2_report",
    "table3_report",
    "tables_summary",
]
