"""Figure 13: cross-validation on unseen workloads (§6.4).

PPF's defaults were developed on SPEC CPU 2017; this experiment runs the
unchanged configuration on the CloudSuite models (Figure 13a) and the
SPEC CPU 2006 models (Figure 13b).

Shape targets: on CloudSuite everything is prefetch-agnostic (small
gains), with PPF still ahead of SPP; on SPEC CPU 2006 PPF leads SPP on
both the memory-intensive subset and the full suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..sim.config import SimConfig
from ..sim.runner import ExperimentRunner, SuiteResult
from ..workloads.cloudsuite import cloudsuite_workloads
from ..workloads.spec2006 import spec2006_workloads
from ..workloads.spec2017 import WorkloadSpec
from .figure09 import SCHEMES
from .report import render_table


@dataclass
class Figure13Result:
    cloudsuite: SuiteResult
    spec2006: SuiteResult
    cloudsuite_workloads: List[WorkloadSpec]
    spec2006_workloads: List[WorkloadSpec]
    schemes: List[str]

    def cloudsuite_geomean(self, scheme: str) -> float:
        return self.cloudsuite.geomean_speedup(scheme)

    def spec2006_geomean(self, scheme: str, memory_intensive_only: bool = False) -> float:
        names = None
        if memory_intensive_only:
            names = [w.name for w in self.spec2006_workloads if w.memory_intensive]
        return self.spec2006.geomean_speedup(scheme, names)


def run_figure13(
    config: Optional[SimConfig] = None,
    schemes: Sequence[str] = SCHEMES,
    spec2006_subset: Optional[int] = None,
    seed: int = 1,
) -> Figure13Result:
    """Run both validation suites.

    ``spec2006_subset`` limits how many SPEC 2006 models run (handy for
    tests; memory-intensive models are kept first so the subset geomean
    stays meaningful).
    """
    config = config or SimConfig.quick()
    runner = ExperimentRunner(config, seed=seed)
    cloud = cloudsuite_workloads()
    spec06 = spec2006_workloads()
    if spec2006_subset is not None:
        intensive = [w for w in spec06 if w.memory_intensive]
        light = [w for w in spec06 if not w.memory_intensive]
        spec06 = (intensive + light)[:spec2006_subset]
    return Figure13Result(
        cloudsuite=runner.sweep(cloud, list(schemes)).require_complete(),
        spec2006=runner.sweep(spec06, list(schemes)).require_complete(),
        cloudsuite_workloads=cloud,
        spec2006_workloads=spec06,
        schemes=list(schemes),
    )


def report(result: Figure13Result) -> str:
    rows_a = [
        (w.name, *(result.cloudsuite.speedups(s)[w.name] for s in result.schemes))
        for w in result.cloudsuite_workloads
    ]
    rows_a.append(
        ("geomean", *(result.cloudsuite_geomean(s) for s in result.schemes))
    )
    table_a = render_table(
        ["CloudSuite app", *result.schemes],
        rows_a,
        title="Figure 13a — CloudSuite IPC speedup (unseen workloads)",
    )
    rows_b = [
        (
            "geomean (mem-intensive)",
            *(result.spec2006_geomean(s, True) for s in result.schemes),
        ),
        ("geomean (full suite)", *(result.spec2006_geomean(s) for s in result.schemes)),
    ]
    table_b = render_table(
        ["SPEC CPU 2006", *result.schemes],
        rows_b,
        title="Figure 13b — SPEC CPU 2006 IPC speedup (unseen workloads)",
    )
    return table_a + "\n\n" + table_b
