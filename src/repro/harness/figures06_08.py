"""Figures 6–8: the feature-selection evidence (§5.5).

* **Figure 6** — trained-weight histograms for the best feature
  (Page ⊕ Confidence, weights pushed out toward saturation) and a
  rejected one (Last Signature, weights stuck near zero).
* **Figure 7** — global Pearson factor of the nine production features,
  in increasing order.
* **Figure 8** — per-trace Pearson variation for three globally-weak
  features (PC⊕Delta, Signature⊕Delta, PC⊕Depth), showing they still
  correlate strongly on *some* traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.correlation import (
    histogram_concentration_near_zero,
    histogram_saturation,
    weight_histogram,
)
from ..analysis.feature_selection import FeatureStudy, run_feature_study
from ..core.features import Feature, exploration_features
from ..sim.config import SimConfig
from ..workloads.spec2017 import WorkloadSpec, memory_intensive_subset
from .report import render_histogram, render_table

#: Figure 6 contrasts the strongest kept feature with a rejected one.
FIGURE6_FEATURES = ("page_xor_confidence", "last_signature")
#: Figure 8 examines the globally-weak-but-locally-useful features.
FIGURE8_FEATURES = ("pc_xor_delta", "signature_xor_delta", "pc_xor_depth")


@dataclass
class FeatureEvidence:
    """Everything Figures 6–8 need, from one recorded study."""

    study: FeatureStudy
    global_pearson: Dict[str, float]
    per_trace: Dict[str, Dict[str, float]]
    histograms: Dict[str, Dict[int, int]]


def run_feature_evidence(
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    features: Optional[Sequence[Feature]] = None,
    config: Optional[SimConfig] = None,
    seed: int = 1,
) -> FeatureEvidence:
    """Run the recorded study and aggregate the three figures' data."""
    if workloads is None:
        workloads = memory_intensive_subset()[:6]
    if features is None:
        features = exploration_features()
    study = run_feature_study(workloads, features, config, seed=seed)
    histograms: Dict[str, Dict[int, int]] = {}
    for name in FIGURE6_FEATURES:
        slot = next(i for i, f in enumerate(study.features) if f.name == name)
        values: List[int] = []
        for run in study.runs:
            values.extend(run.filter.tables[slot].weights())
        histograms[name] = weight_histogram(values)
    return FeatureEvidence(
        study=study,
        global_pearson=study.global_pearson(),
        per_trace=study.per_trace_pearson(),
        histograms=histograms,
    )


def figure6_report(evidence: FeatureEvidence) -> str:
    """Weight distributions: kept feature saturates, rejected hugs zero."""
    parts = []
    for name in FIGURE6_FEATURES:
        histogram = evidence.histograms[name]
        near_zero = histogram_concentration_near_zero(histogram)
        saturation = histogram_saturation(histogram)
        parts.append(
            render_histogram(
                histogram,
                title=(
                    f"Figure 6 — trained weights of {name} "
                    f"(near-zero {near_zero:.2f}, saturated {saturation:.2f})"
                ),
            )
        )
    return "\n\n".join(parts)


def figure7_report(evidence: FeatureEvidence, production_only: bool = True) -> str:
    """Global Pearson factors, increasing order, as in Figure 7."""
    names = (
        [f.name for f in evidence.study.features[:9]]
        if production_only
        else [f.name for f in evidence.study.features]
    )
    rows = sorted(
        ((name, evidence.global_pearson[name]) for name in names),
        key=lambda pair: abs(pair[1]),
    )
    return render_table(
        ["feature", "global Pearson factor"],
        rows,
        title="Figure 7 — features by global correlation",
    )


def figure8_report(evidence: FeatureEvidence) -> str:
    """Per-trace Pearson variation of the three weak features."""
    workload_names = [run.workload for run in evidence.study.runs]
    rows = []
    for workload in workload_names:
        rows.append(
            (workload, *(evidence.per_trace[f][workload] for f in FIGURE8_FEATURES))
        )
    return render_table(
        ["trace", *FIGURE8_FEATURES],
        rows,
        title="Figure 8 — per-trace P-value variation",
    )
