"""Shared helpers for component ``state_dict()`` / ``load_state()`` pairs.

Everything in a snapshot payload must survive a compact-JSON round trip,
which rules out three things Python state leans on heavily:

* **non-string dict keys** — cache sets, signature tables and delta maps
  are keyed by ints (or tuples, for VLDP);
* **insertion order as semantics** — ``OrderedDict`` eviction order and
  plain-dict iteration order are part of the bit-identical contract;
* **tuples** — ``random.Random.getstate()`` and feature-index vectors.

The convention used throughout is therefore *pair lists*: an ordered
mapping serializes as ``[[key, value], ...]``, preserving both key types
(ints stay ints as JSON numbers) and order.  These helpers cover the
recurring cases; components keep their own field layout explicit so the
payload doubles as documentation of what state a component owns.

Only the standard library is imported here: component modules at every
layer (workloads, memory, prefetchers, cpu) pull these helpers in, so
this module must never import back into them.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple


def encode_rng(state: Tuple[Any, ...]) -> List[Any]:
    """``random.Random.getstate()`` tuple -> JSON-serializable list."""
    version, internal, gauss = state
    return [version, list(internal), gauss]


def decode_rng(data: Iterable[Any]) -> Tuple[Any, ...]:
    """Inverse of :func:`encode_rng` (``setstate`` demands tuples)."""
    version, internal, gauss = data
    return (version, tuple(int(word) for word in internal), gauss)


def pairs(mapping: Dict[Any, Any]) -> List[List[Any]]:
    """An ordered mapping as a ``[[key, value], ...]`` pair list."""
    return [[key, value] for key, value in mapping.items()]


def int_keyed(items: Iterable[Iterable[Any]]) -> Dict[int, Any]:
    """Pair list -> insertion-ordered dict with int keys restored."""
    return {int(key): value for key, value in items}


def group_state(group: Any) -> Dict[str, Any]:
    """Serializable copy of a :class:`repro.stats.StatGroup`'s fields.

    Dict-valued fields (e.g. ``FilterStats.per_feature_updates``) are
    shallow-copied so the snapshot does not alias live counters.
    """
    state: Dict[str, Any] = {}
    for name in group.__dataclass_fields__:
        value = getattr(group, name)
        state[name] = dict(value) if isinstance(value, dict) else value
    return state


def load_group(group: Any, state: Dict[str, Any]) -> None:
    """Restore a :class:`StatGroup` from :func:`group_state` output.

    Dict-valued fields are cleared and refilled *in place*: stats
    adapters and snapshot closures hold references to the original
    containers, so rebinding would silently disconnect them.
    """
    for name in group.__dataclass_fields__:
        if name not in state:
            continue
        current = getattr(group, name)
        value = state[name]
        if isinstance(current, dict):
            current.clear()
            current.update({str(key): val for key, val in value.items()})
        else:
            setattr(group, name, type(current)(value))
