"""Checkpoint schema identity.

Kept free of any intra-package (or wider ``repro``) imports so that low
layers — ``sim.fingerprint`` folds the schema token into every config
fingerprint — can import it without touching the rest of the checkpoint
machinery.

The version stamps every snapshot written to disk.  Bump it whenever the
*meaning* of any component's ``state_dict()`` payload changes (a renamed
key, a reordered pair list, a new mandatory section): old snapshots are
then rejected on load instead of silently restoring skewed state, and —
because the token participates in ``config_fingerprint`` — all result
caches and warmup stores keyed on the old schema invalidate with it.
"""

from __future__ import annotations

#: Version of the on-disk snapshot payload layout.
#:
#: v2: multi-core payloads grew a mandatory mid-measurement section
#: (``consumed`` cursor + per-core ``outcomes``), making measure-phase
#: snapshots of :class:`~repro.sim.multi_core.MultiCoreSim` restorable.
CHECKPOINT_SCHEMA_VERSION = 2

#: ``Snapshot.kind`` for whole single-core simulations (both warmup-
#: boundary snapshots and mid-measurement periodic checkpoints).
KIND_SINGLE_CORE = "single_core"

#: ``Snapshot.kind`` for whole multi-core simulations.
KIND_MULTI_CORE = "multi_core"
