"""Content-addressed snapshot cache (the warmup store).

Lives next to the suite runner's result cache and follows the same
philosophy: keys are short hex digests computed by the *caller* (the sim
layer owns the key recipe, because it owns the fingerprint machinery),
values are ``<digest>.ckpt`` files, and every read failure — missing
file, corruption, schema mismatch — degrades to a miss rather than an
error, since the store is strictly an accelerator: the simulator can
always recompute warmup from scratch.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from .snapshot import Snapshot, SnapshotError, load_snapshot, save_snapshot


class SnapshotStore:
    """Digest-keyed snapshot directory with hit/miss accounting."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, digest: str) -> Path:
        return self.root / f"{digest}.ckpt"

    def contains(self, digest: str) -> bool:
        """Whether an entry exists under ``digest`` (no accounting).

        A cheap existence probe for dispatchers deciding *where* to run
        work (the suite runner's hit/miss stats, the farm broker's
        snapshot provenance) without charging the store a miss.
        """
        return self.path_for(digest).exists()

    def load(self, digest: str) -> Optional[Snapshot]:
        """The snapshot under ``digest``, or ``None`` on any miss."""
        path = self.path_for(digest)
        if not path.exists():
            self.misses += 1
            return None
        try:
            snapshot = load_snapshot(path)
        except SnapshotError:
            self.misses += 1
            return None
        self.hits += 1
        return snapshot

    def save(self, digest: str, snapshot: Snapshot) -> Path:
        return save_snapshot(self.path_for(digest), snapshot)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
