"""Fresh-process restore entry points.

The bit-identity contract is only meaningful across process boundaries:
restoring in the process that wrote the snapshot can lean on leftover
object state by accident.  These module-level functions are importable
by ``multiprocessing`` spawn workers (and by the tests that prove the
contract), so a child process can rebuild a workload trace or a whole
single-core simulation from nothing but names, a config and a payload.

``repro`` imports happen inside the functions (and this module is kept
out of the package ``__init__``): low layers import the package for its
helpers, so module-level imports of workloads/sim here would cycle.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple


def resume_trace(workload_name: str, n_records: int, seed: int, state: Dict[str, Any]):
    """Rebuild ``workload.trace(n_records, seed)`` and restore ``state``."""
    from ..workloads import find_workload

    trace = find_workload(workload_name).trace(n_records, seed=seed)
    trace.load_state(state)
    return trace


def remaining_records(
    workload_name: str, n_records: int, seed: int, state: Dict[str, Any]
) -> List[Tuple[int, int, int]]:
    """The rest of a snapshotted trace as ``(pc, addr, bubble)`` tuples.

    Plain tuples so the result crosses a process boundary without the
    child needing to pickle ``TraceRecord`` instances.
    """
    trace = resume_trace(workload_name, n_records, seed, state)
    return [(rec.pc, rec.addr, rec.bubble) for rec in trace]


def replay_batch(
    jobs: List[Tuple[str, int, int, Dict[str, Any]]],
) -> List[List[Tuple[int, int, int]]]:
    """:func:`remaining_records` over many jobs in one child process.

    Spawn startup (fresh interpreter + imports) dwarfs per-trace work,
    so the determinism tests ship the whole workload catalog across in
    a single call.
    """
    return [remaining_records(*job) for job in jobs]


def complete_single_core(
    workload_name: str,
    prefetcher_name: str,
    config: Any,
    seed: int,
    payload: Dict[str, Any],
) -> Optional[Any]:
    """Restore a single-core snapshot and run it to completion.

    Returns the :class:`repro.sim.single_core.RunResult`; the golden
    resume tests call this in a spawn-context worker and compare every
    stat against a straight run.
    """
    from ..sim.single_core import SingleCoreSim

    sim = SingleCoreSim(
        find_workload_by_name(workload_name), prefetcher_name, config, seed
    )
    sim.load_state(payload)
    if not sim.measuring:
        sim.warmup()
        sim.begin_measurement()
    sim.measure()
    return sim.result()


def find_workload_by_name(name: str):
    from ..workloads import find_workload

    return find_workload(name)
