"""repro.checkpoint — versioned simulation state snapshots.

Every stateful component in the stack implements an explicit
``state_dict() -> dict`` / ``load_state(dict)`` pair whose payload is
compact-JSON-safe (pair lists for ordered/int-keyed maps, encoded RNG
words — see :mod:`repro.checkpoint.state`).  The sim drivers compose
those into whole-simulation :class:`Snapshot` objects; this package owns
the serialization (:mod:`snapshot`), the content-addressed warmup cache
(:mod:`store`), debugging views (:mod:`inspect`) and the fresh-process
restore entry points the bit-identity tests drive (:mod:`replay`).

Restore is bit-identical by contract: warmup -> snapshot -> restore in a
fresh process -> measure reproduces a straight run's golden stats
exactly.
"""

from .inspect import diff_snapshots, flatten, summarize
from .schema import CHECKPOINT_SCHEMA_VERSION, KIND_MULTI_CORE, KIND_SINGLE_CORE
from .snapshot import (
    Snapshot,
    SnapshotError,
    SnapshotSchemaError,
    load_snapshot,
    save_snapshot,
)
from .state import decode_rng, encode_rng, group_state, int_keyed, load_group, pairs
from .store import SnapshotStore

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "KIND_MULTI_CORE",
    "KIND_SINGLE_CORE",
    "Snapshot",
    "SnapshotError",
    "SnapshotSchemaError",
    "SnapshotStore",
    "decode_rng",
    "diff_snapshots",
    "encode_rng",
    "flatten",
    "group_state",
    "int_keyed",
    "load_group",
    "load_snapshot",
    "pairs",
    "save_snapshot",
    "summarize",
]
