"""Snapshot container and atomic on-disk serialization.

A snapshot is compact JSON (no whitespace, keys as written by the
component — *not* sorted, since pair-list order is semantic) compressed
with zlib.  Writes go through a pid+counter-unique temp file followed by
``Path.replace``, the same publish idiom as the suite runner's result
cache, so concurrent sweep workers can race on the same key and readers
only ever observe complete files.

Loading is strict by default: a truncated/garbled file raises
:class:`SnapshotError`, a payload written by a different
``CHECKPOINT_SCHEMA_VERSION`` raises :class:`SnapshotSchemaError`.
Callers that treat snapshots as a cache (the warmup store) catch both
and fall back to simulating.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict

from ..ioutil import atomic_write_bytes
from .schema import CHECKPOINT_SCHEMA_VERSION


class SnapshotError(Exception):
    """A snapshot file or payload could not be decoded or applied."""


class SnapshotSchemaError(SnapshotError):
    """A snapshot was written under an incompatible schema version."""


@dataclass
class Snapshot:
    """One serialized simulation (or component) state.

    ``payload`` is the composed ``state_dict()`` tree; ``meta`` carries
    provenance for humans and the ``checkpoint inspect`` CLI (workload,
    scheme, seed, phase, record counts) and is never consulted by the
    restore path itself.
    """

    kind: str
    payload: Dict[str, Any]
    meta: Dict[str, Any] = field(default_factory=dict)
    schema_version: int = CHECKPOINT_SCHEMA_VERSION


def dumps(snapshot: Snapshot) -> bytes:
    """Serialize to compressed compact JSON."""
    document = {
        "schema_version": snapshot.schema_version,
        "kind": snapshot.kind,
        "meta": snapshot.meta,
        "payload": snapshot.payload,
    }
    text = json.dumps(document, separators=(",", ":"), allow_nan=False)
    return zlib.compress(text.encode("utf-8"), level=6)


def loads(blob: bytes) -> Snapshot:
    """Inverse of :func:`dumps`; strict about corruption and schema."""
    try:
        text = zlib.decompress(blob).decode("utf-8")
        document = json.loads(text)
    except (zlib.error, UnicodeDecodeError, ValueError) as exc:
        raise SnapshotError(f"corrupt snapshot: {exc}") from exc
    if not isinstance(document, dict) or "payload" not in document:
        raise SnapshotError("corrupt snapshot: missing payload")
    version = document.get("schema_version")
    if version != CHECKPOINT_SCHEMA_VERSION:
        raise SnapshotSchemaError(
            f"snapshot schema {version!r} != supported {CHECKPOINT_SCHEMA_VERSION}"
        )
    return Snapshot(
        kind=str(document.get("kind", "")),
        payload=document["payload"],
        meta=document.get("meta", {}),
        schema_version=int(version),
    )


def save_snapshot(path: Path | str, snapshot: Snapshot) -> Path:
    """Atomically publish ``snapshot`` at ``path``.

    Staging and rename go through the shared
    :func:`repro.ioutil.atomic_write_bytes` helper — the same idiom the
    result cache, the telemetry exporters and the trace converter use.
    """
    return atomic_write_bytes(Path(path), dumps(snapshot))


def load_snapshot(path: Path | str) -> Snapshot:
    """Load a snapshot file, raising :class:`SnapshotError` variants."""
    try:
        blob = Path(path).read_bytes()
    except OSError as exc:
        raise SnapshotError(f"unreadable snapshot {path}: {exc}") from exc
    return loads(blob)
