"""Snapshot introspection: flatten, summarize, diff.

Debugging state divergence means answering "which of the ~10^4 values in
these two snapshots differ, and where" without reading raw JSON.  The
flattener turns a payload tree into dotted-path leaves (list elements
address by index, so pair lists read like ``...sets.3.1.0``), which
makes both the summary and the diff one dict comprehension each.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Tuple

from .snapshot import Snapshot

#: Leaves reported per diff by default; real divergences usually cascade
#: into thousands of differing counters, and the first few localize it.
DEFAULT_DIFF_LIMIT = 40


def flatten(payload: Any, prefix: str = "") -> Dict[str, Any]:
    """Payload tree -> ``{dotted.path: scalar}`` (dicts and lists walked)."""
    leaves: Dict[str, Any] = {}
    stack: List[Tuple[str, Any]] = [(prefix, payload)]
    while stack:
        path, node = stack.pop()
        if isinstance(node, dict):
            items: Iterator[Tuple[Any, Any]] = iter(node.items())
        elif isinstance(node, (list, tuple)):
            items = iter(enumerate(node))
        else:
            leaves[path or "."] = node
            continue
        for key, value in items:
            stack.append((f"{path}.{key}" if path else str(key), value))
    return leaves


def summarize(snapshot: Snapshot) -> Dict[str, Any]:
    """Human-oriented overview: identity, meta, per-section leaf counts."""
    sections: Dict[str, int] = {}
    for path in flatten(snapshot.payload):
        sections[path.split(".", 1)[0]] = sections.get(path.split(".", 1)[0], 0) + 1
    return {
        "schema_version": snapshot.schema_version,
        "kind": snapshot.kind,
        "meta": dict(snapshot.meta),
        "sections": dict(sorted(sections.items())),
        "total_leaves": sum(sections.values()),
    }


def diff_snapshots(
    a: Snapshot, b: Snapshot, limit: int = DEFAULT_DIFF_LIMIT
) -> Dict[str, Any]:
    """Structured diff of two snapshots' payloads.

    Returns ``{"equal": bool, "differing": int, "entries": [...]}`` where
    each entry is ``[path, value_a, value_b]`` (missing side rendered as
    the string ``"<absent>"``), truncated to ``limit`` entries.
    """
    flat_a = flatten(a.payload)
    flat_b = flatten(b.payload)
    absent = "<absent>"
    entries: List[List[Any]] = []
    differing = 0
    for path in sorted(flat_a.keys() | flat_b.keys()):
        left = flat_a.get(path, absent)
        right = flat_b.get(path, absent)
        if left == right:
            continue
        differing += 1
        if len(entries) < limit:
            entries.append([path, left, right])
    return {
        "equal": differing == 0 and a.kind == b.kind,
        "kind": [a.kind, b.kind],
        "differing": differing,
        "entries": entries,
    }
