"""Prefetcher interface shared by SPP, BOP, AMPM and the PPF wrapper.

The hierarchy calls prefetchers exactly the way ChampSim does:

* :meth:`Prefetcher.train` on every **L2 demand access** (hits and
  misses) — the prefetcher may return candidate prefetches;
* :meth:`Prefetcher.on_eviction` when L2 evicts a line;
* :meth:`Prefetcher.on_useful_prefetch` the first time a demand access
  touches a prefetched line;
* :meth:`Prefetcher.on_prefetch_issued` when the hierarchy actually
  sends a candidate to memory (redundant candidates are dropped and do
  not get this callback).

Candidates carry a ``fill_l2`` flag (L2 vs last-level fill, the paper's
two-level confidence decision) plus a free-form ``meta`` mapping that
lets PPF recover the underlying prefetcher's internal state (signature,
confidence, depth, delta …) for its feature vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from ..checkpoint.state import group_state, load_group
from ..registry import register
from ..stats import StatGroup, StatsNode


@dataclass
class PrefetchCandidate:
    """One prefetch suggestion emitted by a prefetcher."""

    addr: int
    fill_l2: bool = True
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise ValueError("prefetch address must be non-negative")


@dataclass
class PrefetcherStats(StatGroup):
    """Issue/outcome counters every prefetcher shares."""

    derived = ("accuracy",)

    candidates: int = 0
    issued: int = 0
    issued_l2: int = 0
    issued_llc: int = 0
    useful: int = 0
    useless_evictions: int = 0

    @property
    def accuracy(self) -> float:
        """Fraction of issued prefetches that saw a demand hit."""
        if self.issued == 0:
            return 0.0
        return self.useful / self.issued


class Prefetcher:
    """Base class; concrete prefetchers override the hooks they need."""

    name = "none"

    def __init__(self) -> None:
        self.stats = PrefetcherStats()

    # -- hooks driven by the hierarchy --------------------------------------

    def train(
        self, addr: int, pc: int, cache_hit: bool, cycle: int
    ) -> List[PrefetchCandidate]:
        """Observe one L2 demand access; return candidate prefetches."""
        return []

    def on_prefetch_issued(self, candidate: PrefetchCandidate) -> None:
        """A candidate passed redundancy checks and went to memory."""
        self.stats.issued += 1
        if candidate.fill_l2:
            self.stats.issued_l2 += 1
        else:
            self.stats.issued_llc += 1

    def on_useful_prefetch(self, addr: int) -> None:
        """First demand hit on a line this prefetcher brought in."""
        self.stats.useful += 1

    def on_eviction(self, addr: int, was_prefetch: bool, was_used: bool) -> None:
        """L2 evicted the block at ``addr``."""
        if was_prefetch and not was_used:
            self.stats.useless_evictions += 1

    # -- bookkeeping ---------------------------------------------------------

    def note_candidates(self, count: int) -> None:
        self.stats.candidates += count

    def reset_stats(self) -> None:
        self.stats.reset()

    def attach_stats(self, node: StatsNode) -> None:
        """Mount this prefetcher's counters under a stats scope.

        Subclasses with extra structures (PPF's filter and tables)
        override this, call ``super()``, and mount their own groups.
        """
        node.attach("prefetch", self.stats)

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Serializable snapshot of all mutable state.

        Stateful subclasses extend the returned dict (calling ``super()``
        first) with their tables; the base contributes the shared issue
        counters, which is complete for stateless prefetchers like
        :class:`NullPrefetcher`.
        """
        return {"stats": group_state(self.stats)}

    def load_state(self, state: Dict[str, Any]) -> None:
        load_group(self.stats, state["stats"])


@register("prefetcher", "none")
class NullPrefetcher(Prefetcher):
    """The no-prefetching baseline every speedup is normalized to."""

    name = "none"
