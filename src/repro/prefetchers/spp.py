"""Signature Path Prefetcher (SPP), Kim et al., MICRO 2016.

SPP is the underlying prefetcher for the paper's PPF case study.  The
implementation follows §2.1 of the ISCA'19 paper:

* **Signature Table** — 256 entries tracking recently used pages; each
  holds the last block offset and a 12-bit signature compressing the
  page's delta history (``sig' = (sig << 3) XOR delta``).
* **Pattern Table** — 512 entries indexed by signature; each holds up to
  4 delta predictions with confidence counters ``C_delta`` against a
  per-signature counter ``C_sig``.
* **Lookahead** — on each trigger SPP walks its own predictions: the
  highest-confidence delta extends the speculative signature and the
  path confidence compounds as ``P_d = alpha * C_d * P_{d-1}`` where
  ``alpha`` is the measured global prefetch accuracy.
* **Thresholds** — candidates with ``P_d >= T_f`` (90) fill the L2,
  candidates with ``P_d >= T_p`` (25) fill the LLC, the rest are
  dropped.  PPF discards these thresholds and re-tunes SPP aggressively
  (:meth:`SPPConfig.aggressive`).
* **Global History Register** — 8 entries used to re-bootstrap patterns
  that cross a page boundary.

Candidates carry the metadata PPF's features need: the triggering PC,
the predicted delta, the signature used to index the pattern table, the
path confidence and the lookahead depth.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..memory.address import BLOCKS_PER_PAGE, encode_delta
from ..registry import register
from .base import PrefetchCandidate, Prefetcher

SIGNATURE_MASK = (1 << 12) - 1
SIGNATURE_SHIFT = 3


def update_signature(signature: int, delta: int) -> int:
    """SPP's signature compression: ``(sig << 3) XOR encode(delta)``."""
    return ((signature << SIGNATURE_SHIFT) ^ encode_delta(delta)) & SIGNATURE_MASK


@dataclass
class SPPConfig:
    """Structure sizes and thresholds from the paper (Table 3 / §2.1)."""

    signature_table_entries: int = 256
    pattern_table_entries: int = 512
    deltas_per_entry: int = 4
    counter_max: int = 15  # 4-bit C_sig / C_delta
    prefetch_threshold: int = 25  # T_p, percent
    fill_threshold: int = 90  # T_f, percent
    max_depth: int = 12
    ghr_entries: int = 8
    accuracy_counter_max: int = 1023  # 10-bit C_total / C_useful
    emit_all_candidates: bool = False
    lookahead_threshold: Optional[int] = None  # defaults to prefetch_threshold
    #: When False, path confidence does not compound across depths (the
    #: Figure 1 "fixed lookahead depth" tuning): each level is judged on
    #: its own C_d and the walk runs to max_depth regardless.
    compound_confidence: bool = True

    def __post_init__(self) -> None:
        if self.lookahead_threshold is None:
            self.lookahead_threshold = self.prefetch_threshold

    @classmethod
    def default(cls) -> "SPPConfig":
        """Stock SPP, thresholds T_p=25 / T_f=90 (§2.1)."""
        return cls()

    @classmethod
    def aggressive(cls) -> "SPPConfig":
        """SPP re-tuned for PPF (§4.1): internal throttling mostly discarded.

        The confidence gate drops from 25 to 10 and the lookahead walks
        twice as deep, so far more (and far less certain) candidates
        reach the perceptron, which now owns the accept/reject and
        fill-level decisions.
        """
        return cls(
            prefetch_threshold=10,
            fill_threshold=101,  # never used: PPF decides the fill level
            max_depth=24,
            lookahead_threshold=10,
        )

    @classmethod
    def fixed_depth(cls, depth: int) -> "SPPConfig":
        """Figure-1 style tuning: force lookahead to a fixed depth.

        The confidence throttle is disabled so the walk always runs
        ``depth`` levels deep (when pattern-table state allows).
        """
        return cls(
            prefetch_threshold=1,
            fill_threshold=90,
            max_depth=depth,
            lookahead_threshold=0,
            compound_confidence=False,
        )


@dataclass
class _SignatureEntry:
    __slots__ = ("last_offset", "signature")

    last_offset: int
    signature: int


@dataclass
class _PatternEntry:
    c_sig: int = 0
    deltas: Dict[int, int] = field(default_factory=dict)  # delta -> C_delta


@dataclass
class _GHREntry:
    __slots__ = ("signature", "confidence", "last_offset", "delta")

    signature: int
    confidence: int
    last_offset: int
    delta: int


@register("prefetcher", "spp")
class SPP(Prefetcher):
    """Signature Path Prefetcher with confidence-based lookahead."""

    name = "spp"

    def __init__(self, config: Optional[SPPConfig] = None) -> None:
        super().__init__()
        self.config = config or SPPConfig.default()
        self._signature_table: "OrderedDict[int, _SignatureEntry]" = OrderedDict()
        self._pattern_table: Dict[int, _PatternEntry] = {}
        self._ghr: List[_GHREntry] = []
        self._c_total = 0
        self._c_useful = 0
        #: signature the trigger page held *before* the latest update —
        #: exported to PPF for the (rejected) Last-Signature feature.
        self.last_signature = 0
        # depth accounting for the paper's "average lookahead depth"
        self.depth_sum = 0
        self.depth_count = 0

    # -- accuracy (alpha) -----------------------------------------------------

    @property
    def alpha_percent(self) -> int:
        """Global accuracy alpha on a 0-100 scale; optimistic until warm."""
        if self._c_total < 32:
            return 100
        return min(100, (100 * self._c_useful) // self._c_total)

    def on_prefetch_issued(self, candidate: PrefetchCandidate) -> None:
        super().on_prefetch_issued(candidate)
        self._c_total += 1
        if self._c_total >= self.config.accuracy_counter_max:
            self._c_total //= 2
            self._c_useful //= 2

    def on_useful_prefetch(self, addr: int) -> None:
        super().on_useful_prefetch(addr)
        self._c_useful = min(self._c_useful + 1, self.config.accuracy_counter_max)

    # -- training ---------------------------------------------------------------

    def train(
        self, addr: int, pc: int, cache_hit: bool, cycle: int
    ) -> List[PrefetchCandidate]:
        page = addr >> 12  # page_number, inlined (PAGE_BITS)
        offset = (addr >> 6) & 63  # page_offset_block, inlined
        table = self._signature_table
        entry = table.get(page)
        if entry is not None:
            table.move_to_end(page)
            signature = entry.signature
            self.last_signature = signature
            delta = offset - entry.last_offset
            if delta == 0:
                return self._lookahead(page, offset, signature, pc)
            self._update_pattern(signature, delta)
            signature = update_signature(signature, delta)
            entry.signature = signature
            entry.last_offset = offset
        else:
            self.last_signature = 0
            signature = self._bootstrap_from_ghr(offset)
            self._insert_signature_entry(page, offset, signature)
        return self._lookahead(page, offset, signature, pc)

    def _insert_signature_entry(self, page: int, offset: int, signature: int) -> None:
        table = self._signature_table
        if len(table) >= self.config.signature_table_entries:
            table.popitem(last=False)
        table[page] = _SignatureEntry(last_offset=offset, signature=signature)

    def _bootstrap_from_ghr(self, offset: int) -> int:
        """First touch of a page: continue a pattern that crossed into it."""
        for entry in self._ghr:
            predicted = entry.last_offset + entry.delta
            if predicted >= BLOCKS_PER_PAGE and predicted - BLOCKS_PER_PAGE == offset:
                return update_signature(entry.signature, entry.delta)
            if predicted < 0 and predicted + BLOCKS_PER_PAGE == offset:
                return update_signature(entry.signature, entry.delta)
        return 0

    def _record_ghr(self, signature: int, confidence: int, offset: int, delta: int) -> None:
        entry = _GHREntry(
            signature=signature, confidence=confidence, last_offset=offset, delta=delta
        )
        self._ghr.append(entry)
        if len(self._ghr) > self.config.ghr_entries:
            self._ghr.pop(0)

    def _update_pattern(self, signature: int, delta: int) -> None:
        cfg = self.config
        index = signature % cfg.pattern_table_entries
        entry = self._pattern_table.get(index)
        if entry is None:
            entry = _PatternEntry()
            self._pattern_table[index] = entry
        if entry.c_sig >= cfg.counter_max:
            entry.c_sig //= 2
            for known in list(entry.deltas):
                entry.deltas[known] //= 2
                if entry.deltas[known] == 0:
                    del entry.deltas[known]
        entry.c_sig += 1
        if delta in entry.deltas:
            entry.deltas[delta] = min(entry.deltas[delta] + 1, cfg.counter_max)
        elif len(entry.deltas) < cfg.deltas_per_entry:
            entry.deltas[delta] = 1
        else:
            weakest = min(entry.deltas, key=entry.deltas.get)
            del entry.deltas[weakest]
            entry.deltas[delta] = 1

    # -- prediction ---------------------------------------------------------------

    def _lookahead(
        self, page: int, offset: int, signature: int, pc: int
    ) -> List[PrefetchCandidate]:
        cfg = self.config
        max_depth = cfg.max_depth
        table_entries = cfg.pattern_table_entries
        compound = cfg.compound_confidence
        emit_all = cfg.emit_all_candidates
        prefetch_threshold = cfg.prefetch_threshold
        fill_threshold = cfg.fill_threshold
        lookahead_threshold = cfg.lookahead_threshold
        pattern_get = self._pattern_table.get
        page_base = page << 12  # block_in_page, inlined (PAGE_BITS)
        candidates: List[PrefetchCandidate] = []
        append = candidates.append
        path_confidence = 100
        current_offset = offset
        current_signature = signature
        alpha = self.alpha_percent
        depth = 1
        while depth <= max_depth:
            entry = pattern_get(current_signature % table_entries)
            if entry is None or entry.c_sig == 0 or not entry.deltas:
                break
            c_sig = entry.c_sig
            best_delta = None
            best_confidence = -1
            for delta, c_delta in entry.deltas.items():
                conf = (100 * c_delta) // c_sig
                if compound:
                    if depth > 1:
                        conf = (conf * alpha) // 100
                    p_d = (path_confidence * conf) // 100
                else:
                    p_d = conf
                if p_d > best_confidence:
                    best_confidence = p_d
                    best_delta = delta
                if not (emit_all or p_d >= prefetch_threshold):
                    continue
                target = current_offset + delta
                if 0 <= target < 64:  # BLOCKS_PER_PAGE
                    append(
                        PrefetchCandidate(
                            page_base | (target << 6),
                            p_d >= fill_threshold,
                            {
                                "pc": pc,
                                "delta": delta,
                                "signature": current_signature,
                                "confidence": 0 if p_d < 0 else (100 if p_d > 100 else p_d),
                                "depth": depth,
                            },
                        )
                    )
                else:
                    self._record_ghr(
                        current_signature, p_d, current_offset, delta
                    )
            if best_delta is None or best_confidence < lookahead_threshold:
                break
            next_offset = current_offset + best_delta
            if not 0 <= next_offset < 64:
                break
            current_offset = next_offset
            # update_signature, inlined with encode_delta
            magnitude = best_delta if best_delta >= 0 else -best_delta
            if magnitude > 63:
                magnitude = 63
            encoded = (64 | magnitude) if best_delta < 0 else magnitude
            current_signature = ((current_signature << 3) ^ encoded) & 0xFFF
            path_confidence = best_confidence
            depth += 1
        if depth > 1:
            self.depth_sum += depth - 1
            self.depth_count += 1
        return candidates

    # -- engine seam -----------------------------------------------------------

    def engine_view(self):
        """Raw mutable state for the batched engine's fused kernel.

        Returns ``(config, signature_table, pattern_table, ghr)``.  The
        containers are mutated in place by the kernel using the same
        structural rules as :meth:`train`/:meth:`_lookahead`.  The scalar
        counters that are *not* containers — ``_c_total``, ``_c_useful``,
        ``last_signature``, ``depth_sum``, ``depth_count`` and the
        inherited ``stats`` fields — are part of the seam contract too:
        the kernel reads them at chunk start and writes them back before
        returning, so ``state_dict`` is always consistent between chunks.
        """
        return (self.config, self._signature_table, self._pattern_table, self._ghr)

    # -- diagnostics ---------------------------------------------------------------

    @property
    def average_lookahead_depth(self) -> float:
        """Mean depth the lookahead walk reached across triggers."""
        if self.depth_count == 0:
            return 0.0
        return self.depth_sum / self.depth_count

    def pattern_entry_count(self) -> int:
        return len(self._pattern_table)

    def confidence_summary(self) -> Dict[str, float]:
        """Mean/max per-delta confidence over the live pattern table.

        Read-only telemetry: confidences are computed exactly as the
        lookahead walk does (``100 * C_delta // C_sig``) but nothing is
        touched, so sampling this mid-run cannot perturb a simulation.
        """
        total = 0
        count = 0
        highest = 0
        for entry in self._pattern_table.values():
            c_sig = entry.c_sig
            if c_sig <= 0:
                continue
            for c_delta in entry.deltas.values():
                conf = (100 * c_delta) // c_sig
                total += conf
                count += 1
                if conf > highest:
                    highest = conf
        return {
            "mean_confidence": (total / count) if count else 0.0,
            "max_confidence": float(highest),
            "tracked_deltas": float(count),
        }

    def signature_entry_count(self) -> int:
        return len(self._signature_table)

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self):
        """Tables, GHR, alpha counters and depth accounting.

        Order is semantic twice over: signature-table pair order is the
        LRU eviction order, and delta pair order within a pattern entry
        decides both candidate emission order and the ``min()`` tie-break
        when a fifth delta displaces one.
        """
        state = super().state_dict()
        state.update(
            signature_table=[
                [page, [entry.last_offset, entry.signature]]
                for page, entry in self._signature_table.items()
            ],
            pattern_table=[
                [index, [entry.c_sig, [[delta, count] for delta, count in entry.deltas.items()]]]
                for index, entry in self._pattern_table.items()
            ],
            ghr=[
                [entry.signature, entry.confidence, entry.last_offset, entry.delta]
                for entry in self._ghr
            ],
            c_total=self._c_total,
            c_useful=self._c_useful,
            last_signature=self.last_signature,
            depth_sum=self.depth_sum,
            depth_count=self.depth_count,
        )
        return state

    def load_state(self, state) -> None:
        super().load_state(state)
        self._signature_table = OrderedDict(
            (int(page), _SignatureEntry(int(last_offset), int(signature)))
            for page, (last_offset, signature) in state["signature_table"]
        )
        self._pattern_table = {
            int(index): _PatternEntry(
                c_sig=int(c_sig),
                deltas={int(delta): int(count) for delta, count in deltas},
            )
            for index, (c_sig, deltas) in state["pattern_table"]
        }
        self._ghr = [
            _GHREntry(int(sig), int(conf), int(offset), int(delta))
            for sig, conf, offset, delta in state["ghr"]
        ]
        self._c_total = int(state["c_total"])
        self._c_useful = int(state["c_useful"])
        self.last_signature = int(state["last_signature"])
        self.depth_sum = int(state["depth_sum"])
        self.depth_count = int(state["depth_count"])
