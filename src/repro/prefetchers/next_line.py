"""Next-N-line prefetcher: the simplest spatial baseline (§7.1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..memory.address import same_page
from ..registry import register
from .base import PrefetchCandidate, Prefetcher


@dataclass
class NextLineConfig:
    degree: int = 1

    @classmethod
    def default(cls) -> "NextLineConfig":
        return cls()


@register("prefetcher", "next-line")
class NextLine(Prefetcher):
    """Prefetch the ``degree`` blocks following every demand access."""

    name = "next-line"

    def __init__(self, config: Optional[NextLineConfig] = None) -> None:
        super().__init__()
        self.config = config or NextLineConfig.default()

    def train(
        self, addr: int, pc: int, cache_hit: bool, cycle: int
    ) -> List[PrefetchCandidate]:
        block = addr >> 6
        candidates = []
        for i in range(1, self.config.degree + 1):
            target = (block + i) << 6
            if same_page(addr, target):
                candidates.append(
                    PrefetchCandidate(addr=target, fill_l2=True, meta={"pc": pc, "depth": i})
                )
        return candidates
