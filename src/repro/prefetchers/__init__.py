"""Hardware prefetchers: SPP (the paper's substrate), BOP, AMPM/DA-AMPM
and simple baselines.  The PPF filter wrapper lives in :mod:`repro.core`.
"""

from .ampm import AMPM, AMPMConfig, DAAMPM, DAAMPMConfig
from .base import NullPrefetcher, PrefetchCandidate, Prefetcher, PrefetcherStats
from .bop import BOP, BOPConfig, default_offset_list
from .next_line import NextLine, NextLineConfig
from .spp import SPP, SPPConfig, update_signature
from .stride import StrideConfig, StridePrefetcher
from .vldp import VLDP, VLDPConfig

__all__ = [
    "AMPM",
    "AMPMConfig",
    "DAAMPM",
    "DAAMPMConfig",
    "NullPrefetcher",
    "PrefetchCandidate",
    "Prefetcher",
    "PrefetcherStats",
    "BOP",
    "BOPConfig",
    "default_offset_list",
    "NextLine",
    "NextLineConfig",
    "SPP",
    "SPPConfig",
    "update_signature",
    "StrideConfig",
    "StridePrefetcher",
    "VLDP",
    "VLDPConfig",
]
