"""PC-indexed stride prefetcher (Baer & Chen style), a classic baseline.

Each load PC gets a table entry tracking its last address and last
stride; after two consecutive accesses with the same non-zero stride the
entry is *confirmed* and the prefetcher issues ``degree`` strided blocks
ahead.  Used in tests and ablations as the historical reference point
the paper's introduction mentions.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from ..memory.address import same_page
from ..registry import register
from .base import PrefetchCandidate, Prefetcher


@dataclass
class StrideConfig:
    table_entries: int = 256
    degree: int = 2
    confidence_max: int = 3
    confirm_at: int = 2

    @classmethod
    def default(cls) -> "StrideConfig":
        return cls()


@dataclass
class _StrideEntry:
    __slots__ = ("last_block", "stride", "confidence")

    last_block: int
    stride: int
    confidence: int


@register("prefetcher", "stride")
class StridePrefetcher(Prefetcher):
    """Per-PC stride detection with saturating confirmation."""

    name = "stride"

    def __init__(self, config: Optional[StrideConfig] = None) -> None:
        super().__init__()
        self.config = config or StrideConfig.default()
        self._table: "OrderedDict[int, _StrideEntry]" = OrderedDict()

    def train(
        self, addr: int, pc: int, cache_hit: bool, cycle: int
    ) -> List[PrefetchCandidate]:
        cfg = self.config
        block = addr >> 6
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= cfg.table_entries:
                self._table.popitem(last=False)
            self._table[pc] = _StrideEntry(last_block=block, stride=0, confidence=0)
            return []
        self._table.move_to_end(pc)
        stride = block - entry.last_block
        if stride != 0 and stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, cfg.confidence_max)
        else:
            entry.stride = stride
            entry.confidence = 0 if stride == 0 else 1
        entry.last_block = block
        if entry.confidence < cfg.confirm_at or entry.stride == 0:
            return []
        candidates = []
        for i in range(1, cfg.degree + 1):
            target = (block + i * entry.stride) << 6
            if target >= 0 and same_page(addr, target):
                candidates.append(
                    PrefetchCandidate(
                        addr=target,
                        fill_l2=True,
                        meta={"pc": pc, "stride": entry.stride, "depth": i},
                    )
                )
        return candidates

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self):
        state = super().state_dict()
        # Pair order is the table's LRU eviction order.
        state["table"] = [
            [pc, [entry.last_block, entry.stride, entry.confidence]]
            for pc, entry in self._table.items()
        ]
        return state

    def load_state(self, state) -> None:
        super().load_state(state)
        self._table = OrderedDict(
            (int(pc), _StrideEntry(int(last_block), int(stride), int(confidence)))
            for pc, (last_block, stride, confidence) in state["table"]
        )
