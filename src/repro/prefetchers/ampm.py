"""Access Map Pattern Matching (AMPM) and its DRAM-aware variant.

AMPM (Ishii et al., ICS 2009) keeps a bitmap ("access map") of the
blocks touched in each hot memory zone.  On every access to block ``X``
it scans fixed strides ``k``: when ``X - k`` and ``X - 2k`` were both
accessed, the stride is considered established and ``X + k`` is
prefetched (symmetrically for negative strides).

DA-AMPM (Ishii et al., ICS 2012) is the paper's comparison variant: it
*delays* some prefetches so that requests to the same DRAM row issue
back-to-back, converting row misses into row hits.  Here that is
modelled with a per-row pending buffer: candidates wait until their row
has gathered ``batch_size`` requests (or ages out), then the whole row
group is released together — consecutive same-row accesses then hit the
open row in :class:`repro.memory.dram.DRAM`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..memory.address import BLOCKS_PER_PAGE, block_in_page, page_number, page_offset_block
from ..memory.dram import ROW_BITS
from ..registry import register
from .base import PrefetchCandidate, Prefetcher


@dataclass
class AMPMConfig:
    zones: int = 64  # tracked pages (access maps)
    max_stride: int = 16
    degree: int = 2  # prefetches per matched stride

    @classmethod
    def default(cls) -> "AMPMConfig":
        return cls()


@register("prefetcher", "ampm")
class AMPM(Prefetcher):
    """Spatial pattern-matching prefetcher over per-page access maps."""

    name = "ampm"

    def __init__(self, config: Optional[AMPMConfig] = None) -> None:
        super().__init__()
        self.config = config or AMPMConfig.default()
        self._maps: "OrderedDict[int, int]" = OrderedDict()  # page -> bitmap

    def _map_for(self, page: int) -> int:
        bitmap = self._maps.get(page)
        if bitmap is None:
            if len(self._maps) >= self.config.zones:
                self._maps.popitem(last=False)
            bitmap = 0
        else:
            self._maps.move_to_end(page)
        return bitmap

    def train(
        self, addr: int, pc: int, cache_hit: bool, cycle: int
    ) -> List[PrefetchCandidate]:
        page = page_number(addr)
        offset = page_offset_block(addr)
        bitmap = self._map_for(page)
        candidates = self._match(page, offset, bitmap, pc)
        self._maps[page] = bitmap | (1 << offset)
        return candidates

    def _match(
        self, page: int, offset: int, bitmap: int, pc: int
    ) -> List[PrefetchCandidate]:
        cfg = self.config
        candidates: List[PrefetchCandidate] = []
        seen = set()
        for direction in (1, -1):
            for stride in range(1, cfg.max_stride + 1):
                back1 = offset - direction * stride
                back2 = offset - 2 * direction * stride
                if not (0 <= back1 < BLOCKS_PER_PAGE and 0 <= back2 < BLOCKS_PER_PAGE):
                    continue
                if not (bitmap >> back1) & 1 or not (bitmap >> back2) & 1:
                    continue
                for i in range(1, cfg.degree + 1):
                    target = offset + direction * stride * i
                    if not 0 <= target < BLOCKS_PER_PAGE:
                        break
                    if (bitmap >> target) & 1 or target in seen:
                        continue
                    seen.add(target)
                    candidates.append(
                        PrefetchCandidate(
                            addr=block_in_page(page, target),
                            fill_l2=True,
                            meta={"pc": pc, "stride": direction * stride, "depth": i},
                        )
                    )
        return candidates

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self):
        state = super().state_dict()
        # Pair order is the zone LRU; bitmaps are arbitrary-width ints.
        state["maps"] = [[page, bitmap] for page, bitmap in self._maps.items()]
        return state

    def load_state(self, state) -> None:
        super().load_state(state)
        self._maps = OrderedDict(
            (int(page), int(bitmap)) for page, bitmap in state["maps"]
        )


@dataclass
class DAAMPMConfig(AMPMConfig):
    batch_size: int = 2  # same-row requests needed to release a batch
    max_age: int = 8  # triggers a candidate may wait before forced release

    @classmethod
    def default(cls) -> "DAAMPMConfig":
        return cls()


@register("prefetcher", "da-ampm")
class DAAMPM(AMPM):
    """DRAM-aware AMPM: batches prefetches by DRAM row before issue."""

    name = "da-ampm"

    def __init__(self, config: Optional[DAAMPMConfig] = None) -> None:
        super().__init__(config or DAAMPMConfig.default())
        self._pending: Dict[int, List[Tuple[int, PrefetchCandidate]]] = {}
        self._trigger_count = 0

    def train(
        self, addr: int, pc: int, cache_hit: bool, cycle: int
    ) -> List[PrefetchCandidate]:
        self._trigger_count += 1
        fresh = super().train(addr, pc, cache_hit, cycle)
        for candidate in fresh:
            row = candidate.addr >> ROW_BITS
            self._pending.setdefault(row, []).append((self._trigger_count, candidate))
        return self._release()

    def _release(self) -> List[PrefetchCandidate]:
        cfg: DAAMPMConfig = self.config  # type: ignore[assignment]
        released: List[PrefetchCandidate] = []
        now = self._trigger_count
        for row in list(self._pending):
            group = self._pending[row]
            ready = len(group) >= cfg.batch_size
            aged = group and now - group[0][0] >= cfg.max_age
            if ready or aged:
                released.extend(candidate for _when, candidate in group)
                del self._pending[row]
        return released

    def pending_count(self) -> int:
        """Candidates currently held back (for tests)."""
        return sum(len(group) for group in self._pending.values())

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self):
        state = super().state_dict()
        state.update(
            pending=[
                [
                    row,
                    [
                        [when, [candidate.addr, candidate.fill_l2, candidate.meta]]
                        for when, candidate in group
                    ],
                ]
                for row, group in self._pending.items()
            ],
            trigger_count=self._trigger_count,
        )
        return state

    def load_state(self, state) -> None:
        super().load_state(state)
        self._pending = {
            int(row): [
                (int(when), PrefetchCandidate(int(addr), bool(fill_l2), dict(meta)))
                for when, (addr, fill_l2, meta) in group
            ]
            for row, group in state["pending"]
        }
        self._trigger_count = int(state["trigger_count"])
