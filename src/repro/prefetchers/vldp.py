"""Variable Length Delta Prefetcher (VLDP), Shevgoor et al., MICRO 2015.

A related-work lookahead prefetcher (§7.2) included as an extra
comparator and as a second substrate for PPF's generality experiments.
VLDP correlates *histories of deltas* within a page with the next delta:

* a **Delta History Buffer** (DHB) tracks, per recently-touched page,
  the last block offset and the last few deltas;
* **Delta Prediction Tables** (DPTs) of increasing order map the last
  1, 2 or 3 deltas to the most likely next delta, with accuracy
  counters; the longest-history table that has a confident prediction
  wins;
* an **Offset Prediction Table** (OPT) predicts the first delta of a
  brand-new page from the offset of its first access.

This implementation follows the paper's structure with simplified
replacement (LRU dictionaries) and per-table saturating accuracy
counters.  Multi-degree prefetching walks the DPTs in lookahead fashion
like the original.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..memory.address import BLOCKS_PER_PAGE, block_in_page, page_number, page_offset_block
from ..registry import register
from .base import PrefetchCandidate, Prefetcher


@dataclass
class VLDPConfig:
    dhb_entries: int = 16
    dpt_entries: int = 64
    opt_entries: int = 64
    history_length: int = 3  # deltas kept per page / max DPT order
    degree: int = 4  # lookahead steps per trigger
    confidence_threshold: int = 1  # counter value needed to predict

    @classmethod
    def default(cls) -> "VLDPConfig":
        return cls()


@dataclass
class _DHBEntry:
    __slots__ = ("last_offset", "deltas")

    last_offset: int
    deltas: List[int]


@dataclass
class _DPTEntry:
    __slots__ = ("delta", "confidence")

    delta: int
    confidence: int


@register("prefetcher", "vldp")
class VLDP(Prefetcher):
    """Delta-history prefetcher with multi-order prediction tables."""

    name = "vldp"

    def __init__(self, config: Optional[VLDPConfig] = None) -> None:
        super().__init__()
        self.config = config or VLDPConfig.default()
        self._dhb: "OrderedDict[int, _DHBEntry]" = OrderedDict()
        # One DPT per history order: key = tuple of recent deltas.
        self._dpts: List[Dict[Tuple[int, ...], _DPTEntry]] = [
            {} for _ in range(self.config.history_length)
        ]
        self._opt: Dict[int, _DPTEntry] = {}

    # -- training ---------------------------------------------------------------

    def train(
        self, addr: int, pc: int, cache_hit: bool, cycle: int
    ) -> List[PrefetchCandidate]:
        page = page_number(addr)
        offset = page_offset_block(addr)
        entry = self._dhb.get(page)
        if entry is None:
            self._insert_dhb(page, offset)
            return self._predict_new_page(page, offset, pc)
        self._dhb.move_to_end(page)
        delta = offset - entry.last_offset
        if delta == 0:
            return []
        self._learn(entry.deltas, delta, first_offset=None)
        if not entry.deltas:
            self._learn_opt(entry.last_offset, delta)
        entry.deltas.append(delta)
        if len(entry.deltas) > self.config.history_length:
            entry.deltas.pop(0)
        entry.last_offset = offset
        return self._lookahead(page, offset, list(entry.deltas), pc)

    def _insert_dhb(self, page: int, offset: int) -> None:
        if len(self._dhb) >= self.config.dhb_entries:
            self._dhb.popitem(last=False)
        self._dhb[page] = _DHBEntry(last_offset=offset, deltas=[])

    def _learn(self, history: List[int], outcome: int, first_offset) -> None:
        """Update every DPT order that has enough history."""
        for order in range(1, min(len(history), self.config.history_length) + 1):
            key = tuple(history[-order:])
            table = self._dpts[order - 1]
            entry = table.get(key)
            if entry is None:
                if len(table) >= self.config.dpt_entries:
                    table.pop(next(iter(table)))
                table[key] = _DPTEntry(delta=outcome, confidence=1)
            elif entry.delta == outcome:
                entry.confidence = min(entry.confidence + 1, 3)
            else:
                entry.confidence -= 1
                if entry.confidence <= 0:
                    entry.delta = outcome
                    entry.confidence = 1

    def _learn_opt(self, first_offset: int, delta: int) -> None:
        entry = self._opt.get(first_offset)
        if entry is None:
            if len(self._opt) >= self.config.opt_entries:
                self._opt.pop(next(iter(self._opt)))
            self._opt[first_offset] = _DPTEntry(delta=delta, confidence=1)
        elif entry.delta == delta:
            entry.confidence = min(entry.confidence + 1, 3)
        else:
            entry.confidence -= 1
            if entry.confidence <= 0:
                entry.delta = delta
                entry.confidence = 1

    # -- prediction ---------------------------------------------------------------

    def _best_prediction(self, history: List[int]) -> Optional[int]:
        """Longest-history DPT with a confident entry wins."""
        for order in range(min(len(history), self.config.history_length), 0, -1):
            key = tuple(history[-order:])
            entry = self._dpts[order - 1].get(key)
            if entry is not None and entry.confidence >= self.config.confidence_threshold:
                return entry.delta
        return None

    def _lookahead(
        self, page: int, offset: int, history: List[int], pc: int
    ) -> List[PrefetchCandidate]:
        candidates: List[PrefetchCandidate] = []
        current = offset
        for depth in range(1, self.config.degree + 1):
            delta = self._best_prediction(history)
            if delta is None:
                break
            target = current + delta
            if not 0 <= target < BLOCKS_PER_PAGE:
                break
            candidates.append(
                PrefetchCandidate(
                    addr=block_in_page(page, target),
                    fill_l2=depth == 1,  # deeper speculation fills the LLC
                    meta={"pc": pc, "delta": delta, "depth": depth, "confidence": 50},
                )
            )
            history = (history + [delta])[-self.config.history_length :]
            current = target
        return candidates

    def _predict_new_page(self, page: int, offset: int, pc: int) -> List[PrefetchCandidate]:
        entry = self._opt.get(offset)
        if entry is None or entry.confidence < self.config.confidence_threshold:
            return []
        target = offset + entry.delta
        if not 0 <= target < BLOCKS_PER_PAGE:
            return []
        return [
            PrefetchCandidate(
                addr=block_in_page(page, target),
                fill_l2=True,
                meta={"pc": pc, "delta": entry.delta, "depth": 1, "confidence": 50},
            )
        ]

    # -- diagnostics ---------------------------------------------------------------

    def dpt_sizes(self) -> List[int]:
        return [len(table) for table in self._dpts]

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self):
        state = super().state_dict()
        state.update(
            # DHB pair order is LRU; DPT pair order is the FIFO-ish
            # eviction order (pop of the oldest key when full).  DPT keys
            # are delta-history tuples, so they serialize as lists.
            dhb=[
                [page, [entry.last_offset, list(entry.deltas)]]
                for page, entry in self._dhb.items()
            ],
            dpts=[
                [
                    [list(history), [entry.delta, entry.confidence]]
                    for history, entry in table.items()
                ]
                for table in self._dpts
            ],
            opt=[
                [offset, [entry.delta, entry.confidence]]
                for offset, entry in self._opt.items()
            ],
        )
        return state

    def load_state(self, state) -> None:
        super().load_state(state)
        self._dhb = OrderedDict(
            (int(page), _DHBEntry(int(last_offset), [int(d) for d in deltas]))
            for page, (last_offset, deltas) in state["dhb"]
        )
        dpts = state["dpts"]
        if len(dpts) != len(self._dpts):
            raise ValueError(
                f"snapshot has {len(dpts)} DPTs, config builds {len(self._dpts)}"
            )
        self._dpts = [
            {
                tuple(int(d) for d in history): _DPTEntry(int(delta), int(confidence))
                for history, (delta, confidence) in table
            }
            for table in dpts
        ]
        self._opt = {
            int(offset): _DPTEntry(int(delta), int(confidence))
            for offset, (delta, confidence) in state["opt"]
        }
