"""Best-Offset Prefetcher (BOP), Michaud, HPCA 2016.

BOP was the winner of DPC-2 and is one of the paper's three comparison
points.  It learns a single best prefetch *offset* by scoring candidate
offsets against a Recent Requests (RR) table:

* the RR table remembers base addresses ``X`` for which the line
  ``X + D`` was recently filled (``D`` = offset active at the time);
* during a learning phase, offsets take turns being tested: offset
  ``d`` scores a point when the current access ``Y`` finds ``Y - d`` in
  the RR table, i.e. prefetching with offset ``d`` would have been
  timely;
* a phase ends when an offset reaches ``score_max`` or after
  ``round_max`` rounds; the winner becomes the active offset, and if
  even the winner scored at or below ``bad_score`` prefetching turns
  off for the next phase.

BOP prefetches ``X + D`` into the L2 on every demand access, which is
the "aggressive and localized" behaviour the paper credits for its win
on 607.cactuBSSN_s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..registry import register
from .base import PrefetchCandidate, Prefetcher


def default_offset_list() -> List[int]:
    """Michaud's candidate offsets: 1..256 with factors 2, 3 and 5 only."""
    offsets = []
    for value in range(1, 257):
        reduced = value
        for factor in (2, 3, 5):
            while reduced % factor == 0:
                reduced //= factor
        if reduced == 1:
            offsets.append(value)
    return offsets


@dataclass
class BOPConfig:
    offsets: List[int] = field(default_factory=default_offset_list)
    score_max: int = 31
    round_max: int = 100
    bad_score: int = 1
    rr_entries: int = 256
    degree: int = 1

    @classmethod
    def default(cls) -> "BOPConfig":
        return cls()


@register("prefetcher", "bop")
class BOP(Prefetcher):
    """Best-Offset prefetcher with RR-table offset scoring."""

    name = "bop"

    def __init__(self, config: Optional[BOPConfig] = None) -> None:
        super().__init__()
        self.config = config or BOPConfig.default()
        self._rr = [0] * self.config.rr_entries
        self._scores = [0] * len(self.config.offsets)
        self._test_index = 0
        self._round = 0
        self.best_offset = 1
        self.prefetch_on = True

    # -- RR table -------------------------------------------------------------

    def _rr_index(self, block: int) -> int:
        return (block ^ (block >> 8)) % self.config.rr_entries

    def _rr_insert(self, block: int) -> None:
        self._rr[self._rr_index(block)] = block

    def _rr_hit(self, block: int) -> bool:
        return self._rr[self._rr_index(block)] == block

    # -- learning ---------------------------------------------------------------

    def _learn(self, block: int) -> None:
        cfg = self.config
        offset = cfg.offsets[self._test_index]
        if self._rr_hit(block - offset):
            self._scores[self._test_index] += 1
            if self._scores[self._test_index] >= cfg.score_max:
                self._end_phase()
                return
        self._test_index += 1
        if self._test_index >= len(cfg.offsets):
            self._test_index = 0
            self._round += 1
            if self._round >= cfg.round_max:
                self._end_phase()

    def _end_phase(self) -> None:
        cfg = self.config
        best_index = max(range(len(cfg.offsets)), key=self._scores.__getitem__)
        best_score = self._scores[best_index]
        self.best_offset = cfg.offsets[best_index]
        self.prefetch_on = best_score > cfg.bad_score
        self._scores = [0] * len(cfg.offsets)
        self._test_index = 0
        self._round = 0

    # -- operation ----------------------------------------------------------------

    def train(
        self, addr: int, pc: int, cache_hit: bool, cycle: int
    ) -> List[PrefetchCandidate]:
        block = addr >> 6
        self._learn(block)
        # Recent-requests insertion.  Michaud inserts the *base* X when
        # the fill of a prefetch X+D completes; recording every demand
        # access works out to the same offset relation (offset d scores
        # when the current access sits d blocks past a recent one) and
        # avoids starving the table once prefetching turns the stream's
        # misses into hits.
        self._rr_insert(block)
        if not self.prefetch_on:
            return []
        # Unlike page-local prefetchers, BOP offsets routinely cross 4 KB
        # boundaries (offsets up to 256 blocks): it prefetches in the
        # physical address space.
        return [
            PrefetchCandidate(
                addr=(block + i * self.best_offset) << 6,
                fill_l2=True,
                meta={"pc": pc, "offset": self.best_offset, "depth": i},
            )
            for i in range(1, self.config.degree + 1)
        ]

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self):
        state = super().state_dict()
        state.update(
            rr=list(self._rr),
            scores=list(self._scores),
            test_index=self._test_index,
            round=self._round,
            best_offset=self.best_offset,
            prefetch_on=self.prefetch_on,
        )
        return state

    def load_state(self, state) -> None:
        super().load_state(state)
        self._rr[:] = [int(block) for block in state["rr"]]
        self._scores[:] = [int(score) for score in state["scores"]]
        self._test_index = int(state["test_index"])
        self._round = int(state["round"])
        self.best_offset = int(state["best_offset"])
        self.prefetch_on = bool(state["prefetch_on"])
