"""Trace format for the trace-driven simulator.

A trace is a sequence of :class:`TraceRecord` items, each describing one
memory load: the PC of the load instruction, the byte address it reads,
and the number of non-memory instructions retired since the previous
load (``bubble``).  This is the information ChampSim traces carry that
PPF and the cache hierarchy actually consume; everything else (register
dataflow, branches) is abstracted into the core timing model.

Traces can be streamed from generators, materialized into lists, or
round-tripped through a compact text format for the examples.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, TextIO

from ..memory.address import page_number


@dataclass(frozen=True)
class TraceRecord:
    """One memory load plus the instruction bubble preceding it."""

    __slots__ = ("pc", "addr", "bubble")

    pc: int
    addr: int
    bubble: int

    def __post_init__(self) -> None:
        if self.pc < 0 or self.addr < 0 or self.bubble < 0:
            raise ValueError("trace record fields must be non-negative")

    @property
    def instructions(self) -> int:
        """Instructions this record retires: the load plus its bubble."""
        return self.bubble + 1


@dataclass
class TraceStats:
    """Summary statistics of one trace (used to pick mem-intensive sets)."""

    records: int
    instructions: int
    unique_blocks: int
    unique_pages: int

    @property
    def loads_per_kilo_instruction(self) -> float:
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.records / self.instructions


def trace_stats(trace: Iterable[TraceRecord]) -> TraceStats:
    """Single-pass summary of a trace."""
    records = 0
    instructions = 0
    blocks = set()
    pages = set()
    for rec in trace:
        records += 1
        instructions += rec.instructions
        blocks.add(rec.addr >> 6)
        pages.add(page_number(rec.addr))
    return TraceStats(
        records=records,
        instructions=instructions,
        unique_blocks=len(blocks),
        unique_pages=len(pages),
    )


def write_trace(trace: Iterable[TraceRecord], stream: TextIO) -> int:
    """Serialize a trace as one ``pc addr bubble`` hex/dec line per record.

    Returns the number of records written.
    """
    count = 0
    for rec in trace:
        stream.write(f"{rec.pc:x} {rec.addr:x} {rec.bubble}\n")
        count += 1
    return count


def read_trace(stream: TextIO) -> Iterator[TraceRecord]:
    """Parse the text format written by :func:`write_trace`."""
    for line_number, line in enumerate(stream, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3:
            raise ValueError(f"line {line_number}: expected 'pc addr bubble', got {line!r}")
        pc, addr, bubble = int(parts[0], 16), int(parts[1], 16), int(parts[2])
        yield TraceRecord(pc=pc, addr=addr, bubble=bubble)


def trace_to_string(trace: Iterable[TraceRecord]) -> str:
    """Serialize a trace to a string (convenience for examples/tests)."""
    buffer = io.StringIO()
    write_trace(trace, buffer)
    return buffer.getvalue()


def trace_from_string(text: str) -> List[TraceRecord]:
    """Parse a trace from a string (convenience for examples/tests)."""
    return list(read_trace(io.StringIO(text)))


def footprint_by_page(trace: Iterable[TraceRecord]) -> Dict[int, int]:
    """Map page number -> number of distinct blocks touched in that page."""
    pages: Dict[int, set] = {}
    for rec in trace:
        pages.setdefault(page_number(rec.addr), set()).add(rec.addr >> 6)
    return {page: len(blocks) for page, blocks in pages.items()}
