"""Out-of-order core timing model (ROB-window approximation).

A full cycle-accurate OoO pipeline is unnecessary for this paper: what
matters is that (1) independent misses overlap up to the machine's MLP,
(2) the reorder buffer bounds how far execution runs ahead of a stalled
load, and (3) non-memory instructions retire at the pipeline width.  The
model here captures all three in O(1) per record:

* non-memory instructions retire ``width`` per cycle;
* each load is issued to the hierarchy at the current cycle and its
  completion time is tracked in an outstanding-load window;
* issuing stalls when either the window hits the MSHR/MLP limit or the
  oldest incomplete load is more than ``rob_size`` instructions behind.

IPC falls out as retired instructions over elapsed cycles.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, Optional, Tuple

from ..checkpoint.state import group_state, load_group
from ..memory.hierarchy import MemoryHierarchy
from ..stats import StatGroup
from .trace import TraceRecord


@dataclass
class CoreStats(StatGroup):
    """Issue-side counters (why the core was not issuing).

    Registered into the hierarchy's stats tree under ``core<i>.cpu``,
    so per-core stall behaviour shows up in every RunResult snapshot.
    """

    loads: int = 0
    rob_stalls: int = 0
    mlp_stalls: int = 0


@dataclass
class CoreConfig:
    """Table-1-style core parameters."""

    width: int = 4
    rob_size: int = 352
    #: Demand misses a core can overlap.  Dependency chains keep real
    #: cores far below their MSHR count; 4 is a representative value and
    #: is what makes prefetching (which is not ROB/dependency-limited)
    #: able to beat demand-fetch at all.
    mlp_limit: int = 4

    @classmethod
    def default(cls) -> "CoreConfig":
        return cls()


@dataclass
class CoreResult:
    """Measurement outcome for one core."""

    instructions: int
    cycles: int

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles


class O3Core:
    """One core's retirement clock, wired to a shared hierarchy."""

    def __init__(
        self,
        core_id: int,
        hierarchy: MemoryHierarchy,
        config: Optional[CoreConfig] = None,
    ) -> None:
        self.core_id = core_id
        self.hierarchy = hierarchy
        self.config = config or CoreConfig.default()
        self.stats = CoreStats()
        # Mount into the hierarchy's stats tree when there is one (test
        # doubles that only implement access() don't carry a tree).
        stats_tree = getattr(hierarchy, "stats", None)
        if stats_tree is not None:
            stats_tree.child(f"core{core_id}").attach("cpu", self.stats)
        self.cycle = 0
        self.instructions = 0
        self._retire_frac = 0
        self._seq = 0
        self._outstanding: Deque[Tuple[int, int]] = deque()  # (completion, seq)
        self._measure_start_cycle = 0
        self._measure_start_instructions = 0

    # -- execution -----------------------------------------------------------

    def step(self, rec: TraceRecord) -> None:
        """Retire one trace record: its bubble then its load."""
        cfg = self.config
        bubble = rec.bubble
        # Retire the non-memory bubble at full width.
        retire = self._retire_frac + bubble
        width = cfg.width
        cycle = self.cycle + retire // width
        self._retire_frac = retire % width

        seq = self._seq + 1
        self._seq = seq
        outstanding = self._outstanding
        popleft = outstanding.popleft
        while outstanding and outstanding[0][0] <= cycle:
            popleft()
        stats = self.stats
        # ROB limit: cannot issue while the oldest incomplete load is
        # more than rob_size instructions old.
        rob_horizon = seq - cfg.rob_size
        while outstanding and outstanding[0][1] <= rob_horizon:
            stats.rob_stalls += 1
            completion = popleft()[0]
            if completion > cycle:
                cycle = completion
            while outstanding and outstanding[0][0] <= cycle:
                popleft()
        # MSHR/MLP limit.
        mlp_limit = cfg.mlp_limit
        while len(outstanding) >= mlp_limit:
            stats.mlp_stalls += 1
            completion = popleft()[0]
            if completion > cycle:
                cycle = completion
            while outstanding and outstanding[0][0] <= cycle:
                popleft()
        stats.loads += 1
        self.cycle = cycle

        ready = self.hierarchy.access(self.core_id, rec.pc, rec.addr, cycle).ready_cycle
        if ready > cycle:
            outstanding.append((ready, seq))
        self.instructions += bubble + 1

    def drain(self) -> None:
        """Advance the clock past every outstanding load."""
        while self._outstanding:
            self._wait_oldest()

    def run(self, trace: Iterable[TraceRecord]) -> CoreResult:
        """Execute a whole trace and report the measured region."""
        for rec in trace:
            self.step(rec)
        self.drain()
        return self.result()

    # -- observability ---------------------------------------------------------

    @property
    def outstanding_loads(self) -> int:
        """In-flight loads right now (the ROB-window occupancy probe)."""
        return len(self._outstanding)

    @property
    def measured_instructions(self) -> int:
        """Instructions retired since the measurement window opened."""
        return self.instructions - self._measure_start_instructions

    @property
    def measured_cycles(self) -> int:
        """Cycles elapsed since the measurement window opened."""
        return self.cycle - self._measure_start_cycle

    @property
    def measured_ipc(self) -> float:
        """IPC over the open measurement window (0.0 before any cycle)."""
        cycles = self.measured_cycles
        if cycles <= 0:
            return 0.0
        return self.measured_instructions / cycles

    # -- measurement windows ---------------------------------------------------

    def begin_measurement(self) -> None:
        """Mark the end of warmup; stats measured from this point."""
        self._measure_start_cycle = self.cycle
        self._measure_start_instructions = self.instructions

    def result(self) -> CoreResult:
        return CoreResult(
            instructions=self.instructions - self._measure_start_instructions,
            cycles=max(1, self.cycle - self._measure_start_cycle),
        )

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "cycle": self.cycle,
            "instructions": self.instructions,
            "retire_frac": self._retire_frac,
            "seq": self._seq,
            "outstanding": [[completion, seq] for completion, seq in self._outstanding],
            "measure_start_cycle": self._measure_start_cycle,
            "measure_start_instructions": self._measure_start_instructions,
            "stats": group_state(self.stats),
        }

    def load_state(self, state: dict) -> None:
        self.cycle = int(state["cycle"])
        self.instructions = int(state["instructions"])
        self._retire_frac = int(state["retire_frac"])
        self._seq = int(state["seq"])
        self._outstanding = deque(
            (int(completion), int(seq)) for completion, seq in state["outstanding"]
        )
        self._measure_start_cycle = int(state["measure_start_cycle"])
        self._measure_start_instructions = int(state["measure_start_instructions"])
        load_group(self.stats, state["stats"])

    # -- internals ---------------------------------------------------------------

    def _drain_completed(self) -> None:
        outstanding = self._outstanding
        cycle = self.cycle
        while outstanding and outstanding[0][0] <= cycle:
            outstanding.popleft()

    def _wait_oldest(self) -> None:
        completion, _seq = self._outstanding.popleft()
        if completion > self.cycle:
            self.cycle = completion
        self._drain_completed()
