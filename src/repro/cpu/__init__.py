"""Trace format and the out-of-order core timing model."""

from .branch import (
    BranchPredictorConfig,
    BranchPredictorStats,
    HashedPerceptronBranchPredictor,
)
from .o3core import CoreConfig, CoreResult, O3Core
from .trace import (
    TraceRecord,
    TraceStats,
    footprint_by_page,
    read_trace,
    trace_from_string,
    trace_stats,
    trace_to_string,
    write_trace,
)

__all__ = [
    "BranchPredictorConfig",
    "BranchPredictorStats",
    "HashedPerceptronBranchPredictor",
    "CoreConfig",
    "CoreResult",
    "O3Core",
    "TraceRecord",
    "TraceStats",
    "footprint_by_page",
    "read_trace",
    "trace_from_string",
    "trace_stats",
    "trace_to_string",
    "write_trace",
]
