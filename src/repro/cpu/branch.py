"""Hashed-perceptron branch predictor (§2.3 lineage, Table 1 fidelity).

PPF's prediction machinery descends from perceptron branch prediction
(Jiménez & Lin, HPCA 2001) in its "hashed perceptron" organization
(Tarjan & Skadron, TACO 2005), and the paper's simulated cores use a
perceptron branch predictor (Table 1).  This module implements that
predictor over the same :class:`~repro.core.weights.WeightTable`
machinery PPF uses — one table per feature, sum, threshold, train on
mispredict or weak sum — demonstrating that the mechanism PPF applies
to prefetch filtering is literally the branch-prediction mechanism
pointed at a different question.

Features: the branch PC, and geometrically-growing global-history
segments folded and XORed with the PC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.weights import WeightTable


@dataclass
class BranchPredictorConfig:
    table_entries: int = 1024
    history_bits: int = 64
    #: (start, length) global-history segments, geometric lengths.
    segments: Tuple[Tuple[int, int], ...] = (
        (0, 4),
        (0, 8),
        (0, 16),
        (0, 32),
        (16, 16),
        (32, 32),
    )
    #: Training threshold: train while |sum| <= theta or on mispredict.
    theta: int = 40

    @classmethod
    def default(cls) -> "BranchPredictorConfig":
        return cls()


@dataclass
class BranchPredictorStats:
    predictions: int = 0
    mispredictions: int = 0
    updates: int = 0

    @property
    def accuracy(self) -> float:
        if self.predictions == 0:
            return 0.0
        return 1.0 - self.mispredictions / self.predictions

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)


def _fold(value: int, bits: int, width: int = 12) -> int:
    """Fold ``bits`` low bits of ``value`` into ``width`` bits by XOR."""
    value &= (1 << bits) - 1
    folded = 0
    while value:
        folded ^= value & ((1 << width) - 1)
        value >>= width
    return folded


class HashedPerceptronBranchPredictor:
    """Global-history hashed-perceptron predictor."""

    def __init__(self, config: Optional[BranchPredictorConfig] = None) -> None:
        self.config = config or BranchPredictorConfig.default()
        # One table for the PC feature + one per history segment.
        self.tables: List[WeightTable] = [
            WeightTable(self.config.table_entries)
            for _ in range(1 + len(self.config.segments))
        ]
        self.stats = BranchPredictorStats()
        self._history = 0  # bit i = outcome of the i-th most recent branch

    # -- features ---------------------------------------------------------------

    def _indices(self, pc: int) -> Tuple[int, ...]:
        mask = self.config.table_entries - 1
        indices = [(pc >> 2) & mask]
        for start, length in self.config.segments:
            segment = (self._history >> start)
            indices.append((_fold(segment, length) ^ (pc >> 2)) & mask)
        return tuple(indices)

    # -- prediction / update -------------------------------------------------------

    def predict(self, pc: int) -> bool:
        """Predict taken (True) or not taken (False)."""
        indices = self._indices(pc)
        total = sum(table.read(index) for table, index in zip(self.tables, indices))
        self.stats.predictions += 1
        return total >= 0

    def update(self, pc: int, taken: bool) -> None:
        """Observe the outcome; train per the perceptron rule (§2.3).

        Weights move only when the prediction was wrong or the sum's
        magnitude failed to exceed theta — the same guard PPF reuses as
        θ_p/θ_n.
        """
        indices = self._indices(pc)
        total = sum(table.read(index) for table, index in zip(self.tables, indices))
        predicted = total >= 0
        if predicted != taken:
            self.stats.mispredictions += 1
        if predicted != taken or abs(total) <= self.config.theta:
            self.stats.updates += 1
            for table, index in zip(self.tables, indices):
                table.bump(index, positive=taken)
        self._history = ((self._history << 1) | (1 if taken else 0)) & (
            (1 << self.config.history_bits) - 1
        )

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Convenience driver: returns whether the prediction was right."""
        prediction = self.predict(pc)
        self.update(pc, taken)
        return prediction == taken

    @property
    def storage_bits(self) -> int:
        return sum(table.storage_bits for table in self.tables)
