"""Asyncio HTTP front end for sweep submission, progress and results.

``python -m repro serve`` turns the sweep machinery into a small
service — stdlib only (``asyncio`` streams and a hand-rolled sliver of
HTTP/1.1), so it adds no dependency and stays honest about what it is:
a thin, observable shell over :class:`~repro.sim.suite.SuiteRunner`.

The serving story is deliberately cache-first.  Every job runs against
one shared ``cache_dir`` keyed by config fingerprint, so the expensive
path executes once and every re-submission — the "millions of users"
asking for the same figure — is served from the content-addressed
result cache; each job reports its hit rate so that efficiency is a
number, not a hope.  With a ``queue_dir`` the execution itself goes
through the farm backend, making the service a front door to a worker
fleet rather than to this process's CPUs.

Endpoints::

    GET  /healthz                         liveness + schema
    GET  /sweeps                          all jobs, newest first
    POST /sweeps                          submit {workloads?, prefetchers?,
                                          records?, seed?, engine?} -> job
    GET  /sweeps/<job>                    status + summary (hit rate, geomeans)
    GET  /sweeps/<job>/events[?since=N]   live lifecycle stream (chunked JSONL)
    GET  /results/<fp>/<workload>/<scheme>[?seed=1]   cached RunResult lookup

The event stream is the same record stream the TTY live progress and
the run ledger consume — one observer fan-out, three subscribers.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, unquote, urlsplit

#: Bump when the HTTP payload shapes change.
SERVICE_SCHEMA_VERSION = 1

_MAX_BODY = 1 << 20  # 1 MiB of JSON is already a pathological sweep spec


class ServiceError(ValueError):
    """A client-side problem with a submitted request (HTTP 4xx)."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclasses.dataclass
class Job:
    """One submitted sweep and everything observable about it."""

    id: str
    spec: Dict[str, Any]
    fingerprint: str
    total_cells: int
    created: float
    status: str = "running"  # running | done | failed
    events: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    summary: Optional[Dict[str, Any]] = None
    error: Optional[str] = None

    def view(self) -> Dict[str, Any]:
        return {
            "job": self.id,
            "status": self.status,
            "spec": self.spec,
            "fingerprint": self.fingerprint,
            "cells": self.total_cells,
            "events": len(self.events),
            "summary": self.summary,
            "error": self.error,
        }


class FarmService:
    """The application object behind ``python -m repro serve``."""

    def __init__(
        self,
        cache_dir: Union[str, Path] = "sweep-cache",
        jobs: Optional[int] = None,
        seed: int = 1,
        records: int = 4_000,
        snapshot_dir: Optional[Union[str, Path]] = None,
        queue_dir: Optional[Union[str, Path]] = None,
        farm_workers: int = 0,
    ) -> None:
        self.cache_dir = Path(cache_dir)
        self.jobs = jobs
        self.seed = seed
        self.records = records
        self.snapshot_dir = Path(snapshot_dir) if snapshot_dir else None
        self.queue_dir = Path(queue_dir) if queue_dir else None
        self.farm_workers = farm_workers
        self._jobs: Dict[str, Job] = {}
        self._seq = 0
        self._lock = threading.Lock()
        #: Bound port once serving (useful with ``port=0`` in tests).
        self.port: Optional[int] = None
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- job lifecycle -----------------------------------------------------------

    def submit(self, spec: Dict[str, Any]) -> Job:
        """Validate one sweep spec and launch it on a worker thread."""
        from ..sim.fingerprint import fingerprint_digest

        config, workloads, schemes = self._resolve_spec(spec)
        with self._lock:
            self._seq += 1
            job = Job(
                id=f"job-{self._seq}",
                spec={
                    "workloads": [w.name for w in workloads],
                    "prefetchers": schemes,
                    "records": config.measure_records,
                    "seed": int(spec.get("seed", self.seed)),
                    "engine": config.engine,
                },
                fingerprint=fingerprint_digest(config),
                total_cells=len(workloads) * len(schemes),
                created=time.time(),
            )
            self._jobs[job.id] = job
        thread = threading.Thread(
            target=self._run_job,
            args=(job, config, workloads, schemes, int(spec.get("seed", self.seed))),
            name=f"repro-{job.id}",
            daemon=True,
        )
        thread.start()
        return job

    def _resolve_spec(self, spec: Dict[str, Any]) -> Tuple[Any, List[Any], List[str]]:
        from .. import registry
        from ..registry import UnknownComponentError
        from ..sim.config import SimConfig
        from ..workloads import find_workload, suite

        if not isinstance(spec, dict):
            raise ServiceError("sweep spec must be a JSON object")
        records = spec.get("records", self.records)
        if not isinstance(records, int) or records <= 0:
            raise ServiceError("records must be a positive integer")
        config = SimConfig.quick(measure_records=records, warmup_records=records // 4)
        engine = spec.get("engine")
        if engine is not None:
            try:
                registry.create("engine", engine)
            except UnknownComponentError as err:
                raise ServiceError(str(err)) from err
            config = dataclasses.replace(config, engine=engine)
        names = spec.get("workloads")
        try:
            if names:
                if not isinstance(names, list):
                    raise ServiceError("workloads must be a list of names")
                workloads = [find_workload(name) for name in names]
            else:
                workloads = [w for w in suite("spec2017") if w.memory_intensive]
        except UnknownComponentError as err:
            raise ServiceError(str(err)) from err
        schemes = spec.get("prefetchers", ["spp", "ppf"])
        if not isinstance(schemes, list) or not schemes:
            raise ServiceError("prefetchers must be a non-empty list of names")
        known = set(registry.names("prefetcher"))
        for scheme in schemes:
            if scheme not in known:
                raise ServiceError(
                    f"unknown prefetcher {scheme!r}; known: {sorted(known)}"
                )
        if "none" not in schemes:
            schemes = ["none"] + list(schemes)
        return config, workloads, list(schemes)

    def _make_runner(self, config: Any, seed: int, observer) -> Any:
        from ..sim.suite import SuiteRunner

        backend = None
        if self.queue_dir is not None:
            from .broker import FarmBackend

            backend = FarmBackend(self.queue_dir, workers=self.farm_workers)
        return SuiteRunner(
            config,
            seed=seed,
            jobs=self.jobs,
            cache_dir=self.cache_dir,
            snapshot_dir=self.snapshot_dir,
            observers=[observer],
            backend=backend,
        )

    def _run_job(self, job: Job, config, workloads, schemes, seed: int) -> None:
        try:
            runner = self._make_runner(config, seed, job.events.append)
            result = runner.sweep(workloads, schemes, include_baseline=False)
            geomeans = {}
            for scheme in schemes:
                if scheme == "none":
                    continue
                try:
                    geomeans[scheme] = result.geomean_speedup(scheme)
                except ValueError:
                    pass
            job.summary = {
                "cells": len(result.runs),
                "cache_hits": result.cache_hits,
                "executed": result.executed,
                "cache_hit_rate": round(result.cache_hit_rate, 6),
                "unrecovered": len(result.failure_report.unrecovered),
                "geomean_speedup": geomeans,
            }
            job.status = "done" if result.failure_report.complete else "failed"
            if not result.failure_report.complete:
                job.error = result.failure_report.summary()
        except Exception as err:  # noqa: BLE001 — jobs report, never crash the server
            job.status = "failed"
            job.error = f"{type(err).__name__}: {err}"

    # -- cached result lookup ----------------------------------------------------

    def lookup_result(
        self, fingerprint: str, workload: str, prefetcher: str, seed: int
    ) -> Optional[Dict[str, Any]]:
        from ..sim.suite import result_cache_path_for_digest

        path = result_cache_path_for_digest(
            self.cache_dir, workload, prefetcher, fingerprint, seed
        )
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return None

    # -- the HTTP layer ----------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        try:
            request = await reader.readline()
            parts = request.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, target = parts[0], parts[1]
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length") or 0)
            if length > _MAX_BODY:
                await self._respond(writer, 413, {"error": "body too large"})
                return
            body = await reader.readexactly(length) if length else b""
            await self._route(method, target, body, writer)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _route(
        self, method: str, target: str, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        url = urlsplit(target)
        segments = [unquote(s) for s in url.path.strip("/").split("/") if s]
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}
        try:
            if method == "GET" and segments in ([], ["healthz"]):
                await self._respond(writer, 200, {
                    "ok": True,
                    "schema": SERVICE_SCHEMA_VERSION,
                    "jobs": len(self._jobs),
                    "cache_dir": str(self.cache_dir),
                    "backend": "farm" if self.queue_dir else "local",
                })
            elif segments == ["sweeps"] and method == "POST":
                try:
                    spec = json.loads(body or b"{}")
                except ValueError as err:
                    raise ServiceError(f"invalid JSON body: {err}") from err
                job = self.submit(spec)
                await self._respond(writer, 202, {
                    "job": job.id,
                    "fingerprint": job.fingerprint,
                    "cells": job.total_cells,
                    "events_url": f"/sweeps/{job.id}/events",
                })
            elif segments == ["sweeps"] and method == "GET":
                jobs = sorted(self._jobs.values(), key=lambda j: j.created, reverse=True)
                await self._respond(writer, 200, {"jobs": [j.view() for j in jobs]})
            elif len(segments) == 2 and segments[0] == "sweeps" and method == "GET":
                job = self._jobs.get(segments[1])
                if job is None:
                    raise ServiceError(f"no such job {segments[1]!r}", status=404)
                await self._respond(writer, 200, job.view())
            elif (
                len(segments) == 3
                and segments[0] == "sweeps"
                and segments[2] == "events"
                and method == "GET"
            ):
                job = self._jobs.get(segments[1])
                if job is None:
                    raise ServiceError(f"no such job {segments[1]!r}", status=404)
                since = int(query.get("since", 0))
                await self._stream_events(writer, job, since)
            elif len(segments) == 4 and segments[0] == "results" and method == "GET":
                _, fingerprint, workload, prefetcher = segments
                seed = int(query.get("seed", self.seed))
                document = self.lookup_result(fingerprint, workload, prefetcher, seed)
                if document is None:
                    raise ServiceError(
                        f"no cached result for ({workload}, {prefetcher}) "
                        f"@ {fingerprint} seed={seed}",
                        status=404,
                    )
                await self._respond(writer, 200, document)
            else:
                raise ServiceError(f"no route for {method} {url.path}", status=404)
        except ServiceError as err:
            await self._respond(writer, err.status, {"error": str(err)})
        except ValueError as err:
            await self._respond(writer, 400, {"error": str(err)})

    @staticmethod
    async def _respond(writer: asyncio.StreamWriter, status: int, payload: Dict) -> None:
        body = (json.dumps(payload) + "\n").encode()
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
                  413: "Payload Too Large"}.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode()
        writer.write(head + body)
        await writer.drain()

    @staticmethod
    async def _stream_events(writer: asyncio.StreamWriter, job: Job, since: int) -> None:
        """Chunked JSONL: every lifecycle record from ``since`` to job end."""
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n"
        ).encode()
        writer.write(head)
        await writer.drain()
        index = max(0, since)
        while True:
            while index < len(job.events):
                line = (json.dumps(job.events[index]) + "\n").encode()
                writer.write(f"{len(line):X}\r\n".encode() + line + b"\r\n")
                index += 1
            await writer.drain()
            if job.status != "running" and index >= len(job.events):
                break
            await asyncio.sleep(0.05)
        tail = json.dumps({"event": "job", "job": job.id, "status": job.status}) + "\n"
        blob = tail.encode()
        writer.write(f"{len(blob):X}\r\n".encode() + blob + b"\r\n" + b"0\r\n\r\n")
        await writer.drain()

    # -- server lifecycle --------------------------------------------------------

    async def serve(self, host: str = "127.0.0.1", port: int = 8943,
                    ready: Optional[threading.Event] = None) -> None:
        """Serve until :meth:`request_stop` (or cancellation)."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(self._handle, host, port)
        self.port = server.sockets[0].getsockname()[1]
        if ready is not None:
            ready.set()
        async with server:
            await self._stop.wait()

    def run_blocking(self, host: str = "127.0.0.1", port: int = 8943,
                     ready: Optional[threading.Event] = None) -> None:
        asyncio.run(self.serve(host, port, ready))

    def request_stop(self) -> None:
        """Thread-safe shutdown signal (used by tests and signal handlers)."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
