"""Distributed, resumable, service-fronted sweep execution.

The farm turns :class:`repro.sim.suite.SuiteRunner` into a multi-worker
fleet without changing what a sweep *means*: every cell is still a pure
deterministic function of ``(workload, prefetcher, config, seed)``, so
a farm run is bit-identical to a single-host run — the fleet only
changes where the work happens and how it survives crashes.

Four pieces, bottom up:

* :mod:`repro.farm.queue` — a durable, filesystem-backed work queue.
  Cells are content-addressed ticket files; ownership is a claim/lease
  file created atomically (``O_EXCL``) with lease-expiry takeover, so
  any number of worker processes — local or on a shared filesystem —
  pull safely and a dead worker's cells get reclaimed.
* :mod:`repro.farm.worker` — the worker loop: claim a ticket, run the
  cell (reusing warmup snapshots from the shared
  :class:`~repro.checkpoint.SnapshotStore`), publish the result, retry
  or poison per the queue's :class:`~repro.sim.suite.CellPolicy`
  budget.
* :mod:`repro.farm.broker` — :class:`FarmBackend`, a
  :class:`repro.sim.suite.Backend`: expands a sweep's pending cells
  into tickets, optionally spawns local worker subprocesses, streams
  worker lifecycle events back into the runner's ledger/observers, and
  adopts results into the existing content-addressed result cache.
* :mod:`repro.farm.service` — an asyncio HTTP front end (stdlib only)
  serving sweep submission, live progress (lifecycle events streamed
  per job) and cached result lookup by config fingerprint.

CLI: ``python -m repro farm {broker,worker,status}``,
``python -m repro serve``, and ``python -m repro sweep --backend farm``.
"""

from .broker import FarmBackend
from .queue import CellTicket, FarmQueue, Lease, QueueError
from .service import FarmService
from .worker import FarmWorker

__all__ = [
    "CellTicket",
    "FarmBackend",
    "FarmQueue",
    "FarmService",
    "FarmWorker",
    "Lease",
    "QueueError",
]
