"""The farm worker: claim a ticket, simulate it, publish the result.

A worker is deliberately dumb — all policy lives in the queue manifest
(retry budget, lease TTL) and all meaning lives in the ticket (config,
workload, seed).  The execution path is *the same function* the local
pool backend runs (:func:`repro.sim.suite._simulate_cell`), which is
what makes farm results bit-identical to single-host results by
construction rather than by luck.

Crash semantics: a worker that dies mid-cell leaves its ticket and its
lease behind; once the lease expires any other worker's
:meth:`FarmQueue.claim` takes the cell over (surfaced as a
``reclaimed`` lifecycle event).  The lease TTL is therefore the farm's
hang timeout — the moral equivalent of ``CellPolicy.timeout``, enforced
by ownership transfer instead of in-process preemption.
"""

from __future__ import annotations

import dataclasses
import os
import socket
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from .queue import CellTicket, FarmQueue, Lease

#: Schema of the result documents workers publish into ``results/``.
RESULT_SCHEMA_VERSION = 1


class FarmWorker:
    """Drains a farm queue, one claimed cell at a time."""

    def __init__(
        self,
        queue: Union[FarmQueue, str, Path],
        worker_id: Optional[str] = None,
    ) -> None:
        self.queue = queue if isinstance(queue, FarmQueue) else FarmQueue(queue)
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        manifest = self.queue.require_manifest()
        self.retries = int(manifest.get("retries", 1))
        self.epoch = float(manifest.get("epoch", 0.0))
        #: Cells this worker completed / failed attempts it charged.
        self.completed = 0
        self.failed_attempts = 0

    # -- event plumbing ----------------------------------------------------------

    def _emit(self, phase: str, ticket: CellTicket, **extra: Any) -> None:
        record = {
            "event": "lifecycle",
            "phase": phase,
            "workload": ticket.workload,
            "prefetcher": ticket.prefetcher,
            "cell_id": ticket.cell_id,
            "t": round(time.time() - self.epoch, 6),
            "worker": self.worker_id,
        }
        record.update(extra)
        self.queue.emit(record)

    # -- execution ---------------------------------------------------------------

    def run_once(self) -> bool:
        """Claim and resolve at most one cell; False when none claimable."""
        for cell_id in self.queue.pending_ids():
            lease = self.queue.claim(cell_id, self.worker_id)
            if lease is None:
                continue
            ticket = self.queue.load_ticket(cell_id)
            if ticket is None:
                # Resolved between listing and claim; drop the stale lease.
                self.queue.release(lease)
                continue
            self._execute(lease, ticket)
            return True
        return False

    def drain(
        self,
        max_cells: Optional[int] = None,
        follow: bool = False,
        poll: float = 0.2,
        idle_timeout: Optional[float] = None,
    ) -> int:
        """Run cells until the queue is drained (or budget/idle limits hit).

        Without ``follow``, the worker exits once no tickets remain.
        Tickets held by *other* workers keep it polling — they will
        either resolve or expire into reclaimability — bounded by
        ``idle_timeout`` seconds without progress (None: unbounded).
        With ``follow``, an empty queue is idled through instead: the
        worker waits for a broker to submit more work.
        """
        done = 0
        idle_since: Optional[float] = None
        while True:
            if max_cells is not None and done >= max_cells:
                return done
            if self.run_once():
                done += 1
                idle_since = None
                continue
            if not self.queue.pending_ids() and not follow:
                return done
            now = time.time()
            idle_since = idle_since if idle_since is not None else now
            if idle_timeout is not None and now - idle_since >= idle_timeout:
                return done
            time.sleep(poll)

    def _execute(self, lease: Lease, ticket: CellTicket) -> None:
        from ..sim.single_core import RunResult  # noqa: F401  (schema home)
        from ..sim.suite import _simulate_cell

        if lease.reclaimed:
            self._emit("reclaimed", ticket, attempt=ticket.attempts + 1)
        self._emit("started", ticket, attempt=ticket.attempts + 1)
        start = time.time()
        try:
            result = _simulate_cell(
                ticket.payload(),
                ticket.prefetcher,
                ticket.config(),
                ticket.seed,
                ticket.snapshot_dir,
                ticket.checkpoint_every,
            )
        except Exception as err:  # noqa: BLE001 — any cell failure is data
            error = f"{type(err).__name__}: {err}"
            self.failed_attempts += 1
            outcome = self.queue.fail(lease, ticket, error, self.retries)
            if outcome == "retry":
                self._emit("retried", ticket, attempt=ticket.attempts, error=error)
            else:
                self._emit(
                    "finished", ticket, ok=False, attempts=ticket.attempts, error=error
                )
            return
        elapsed = time.time() - start
        document = {
            "schema": RESULT_SCHEMA_VERSION,
            "cell_id": ticket.cell_id,
            "workload": ticket.workload,
            "prefetcher": ticket.prefetcher,
            "seed": ticket.seed,
            "fingerprint": ticket.fingerprint,
            "worker": self.worker_id,
            "attempts": ticket.attempts + 1,
            "wall_time": elapsed,
            "reclaimed": lease.reclaimed,
            "result": dataclasses.asdict(result),
        }
        self.queue.complete(lease, document)
        if ticket.result_path:
            # Publish straight into the broker's content-addressed
            # result cache as well — the fingerprint-keyed "CDN" layer
            # every later sweep (and the HTTP front end) reads from.
            self._publish_cache_entry(ticket.result_path, document["result"])
        self.completed += 1
        self._emit(
            "finished",
            ticket,
            ok=True,
            attempts=ticket.attempts + 1,
            wall_time=round(elapsed, 6),
            reclaimed=lease.reclaimed,
        )

    @staticmethod
    def _publish_cache_entry(path: str, result: Dict[str, Any]) -> None:
        import json

        from ..ioutil import atomic_write

        try:
            with atomic_write(path, "w") as handle:
                handle.write(json.dumps(result))
        except OSError:
            pass  # the cache is an accelerator; the queue result is canonical
