"""The farm broker: a :class:`repro.sim.suite.Backend` over a queue.

``FarmBackend.execute`` is the fleet-side twin of the local pool: it
expands the sweep's pending cells into durable tickets, lets workers
(external processes, spawned subprocesses, or an in-process loopback
drain) resolve them, streams the workers' lifecycle events back into
the runner's ledger and observers, and adopts every published result
into the runner's content-addressed caches.  The runner keeps owning
everything around execution — cache lookups, failure semantics, the
sweep summary — so ``sweep --backend farm`` degrades, resumes and
reports exactly like a local sweep.

Resumability falls out of the queue's content addressing: cells already
resolved in the queue (a half-drained run) are adopted without
re-execution, and a previously poisoned cell is given a fresh budget by
retiring its tombstone before resubmission.
"""

from __future__ import annotations

import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..sim.config import SimConfig
from ..sim.fingerprint import fingerprint_digest
from ..sim.suite import (
    Backend,
    CellFailure,
    FailureReport,
    SuiteResult,
    SuiteRunner,
    _Cell,
    _worker_payload,
)
from ..sim.single_core import RunResult
from ..workloads.spec2017 import WorkloadSpec
from .queue import DEFAULT_LEASE_TTL, CellTicket, FarmQueue
from .worker import FarmWorker


class FarmBackend(Backend):
    """Execute sweep cells through a durable multi-worker queue."""

    name = "farm"

    def __init__(
        self,
        queue_dir: Union[str, Path],
        workers: int = 0,
        poll_interval: float = 0.05,
        lease_ttl: Optional[float] = None,
        wait_timeout: Optional[float] = None,
    ) -> None:
        """``workers`` local worker subprocesses are spawned per sweep
        (0: rely on external workers, with an in-process loopback drain
        so a bare ``sweep --backend farm`` still completes standalone).
        ``lease_ttl`` defaults to the sweep's ``CellPolicy.timeout``
        (or :data:`~repro.farm.queue.DEFAULT_LEASE_TTL`); it is the
        farm's hang-recovery horizon.  ``wait_timeout`` bounds the whole
        drain as a last-resort safety net — cells still outstanding
        when it expires are reported unrecovered, never silently lost.
        """
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.queue_dir = Path(queue_dir)
        self.workers = workers
        self.poll_interval = poll_interval
        self.lease_ttl = lease_ttl
        self.wait_timeout = wait_timeout
        #: Populated per execute(): the queue this sweep ran over.
        self.queue: Optional[FarmQueue] = None

    # -- Backend entry point -----------------------------------------------------

    def execute(
        self,
        runner: SuiteRunner,
        pending: List[_Cell],
        config: SimConfig,
        suite: SuiteResult,
        report: FailureReport,
    ) -> None:
        ttl = self.lease_ttl
        if ttl is None:
            ttl = runner.policy.timeout if runner.policy.timeout is not None else DEFAULT_LEASE_TTL
        queue = FarmQueue(self.queue_dir, lease_ttl=ttl)
        queue.ensure(
            retries=runner.policy.retries,
            lease_ttl=ttl,
            fingerprint=fingerprint_digest(config),
            seed=runner.seed,
        )
        self.queue = queue

        # Only worker events appended from here on belong to this sweep
        # — a reused queue directory's historical log is not replayed.
        try:
            offset = queue.events_path.stat().st_size
        except OSError:
            offset = 0
        #: (workload, prefetcher) keys this sweep has adopted; late
        #: lifecycle records for them still reach the ledger/observers.
        adopted: set = set()

        # Split the pending cells: farmable ones become tickets, specs
        # that can neither pickle nor rehydrate by name stay local.
        local: List[_Cell] = []
        outstanding: Dict[str, _Cell] = {}
        snapshot_dir, checkpoint_every = runner._snapshot_args()
        for cell in pending:
            payload = _worker_payload(cell.spec)
            if payload is None:
                local.append(cell)
                continue
            cell_id = self._cell_id(cell.spec, cell.scheme, config, runner.seed)
            if queue.has_result(cell_id) and self._adopt_result(
                # Half-drained queue: adopt the previous run's work (a
                # corrupt result file falls through to re-submission).
                runner, queue, cell, cell_id, config, suite, report, adopted,
                resumed=True,
            ):
                continue
            ticket = CellTicket.build(
                workload=cell.spec.name,
                prefetcher=cell.scheme,
                config=config,
                seed=runner.seed,
                cell_id=cell_id,
                fingerprint=fingerprint_digest(config),
                payload=payload if isinstance(payload, WorkloadSpec) else None,
                snapshot_dir=snapshot_dir,
                checkpoint_every=checkpoint_every,
                result_path=cell.provenance.get("result_path"),
            )
            # A tombstone from an earlier run doesn't condemn this one:
            # retire it so the cell gets a fresh retry budget.
            queue.failed_path(cell_id).unlink(missing_ok=True)
            queue.submit(ticket)
            outstanding[cell_id] = cell

        procs = self._spawn_workers() if (self.workers and outstanding) else []
        inline = None if procs else FarmWorker(queue, worker_id="broker-inline")
        try:
            self._drain(
                runner, queue, outstanding, config, suite, report, procs, inline,
                adopted, offset,
            )
        finally:
            self._reap(procs)
        for cell in local:
            runner._serial_cell(cell, config, suite, report, recovery=None)

    # -- queue driving -----------------------------------------------------------

    @staticmethod
    def _cell_id(spec: WorkloadSpec, scheme: str, config: SimConfig, seed: int) -> str:
        from ..sim.fingerprint import cell_digest

        return cell_digest(spec.name, scheme, config, seed)

    def _drain(
        self,
        runner: SuiteRunner,
        queue: FarmQueue,
        outstanding: Dict[str, _Cell],
        config: SimConfig,
        suite: SuiteResult,
        report: FailureReport,
        procs: List[subprocess.Popen],
        inline: Optional[FarmWorker],
        adopted: set,
        offset: int,
    ) -> None:
        deadline = None if self.wait_timeout is None else time.time() + self.wait_timeout
        fallback: List[_Cell] = []
        while outstanding:
            offset = self._pump_events(runner, queue, outstanding, adopted, report, offset)
            for cell_id in list(outstanding):
                cell = outstanding[cell_id]
                if queue.has_result(cell_id) and self._adopt_result(
                    runner, queue, cell, cell_id, config, suite, report,
                    adopted, resumed=False,
                ):
                    del outstanding[cell_id]
                    continue
                failure = queue.load_failure(cell_id)
                if failure is not None:
                    del outstanding[cell_id]
                    adopted.add(cell.key)
                    cell.attempts = int(failure.get("attempts", 1))
                    cell.errors = list(failure.get("errors") or [failure.get("error", "?")])
                    runner._exec.crashes += 1  # the final, poisoning attempt
                    if runner.policy.fallback_serial:
                        fallback.append(cell)
                    else:
                        runner._resolve_unrecovered(cell, report)
            if not outstanding:
                break
            if deadline is not None and time.time() > deadline:
                for cell in outstanding.values():
                    cell.attempts += 1
                    cell.errors.append(f"farm wait timeout after {self.wait_timeout:g}s")
                    runner._resolve_unrecovered(cell, report)
                outstanding.clear()
                break
            if inline is not None:
                # Loopback drain: the broker is its own (single) worker.
                if not inline.run_once():
                    time.sleep(self.poll_interval)
            else:
                if procs and all(proc.poll() is not None for proc in procs):
                    # Every spawned worker exited with cells still
                    # outstanding (crashed fleet, or tickets claimed by
                    # leases not yet expired): finish the job in-process
                    # rather than hang — identical results either way.
                    inline = FarmWorker(queue, worker_id="broker-inline")
                    continue
                time.sleep(self.poll_interval)
        # Final event flush so late "finished" records still hit the
        # ledger and live progress before the sweep summary.
        self._pump_events(runner, queue, outstanding, adopted, report, offset)
        for cell in fallback:
            runner._serial_cell(cell, config, suite, report, recovery="serial-fallback")

    def _pump_events(
        self,
        runner: SuiteRunner,
        queue: FarmQueue,
        outstanding: Dict[str, _Cell],
        adopted: set,
        report: FailureReport,
        offset: int,
    ) -> int:
        records, offset = queue.events(offset)
        for record in records:
            cell_id = record.get("cell_id")
            key = (record.get("workload"), record.get("prefetcher"))
            if cell_id is not None and cell_id not in outstanding and key not in adopted:
                continue  # another sweep's traffic on a shared queue
            phase = record.get("phase")
            if phase == "retried":
                report.retries += 1
                runner._exec.retries += 1
                runner._exec.crashes += 1
            elif phase == "reclaimed":
                report.timeouts += 1
                runner._exec.timeouts += 1
                runner._exec.reclaimed += 1
            runner.broadcast(record)
        return offset

    def _adopt_result(
        self,
        runner: SuiteRunner,
        queue: FarmQueue,
        cell: _Cell,
        cell_id: str,
        config: SimConfig,
        suite: SuiteResult,
        report: FailureReport,
        adopted: set,
        resumed: bool,
    ) -> bool:
        document = queue.load_result(cell_id)
        if document is None:  # torn write racing us; retry next poll
            return False
        result = RunResult(**document["result"])
        suite.runs[cell.key] = runner._record(cell.spec.name, cell.scheme, config, result)
        adopted.add(cell.key)
        attempts = int(document.get("attempts", 1))
        wall_time = float(document.get("wall_time", 0.0))
        if resumed:
            runner._exec.resumed += 1
            runner._lifecycle(
                "cached", cell.spec.name, cell.scheme, source="farm-queue"
            )
        else:
            runner._exec.simulated += 1
            runner._wall.add(wall_time)
        if attempts > 1:
            report.failures.append(
                CellFailure(
                    workload=cell.spec.name,
                    prefetcher=cell.scheme,
                    attempts=attempts - 1,
                    error=(cell.errors[-1] if cell.errors else "farm retry"),
                    recovered=True,
                    recovery="farm-retry",
                )
            )
        runner._log(
            event="cell",
            workload=cell.spec.name,
            prefetcher=cell.scheme,
            status="ok",
            source="farm-queue" if resumed else "farm",
            worker=document.get("worker"),
            attempts=attempts,
            wall_time=wall_time,
            error=None,
            **cell.provenance,
        )
        return True

    # -- worker subprocess management --------------------------------------------

    def _spawn_workers(self) -> List[subprocess.Popen]:
        import os

        import repro

        env = dict(os.environ)
        src_dir = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = src_dir + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        command = [
            sys.executable,
            "-m",
            "repro",
            "farm",
            "worker",
            "--queue-dir",
            str(self.queue_dir),
        ]
        return [
            subprocess.Popen(command, env=env, stdout=subprocess.DEVNULL)
            for _ in range(self.workers)
        ]

    @staticmethod
    def _reap(procs: List[subprocess.Popen]) -> None:
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
