"""Durable, filesystem-backed work queue with claim/lease ownership.

The queue is a directory — that is the whole deployment story for v1:
point a broker and any number of workers (same host or peers on a
shared filesystem) at one ``--queue-dir`` and the filesystem's atomic
primitives do the coordination.  Layout::

    queue_dir/
      manifest.json        # schema, epoch, CellPolicy budget (retries/lease TTL)
      cells/<id>.json      # pending ticket (self-contained: config + workload)
      claims/<id>.json     # active lease of a claimed cell
      results/<id>.json    # completed cell (RunResult + execution meta)
      failed/<id>.json     # poisoned-cell tombstone (retry budget exhausted)
      events.jsonl         # shared lifecycle append log (all workers)

Cell ids are the content address from
:func:`repro.sim.fingerprint.cell_digest` — ``(workload, prefetcher,
config fingerprint, seed)`` — so re-submitting a suite into a
half-drained queue re-uses completed results instead of re-running
them, and two sweeps with different configs can share one directory
without colliding.

Ownership protocol (all via :mod:`repro.ioutil`):

* **claim** — ``O_CREAT | O_EXCL`` on the lease file; exactly one
  concurrent claimant wins.
* **lease expiry** — the lease carries a wall-clock ``expires_at``.  A
  worker that dies or hangs past its TTL loses ownership.
* **takeover** — a claimant finding an *expired* lease atomically
  replaces it with its own (rename = last-writer-wins) and then reads
  the file back: whoever's token survived owns the cell, the loser
  backs off.  Duplicated execution during the race window is benign —
  cells are deterministic and results publish atomically to one
  content-addressed path, so racers agree on the bytes.
* **complete/fail** — the result (or tombstone) is published first,
  then the ticket and lease are removed; a crash between the two
  leaves a completed cell that any later claim simply observes as done.

Wall-clock leases assume loosely synchronized clocks across hosts (NTP
drift ≪ TTL); the default TTL is generous precisely so skew cannot
cause spurious takeovers of healthy workers.
"""

from __future__ import annotations

import base64
import dataclasses
import json
import os
import pickle
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..ioutil import append_line, atomic_write, exclusive_create

#: Bump when the on-disk ticket/lease/result layout changes.
QUEUE_SCHEMA_VERSION = 1

#: Lease TTL when the sweep's CellPolicy has no timeout: long enough
#: that a healthy slow cell finishes, short enough that a dead worker's
#: cells come back within one coffee.
DEFAULT_LEASE_TTL = 300.0


class QueueError(RuntimeError):
    """A malformed or misused farm queue directory."""


def _b64_pickle(value: Any) -> str:
    return base64.b64encode(pickle.dumps(value)).decode("ascii")


def _b64_unpickle(blob: str) -> Any:
    return pickle.loads(base64.b64decode(blob.encode("ascii")))


@dataclasses.dataclass
class CellTicket:
    """One self-contained unit of farm work.

    Carries everything a worker on another host needs: the scheme, the
    seed, the pickled :class:`~repro.sim.config.SimConfig`, and the
    workload either by registry name (``workload``) or as a pickled
    spec (``payload_b64``) for out-of-catalog specs.  ``result_path``
    optionally names the broker's content-addressed result-cache entry
    so workers publish straight into the "CDN" layer too.
    """

    cell_id: str
    workload: str
    prefetcher: str
    seed: int
    fingerprint: str
    config_b64: str
    payload_b64: Optional[str] = None
    attempts: int = 0
    errors: List[str] = dataclasses.field(default_factory=list)
    snapshot_dir: Optional[str] = None
    checkpoint_every: Optional[int] = None
    result_path: Optional[str] = None

    @classmethod
    def build(
        cls,
        workload: str,
        prefetcher: str,
        config: Any,
        seed: int,
        cell_id: str,
        fingerprint: str,
        payload: Any = None,
        snapshot_dir: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
        result_path: Optional[str] = None,
    ) -> "CellTicket":
        return cls(
            cell_id=cell_id,
            workload=workload,
            prefetcher=prefetcher,
            seed=seed,
            fingerprint=fingerprint,
            config_b64=_b64_pickle(config),
            payload_b64=None if payload is None else _b64_pickle(payload),
            snapshot_dir=snapshot_dir,
            checkpoint_every=checkpoint_every,
            result_path=result_path,
        )

    def config(self) -> Any:
        return _b64_unpickle(self.config_b64)

    def payload(self) -> Any:
        """What to hand the simulator: a pickled spec or the registry name."""
        if self.payload_b64 is not None:
            return _b64_unpickle(self.payload_b64)
        return self.workload

    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CellTicket":
        return cls(**json.loads(text))


@dataclasses.dataclass
class Lease:
    """Proof of (current) ownership of one claimed cell."""

    cell_id: str
    worker: str
    token: str
    claimed_at: float
    expires_at: float
    #: True when this lease was taken over from an expired one — the
    #: previous owner died or hung (surfaces as a "reclaimed" event).
    reclaimed: bool = False

    def to_json(self) -> str:
        return json.dumps(
            {
                "cell_id": self.cell_id,
                "worker": self.worker,
                "token": self.token,
                "claimed_at": self.claimed_at,
                "expires_at": self.expires_at,
            },
            sort_keys=True,
        )


class FarmQueue:
    """One queue directory: tickets in, leases held, results out."""

    def __init__(self, root: Union[str, Path], lease_ttl: Optional[float] = None) -> None:
        self.root = Path(root)
        self._lease_ttl = lease_ttl
        self.cells_dir = self.root / "cells"
        self.claims_dir = self.root / "claims"
        self.results_dir = self.root / "results"
        self.failed_dir = self.root / "failed"
        self.events_path = self.root / "events.jsonl"
        self.manifest_path = self.root / "manifest.json"
        self._claim_counter = 0

    # -- manifest ----------------------------------------------------------------

    def ensure(self, **fields: Any) -> Dict[str, Any]:
        """Create the queue layout and manifest (idempotent).

        An existing manifest wins — a broker re-attaching to a
        half-drained queue must agree with the budget its workers are
        already honoring — but unknown-schema queues are refused rather
        than silently reinterpreted.
        """
        for directory in (self.cells_dir, self.claims_dir, self.results_dir, self.failed_dir):
            directory.mkdir(parents=True, exist_ok=True)
        existing = self.manifest()
        if existing is not None:
            if existing.get("schema") != QUEUE_SCHEMA_VERSION:
                raise QueueError(
                    f"{self.manifest_path}: queue schema "
                    f"{existing.get('schema')!r} != {QUEUE_SCHEMA_VERSION}"
                )
            return existing
        manifest = {
            "schema": QUEUE_SCHEMA_VERSION,
            "epoch": time.time(),
            "retries": 1,
            "lease_ttl": DEFAULT_LEASE_TTL,
        }
        manifest.update(fields)
        with atomic_write(self.manifest_path, "w") as handle:
            handle.write(json.dumps(manifest, sort_keys=True))
        return manifest

    def manifest(self) -> Optional[Dict[str, Any]]:
        try:
            return json.loads(self.manifest_path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as err:
            raise QueueError(f"{self.manifest_path}: unreadable manifest: {err}") from err

    def require_manifest(self) -> Dict[str, Any]:
        manifest = self.manifest()
        if manifest is None:
            raise QueueError(
                f"{self.root}: not a farm queue (no manifest.json — "
                "run a broker first, or `repro farm broker --queue-dir`)"
            )
        if manifest.get("schema") != QUEUE_SCHEMA_VERSION:
            raise QueueError(
                f"{self.manifest_path}: queue schema "
                f"{manifest.get('schema')!r} != {QUEUE_SCHEMA_VERSION}"
            )
        return manifest

    @property
    def lease_ttl(self) -> float:
        if self._lease_ttl is not None:
            return self._lease_ttl
        manifest = self.manifest() or {}
        return float(manifest.get("lease_ttl") or DEFAULT_LEASE_TTL)

    # -- paths -------------------------------------------------------------------

    def cell_path(self, cell_id: str) -> Path:
        return self.cells_dir / f"{cell_id}.json"

    def claim_path(self, cell_id: str) -> Path:
        return self.claims_dir / f"{cell_id}.json"

    def result_path(self, cell_id: str) -> Path:
        return self.results_dir / f"{cell_id}.json"

    def failed_path(self, cell_id: str) -> Path:
        return self.failed_dir / f"{cell_id}.json"

    # -- submission / listing ----------------------------------------------------

    def submit(self, ticket: CellTicket) -> bool:
        """Enqueue one ticket; no-op when already queued or resolved."""
        if self.result_path(ticket.cell_id).exists():
            return False
        if self.failed_path(ticket.cell_id).exists():
            return False
        if self.cell_path(ticket.cell_id).exists():
            return False
        with atomic_write(self.cell_path(ticket.cell_id), "w") as handle:
            handle.write(ticket.to_json())
        return True

    def pending_ids(self) -> List[str]:
        """Queued cell ids, sorted for a deterministic claim order."""
        return sorted(path.stem for path in self.cells_dir.glob("*.json"))

    def load_ticket(self, cell_id: str) -> Optional[CellTicket]:
        try:
            return CellTicket.from_json(self.cell_path(cell_id).read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError, TypeError) as err:
            raise QueueError(f"{self.cell_path(cell_id)}: corrupt ticket: {err}") from err

    def has_result(self, cell_id: str) -> bool:
        return self.result_path(cell_id).exists()

    def load_result(self, cell_id: str) -> Optional[Dict[str, Any]]:
        try:
            return json.loads(self.result_path(cell_id).read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            return None  # torn/corrupt result: treat as not-yet-done

    def load_failure(self, cell_id: str) -> Optional[Dict[str, Any]]:
        try:
            return json.loads(self.failed_path(cell_id).read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            return None

    # -- claim / lease -----------------------------------------------------------

    def _new_lease(self, cell_id: str, worker: str, reclaimed: bool) -> Lease:
        now = time.time()
        self._claim_counter += 1
        token = f"{worker}.{os.getpid()}.{self._claim_counter}.{os.urandom(4).hex()}"
        return Lease(
            cell_id=cell_id,
            worker=worker,
            token=token,
            claimed_at=now,
            expires_at=now + self.lease_ttl,
            reclaimed=reclaimed,
        )

    def _read_lease_token(self, cell_id: str) -> Tuple[Optional[str], Optional[float]]:
        """(token, expires_at) of the current lease, or (None, None)."""
        try:
            data = json.loads(self.claim_path(cell_id).read_text())
        except (OSError, ValueError):
            return None, None
        return data.get("token"), data.get("expires_at")

    def claim(self, cell_id: str, worker: str) -> Optional[Lease]:
        """Try to take ownership of one queued cell.

        Returns a :class:`Lease` on success, ``None`` when the cell is
        already owned (fresh lease), already resolved, or lost the
        takeover race for an expired lease.
        """
        if self.has_result(cell_id) or self.failed_path(cell_id).exists():
            return None
        if not self.cell_path(cell_id).exists():
            return None
        lease = self._new_lease(cell_id, worker, reclaimed=False)
        if exclusive_create(self.claim_path(cell_id), lease.to_json()):
            return lease
        # Somebody holds (or held) it: reclaim only if their lease expired.
        _token, expires_at = self._read_lease_token(cell_id)
        if expires_at is not None and expires_at > time.time():
            return None
        takeover = self._new_lease(cell_id, worker, reclaimed=True)
        with atomic_write(self.claim_path(cell_id), "w") as handle:
            handle.write(takeover.to_json())
        # Read-back confirm: concurrent takeovers both rename, the last
        # writer's token survives and the loser backs off here.
        current, _ = self._read_lease_token(cell_id)
        if current != takeover.token:
            return None
        return takeover

    def owns(self, lease: Lease) -> bool:
        current, _ = self._read_lease_token(lease.cell_id)
        return current == lease.token

    def renew(self, lease: Lease) -> bool:
        """Extend an owned lease by one TTL; False when ownership was lost."""
        if not self.owns(lease):
            return False
        lease.expires_at = time.time() + self.lease_ttl
        with atomic_write(self.claim_path(lease.cell_id), "w") as handle:
            handle.write(lease.to_json())
        return self.owns(lease)

    def release(self, lease: Lease) -> None:
        """Drop an owned lease (a stolen one is left to its new owner)."""
        if self.owns(lease):
            self.claim_path(lease.cell_id).unlink(missing_ok=True)

    # -- resolution --------------------------------------------------------------

    def complete(self, lease: Lease, document: Dict[str, Any]) -> None:
        """Publish one finished cell and retire its ticket and lease.

        The document is written order-preserving (no ``sort_keys``):
        the broker re-serialises the embedded ``result`` into the
        runner's content-addressed cache, and the farm/local
        bit-identity guarantee needs dict order to survive the
        round-trip unchanged.
        """
        with atomic_write(self.result_path(lease.cell_id), "w") as handle:
            handle.write(json.dumps(document))
        self.cell_path(lease.cell_id).unlink(missing_ok=True)
        self.release(lease)

    def fail(self, lease: Lease, ticket: CellTicket, error: str, retries: int) -> str:
        """Record one failed attempt; requeue or poison per the budget.

        Returns ``"retry"`` (ticket rewritten with the attempt charged)
        or ``"poisoned"`` (tombstone published, ticket retired).
        """
        ticket.attempts += 1
        ticket.errors.append(error)
        if ticket.attempts <= retries:
            with atomic_write(self.cell_path(ticket.cell_id), "w") as handle:
                handle.write(ticket.to_json())
            self.release(lease)
            return "retry"
        tombstone = {
            "cell_id": ticket.cell_id,
            "workload": ticket.workload,
            "prefetcher": ticket.prefetcher,
            "attempts": ticket.attempts,
            "errors": ticket.errors,
            "error": error,
            "worker": lease.worker,
        }
        with atomic_write(self.failed_path(ticket.cell_id), "w") as handle:
            handle.write(json.dumps(tombstone, sort_keys=True))
        self.cell_path(ticket.cell_id).unlink(missing_ok=True)
        self.release(lease)
        return "poisoned"

    # -- events ------------------------------------------------------------------

    def emit(self, record: Dict[str, Any]) -> None:
        """Append one lifecycle record to the shared event log."""
        append_line(self.events_path, json.dumps(record, sort_keys=True))

    def events(self, offset: int = 0) -> Tuple[List[Dict[str, Any]], int]:
        """Whole records appended since byte ``offset`` (plus new offset).

        Tail-safe: a partially appended last line (no trailing newline
        yet) is left for the next poll, so pollers never see torn JSON.
        """
        try:
            with self.events_path.open("rb") as handle:
                handle.seek(offset)
                blob = handle.read()
        except FileNotFoundError:
            return [], offset
        if not blob:
            return [], offset
        end = blob.rfind(b"\n")
        if end < 0:
            return [], offset
        records = []
        for line in blob[: end + 1].splitlines():
            try:
                records.append(json.loads(line))
            except ValueError:
                continue  # a torn write from a pre-crash appender
        return records, offset + end + 1

    # -- introspection -----------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        now = time.time()
        expired = 0
        for path in self.claims_dir.glob("*.json"):
            try:
                data = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if (data.get("expires_at") or 0) <= now:
                expired += 1
        return {
            "queued": len(list(self.cells_dir.glob("*.json"))),
            "claimed": len(list(self.claims_dir.glob("*.json"))),
            "expired_leases": expired,
            "results": len(list(self.results_dir.glob("*.json"))),
            "failed": len(list(self.failed_dir.glob("*.json"))),
        }
