"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``experiments``            — list the registered paper experiments
* ``run <id> [--records N]`` — regenerate one table/figure
* ``bench <workload> [--prefetcher P] [--records N]`` — one quick run
* ``workloads``              — list the modelled benchmark suites
"""

from __future__ import annotations

import argparse
import sys

from .harness.experiments import EXPERIMENTS, run_experiment
from .harness.validate import report_scorecard, validate
from .sim.config import SimConfig
from .sim.single_core import PREFETCHER_FACTORIES, run_single_core
from .workloads.cloudsuite import cloudsuite_workloads
from .workloads.spec2006 import spec2006_workloads
from .workloads.spec2017 import spec2017_workloads, workload_by_name


def _cmd_experiments(_args: argparse.Namespace) -> int:
    for experiment in EXPERIMENTS.values():
        print(f"{experiment.id:10s} {experiment.paper_anchor:12s} {experiment.description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = SimConfig.quick(
        measure_records=args.records, warmup_records=args.records // 4
    )
    print(run_experiment(args.id, config))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    catalog = spec2017_workloads() + spec2006_workloads() + cloudsuite_workloads()
    workload = workload_by_name(args.workload, catalog)
    config = SimConfig.quick(
        measure_records=args.records, warmup_records=args.records // 4
    )
    baseline = run_single_core(workload, "none", config)
    result = run_single_core(workload, args.prefetcher, config)
    print(
        f"{workload.name} / {args.prefetcher}: "
        f"ipc={result.ipc:.3f} speedup={result.ipc / baseline.ipc:.3f} "
        f"accuracy={result.accuracy:.2f} l2mpki={result.l2_mpki:.2f}"
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    config = SimConfig.quick(
        measure_records=args.records, warmup_records=args.records // 4
    )
    scorecard = validate(config, include_sweeps=not args.fast)
    print(report_scorecard(scorecard))
    return 0 if scorecard.all_passed else 1


def _cmd_workloads(_args: argparse.Namespace) -> int:
    for suite_name, suite in (
        ("SPEC CPU 2017", spec2017_workloads()),
        ("SPEC CPU 2006", spec2006_workloads()),
        ("CloudSuite", cloudsuite_workloads()),
    ):
        print(f"{suite_name} ({len(suite)}):")
        for workload in suite:
            marker = "*" if workload.memory_intensive else " "
            print(f"  {marker} {workload.name:20s} {workload.description}")
    print("\n(* = memory intensive, LLC MPKI > 1)")
    return 0


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list paper experiments")

    run_parser = sub.add_parser("run", help="regenerate one table/figure")
    run_parser.add_argument("id", choices=sorted(EXPERIMENTS))
    run_parser.add_argument("--records", type=int, default=20_000)

    bench_parser = sub.add_parser("bench", help="one quick workload run")
    bench_parser.add_argument("workload")
    bench_parser.add_argument(
        "--prefetcher", default="ppf", choices=sorted(PREFETCHER_FACTORIES)
    )
    bench_parser.add_argument("--records", type=int, default=20_000)

    sub.add_parser("workloads", help="list modelled workloads")

    validate_parser = sub.add_parser("validate", help="run the reproduction scorecard")
    validate_parser.add_argument("--records", type=int, default=15_000)
    validate_parser.add_argument(
        "--fast", action="store_true", help="structural claims only (no sweeps)"
    )

    args = parser.parse_args(argv)
    handlers = {
        "experiments": _cmd_experiments,
        "run": _cmd_run,
        "bench": _cmd_bench,
        "workloads": _cmd_workloads,
        "validate": _cmd_validate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
