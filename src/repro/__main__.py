"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``experiments``            — list the registered paper experiments
* ``run <id> [--records N] [--profile PATH]`` — regenerate one
  table/figure (optionally under cProfile, dumping pstats)
* ``bench``                  — run the performance microbenchmark suite
  and write the schema-versioned ``BENCH_sim.json`` report
* ``bench <workload> [--prefetcher P] [--records N]`` — one quick run
* ``sweep [--jobs N] [--cache-dir D] [--timeout S] [--retries N]
  [--ledger PATH] [--snapshot-dir D] [--checkpoint-every N]
  [--resume LEDGER] [--profile PATH] [--trace DIR] [--live|--quiet]
  [--trace-file F ...] [--backend {local,farm}] [--queue-dir D]
  [--farm-workers N]``
  — parallel, cached, fault-tolerant suite sweep (exits non-zero when
  cells stay unrecovered after retry + fallback); ``--snapshot-dir``
  reuses warmup snapshots across cells and runs, ``--resume`` adopts
  completed cells from a crashed run's ledger, ``--trace`` records the
  cell schedule as telemetry artifacts, ``--live``/``--quiet`` force
  the TTY progress line on/off, ``--trace-file`` adds converted-on-the-
  fly file-backed workloads (their content digests fold into the
  result-cache fingerprint), ``--backend farm`` executes through the
  durable work queue at ``--queue-dir`` (spawning ``--farm-workers``
  local worker subprocesses, or relying on external ``farm worker``
  processes; 0 workers falls back to an in-process loopback drain)
* ``farm broker --queue-dir D [sweep options]`` — run a sweep through
  the farm queue (shorthand for ``sweep --backend farm``)
* ``farm worker --queue-dir D [--max-cells N] [--follow]
  [--idle-timeout S]`` — drain queued cells as a worker process (run
  any number, on any host sharing the queue filesystem)
* ``farm status --queue-dir D`` — ticket/claim/result/failure counts
  and the queue manifest
* ``serve [--host H] [--port P] [--cache-dir D] [--queue-dir D]`` —
  asyncio HTTP front end (stdlib only): POST sweeps, stream live
  lifecycle events, look cached results up by config fingerprint
* ``trace convert FILE [FILE...] [--format NAME] [--cache-dir D]`` —
  canonicalize external trace files (DRAMSim2 k6/mase text,
  ChampSim-style binary; gzip/zstd transparent) into the
  content-digest trace cache; a repeated conversion of the same bytes
  is a cache hit
* ``trace record --workload W [--prefetcher P] [--probe-every N]
  --out DIR`` — run one traced simulation and export its telemetry
  artifacts (JSONL events, Chrome trace, time-series JSON/CSV)
* ``trace export LEDGER --out DIR`` — convert a sweep ledger's cell
  lifecycle events into a Perfetto-loadable Chrome trace
* ``trace summary PATH``     — per-series min/mean/max table of a
  recorded time-series artifact (a ``timeseries.json`` or its directory)
* ``checkpoint save PATH --workload W`` — warm one cell up and write
  its warmup-boundary snapshot
* ``checkpoint inspect PATH``— schema/kind/section summary of a snapshot
* ``checkpoint diff A B``    — leaf-level comparison of two snapshots
  (exit 1 when they differ)
* ``workloads``              — list the modelled benchmark suites
* ``registry list [--kind K]`` — every registered (kind, name) with its
  factory docstring one-liner (exit 2 on an unknown kind)

Component choices (prefetchers, workloads, suites) come from the
component registry, so a newly registered prefetcher is immediately
available to ``bench``/``sweep`` without touching this module — and
``--prefetcher``/``--prefetchers`` accept ``filtered:<inner>`` specs
composing the perceptron filter over any registered prefetcher.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import pstats
import sys
from pathlib import Path

from . import registry
from .harness.experiments import EXPERIMENTS, run_experiment
from .registry import UnknownComponentError
from .harness.validate import report_scorecard, validate
from .sim.config import SimConfig
from .sim.single_core import run_single_core  # noqa: F401  (registers prefetchers)
from .sim.suite import CellPolicy, SuiteRunner
from .workloads import find_workload, suite, suites


def _cmd_experiments(_args: argparse.Namespace) -> int:
    for experiment in EXPERIMENTS.values():
        print(f"{experiment.id:10s} {experiment.paper_anchor:12s} {experiment.description}")
    return 0


def _profiled(profile_path: str | None, work):
    """Run ``work()``, optionally under cProfile dumping pstats.

    Returns whatever ``work`` returns.  The profile is written even when
    ``work`` raises, so hung-then-interrupted sweeps still leave data.
    """
    if not profile_path:
        return work()
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        outcome = work()
    finally:
        profiler.disable()
        profiler.dump_stats(profile_path)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(15)
        print(f"profile written to {profile_path}", file=sys.stderr)
    return outcome


def _profiled_sweep(args: argparse.Namespace, runner, workloads):
    return _profiled(args.profile, lambda: runner.sweep(workloads, args.prefetchers))


def _make_session(args: argparse.Namespace):
    """A telemetry session when ``--trace`` was given, else ``None``."""
    if not getattr(args, "trace", None):
        return None
    from .telemetry import Telemetry

    return Telemetry(probe_every=getattr(args, "probe_every", None) or 1000)


def _export_session(session, out_dir: str) -> None:
    paths = session.export(out_dir)
    print(f"telemetry: {len(session.tracer.events())} event(s), "
          f"{len(session.series())} series -> {out_dir}")
    for name in sorted(paths):
        print(f"  {name}: {paths[name]}")


def _dir_inventory(target) -> tuple:
    """Snapshot an output directory before a subcommand writes into it.

    Paired with :func:`_discard_new_outputs`: a failed subcommand must
    leave the filesystem as it found it, so we record which entries (if
    any) predate the command.
    """
    path = Path(target)
    existed = path.is_dir()
    names = {child.name for child in path.iterdir()} if existed else set()
    return path, existed, names


def _discard_new_outputs(inventory: tuple) -> None:
    """Best-effort removal of outputs created since :func:`_dir_inventory`.

    Entries that predate the snapshot are never touched; a directory the
    failed command itself created is removed once emptied.  Cleanup is
    advisory — individual writes are already atomic, this just keeps a
    failed run from leaving a half-populated artifact directory behind.
    """
    import shutil

    path, existed, before = inventory
    if not path.is_dir():
        return
    for child in path.iterdir():
        if child.name in before:
            continue
        try:
            if child.is_dir():
                shutil.rmtree(child, ignore_errors=True)
            else:
                child.unlink()
        except OSError:
            pass
    if not existed:
        try:
            path.rmdir()
        except OSError:
            pass


def _apply_engine(config: SimConfig, engine: str | None) -> SimConfig:
    """Fold a ``--engine`` choice into the config, validated eagerly.

    Unknown names raise the registry's
    :class:`~repro.registry.UnknownComponentError` (with the catalog and
    did-you-mean suggestion) here in the CLI process, not later inside a
    sweep worker.  The engine name is part of ``config_fingerprint``
    automatically, since it is a :class:`SimConfig` field.
    """
    if engine is None:
        return config
    import dataclasses

    from .engine import make_engine  # noqa: F401  (registers engines)

    registry.create("engine", engine)
    return dataclasses.replace(config, engine=engine)


def _cmd_run(args: argparse.Namespace) -> int:
    config = SimConfig.quick(
        measure_records=args.records, warmup_records=args.records // 4
    )
    try:
        config = _apply_engine(config, args.engine)
    except UnknownComponentError as err:
        print(f"repro run: error: {err}", file=sys.stderr)
        return 2
    session = _make_session(args)

    def work() -> int:
        if session is None:
            print(run_experiment(args.id, config))
            return 0
        from .telemetry import activate

        with activate(session):
            print(run_experiment(args.id, config))
        _export_session(session, args.trace)
        return 0

    return _profiled(args.profile, work)


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.workload is None:
        return _cmd_bench_suite(args)
    try:
        workload = find_workload(args.workload)
        from .zoo.filtered import validate_prefetcher_spec

        validate_prefetcher_spec(args.prefetcher)
    except UnknownComponentError as err:
        print(f"repro bench: error: {err}", file=sys.stderr)
        return 2
    config = SimConfig.quick(
        measure_records=args.records, warmup_records=args.records // 4
    )
    try:
        config = _apply_engine(config, args.engine)
    except UnknownComponentError as err:
        print(f"repro bench: error: {err}", file=sys.stderr)
        return 2
    session = _make_session(args)
    baseline = run_single_core(workload, "none", config, telemetry=None)
    result = run_single_core(workload, args.prefetcher, config, telemetry=session)
    print(
        f"{workload.name} / {args.prefetcher}: "
        f"ipc={result.ipc:.3f} speedup={result.ipc / baseline.ipc:.3f} "
        f"accuracy={result.accuracy:.2f} l2mpki={result.l2_mpki:.2f}"
    )
    if session is not None:
        _export_session(session, args.trace)
    return 0


def _cmd_bench_suite(args: argparse.Namespace) -> int:
    from .bench import (
        build_report,
        format_report,
        load_baseline,
        run_benchmarks,
        write_report,
    )

    mode = "smoke" if args.smoke else "full"
    scale = 0.1 if args.smoke else 1.0
    repeats = args.repeat if args.repeat is not None else (1 if args.smoke else 3)
    try:
        # UnknownComponentError subclasses ValueError, so a bad --engine
        # lands here too, carrying the registry's did-you-mean message.
        results = run_benchmarks(
            names=args.only, scale=scale, repeats=repeats, engine=args.engine
        )
    except ValueError as err:
        print(f"repro bench: error: {err}", file=sys.stderr)
        return 2
    baseline = None if args.rebaseline else load_baseline(args.baseline)
    report = build_report(results, mode=mode, scale=scale, baseline=baseline)
    if args.rebaseline:
        from .bench.report import default_baseline_path

        path = write_report(report, default_baseline_path())
        print(f"baseline written to {path}")
    else:
        path = write_report(report, args.output)
        print(format_report(report))
        print(f"report written to {path}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    config = SimConfig.quick(
        measure_records=args.records, warmup_records=args.records // 4
    )
    try:
        config = _apply_engine(config, args.engine)
        # Eager spec validation (mirrors --engine): typos in
        # --prefetchers, including filtered:<inner> specs, fail here
        # with a did-you-mean instead of deep inside cell expansion.
        from .zoo.filtered import validate_prefetcher_spec

        for spec_name in args.prefetchers:
            validate_prefetcher_spec(spec_name)
        if args.workloads:
            workloads = [find_workload(name) for name in args.workloads]
        elif args.trace_files:
            workloads = []  # sweep exactly the given trace files
        else:
            workloads = [spec for spec in suite("spec2017") if spec.memory_intensive]
        if args.trace_files:
            import dataclasses

            from .traces import TraceCache, trace_workload

            cache = TraceCache(args.trace_cache)
            digests = []
            for source in args.trace_files:
                outcome = cache.convert(source)
                digests.append(outcome.digest)
                workloads.append(
                    trace_workload(
                        outcome.path,
                        name=f"trace:{Path(source).stem}@{outcome.digest[:12]}",
                    )
                )
            # trace_digests is a SimConfig field, so the content digests
            # fold into config_fingerprint and key the result cache:
            # editing a trace file invalidates its cached cells.
            config = dataclasses.replace(
                config, trace_digests=tuple(sorted(set(digests)))
            )
        backend = None
        if getattr(args, "backend", "local") == "farm":
            if not args.queue_dir:
                raise ValueError("--backend farm requires --queue-dir")
            from .farm import FarmBackend

            backend = FarmBackend(args.queue_dir, workers=args.farm_workers)
        elif getattr(args, "queue_dir", None):
            raise ValueError("--queue-dir only applies with --backend farm")
        runner = SuiteRunner(
            config,
            seed=args.seed,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            policy=CellPolicy(timeout=args.timeout, retries=args.retries),
            ledger_path=args.ledger,
            snapshot_dir=args.snapshot_dir,
            checkpoint_every=args.checkpoint_every,
            backend=backend,
        )
    except (UnknownComponentError, ValueError) as err:
        print(f"repro sweep: error: {err}", file=sys.stderr)
        return 2

    from .telemetry import LiveProgress

    schemes = list(args.prefetchers)
    if "none" not in schemes:
        schemes = ["none"] + schemes
    progress = LiveProgress(
        total=len(workloads) * len(schemes),
        enabled=True if args.live else (False if args.quiet else None),
    )
    runner.add_observer(progress)
    session = _make_session(args)
    if session is not None:
        from .telemetry.tracer import Event

        def _trace_lifecycle(record):
            if record.get("event") != "lifecycle":
                return
            args_out = {
                k: v
                for k, v in record.items()
                if k not in ("event", "phase", "t")
            }
            session.tracer.emit(
                Event(
                    f"{record['workload']}/{record['prefetcher']}:{record['phase']}",
                    "sweep",
                    "I",
                    record["t"],
                    args=args_out,
                )
            )

        runner.add_observer(_trace_lifecycle)

    if args.resume:
        adopted = runner.preload_from_ledger(args.resume)
        print(f"resume: adopted {adopted} completed cell(s) from {args.resume}")
    try:
        result = _profiled_sweep(args, runner, workloads)
    finally:
        progress.close()
    if session is not None:
        _export_session(session, args.trace)
    report = result.failure_report
    for scheme in args.prefetchers:
        print(f"{scheme}:")
        try:
            per_workload = result.speedups(scheme)
        except ValueError as err:
            print(f"  (unavailable: {err})")
            continue
        for workload, speedup in sorted(per_workload.items()):
            print(f"  {workload:20s} {speedup:6.3f}")
        if per_workload:
            print(f"  {'geomean':20s} {result.geomean_speedup(scheme):6.3f}")
    print(
        f"cells: simulated={runner.simulated} "
        f"memory_hits={runner.memory_hits} disk_hits={runner.disk_hits} "
        f"cached={result.cache_hits} executed={result.executed} "
        f"hit_rate={result.cache_hit_rate:.1%}"
    )
    if runner.snapshot_store is not None:
        print(
            f"snapshots: warmup_hits={runner._exec.snapshot_hits} "
            f"warmup_misses={runner._exec.snapshot_misses} "
            f"resumed={runner._exec.resumed}"
        )
    if report.failures:
        print(f"recovery: {report.summary()}")
    if not report.complete:
        for failure in report.unrecovered:
            print(
                f"repro sweep: unrecovered cell ({failure.workload}, "
                f"{failure.prefetcher}) after {failure.attempts} attempt(s): "
                f"{failure.error}",
                file=sys.stderr,
            )
        return 3
    return 0


def _cmd_farm(args: argparse.Namespace) -> int:
    from .farm import FarmQueue, FarmWorker
    from .farm.queue import QueueError

    if args.action == "broker":
        # A broker is a sweep with the farm backend preselected; reuse
        # the sweep handler so caching, ledger, resume, live progress
        # and exit codes stay in one place.
        args.backend = "farm"
        return _cmd_sweep(args)

    if args.action == "worker":
        try:
            worker = FarmWorker(args.queue_dir, worker_id=args.worker_id)
        except (QueueError, OSError) as err:
            print(f"repro farm: error: {err}", file=sys.stderr)
            return 2
        done = worker.drain(
            max_cells=args.max_cells,
            follow=args.follow,
            idle_timeout=args.idle_timeout,
        )
        print(
            f"worker {worker.worker_id}: completed {done} cell(s), "
            f"{worker.failed_attempts} failed attempt(s)"
        )
        return 0

    # status
    queue = FarmQueue(args.queue_dir)
    manifest = queue.manifest()
    if manifest is None:
        print(f"repro farm: error: no queue at {args.queue_dir}", file=sys.stderr)
        return 2
    counts = queue.counts()
    print(f"queue {args.queue_dir}:")
    for field in ("queued", "claimed", "expired_leases", "results", "failed"):
        print(f"  {field:14s} {counts.get(field, 0)}")
    for key in sorted(manifest):
        print(f"  manifest.{key} = {manifest[key]}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .farm.service import FarmService

    service = FarmService(
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        seed=args.seed,
        records=args.records,
        snapshot_dir=args.snapshot_dir,
        queue_dir=args.queue_dir,
        farm_workers=args.farm_workers,
    )
    backend = "farm" if args.queue_dir else "local"
    print(
        f"repro serve: http://{args.host}:{args.port} "
        f"(backend={backend}, cache={args.cache_dir})",
        file=sys.stderr,
    )
    try:
        service.run_blocking(host=args.host, port=args.port)
    except KeyboardInterrupt:
        pass
    except OSError as err:
        print(f"repro serve: error: {err}", file=sys.stderr)
        return 2
    return 0


def _cmd_registry(args: argparse.Namespace) -> int:
    """``registry list [--kind K]``: the full component catalog.

    Importing the component-defining packages here is what fills the
    registry — the registry itself is populated purely by import side
    effects, so discovery must pull every package in first.
    """
    from . import prefetchers, traces  # noqa: F401
    from .core import features  # noqa: F401
    from .engine import make_engine  # noqa: F401
    from .memory import replacement  # noqa: F401
    from .telemetry import probes  # noqa: F401

    kinds = registry.kinds()
    if args.kind is not None:
        if args.kind not in kinds:
            known = ", ".join(kinds)
            print(
                f"repro registry: error: unknown component kind {args.kind!r}; "
                f"known kinds: {known}",
                file=sys.stderr,
            )
            return 2
        kinds = [args.kind]
    for kind in kinds:
        for name in registry.names(kind):
            factory = registry.get(kind, name)
            doc = (factory.__doc__ or "").strip().splitlines()
            one_liner = doc[0] if doc else ""
            print(f"{kind:14s} {name:24s} {one_liner}")
    return 0


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    from .checkpoint import SnapshotError, load_snapshot, save_snapshot
    from .checkpoint.inspect import diff_snapshots, summarize

    if args.action == "save":
        from .sim.single_core import SingleCoreSim

        config = SimConfig.quick(
            measure_records=args.records, warmup_records=args.records // 4
        )
        try:
            workload = find_workload(args.workload)
            from .zoo.filtered import validate_prefetcher_spec

            validate_prefetcher_spec(args.prefetcher)
        except UnknownComponentError as err:
            print(f"repro checkpoint: error: {err}", file=sys.stderr)
            return 2
        sim = SingleCoreSim(workload, args.prefetcher, config, seed=args.seed)
        inventory = _dir_inventory(Path(args.path).parent)
        try:
            sim.warmup()
            save_snapshot(Path(args.path), sim.snapshot("warmup"))
        except (OSError, SnapshotError, ValueError) as err:
            # The snapshot write is atomic, so a failure leaves no file;
            # drop any directory this command created on the way in.
            _discard_new_outputs(inventory)
            print(f"repro checkpoint: error: {err}", file=sys.stderr)
            return 2
        print(
            f"warmup snapshot ({workload.name} / {args.prefetcher}, "
            f"{sim.consumed} records) written to {args.path}"
        )
        return 0

    try:
        first = load_snapshot(Path(args.path))
    except (OSError, SnapshotError) as err:
        print(f"repro checkpoint: error: {args.path}: {err}", file=sys.stderr)
        return 2
    if args.action == "inspect":
        print(json.dumps(summarize(first), indent=2))
        return 0
    try:
        other = load_snapshot(Path(args.other))
    except (OSError, SnapshotError) as err:
        print(f"repro checkpoint: error: {args.other}: {err}", file=sys.stderr)
        return 2
    outcome = diff_snapshots(first, other, limit=args.limit)
    print(json.dumps(outcome, indent=2))
    return 0 if outcome["equal"] else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from .telemetry import Telemetry, TelemetrySchemaError, validate_timeseries
    from .telemetry import export as tele_export
    from .telemetry.tracer import Event

    if args.action == "convert":
        from .traces import TraceCache, TraceFormatError

        inventory = _dir_inventory(args.cache_dir)
        cache = TraceCache(args.cache_dir)
        fmt = None if args.format == "auto" else args.format
        converted = 0
        try:
            for source in args.files:
                outcome = cache.convert(source, fmt=fmt)
                status = "cache hit" if outcome.cache_hit else "converted"
                print(
                    f"{outcome.source} -> {outcome.path} "
                    f"[{outcome.format}, {outcome.records} record(s), "
                    f"digest {outcome.digest[:12]}, {status}]"
                )
                converted += 1
        except (TraceFormatError, OSError) as err:
            # The failed conversion published nothing (atomic rename);
            # completed conversions are whole cache entries and stay.
            # Only a cache directory we created and never filled goes.
            if not converted:
                _discard_new_outputs(inventory)
            print(f"repro trace: error: {err}", file=sys.stderr)
            return 2
        return 0

    if args.action == "record":
        try:
            workload = find_workload(args.workload)
            from .zoo.filtered import validate_prefetcher_spec

            validate_prefetcher_spec(args.prefetcher)
        except UnknownComponentError as err:
            print(f"repro trace: error: {err}", file=sys.stderr)
            return 2
        config = SimConfig.quick(
            measure_records=args.records, warmup_records=args.records // 4
        )
        session = Telemetry(probe_every=args.probe_every)
        inventory = _dir_inventory(args.out)
        try:
            result = run_single_core(
                workload, args.prefetcher, config, seed=args.seed, telemetry=session
            )
            print(
                f"{workload.name} / {args.prefetcher}: ipc={result.ipc:.3f} "
                f"({len(session.tracer.events())} events, "
                f"{len(session.series())} series)"
            )
            _export_session(session, args.out)
        except (OSError, ValueError) as err:
            _discard_new_outputs(inventory)
            print(f"repro trace: error: {err}", file=sys.stderr)
            return 2
        return 0

    if args.action == "export":
        ledger_path = Path(args.ledger)
        if not ledger_path.exists():
            print(f"repro trace: error: no ledger at {ledger_path}", file=sys.stderr)
            return 2
        events = []
        open_cells: dict = {}
        for line in ledger_path.read_text().splitlines():
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if entry.get("event") != "lifecycle":
                continue
            cell = f"{entry.get('workload')}/{entry.get('prefetcher')}"
            phase = entry.get("phase")
            t = entry.get("t", 0.0)
            if phase == "started":
                open_cells[cell] = t
            elif phase == "finished" and cell in open_cells:
                start = open_cells.pop(cell)
                events.append(
                    Event(cell, "sweep", "X", start, dur=max(0.0, t - start),
                          args={"ok": entry.get("ok", True)})
                )
                continue
            events.append(Event(f"{cell}:{phase}", "sweep", "I", t))
        events.sort(key=lambda e: e.ts)
        inventory = _dir_inventory(args.out)
        try:
            os.makedirs(args.out, exist_ok=True)
            path = tele_export.write_chrome_trace(
                events, str(Path(args.out) / "TRACE_sweep.json"),
                {"source": str(ledger_path)},
            )
        except OSError as err:
            _discard_new_outputs(inventory)
            print(f"repro trace: error: {err}", file=sys.stderr)
            return 2
        print(f"{len(events)} lifecycle event(s) -> {path}")
        return 0

    # summary
    from .harness.report import render_table

    target = Path(args.path)
    if target.is_dir():
        target = target / "timeseries.json"
    try:
        document = json.loads(target.read_text())
    except (OSError, ValueError) as err:
        print(f"repro trace: error: {target}: {err}", file=sys.stderr)
        return 2
    try:
        count = validate_timeseries(document)
    except TelemetrySchemaError as err:
        print(f"repro trace: error: {target}: {err}", file=sys.stderr)
        return 2
    rows = tele_export.summary_rows(document)
    print(
        render_table(
            ["series", "unit", "samples", "min", "mean", "max", "last"],
            rows,
            title=f"{count} series ({target})",
        )
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    config = SimConfig.quick(
        measure_records=args.records, warmup_records=args.records // 4
    )
    scorecard = validate(config, include_sweeps=not args.fast)
    print(report_scorecard(scorecard))
    return 0 if scorecard.all_passed else 1


#: Display titles for the listing; unlisted suites show their registry name.
_SUITE_TITLES = {
    "spec2017": "SPEC CPU 2017",
    "spec2006": "SPEC CPU 2006",
    "cloudsuite": "CloudSuite",
}


def _cmd_workloads(_args: argparse.Namespace) -> int:
    for suite_name in suites():
        if suite_name.endswith("-intensive"):
            continue  # views over their parent suites
        workloads = suite(suite_name)
        title = _SUITE_TITLES.get(suite_name, suite_name)
        print(f"{title} ({len(workloads)}):")
        for workload in workloads:
            marker = "*" if workload.memory_intensive else " "
            print(f"  {marker} {workload.name:20s} {workload.description}")
    print("\n(* = memory intensive, LLC MPKI > 1)")
    return 0


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list paper experiments")

    run_parser = sub.add_parser("run", help="regenerate one table/figure")
    run_parser.add_argument("id", choices=sorted(EXPERIMENTS))
    run_parser.add_argument("--records", type=int, default=20_000)
    run_parser.add_argument(
        "--profile",
        metavar="PATH",
        default=None,
        help="run under cProfile and dump pstats to PATH",
    )
    run_parser.add_argument(
        "--engine",
        default=None,
        metavar="NAME",
        help="simulation engine (scalar, batched, ...; registry-validated)",
    )
    run_parser.add_argument(
        "--trace",
        metavar="DIR",
        default=None,
        help="record telemetry for directly-driven runs and export to DIR",
    )
    run_parser.add_argument(
        "--probe-every",
        type=int,
        default=1000,
        metavar="N",
        help="probe sampling cadence in trace records (with --trace)",
    )

    bench_parser = sub.add_parser(
        "bench",
        help="performance microbenchmarks (or one quick workload run)",
    )
    bench_parser.add_argument(
        "workload",
        nargs="?",
        default=None,
        help="workload name for a quick simulation run; omit to run the "
        "microbenchmark suite and write BENCH_sim.json",
    )
    bench_parser.add_argument(
        "--prefetcher",
        default="ppf",
        metavar="SPEC",
        help="prefetcher name or filtered:<inner> spec (registry-validated)",
    )
    bench_parser.add_argument("--records", type=int, default=20_000)
    bench_parser.add_argument(
        "--smoke", action="store_true", help="reduced op counts (CI smoke job)"
    )
    bench_parser.add_argument(
        "--engine",
        default=None,
        metavar="NAME",
        help="simulation engine for the quick run / unpinned end-to-end "
        "benchmarks (scalar, batched, ...; registry-validated)",
    )
    bench_parser.add_argument(
        "--repeat", type=int, default=None, help="repeats per benchmark (best kept)"
    )
    bench_parser.add_argument(
        "--only", nargs="+", metavar="NAME", default=None, help="benchmark subset"
    )
    bench_parser.add_argument(
        "--output", default=None, metavar="PATH", help="report path (default BENCH_sim.json)"
    )
    bench_parser.add_argument(
        "--baseline", default=None, metavar="PATH", help="baseline report to compare against"
    )
    bench_parser.add_argument(
        "--rebaseline",
        action="store_true",
        help="record this run as benchmarks/baseline_pre_pr.json instead",
    )
    bench_parser.add_argument(
        "--trace",
        metavar="DIR",
        default=None,
        help="with a workload: record telemetry and export artifacts to DIR",
    )
    bench_parser.add_argument(
        "--probe-every",
        type=int,
        default=1000,
        metavar="N",
        help="probe sampling cadence in trace records (with --trace)",
    )

    def _add_sweep_options(target: argparse.ArgumentParser, broker: bool) -> None:
        """The sweep surface, shared verbatim by ``farm broker``.

        With ``broker=True``, ``--queue-dir`` is required (a broker is
        nothing without its queue) and ``--backend`` is absent (it is
        forced to ``farm`` by the handler).
        """
        target.add_argument(
            "--workloads",
            nargs="+",
            metavar="NAME",
            help="workload names (default: memory-intensive SPEC 2017 subset)",
        )
        target.add_argument(
            "--prefetchers",
            nargs="+",
            default=["spp", "ppf"],
            metavar="SPEC",
            help="prefetcher names and/or filtered:<inner> specs "
            "(registry-validated eagerly, with did-you-mean)",
        )
        target.add_argument(
            "--jobs", type=int, default=None, help="worker processes (default: all cores)"
        )
        target.add_argument(
            "--cache-dir", default=None, help="persistent result cache directory"
        )
        target.add_argument("--records", type=int, default=20_000)
        target.add_argument("--seed", type=int, default=1)
        target.add_argument(
            "--engine",
            default=None,
            metavar="NAME",
            help="simulation engine for every cell (folds into the result-"
            "cache fingerprint; scalar, batched, ...)",
        )
        target.add_argument(
            "--timeout",
            type=float,
            default=None,
            help="per-cell timeout in seconds (default: unbounded; with "
            "--backend farm this is the lease TTL, i.e. the hang-recovery "
            "horizon)",
        )
        target.add_argument(
            "--retries",
            type=int,
            default=1,
            help="pool re-executions per failed/hung cell before serial fallback",
        )
        target.add_argument(
            "--ledger",
            default=None,
            metavar="PATH",
            help="append a JSONL run ledger (per-cell status/attempts/provenance)",
        )
        target.add_argument(
            "--snapshot-dir",
            default=None,
            metavar="DIR",
            help="warmup snapshot store (reused across cells and runs)",
        )
        target.add_argument(
            "--checkpoint-every",
            type=int,
            default=None,
            metavar="N",
            help="with --snapshot-dir: periodic mid-measure checkpoint every "
            "N records (crash-resume granularity)",
        )
        target.add_argument(
            "--resume",
            default=None,
            metavar="LEDGER",
            help="adopt completed cells recorded in a prior run's ledger",
        )
        target.add_argument(
            "--profile",
            metavar="PATH",
            default=None,
            help="profile the sweep (parent process) and dump pstats to PATH",
        )
        target.add_argument(
            "--trace",
            metavar="DIR",
            default=None,
            help="record the cell schedule as telemetry artifacts in DIR",
        )
        target.add_argument(
            "--probe-every",
            type=int,
            default=1000,
            metavar="N",
            help="probe cadence for any directly-driven runs (with --trace)",
        )
        target.add_argument(
            "--trace-file",
            dest="trace_files",
            action="append",
            metavar="PATH",
            default=None,
            help="external trace file (k6/mase text or ChampSim-style binary, "
            ".gz ok) to convert through the digest cache and sweep as a "
            "file-backed workload; repeatable",
        )
        target.add_argument(
            "--trace-cache",
            default="trace-cache",
            metavar="DIR",
            help="canonical trace cache directory (with --trace-file)",
        )
        if not broker:
            target.add_argument(
                "--backend",
                default="local",
                choices=["local", "farm"],
                help="where pending cells execute: the in-process pool, or "
                "the durable work queue at --queue-dir",
            )
        target.add_argument(
            "--queue-dir",
            default=None,
            metavar="DIR",
            required=broker,
            help="farm queue directory (shared by broker and workers)",
        )
        target.add_argument(
            "--farm-workers",
            type=int,
            default=0,
            metavar="N",
            help="with --backend farm: worker subprocesses to spawn for "
            "this sweep (0: external workers, else in-process loopback)",
        )
        live_group = target.add_mutually_exclusive_group()
        live_group.add_argument(
            "--live",
            action="store_true",
            help="force the one-line stderr progress renderer on",
        )
        live_group.add_argument(
            "--quiet",
            action="store_true",
            help="force the progress renderer off (default: on only for a TTY)",
        )

    sweep_parser = sub.add_parser(
        "sweep", help="parallel, cached (workload × prefetcher) sweep"
    )
    _add_sweep_options(sweep_parser, broker=False)

    farm_parser = sub.add_parser(
        "farm", help="distributed sweep farm: broker / worker / status"
    )
    farm_sub = farm_parser.add_subparsers(dest="action", required=True)
    broker_parser = farm_sub.add_parser(
        "broker", help="run a sweep through the farm queue (sweep --backend farm)"
    )
    _add_sweep_options(broker_parser, broker=True)
    worker_parser = farm_sub.add_parser(
        "worker", help="claim and simulate queued cells (run any number of these)"
    )
    worker_parser.add_argument(
        "--queue-dir", required=True, metavar="DIR", help="farm queue directory"
    )
    worker_parser.add_argument(
        "--worker-id", default=None, help="stable identity (default: host-pid)"
    )
    worker_parser.add_argument(
        "--max-cells", type=int, default=None, metavar="N",
        help="exit after completing N cells (default: drain the queue)",
    )
    worker_parser.add_argument(
        "--follow", action="store_true",
        help="keep polling an empty queue for new work instead of exiting",
    )
    worker_parser.add_argument(
        "--idle-timeout", type=float, default=None, metavar="S",
        help="exit after S seconds without claiming anything",
    )
    status_parser = farm_sub.add_parser(
        "status", help="queue counts and manifest"
    )
    status_parser.add_argument(
        "--queue-dir", required=True, metavar="DIR", help="farm queue directory"
    )

    serve_parser = sub.add_parser(
        "serve", help="HTTP front end: submit sweeps, stream progress, fetch results"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8943)
    serve_parser.add_argument(
        "--cache-dir", default="sweep-cache",
        help="shared result cache every job reads/writes (the hit-rate layer)",
    )
    serve_parser.add_argument(
        "--records", type=int, default=20_000,
        help="default measurement window for submitted sweeps",
    )
    serve_parser.add_argument("--seed", type=int, default=1)
    serve_parser.add_argument(
        "--jobs", type=int, default=None, help="worker processes per job sweep"
    )
    serve_parser.add_argument(
        "--snapshot-dir", default=None, metavar="DIR",
        help="warmup snapshot store shared across jobs",
    )
    serve_parser.add_argument(
        "--queue-dir", default=None, metavar="DIR",
        help="execute jobs through the farm queue at DIR instead of locally",
    )
    serve_parser.add_argument(
        "--farm-workers", type=int, default=0, metavar="N",
        help="with --queue-dir: worker subprocesses to spawn per job",
    )

    checkpoint_parser = sub.add_parser(
        "checkpoint", help="save / inspect / diff simulation snapshots"
    )
    checkpoint_sub = checkpoint_parser.add_subparsers(dest="action", required=True)
    save_parser = checkpoint_sub.add_parser(
        "save", help="warm one cell up and write its warmup snapshot"
    )
    save_parser.add_argument("path", help="snapshot file to write")
    save_parser.add_argument("--workload", required=True)
    save_parser.add_argument(
        "--prefetcher",
        default="ppf",
        metavar="SPEC",
        help="prefetcher name or filtered:<inner> spec (registry-validated)",
    )
    save_parser.add_argument("--records", type=int, default=20_000)
    save_parser.add_argument("--seed", type=int, default=1)
    inspect_parser = checkpoint_sub.add_parser(
        "inspect", help="summarize one snapshot (schema, kind, sections)"
    )
    inspect_parser.add_argument("path")
    diff_parser = checkpoint_sub.add_parser(
        "diff", help="compare two snapshots leaf by leaf (exit 1 if different)"
    )
    diff_parser.add_argument("path")
    diff_parser.add_argument("other")
    diff_parser.add_argument(
        "--limit", type=int, default=40, help="max differing leaves to report"
    )

    trace_parser = sub.add_parser(
        "trace", help="record / export / summarize telemetry artifacts"
    )
    trace_sub = trace_parser.add_subparsers(dest="action", required=True)
    convert_parser = trace_sub.add_parser(
        "convert", help="canonicalize external trace files into the digest cache"
    )
    convert_parser.add_argument(
        "files",
        nargs="+",
        metavar="FILE",
        help="trace files (DRAMSim2 k6/mase text or ChampSim-style binary; "
        "gzip/zstd-compressed accepted)",
    )
    convert_parser.add_argument(
        "--format",
        default="auto",
        choices=["auto"] + registry.names("trace_format"),
        help="input format (default: sniff magic bytes, extension, content)",
    )
    convert_parser.add_argument(
        "--cache-dir",
        default="trace-cache",
        metavar="DIR",
        help="canonical trace cache directory (default: trace-cache)",
    )
    record_parser = trace_sub.add_parser(
        "record", help="run one traced simulation and export its artifacts"
    )
    record_parser.add_argument("--workload", required=True)
    record_parser.add_argument(
        "--prefetcher",
        default="ppf",
        metavar="SPEC",
        help="prefetcher name or filtered:<inner> spec (registry-validated)",
    )
    record_parser.add_argument("--records", type=int, default=20_000)
    record_parser.add_argument("--seed", type=int, default=1)
    record_parser.add_argument(
        "--probe-every", type=int, default=1000, metavar="N",
        help="probe sampling cadence in trace records",
    )
    record_parser.add_argument(
        "--out", default="trace-out", metavar="DIR", help="artifact directory"
    )
    export_parser = trace_sub.add_parser(
        "export", help="Chrome trace from a sweep ledger's lifecycle events"
    )
    export_parser.add_argument("ledger", help="JSONL run ledger (sweep --ledger)")
    export_parser.add_argument(
        "--out", default="trace-out", metavar="DIR", help="artifact directory"
    )
    summary_parser = trace_sub.add_parser(
        "summary", help="per-series table of a recorded time-series artifact"
    )
    summary_parser.add_argument(
        "path", help="timeseries.json (or the directory holding one)"
    )

    sub.add_parser("workloads", help="list modelled workloads")

    registry_parser = sub.add_parser(
        "registry", help="inspect the component registry"
    )
    registry_sub = registry_parser.add_subparsers(dest="action", required=True)
    list_parser = registry_sub.add_parser(
        "list", help="every registered (kind, name) with its docstring one-liner"
    )
    list_parser.add_argument(
        "--kind",
        default=None,
        metavar="KIND",
        help="restrict to one component kind (prefetcher, engine, probe, ...)",
    )

    validate_parser = sub.add_parser("validate", help="run the reproduction scorecard")
    validate_parser.add_argument("--records", type=int, default=15_000)
    validate_parser.add_argument(
        "--fast", action="store_true", help="structural claims only (no sweeps)"
    )

    args = parser.parse_args(argv)
    handlers = {
        "experiments": _cmd_experiments,
        "run": _cmd_run,
        "bench": _cmd_bench,
        "sweep": _cmd_sweep,
        "farm": _cmd_farm,
        "serve": _cmd_serve,
        "trace": _cmd_trace,
        "checkpoint": _cmd_checkpoint,
        "registry": _cmd_registry,
        "workloads": _cmd_workloads,
        "validate": _cmd_validate,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly with the
        # conventional SIGPIPE status instead of a traceback.  Point
        # stdout at devnull so the interpreter's exit-time flush of the
        # dead pipe cannot raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    sys.exit(main())
