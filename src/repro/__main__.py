"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``experiments``            — list the registered paper experiments
* ``run <id> [--records N] [--profile PATH]`` — regenerate one
  table/figure (optionally under cProfile, dumping pstats)
* ``bench``                  — run the performance microbenchmark suite
  and write the schema-versioned ``BENCH_sim.json`` report
* ``bench <workload> [--prefetcher P] [--records N]`` — one quick run
* ``sweep [--jobs N] [--cache-dir D] [--timeout S] [--retries N]
  [--ledger PATH] [--profile PATH]`` — parallel, cached, fault-tolerant
  suite sweep (exits non-zero when cells stay unrecovered after retry +
  fallback)
* ``workloads``              — list the modelled benchmark suites

Component choices (prefetchers, workloads, suites) come from the
component registry, so a newly registered prefetcher is immediately
available to ``bench``/``sweep`` without touching this module.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys

from . import registry
from .harness.experiments import EXPERIMENTS, run_experiment
from .registry import UnknownComponentError
from .harness.validate import report_scorecard, validate
from .sim.config import SimConfig
from .sim.single_core import run_single_core  # noqa: F401  (registers prefetchers)
from .sim.suite import CellPolicy, SuiteRunner
from .workloads import find_workload, suite, suites


def _cmd_experiments(_args: argparse.Namespace) -> int:
    for experiment in EXPERIMENTS.values():
        print(f"{experiment.id:10s} {experiment.paper_anchor:12s} {experiment.description}")
    return 0


def _profiled(profile_path: str | None, work):
    """Run ``work()``, optionally under cProfile dumping pstats.

    Returns whatever ``work`` returns.  The profile is written even when
    ``work`` raises, so hung-then-interrupted sweeps still leave data.
    """
    if not profile_path:
        return work()
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        outcome = work()
    finally:
        profiler.disable()
        profiler.dump_stats(profile_path)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(15)
        print(f"profile written to {profile_path}", file=sys.stderr)
    return outcome


def _profiled_sweep(args: argparse.Namespace, runner, workloads):
    return _profiled(args.profile, lambda: runner.sweep(workloads, args.prefetchers))


def _cmd_run(args: argparse.Namespace) -> int:
    config = SimConfig.quick(
        measure_records=args.records, warmup_records=args.records // 4
    )

    def work() -> int:
        print(run_experiment(args.id, config))
        return 0

    return _profiled(args.profile, work)


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.workload is None:
        return _cmd_bench_suite(args)
    try:
        workload = find_workload(args.workload)
    except UnknownComponentError as err:
        print(f"repro bench: error: {err}", file=sys.stderr)
        return 2
    config = SimConfig.quick(
        measure_records=args.records, warmup_records=args.records // 4
    )
    baseline = run_single_core(workload, "none", config)
    result = run_single_core(workload, args.prefetcher, config)
    print(
        f"{workload.name} / {args.prefetcher}: "
        f"ipc={result.ipc:.3f} speedup={result.ipc / baseline.ipc:.3f} "
        f"accuracy={result.accuracy:.2f} l2mpki={result.l2_mpki:.2f}"
    )
    return 0


def _cmd_bench_suite(args: argparse.Namespace) -> int:
    from .bench import (
        build_report,
        format_report,
        load_baseline,
        run_benchmarks,
        write_report,
    )

    mode = "smoke" if args.smoke else "full"
    scale = 0.1 if args.smoke else 1.0
    repeats = args.repeat if args.repeat is not None else (1 if args.smoke else 3)
    try:
        results = run_benchmarks(names=args.only, scale=scale, repeats=repeats)
    except ValueError as err:
        print(f"repro bench: error: {err}", file=sys.stderr)
        return 2
    baseline = None if args.rebaseline else load_baseline(args.baseline)
    report = build_report(results, mode=mode, scale=scale, baseline=baseline)
    if args.rebaseline:
        from .bench.report import default_baseline_path

        path = write_report(report, default_baseline_path())
        print(f"baseline written to {path}")
    else:
        path = write_report(report, args.output)
        print(format_report(report))
        print(f"report written to {path}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    config = SimConfig.quick(
        measure_records=args.records, warmup_records=args.records // 4
    )
    try:
        if args.workloads:
            workloads = [find_workload(name) for name in args.workloads]
        else:
            workloads = [spec for spec in suite("spec2017") if spec.memory_intensive]
        runner = SuiteRunner(
            config,
            seed=args.seed,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            policy=CellPolicy(timeout=args.timeout, retries=args.retries),
            ledger_path=args.ledger,
        )
    except (UnknownComponentError, ValueError) as err:
        print(f"repro sweep: error: {err}", file=sys.stderr)
        return 2
    result = _profiled_sweep(args, runner, workloads)
    report = result.failure_report
    for scheme in args.prefetchers:
        print(f"{scheme}:")
        try:
            per_workload = result.speedups(scheme)
        except ValueError as err:
            print(f"  (unavailable: {err})")
            continue
        for workload, speedup in sorted(per_workload.items()):
            print(f"  {workload:20s} {speedup:6.3f}")
        if per_workload:
            print(f"  {'geomean':20s} {result.geomean_speedup(scheme):6.3f}")
    print(
        f"cells: simulated={runner.simulated} "
        f"memory_hits={runner.memory_hits} disk_hits={runner.disk_hits}"
    )
    if report.failures:
        print(f"recovery: {report.summary()}")
    if not report.complete:
        for failure in report.unrecovered:
            print(
                f"repro sweep: unrecovered cell ({failure.workload}, "
                f"{failure.prefetcher}) after {failure.attempts} attempt(s): "
                f"{failure.error}",
                file=sys.stderr,
            )
        return 3
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    config = SimConfig.quick(
        measure_records=args.records, warmup_records=args.records // 4
    )
    scorecard = validate(config, include_sweeps=not args.fast)
    print(report_scorecard(scorecard))
    return 0 if scorecard.all_passed else 1


#: Display titles for the listing; unlisted suites show their registry name.
_SUITE_TITLES = {
    "spec2017": "SPEC CPU 2017",
    "spec2006": "SPEC CPU 2006",
    "cloudsuite": "CloudSuite",
}


def _cmd_workloads(_args: argparse.Namespace) -> int:
    for suite_name in suites():
        if suite_name.endswith("-intensive"):
            continue  # views over their parent suites
        workloads = suite(suite_name)
        title = _SUITE_TITLES.get(suite_name, suite_name)
        print(f"{title} ({len(workloads)}):")
        for workload in workloads:
            marker = "*" if workload.memory_intensive else " "
            print(f"  {marker} {workload.name:20s} {workload.description}")
    print("\n(* = memory intensive, LLC MPKI > 1)")
    return 0


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    prefetcher_names = registry.names("prefetcher")

    sub.add_parser("experiments", help="list paper experiments")

    run_parser = sub.add_parser("run", help="regenerate one table/figure")
    run_parser.add_argument("id", choices=sorted(EXPERIMENTS))
    run_parser.add_argument("--records", type=int, default=20_000)
    run_parser.add_argument(
        "--profile",
        metavar="PATH",
        default=None,
        help="run under cProfile and dump pstats to PATH",
    )

    bench_parser = sub.add_parser(
        "bench",
        help="performance microbenchmarks (or one quick workload run)",
    )
    bench_parser.add_argument(
        "workload",
        nargs="?",
        default=None,
        help="workload name for a quick simulation run; omit to run the "
        "microbenchmark suite and write BENCH_sim.json",
    )
    bench_parser.add_argument("--prefetcher", default="ppf", choices=prefetcher_names)
    bench_parser.add_argument("--records", type=int, default=20_000)
    bench_parser.add_argument(
        "--smoke", action="store_true", help="reduced op counts (CI smoke job)"
    )
    bench_parser.add_argument(
        "--repeat", type=int, default=None, help="repeats per benchmark (best kept)"
    )
    bench_parser.add_argument(
        "--only", nargs="+", metavar="NAME", default=None, help="benchmark subset"
    )
    bench_parser.add_argument(
        "--output", default=None, metavar="PATH", help="report path (default BENCH_sim.json)"
    )
    bench_parser.add_argument(
        "--baseline", default=None, metavar="PATH", help="baseline report to compare against"
    )
    bench_parser.add_argument(
        "--rebaseline",
        action="store_true",
        help="record this run as benchmarks/baseline_pre_pr.json instead",
    )

    sweep_parser = sub.add_parser(
        "sweep", help="parallel, cached (workload × prefetcher) sweep"
    )
    sweep_parser.add_argument(
        "--workloads",
        nargs="+",
        metavar="NAME",
        help="workload names (default: memory-intensive SPEC 2017 subset)",
    )
    sweep_parser.add_argument(
        "--prefetchers", nargs="+", default=["spp", "ppf"], choices=prefetcher_names
    )
    sweep_parser.add_argument(
        "--jobs", type=int, default=None, help="worker processes (default: all cores)"
    )
    sweep_parser.add_argument(
        "--cache-dir", default=None, help="persistent result cache directory"
    )
    sweep_parser.add_argument("--records", type=int, default=20_000)
    sweep_parser.add_argument("--seed", type=int, default=1)
    sweep_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-cell timeout in seconds (default: unbounded)",
    )
    sweep_parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="pool re-executions per failed/hung cell before serial fallback",
    )
    sweep_parser.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="append a JSONL run ledger (per-cell status/attempts/provenance)",
    )
    sweep_parser.add_argument(
        "--profile",
        metavar="PATH",
        default=None,
        help="profile the sweep (parent process) and dump pstats to PATH",
    )

    sub.add_parser("workloads", help="list modelled workloads")

    validate_parser = sub.add_parser("validate", help="run the reproduction scorecard")
    validate_parser.add_argument("--records", type=int, default=15_000)
    validate_parser.add_argument(
        "--fast", action="store_true", help="structural claims only (no sweeps)"
    )

    args = parser.parse_args(argv)
    handlers = {
        "experiments": _cmd_experiments,
        "run": _cmd_run,
        "bench": _cmd_bench,
        "sweep": _cmd_sweep,
        "workloads": _cmd_workloads,
        "validate": _cmd_validate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
