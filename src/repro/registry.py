"""Unified component registry: one catalog for every pluggable part.

Prefetchers, replacement policies, workload suites and feature sets are
all declared the same way — a :func:`register` decorator at the point of
definition — and instantiated the same way — :func:`create` by
``(kind, name)``.  The CLI, the harness figures, the suite runner and
the examples therefore resolve components through a single code path,
and adding a new component never requires touching a hand-maintained
dict in another module.

    @register("prefetcher", "my-scheme")
    class MyScheme(Prefetcher):
        name = "my-scheme"

    create("prefetcher", "my-scheme")   # -> MyScheme()
    names("prefetcher")                 # -> [..., "my-scheme", ...]

Unknown names raise :class:`UnknownComponentError` whose message lists
the sorted known names for that kind, so a typo on the command line is
self-diagnosing.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Mapping

Factory = Callable[..., Any]

#: kind -> name -> factory.  Populated by module import side effects:
#: importing ``repro`` (or any subpackage defining components) fills it.
_REGISTRY: Dict[str, Dict[str, Factory]] = {}


class UnknownComponentError(KeyError, ValueError):
    """Lookup of an unregistered component (or kind).

    Subclasses both :class:`KeyError` and :class:`ValueError` so legacy
    call sites that caught either keep working.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.message


def register(kind: str, name: str, factory: Factory | None = None) -> Callable[[Factory], Factory]:
    """Register ``factory`` under ``(kind, name)``; usable as a decorator.

    Re-registering the same name replaces the previous factory (last one
    wins), which keeps repeated imports and test monkey-patching benign.
    """

    def _record(fn: Factory) -> Factory:
        _REGISTRY.setdefault(kind, {})[name] = fn
        return fn

    if factory is not None:
        return _record(factory)
    return _record


def unregister(kind: str, name: str) -> None:
    """Remove one registration (primarily for tests)."""
    catalog = _REGISTRY.get(kind)
    if catalog:
        catalog.pop(name, None)


def get(kind: str, name: str) -> Factory:
    """The factory registered under ``(kind, name)``."""
    try:
        catalog = _REGISTRY[kind]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownComponentError(
            f"unknown component kind {kind!r}; known kinds: {known}"
        ) from None
    try:
        return catalog[name]
    except KeyError:
        known = ", ".join(sorted(catalog))
        raise UnknownComponentError(
            f"unknown {kind} {name!r}; known {kind}s: {known}"
        ) from None


def create(kind: str, name: str, *args: Any, **kwargs: Any) -> Any:
    """Instantiate a registered component by name."""
    return get(kind, name)(*args, **kwargs)


def names(kind: str) -> List[str]:
    """Sorted names registered under ``kind`` (empty if none)."""
    return sorted(_REGISTRY.get(kind, {}))


def kinds() -> List[str]:
    """Sorted component kinds with at least one registration."""
    return sorted(kind for kind, catalog in _REGISTRY.items() if catalog)


class RegistryView(Mapping):
    """A live, read-only mapping over one kind's catalog.

    Legacy module-level dicts (``PREFETCHER_FACTORIES``) are replaced by
    instances of this class, so ``name in FACTORIES``, ``sorted(...)``
    and ``FACTORIES[name]`` all keep working while the registry stays
    the single source of truth.
    """

    def __init__(self, kind: str) -> None:
        self._kind = kind

    def __getitem__(self, name: str) -> Factory:
        return get(self._kind, name)

    def __iter__(self) -> Iterator[str]:
        return iter(names(self._kind))

    def __len__(self) -> int:
        return len(_REGISTRY.get(self._kind, {}))

    def __repr__(self) -> str:
        return f"RegistryView({self._kind!r}: {names(self._kind)})"


def view(kind: str) -> RegistryView:
    """A live mapping view of one kind (see :class:`RegistryView`)."""
    return RegistryView(kind)
