"""repro — Perceptron-Based Prefetch Filtering (PPF), ISCA 2019.

A full Python reproduction of Bhatia et al., "Perceptron-Based Prefetch
Filtering": the PPF filter itself (:mod:`repro.core`), the SPP / BOP /
DA-AMPM prefetchers it is evaluated against (:mod:`repro.prefetchers`),
a trace-driven cache-hierarchy + DRAM simulator (:mod:`repro.memory`,
:mod:`repro.cpu`), SPEC-like workload models (:mod:`repro.workloads`),
simulation drivers (:mod:`repro.sim`), the feature-selection and
overhead analyses (:mod:`repro.analysis`) and one experiment per paper
table/figure (:mod:`repro.harness`).

Quickstart::

    from repro import make_ppf_spp, run_single_core, workload_by_name

    result = run_single_core(workload_by_name("603.bwaves_s"), make_ppf_spp())
    print(result.ipc, result.accuracy)
"""

from .core import (
    PPF,
    Decision,
    FeatureContext,
    FilterConfig,
    PerceptronFilter,
    exploration_features,
    make_ppf_spp,
    production_features,
)
from .cpu import CoreConfig, O3Core, TraceRecord
from .memory import Cache, DRAMConfig, HierarchyConfig, MemoryHierarchy
from .prefetchers import AMPM, BOP, DAAMPM, SPP, NullPrefetcher, Prefetcher, SPPConfig
from .registry import UnknownComponentError, register
from .sim import (
    CellPolicy,
    DegradedSweepError,
    ExperimentRunner,
    FailureReport,
    SimConfig,
    SuiteRunner,
    geometric_mean,
    run_multi_core,
    run_single_core,
)
from .stats import Accumulator, StatGroup, StatsNode
from .workloads import (
    WorkloadMix,
    WorkloadSpec,
    cloudsuite_workloads,
    find_workload,
    memory_intensive_mixes,
    memory_intensive_subset,
    random_mixes,
    spec2006_workloads,
    spec2017_workloads,
    workload_by_name,
)

__version__ = "1.0.0"

__all__ = [
    "PPF",
    "Decision",
    "FeatureContext",
    "FilterConfig",
    "PerceptronFilter",
    "exploration_features",
    "make_ppf_spp",
    "production_features",
    "CoreConfig",
    "O3Core",
    "TraceRecord",
    "Cache",
    "DRAMConfig",
    "HierarchyConfig",
    "MemoryHierarchy",
    "AMPM",
    "BOP",
    "DAAMPM",
    "SPP",
    "NullPrefetcher",
    "Prefetcher",
    "SPPConfig",
    "UnknownComponentError",
    "register",
    "Accumulator",
    "StatGroup",
    "StatsNode",
    "CellPolicy",
    "DegradedSweepError",
    "FailureReport",
    "ExperimentRunner",
    "SimConfig",
    "SuiteRunner",
    "geometric_mean",
    "run_multi_core",
    "run_single_core",
    "WorkloadMix",
    "WorkloadSpec",
    "cloudsuite_workloads",
    "find_workload",
    "memory_intensive_mixes",
    "memory_intensive_subset",
    "random_mixes",
    "spec2006_workloads",
    "spec2017_workloads",
    "workload_by_name",
    "__version__",
]
