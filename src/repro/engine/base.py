"""The engine seam: pluggable drivers for the per-access simulation loop.

An *engine* owns the inner loop that turns trace records into simulator
events.  :class:`~repro.sim.single_core.SingleCoreSim` delegates every
``advance`` to its engine, so the rest of the stack (phases, telemetry,
checkpoints, sweeps) never sees which driver is running:

* ``scalar`` — the original record-at-a-time loop.  Bit-identical with
  every previous release; the golden-stats oracle.
* ``batched`` — pulls the trace in chunks, decomposes addresses with
  numpy, and runs a fused per-record kernel that inlines the hot
  core/cache/SPP/perceptron path.  Event-order equivalent with scalar
  (see docs/performance.md, "Batched engine").

Engines are registry components (kind ``"engine"``), so ``--engine``
names resolve — and fail — through the same catalog machinery as
prefetchers and workloads, and the engine name folds into
``config_fingerprint`` via :class:`~repro.sim.config.SimConfig`.

The contract every engine must honor:

1. ``advance(sim, n)`` steps at most ``n`` records, increments
   ``sim.consumed`` by the number actually stepped, and returns it.
2. When ``advance`` returns, *all* simulator state is flushed: stats
   counters, core clock, tables.  ``state_dict()`` between two
   ``advance`` calls must be byte-equal across engines, which is what
   keeps snapshots engine-portable and telemetry probes honest.
3. Engines never reorder events within or across records relative to
   the scalar loop — equivalence is exact, not approximate.

Multi-core simulations add a fourth point.  ``advance_multi(sim, n)``
drives :class:`~repro.sim.multi_core.MultiCoreSim` under the same three
rules, plus:

4. The *global interleaving* observable at the shared resources (LLC,
   DRAM channels) is the scalar schedule's: the next core to step is
   always the one with the minimum ``(cycle, core_index)`` key.  An
   engine may run one core for a bounded *cycle quantum* without
   re-consulting the schedule only while that key provably stays the
   minimum (see :mod:`repro.engine.multi_core`), and it must capture a
   core's measurement outcome at exactly the record where the scalar
   loop would (``sim._capture_core``), with that core's state flushed
   first.

Point 2 is phase-boundary exact in the multi-core case, with two
documented relaxations (both scalar-reachable, both enforced by the
cross-engine checkpoint tests):

* ``advance_multi`` drains whole scheduling turns, so it may overshoot
  ``n`` by the records already committed to the in-flight quantum (the
  return value reports the true count); a record pulled from the trace
  but suspended pre-execution stays parked in the trace's pending slot,
  where ``state_dict`` already serializes it.
* A batched engine may run records *ahead* of the global schedule when
  they provably touch no shared state (private-L1 hits in the
  non-inclusive hierarchy).  A **mid-measure** ``state_dict()`` is then
  a valid per-core record boundary that can sit a few records past the
  scalar engine's at the same call — restoring it (under either engine)
  still finishes bit-identical, and the states reconverge wherever
  runners flush: warmup end, every capture, and every return when
  telemetry is attached (*exact mode*: run-ahead disabled so probe
  samples land on scalar-identical record counts).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from .. import registry


@runtime_checkable
class Engine(Protocol):
    """Driver for the per-access loop of one simulation."""

    name: str

    def advance(self, sim, n_records: int) -> int:
        """Step up to ``n_records`` of ``sim``'s trace; return the count."""
        ...

    def advance_multi(self, sim, n_records: int) -> int:
        """Step up to ``n_records`` of a multi-core sim's current phase.

        Cores are interleaved by the scalar ``(cycle, index)`` schedule
        (contract point 4); the call returns early when the phase
        completes (all cores warmed, or every measurement captured).
        """
        ...


def make_engine(config) -> Engine:
    """Resolve ``config.engine`` through the registry.

    Unknown names raise the registry's
    :class:`~repro.registry.UnknownComponentError` (with the sorted
    catalog in the message), which the CLI surfaces as a did-you-mean
    error.  Engines exposing a ``configure(config)`` hook receive the
    full :class:`~repro.sim.config.SimConfig` so they can read knobs
    like ``engine_chunk``.
    """
    engine = registry.create("engine", getattr(config, "engine", "scalar"))
    configure = getattr(engine, "configure", None)
    if configure is not None:
        configure(config)
    return engine
