"""The engine seam: pluggable drivers for the per-access simulation loop.

An *engine* owns the inner loop that turns trace records into simulator
events.  :class:`~repro.sim.single_core.SingleCoreSim` delegates every
``advance`` to its engine, so the rest of the stack (phases, telemetry,
checkpoints, sweeps) never sees which driver is running:

* ``scalar`` — the original record-at-a-time loop.  Bit-identical with
  every previous release; the golden-stats oracle.
* ``batched`` — pulls the trace in chunks, decomposes addresses with
  numpy, and runs a fused per-record kernel that inlines the hot
  core/cache/SPP/perceptron path.  Event-order equivalent with scalar
  (see docs/performance.md, "Batched engine").

Engines are registry components (kind ``"engine"``), so ``--engine``
names resolve — and fail — through the same catalog machinery as
prefetchers and workloads, and the engine name folds into
``config_fingerprint`` via :class:`~repro.sim.config.SimConfig`.

The contract every engine must honor:

1. ``advance(sim, n)`` steps at most ``n`` records, increments
   ``sim.consumed`` by the number actually stepped, and returns it.
2. When ``advance`` returns, *all* simulator state is flushed: stats
   counters, core clock, tables.  ``state_dict()`` between two
   ``advance`` calls must be byte-equal across engines, which is what
   keeps snapshots engine-portable and telemetry probes honest.
3. Engines never reorder events within or across records relative to
   the scalar loop — equivalence is exact, not approximate.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from .. import registry


@runtime_checkable
class Engine(Protocol):
    """Driver for the per-access loop of one simulation."""

    name: str

    def advance(self, sim, n_records: int) -> int:
        """Step up to ``n_records`` of ``sim``'s trace; return the count."""
        ...


def make_engine(config) -> Engine:
    """Resolve ``config.engine`` through the registry.

    Unknown names raise the registry's
    :class:`~repro.registry.UnknownComponentError` (with the sorted
    catalog in the message), which the CLI surfaces as a did-you-mean
    error.  Engines exposing a ``configure(config)`` hook receive the
    full :class:`~repro.sim.config.SimConfig` so they can read knobs
    like ``engine_chunk``.
    """
    engine = registry.create("engine", getattr(config, "engine", "scalar"))
    configure = getattr(engine, "configure", None)
    if configure is not None:
        configure(config)
    return engine
