"""Multi-core advances: the shared schedule and the cycle-quantum driver.

Both engines' ``advance_multi`` implementations live here, built on one
scheduling fact.  The scalar multi-core loop picks, before every record,
the core with the minimum ``(cycle, core_index)`` key (``min`` over core
cycles with lowest-index tie break).  Between two consecutive picks only
the picked core's state changes — so once core ``i`` is the minimum it
*stays* the minimum until its own cycle passes the runner-up's key.
With the runner-up at ``(c2, j2)`` and integer cycles, core ``i`` may
run unsupervised exactly while::

    cycle_i <  c2          if j2 < i   (runner-up wins the tie)
    cycle_i <= c2          if i  < j2  (i wins the tie)

That window is the *cycle quantum*: a bound computed per scheduling turn
such that executing the whole quantum as a batch is — by construction —
bit-identical to the record-at-a-time interleaving, including everything
observable at the shared LLC and DRAM channels.

On top of the quantum, the fused runner gets one relaxation: *L1-hit
run-ahead*.  A record that hits in its core's private L1 never touches
shared state (the hierarchy is non-inclusive: LLC evictions do not
back-invalidate, so no other core can change an L1's contents), which
makes it commute with every other core's records.  The runner therefore
probes the L1 before committing to a record: hits execute even past the
quantum bound, and only a *missing* record at or past the bound suspends
— with the already-pulled record parked in a stash and replayed first on
resume, so the trace stream never loses a record.  The suspend key is
the record's pre-front-end cycle, exactly the scalar schedule key.  The
shared-access *order* is therefore still the scalar schedule's; states
at mid-phase ``advance`` boundaries are valid per-core record boundaries
that converge to the scalar state at every phase boundary (warmup end,
each capture), which the cross-engine checkpoint tests enforce.  When
telemetry is attached the driver runs *exact* (no run-ahead), so probe
samples land on scalar-identical global record counts.

* :func:`scalar_advance_multi` — the verbatim scalar loop (``O3Core.step``
  per record), with the O(cores) ``min`` scan replaced by a heap of
  ``(cycle, index)`` keys.  Same picks, same tie breaks: still the
  bit-identity oracle, just without rescanning every core per access.
* :func:`batched_advance_multi` — the cycle-quantum batched driver.  The
  same heap hands out quanta; within a quantum the picked core runs a
  per-core *runner*: the fused PPF kernel of :mod:`repro.engine.batched`
  re-expressed as a suspended generator over the core's private L1/L2
  path (or the generic inlined-core loop, or plain ``core.step``).

Why generators: under contention the schedule switches cores every few
records (mean segment lengths of ~2-4 records are typical for 4-core
mixes), far too short to amortize re-hoisting the kernel's ~150 locals
per segment.  A generator hoists once per ``advance_multi``, suspends at
quantum boundaries with its locals intact, and writes everything back in
a ``finally`` block when closed.  Closing is the flush point: the driver
closes a core's runner before capturing its measurement outcome and
closes all runners before returning, which is what keeps contract points
2 and 4 (state flushed, captures at the exact scalar record) honest.

Shared-state rule for runners: per-core *private* state (core clock and
counters, L1/L2 views, SPP/PPF tables and scalars, the inflight queue)
may be hoisted into each runner's locals.  Counters on the *shared* LLC
and DRAM stats objects may not — two runners hoisting the same scalar
would drop each other's writebacks.  Instead the driver hoists them once
into one plain list that every fused runner aliases (sound because
exactly one runner executes between yields) and writes them back to the
live stats objects when the advance returns; this only engages when
*every* core takes the fused runner, otherwise fused-eligible cores are
demoted to the generic runner, which mutates the live objects directly.
Shared mutable containers (LLC set/LRU dicts, DRAM per-channel lists)
are safe to alias from any runner because every mutation is in place.
"""

from __future__ import annotations

from bisect import bisect
from heapq import heapify, heappop, heappush
from itertools import accumulate

from ..core.filter import PerceptronFilter
from ..core.ppf import PPF
from ..core.tables import TableEntry
from ..core.weights import WEIGHT_MAX, WEIGHT_MIN
from ..cpu.o3core import O3Core
from ..cpu.trace import TraceRecord
from ..memory.cache import CacheLine
from ..memory.dram import DRAM
from ..memory.hierarchy import MemoryHierarchy
from ..prefetchers.spp import SPP, _GHREntry, _PatternEntry, _SignatureEntry
from ..workloads.synthetic import _PC_BASE, _PC_STRIDE, HotsetPattern, TraceStream

try:
    from collections import OrderedDict
except ImportError:  # pragma: no cover
    raise

#: Bound meaning "no runner-up: run until budget runs out".  A float
#: infinity compares above every int cycle, keeping the per-record guard
#: a single comparison.
_NO_BOUND = float("inf")

#: ``SPP.encode_delta`` precomputed for every reachable delta.  Block
#: offsets live in ``[0, 64)``, so every signature delta is in
#: ``[-63, 63]`` — index the table with the delta itself (negative
#: deltas land on the upper half via Python's negative indexing).
_ENC_TAB = list(range(64)) + [0] + [64 | d for d in range(63, 0, -1)]


# -- eligibility (shared with the single-core fused kernel) ---------------------


def _hier_eligible(hier) -> bool:
    """Hierarchy-level preconditions of the fused kernel (any core count)."""
    if type(hier) is not MemoryHierarchy:
        return False
    if type(hier.dram) is not DRAM:
        return False
    if hier.llc.engine_view() is None:  # non-LRU replacement
        return False
    return True


def _ppf_core_eligible(hier, core, pf) -> bool:
    """Per-core preconditions of the fused kernel.

    Exact-type checks on purpose (same policy as the single-core path):
    a subclass overriding any hook would silently diverge from the
    inlined logic, so anything non-stock takes the generic runner.
    """
    if type(core) is not O3Core or core.hierarchy is not hier:
        return False
    if type(pf) is not PPF:
        return False
    if pf.recorder is not None:
        return False
    if not pf.use_reject_table or not pf.train_on_displacement:
        return False
    if type(pf.underlying) is not SPP:
        return False
    scfg = pf.underlying.config
    if scfg.emit_all_candidates or not scfg.compound_confidence:
        return False
    filt = pf.filter
    if type(filt) is not PerceptronFilter or not filt.engine_view()[4]:
        return False
    if pf.prefetch_table.entries < 64 or pf.reject_table.entries < 64:
        return False  # index hoists assume masks cover the offset bits
    for cache in (hier.l1[core.core_id], hier.l2[core.core_id]):
        if cache.engine_view() is None:
            return False
    return True


def _core_mode(sim, i: int) -> str:
    core = sim.o3cores[i]
    if type(core) is not O3Core:
        return "step"
    hier = sim.hierarchy
    if core.core_id != i or not _hier_eligible(hier):
        return "generic"
    if _ppf_core_eligible(hier, core, hier.prefetchers[i]):
        return "ppf"
    return "generic"


# -- scalar multi-core advance (the bit-identity oracle) ------------------------


def scalar_advance_multi(sim, n_records: int) -> int:
    """The extracted scalar loop, heap-scheduled.

    Warmup: only cores below ``warmup_records`` are schedulable; a core
    reaching its target leaves the heap.  Measure: every core stays
    schedulable forever (finished cores replay for contention realism);
    a core's outcome is captured right after the step that reaches
    ``measure_records``, and the phase ends once all are captured.
    """
    if n_records <= 0:
        return 0
    cores = sim.mix.cores
    o3cores = sim.o3cores
    traces = sim.traces
    steps = sim.steps
    taken = 0
    if not sim.measuring:
        target = sim.config.warmup_records
        heap = [(o3cores[i].cycle, i) for i in range(cores) if steps[i] < target]
        heapify(heap)
        while heap and taken < n_records:
            _, i = heappop(heap)
            o3cores[i].step(next(traces[i]))
            steps[i] += 1
            taken += 1
            if steps[i] < target:
                heappush(heap, (o3cores[i].cycle, i))
        sim.consumed += taken
        return taken
    outcomes = sim.outcomes
    if all(outcome is not None for outcome in outcomes):
        return 0
    target = sim.config.measure_records
    heap = [(o3cores[i].cycle, i) for i in range(cores)]
    heapify(heap)
    while taken < n_records:
        _, i = heappop(heap)
        o3cores[i].step(next(traces[i]))
        steps[i] += 1
        taken += 1
        if outcomes[i] is None and steps[i] >= target:
            sim._capture_core(i)
            if all(outcome is not None for outcome in outcomes):
                break
        # Post-capture pushes read the fresh cycle: drain() moved it.
        heappush(heap, (o3cores[i].cycle, i))
    sim.consumed += taken
    return taken


# -- cycle-quantum batched advance ----------------------------------------------


def batched_advance_multi(sim, n_records: int, quantum: int) -> int:
    """Drive the heap schedule in cycle quanta over per-core runners.

    Each scheduling turn pops the minimum ``(cycle, index)`` core,
    derives the bit-identity-preserving cycle bound from the runner-up's
    key (module docstring), and lets the core's suspended runner execute
    up to that bound — further capped by the remaining record budget,
    the phase target, and ``quantum`` (``SimConfig.engine_quantum``, a
    pure throughput/latency knob: a capped core is still the schedule
    minimum and is simply re-picked).  Runners are closed (flushed)
    before a measurement capture and before returning.

    A runner may suspend holding a pulled-but-unprocessed record (an
    L1-missing record at the bound, see the run-ahead note above).  The
    driver never returns mid-stash: once the record budget is spent it
    keeps scheduling single-record turns until every stash resolves, so
    the call may step slightly *more* than ``n_records`` (the return
    value and ``sim.consumed`` report the true count).  The one
    exception is measurement completion — the remaining stashes are
    records the scalar schedule never pulled, so they are parked in each
    trace's pending slot, to be replayed first if the sim ever advances
    or snapshots again.
    """
    if n_records <= 0:
        return 0
    cores = sim.mix.cores
    o3cores = sim.o3cores
    steps = sim.steps
    measuring = sim.measuring
    outcomes = sim.outcomes
    if measuring and all(outcome is not None for outcome in outcomes):
        return 0
    warm_target = sim.config.warmup_records
    measure_target = sim.config.measure_records
    cap = quantum if quantum > 0 else n_records
    #: Telemetry pins the exact schedule (no run-ahead): probe samples
    #: then land on scalar-identical global record counts.
    exact = sim._telemetry is not None
    modes = [_core_mode(sim, i) for i in range(cores)]
    shared = None
    if "ppf" in modes:
        if all(mode == "ppf" for mode in modes):
            # Hoist the shared LLC/DRAM counters into one list aliased
            # by every fused runner (module docstring, shared-state
            # rule); written back in the finally below.  Captures only
            # read the core<i> stats subtree, so no mid-advance flush.
            hier = sim.hierarchy
            ll_stats = hier.llc.engine_view()[2]
            dstats = hier.dram.stats
            shared = [
                ll_stats.demand_accesses,
                ll_stats.demand_hits,
                ll_stats.demand_misses,
                ll_stats.fills,
                ll_stats.prefetch_fills,
                ll_stats.evictions,
                ll_stats.useful_prefetches,
                ll_stats.useless_prefetch_evictions,
                dstats.accesses,
                dstats.demand_accesses,
                dstats.prefetch_accesses,
                dstats.row_hits,
                dstats.row_misses,
                dstats.total_queue_delay,
            ]
        else:
            # Mixed modes: generic/step cores mutate the live shared
            # stats objects directly, so the hoisted-list writeback
            # would clobber their increments.  Demote — the generic
            # runner is bit-identical, just slower.
            modes = ["generic" if mode == "ppf" else mode for mode in modes]
    if measuring:
        heap = [(o3cores[i].cycle, i) for i in range(cores)]
    else:
        heap = [(o3cores[i].cycle, i) for i in range(cores) if steps[i] < warm_target]
    heapify(heap)
    runners: list = [None] * cores
    stashed: list = [False] * cores
    pending = 0  # cores suspended on a pulled-but-unprocessed record
    taken_total = 0
    pop = heappop
    push = heappush
    try:
        while heap and (taken_total < n_records or pending):
            _, i = pop(heap)
            if heap:
                c2, j2 = heap[0]
                stop_at = c2 + 1 if i < j2 else c2
            else:
                stop_at = _NO_BOUND
            budget = n_records - taken_total
            if budget > cap:
                budget = cap
            if budget < 1:
                budget = 1  # draining stashes past the budget: minimal turns
            if measuring:
                capture = outcomes[i] is None
                if capture:
                    remaining = measure_target - steps[i]
                    if remaining < 1:
                        remaining = 1  # degenerate target: step once, then capture
                    if remaining < budget:
                        budget = remaining
            else:
                capture = False
                remaining = warm_target - steps[i]
                if remaining < budget:
                    budget = remaining
            runner = runners[i]
            if runner is None:
                mode = modes[i]
                if mode == "ppf":
                    runner = _ppf_runner(sim, i, shared, exact)
                else:
                    runner = _RUNNERS[mode](sim, i)
                next(runner)  # prime: hoist locals, park at the first yield
                runners[i] = runner
            new_cycle, seg, stash = runner.send((stop_at, budget))
            if stash != stashed[i]:
                stashed[i] = stash
                pending += 1 if stash else -1
            steps[i] += seg
            taken_total += seg
            if capture and steps[i] >= measure_target:
                runners[i] = None
                runner.close()  # flush core i before its stats are read
                sim._capture_core(i)
                if all(outcome is not None for outcome in outcomes):
                    break
                push(heap, (o3cores[i].cycle, i))  # drain() moved the clock
            elif not measuring and steps[i] >= warm_target:
                runners[i] = None
                runner.close()  # warmed up: out of the schedule
            else:
                push(heap, (new_cycle, i))
    finally:
        for runner in runners:
            if runner is not None:
                runner.close()
        if shared is not None:
            (
                ll_stats.demand_accesses,
                ll_stats.demand_hits,
                ll_stats.demand_misses,
                ll_stats.fills,
                ll_stats.prefetch_fills,
                ll_stats.evictions,
                ll_stats.useful_prefetches,
                ll_stats.useless_prefetch_evictions,
                dstats.accesses,
                dstats.demand_accesses,
                dstats.prefetch_accesses,
                dstats.row_hits,
                dstats.row_misses,
                dstats.total_queue_delay,
            ) = shared
    sim.consumed += taken_total
    return taken_total


# -- per-core runners -----------------------------------------------------------
#
# Runner protocol: the driver primes the generator with ``next()`` (runs
# the hoists, parks before any work), then repeatedly ``send``s a
# ``(stop_at, budget)`` pair; the runner steps records while fewer than
# ``budget`` records were stepped this turn and its schedule position
# allows (its cycle is below ``stop_at``, except fused L1-hit run-ahead),
# then yields ``(cycle, stepped, stashed)`` — ``stashed`` flags a pulled
# record suspended before processing (its key is the yielded cycle).
# ``close()`` runs the ``finally`` writeback and parks any stash in the
# trace's pending slot.  Records are otherwise pulled one at a time
# straight off the underlying trace iterator (no read-ahead), so the
# trace stream's checkpoint cursor is exact whenever the driver returns.


def _step_runner(sim, i: int):
    """Fallback for foreign core types: defer to the core's own step()."""
    core = sim.o3cores[i]
    trace = sim.traces[i]
    step = core.step
    stop_at, budget = yield
    while True:
        seg = 0
        while seg < budget and core.cycle < stop_at:
            step(next(trace))
            seg += 1
        stop_at, budget = yield (core.cycle, seg, False)


def _generic_runner(sim, i: int):
    """Inlined O3Core bookkeeping around the real ``hierarchy.access``.

    The multi-core twin of the batched engine's generic chunk loop:
    every memory-side event goes through the exact scalar code, so this
    path is bit-identical for any hierarchy/prefetcher combination.  No
    run-ahead here — a custom hierarchy may touch shared state on any
    access, so every record stays inside its quantum.
    """
    core = sim.o3cores[i]
    trace = sim.traces[i]
    workload = trace._workload
    lap_chunk = trace._chunk
    reloc = trace._offset
    it = trace._it
    access = core.hierarchy.access
    core_id = core.core_id
    cfg = core.config
    width = cfg.width
    rob_size = cfg.rob_size
    mlp_limit = cfg.mlp_limit
    stats = core.stats
    outstanding = core._outstanding
    popleft = outstanding.popleft
    push = outstanding.append
    loads = stats.loads
    rob_stalls = stats.rob_stalls
    mlp_stalls = stats.mlp_stalls
    cycle = core.cycle
    instructions = core.instructions
    retire_frac = core._retire_frac
    seq = core._seq
    pending = trace._pending  # a post-completion stash parked by a fused runner
    if pending is not None:
        trace._pending = None
    stop_at, budget = yield
    try:
        while True:
            seg = 0
            while seg < budget and cycle < stop_at:
                # ---- _EndlessTrace.__next__, sans record rebuild ------------
                if pending is not None:
                    rec = pending
                    pending = None
                else:
                    try:
                        rec = next(it)
                    except StopIteration:
                        trace.lap_seed += 1
                        trace._stream = workload.trace(lap_chunk, seed=trace.lap_seed)
                        it = trace._it = iter(trace._stream)
                        rec = next(it)
                bubble = rec.bubble
                retire = retire_frac + bubble
                cycle += retire // width
                retire_frac = retire % width
                seq += 1
                while outstanding and outstanding[0][0] <= cycle:
                    popleft()
                rob_horizon = seq - rob_size
                while outstanding and outstanding[0][1] <= rob_horizon:
                    rob_stalls += 1
                    completion = popleft()[0]
                    if completion > cycle:
                        cycle = completion
                    while outstanding and outstanding[0][0] <= cycle:
                        popleft()
                while len(outstanding) >= mlp_limit:
                    mlp_stalls += 1
                    completion = popleft()[0]
                    if completion > cycle:
                        cycle = completion
                    while outstanding and outstanding[0][0] <= cycle:
                        popleft()
                loads += 1
                ready = access(core_id, rec.pc, rec.addr + reloc, cycle).ready_cycle
                if ready > cycle:
                    push((ready, seq))
                instructions += bubble + 1
                seg += 1
            stop_at, budget = yield (cycle, seg, False)
    finally:
        if pending is not None:
            trace._pending = pending
        core.cycle = cycle
        core.instructions = instructions
        core._retire_frac = retire_frac
        core._seq = seq
        stats.loads = loads
        stats.rob_stalls = rob_stalls
        stats.mlp_stalls = mlp_stalls


def _ppf_runner(sim, i: int, sh: list, exact: bool):  # noqa: C901
    """The fused PPF fast path for core ``i`` as a suspended generator.

    Body and event order are the single-core ``_ppf_kernel``'s, record
    for record, with four deliberate differences:

    * everything core-private indexes ``i`` (L1/L2 views, prefetcher
      state, inflight queue, drop counter);
    * shared LLC/DRAM *counters* go through ``sh``, the driver-owned
      hoist list every fused runner aliases (see the module's
      shared-state rule) — the shared containers themselves are aliased
      live, every mutation is in place;
    * records are produced one at a time (for the synthetic
      ``TraceStream``, inline — see the trace-production hoist below —
      otherwise pulled from the endless iterator; inline lap rollover,
      inline relocation) and addresses decomposed with shifts — no
      chunk buffer, so the trace cursor is exact at every suspend point
      (modulo one stashed record, flagged to the driver);
    * the L1 probe moves ahead of the front end (it has no side
      effects; the hit/miss paths below reuse its result unchanged), so
      L1 hits can run ahead of the quantum bound and only a missing
      record at the bound suspends, parked in ``stash``.
    """
    core = sim.o3cores[i]
    trace = sim.traces[i]
    workload = trace._workload
    lap_chunk = trace._chunk
    reloc = trace._offset
    it = trace._it

    # -- trace production -----------------------------------------------------
    # For the synthetic TraceStream the record loop is replicated inline
    # (``_generate``'s body, RNG call for RNG call): all of its mutable
    # state — the RNG, the per-pattern cursors, ``pc_counters`` — lives
    # on the stream instance *by design* (shared with the running
    # generator), so producing records here and writing ``emitted`` back
    # leaves the stream exactly where ``next(it)`` would have.  This
    # skips the generator resume plus one frozen-dataclass construction
    # per record.  Foreign stream types keep the plain iterator pull.
    stream = trace._stream
    fast_trace = type(stream) is TraceStream

    def _hoist_stream(s):
        mixes = s.mixes
        cw = list(accumulate(m.weight for m in mixes))
        spans = [2 * m.bubble_mean + 1 if m.bubble_mean else 0 for m in mixes]
        # Hotset mix elements (the heaviest weight in every SPEC model)
        # get their ``next_address`` replicated inline below; the tuple
        # carries the pattern fields the inline body reads.
        hots = [
            (
                (p, p._base, p.hot_blocks, p.hot_blocks.bit_length(), p.jump_every)
                if type(p) is HotsetPattern
                else None
            )
            for p in (m.pattern for m in mixes)
        ]
        return (
            s.rng,
            s.rng.random,
            s.rng.getrandbits,
            s.pc_counters,
            cw,
            cw[-1] + 0.0,
            len(mixes) - 1,
            [m.pattern.next_address for m in mixes],
            hots,
            [m.pc_pool for m in mixes],
            spans,
            [span.bit_length() for span in spans],
            [_PC_BASE + 0x10000 * k for k in range(len(mixes))],
            s.n_records,
        )

    if fast_trace:
        (
            rng,
            random_draw,
            getrandbits,
            pc_counters,
            cum_weights,
            total_w,
            hi_ix,
            next_addresses,
            hot_modes,
            pc_pools,
            bubble_spans,
            bubble_bits,
            pc_bases,
            lap_records,
        ) = _hoist_stream(stream)
        emitted = stream.emitted

    # -- core -----------------------------------------------------------------
    ccfg = core.config
    width = ccfg.width
    rob_size = ccfg.rob_size
    mlp_limit = ccfg.mlp_limit
    cstats = core.stats
    c_loads = cstats.loads
    c_rob = cstats.rob_stalls
    c_mlp = cstats.mlp_stalls
    outstanding = core._outstanding
    popleft = outstanding.popleft
    push = outstanding.append
    cycle = core.cycle
    instructions = core.instructions
    retire_frac = core._retire_frac
    seq = core._seq

    # -- hierarchy / caches ---------------------------------------------------
    hier = sim.hierarchy
    hcfg = hier.config
    max_pft = hcfg.max_prefetches_per_trigger
    queue_size = hcfg.prefetch_queue_size
    l1_sets, l1_ord, l1_stats, l1_assoc, l1_mask, l1_lat = hier.l1[i].engine_view()
    l2_sets, l2_ord, l2_stats, l2_assoc, l2_mask, l2_lat = hier.l2[i].engine_view()
    ll_sets, ll_ord, _ll_stats, ll_assoc, ll_mask, ll_lat = hier.llc.engine_view()
    l1_da = l1_stats.demand_accesses
    l1_hit = l1_stats.demand_hits
    l1_miss = l1_stats.demand_misses
    l1_fill = l1_stats.fills
    l1_evt = l1_stats.evictions
    l1_useful = l1_stats.useful_prefetches
    l1_useless = l1_stats.useless_prefetch_evictions
    l2_da = l2_stats.demand_accesses
    l2_hit = l2_stats.demand_hits
    l2_miss = l2_stats.demand_misses
    l2_fill = l2_stats.fills
    l2_pfill = l2_stats.prefetch_fills
    l2_evt = l2_stats.evictions
    l2_useful = l2_stats.useful_prefetches
    l2_useless = l2_stats.useless_prefetch_evictions
    inflight = hier._inflight_prefetches[i]
    dropped = hier.prefetches_dropped[i]

    # -- DRAM (shared: counters ride in ``sh``) -------------------------------
    dram = hier.dram
    dcfg = dram.config
    channels = dcfg.channels
    cpt = dcfg.cycles_per_transfer
    rh_lat = dcfg.row_hit_latency
    rm_lat = dcfg.row_miss_latency
    next_free = dram._next_free
    open_row = dram._open_row

    # -- PPF / filter / tables ------------------------------------------------
    ppf = hier.prefetchers[i]
    (spp, filt, pft, rej, ppf_stats, p_base, _use_rej, _tod, _rec) = ppf.engine_view()
    pft_slots, pft_mask = pft.engine_view()
    rej_slots, rej_mask = rej.engine_view()
    pft_ins = pft.inserts
    pft_hits = pft.hits
    pft_conf = pft.conflicts
    rej_ins = rej.inserts
    rej_hits = rej.hits
    rej_conf = rej.conflicts
    disp_train = ppf_stats.displacement_trainings
    rej_rec = ppf_stats.reject_recoveries
    p_cand = p_base.candidates
    p_iss = p_base.issued
    p_iss2 = p_base.issued_l2
    p_iss3 = p_base.issued_llc
    p_useful = p_base.useful
    p_useless = p_base.useless_evictions
    fcfg, weight_lists, fnames, fstats, _fused = filt.engine_view()
    tau_hi = fcfg.tau_hi
    tau_lo = fcfg.tau_lo
    theta_p = fcfg.theta_p
    theta_n = fcfg.theta_n
    w0, w1, w2, w3, w4, w5, w6, w7, w8 = weight_lists
    f_inf = fstats.inferences
    f_l2 = fstats.accepted_l2
    f_llc = fstats.accepted_llc
    f_rej = fstats.rejected
    f_sup = fstats.suppressed_updates
    f_pos = fstats.positive_updates
    f_neg = fstats.negative_updates
    f_upd = [0] * 9  # per-feature update deltas, merged at writeback
    f_order = []  # feature indices in first-update order (dict-order fidelity)
    pcs_a, pcs_b, pcs_c = ppf._pcs

    def train9(ix, positive):
        # PerceptronFilter.train unrolled over the production feature
        # set, with the per-feature update counts batched into ``f_upd``
        # (one dict merge at writeback instead of one per update).  The
        # filter is core-private, so hoisting its counters is safe.
        nonlocal f_sup, f_pos, f_neg
        k0, k1, k2, k3, k4, k5, k6, k7, k8 = ix
        total = (
            w0[k0] + w1[k1] + w2[k2] + w3[k3] + w4[k4]
            + w5[k5] + w6[k6] + w7[k7] + w8[k8]
        )
        if positive:
            if total >= theta_p:
                f_sup += 1
                return
            v = w0[k0]
            if v < WEIGHT_MAX:
                w0[k0] = v + 1
                if not f_upd[0]:
                    f_order.append(0)
                f_upd[0] += 1
            v = w1[k1]
            if v < WEIGHT_MAX:
                w1[k1] = v + 1
                if not f_upd[1]:
                    f_order.append(1)
                f_upd[1] += 1
            v = w2[k2]
            if v < WEIGHT_MAX:
                w2[k2] = v + 1
                if not f_upd[2]:
                    f_order.append(2)
                f_upd[2] += 1
            v = w3[k3]
            if v < WEIGHT_MAX:
                w3[k3] = v + 1
                if not f_upd[3]:
                    f_order.append(3)
                f_upd[3] += 1
            v = w4[k4]
            if v < WEIGHT_MAX:
                w4[k4] = v + 1
                if not f_upd[4]:
                    f_order.append(4)
                f_upd[4] += 1
            v = w5[k5]
            if v < WEIGHT_MAX:
                w5[k5] = v + 1
                if not f_upd[5]:
                    f_order.append(5)
                f_upd[5] += 1
            v = w6[k6]
            if v < WEIGHT_MAX:
                w6[k6] = v + 1
                if not f_upd[6]:
                    f_order.append(6)
                f_upd[6] += 1
            v = w7[k7]
            if v < WEIGHT_MAX:
                w7[k7] = v + 1
                if not f_upd[7]:
                    f_order.append(7)
                f_upd[7] += 1
            v = w8[k8]
            if v < WEIGHT_MAX:
                w8[k8] = v + 1
                if not f_upd[8]:
                    f_order.append(8)
                f_upd[8] += 1
            f_pos += 1
        else:
            if total <= theta_n:
                f_sup += 1
                return
            v = w0[k0]
            if v > WEIGHT_MIN:
                w0[k0] = v - 1
                if not f_upd[0]:
                    f_order.append(0)
                f_upd[0] += 1
            v = w1[k1]
            if v > WEIGHT_MIN:
                w1[k1] = v - 1
                if not f_upd[1]:
                    f_order.append(1)
                f_upd[1] += 1
            v = w2[k2]
            if v > WEIGHT_MIN:
                w2[k2] = v - 1
                if not f_upd[2]:
                    f_order.append(2)
                f_upd[2] += 1
            v = w3[k3]
            if v > WEIGHT_MIN:
                w3[k3] = v - 1
                if not f_upd[3]:
                    f_order.append(3)
                f_upd[3] += 1
            v = w4[k4]
            if v > WEIGHT_MIN:
                w4[k4] = v - 1
                if not f_upd[4]:
                    f_order.append(4)
                f_upd[4] += 1
            v = w5[k5]
            if v > WEIGHT_MIN:
                w5[k5] = v - 1
                if not f_upd[5]:
                    f_order.append(5)
                f_upd[5] += 1
            v = w6[k6]
            if v > WEIGHT_MIN:
                w6[k6] = v - 1
                if not f_upd[6]:
                    f_order.append(6)
                f_upd[6] += 1
            v = w7[k7]
            if v > WEIGHT_MIN:
                w7[k7] = v - 1
                if not f_upd[7]:
                    f_order.append(7)
                f_upd[7] += 1
            v = w8[k8]
            if v > WEIGHT_MIN:
                w8[k8] = v - 1
                if not f_upd[8]:
                    f_order.append(8)
                f_upd[8] += 1
            f_neg += 1

    # -- SPP ------------------------------------------------------------------
    scfg, sig_table, pat_table, ghr = spp.engine_view()
    st_entries = scfg.signature_table_entries
    pat_entries = scfg.pattern_table_entries
    # Power-of-two pattern tables (every stock config) index by mask.
    pat_pow2 = pat_entries & (pat_entries - 1) == 0
    pat_imask = pat_entries - 1
    deltas_per = scfg.deltas_per_entry
    cmax = scfg.counter_max
    pref_th = scfg.prefetch_threshold
    la_th = scfg.lookahead_threshold
    max_depth = scfg.max_depth
    ghr_entries = scfg.ghr_entries
    acc_max = scfg.accuracy_counter_max
    sig_get = sig_table.get
    sig_move = sig_table.move_to_end
    # Dense mirror of the slot-indexed pattern table: list indexing
    # beats dict hashing in the walk's hottest lookup.  Entries are
    # mutated in place, so both views alias the same objects; inserts
    # dual-write (dict stays the live source of truth for writeback).
    plist = [None] * pat_entries
    for _k, _v in pat_table.items():
        plist[_k] = _v
    c_total = spp._c_total
    c_useful_ctr = spp._c_useful
    last_sig = spp.last_signature
    depth_sum = spp.depth_sum
    depth_count = spp.depth_count
    sstats = spp.stats
    s_cand = sstats.candidates
    s_iss = sstats.issued
    s_iss2 = sstats.issued_l2
    s_iss3 = sstats.issued_llc
    s_useful = sstats.useful
    s_useless = sstats.useless_evictions

    _Line = CacheLine
    _Entry = TableEntry
    _OD = OrderedDict
    _GHR = _GHREntry
    _Pat = _PatternEntry
    _Sig = _SignatureEntry
    enc_tab = _ENC_TAB
    # Same dense-mirror trick for the per-core L1/L2 set and LRU-order
    # maps (lazily populated, set-index keyed).  The shared LLC stays on
    # dict access: its containers are aliased by every runner.
    l1s = [None] * (l1_mask + 1)
    for _k, _v in l1_sets.items():
        l1s[_k] = _v
    l1o = [None] * (l1_mask + 1)
    for _k, _v in l1_ord.items():
        l1o[_k] = _v
    l2s = [None] * (l2_mask + 1)
    for _k, _v in l2_sets.items():
        l2s[_k] = _v
    l2o = [None] * (l2_mask + 1)
    for _k, _v in l2_ord.items():
        l2o[_k] = _v
    ll_get = ll_sets.get

    # Stash: a pulled-but-unprocessed record as a decomposed tuple
    # ``(pc, addr, block, si1, bubble)`` (addr relocated).  A parked
    # pending record from a previous advance is picked up here.
    pend0 = trace._pending
    stash = None
    if pend0 is not None:
        trace._pending = None
        p_addr = pend0.addr + reloc
        p_block = p_addr >> 6
        stash = (pend0.pc, p_addr, p_block, p_block & l1_mask, pend0.bubble)
    stop_at, budget = yield
    try:
        while True:
            seg = 0
            while seg < budget:
                if stash is None:
                    if exact and cycle >= stop_at:
                        break
                    if fast_trace:
                        # ---- TraceStream._generate, inline ------------------
                        if emitted >= lap_records:
                            trace.lap_seed += 1
                            stream = workload.trace(lap_chunk, seed=trace.lap_seed)
                            trace._stream = stream
                            trace._it = iter(stream)
                            (
                                rng,
                                random_draw,
                                getrandbits,
                                pc_counters,
                                cum_weights,
                                total_w,
                                hi_ix,
                                next_addresses,
                                hot_modes,
                                pc_pools,
                                bubble_spans,
                                bubble_bits,
                                pc_bases,
                                lap_records,
                            ) = _hoist_stream(stream)
                            emitted = stream.emitted
                        emitted += 1
                        which = bisect(cum_weights, random_draw() * total_w, 0, hi_ix)
                        hot = hot_modes[which]
                        if hot is None:
                            addr = next_addresses[which](rng) + reloc
                        else:
                            # HotsetPattern.next_address, inline — the
                            # two randrange draws via the exact
                            # _randbelow_with_getrandbits loops.
                            hpat, hbase, hblocks, hbits, hjump = hot
                            hcnt = hpat._count + 1
                            hpat._count = hcnt
                            if hjump and hcnt % hjump == 0:
                                r = getrandbits(17)
                                while r >= 65536:
                                    r = getrandbits(17)
                                hblock = hbase + hblocks + r
                            else:
                                a = getrandbits(hbits)
                                while a >= hblocks:
                                    a = getrandbits(hbits)
                                b = getrandbits(hbits)
                                while b >= hblocks:
                                    b = getrandbits(hbits)
                                hblock = hbase + (a if a < b else b)
                            addr = (hblock << 6) + reloc
                        pcc = pc_counters[which]
                        pc_counters[which] = pcc + 1
                        pc = pc_bases[which] + (pcc % pc_pools[which]) * _PC_STRIDE
                        span = bubble_spans[which]
                        if span:
                            # rng.randrange(span), sans the call layers:
                            # the exact _randbelow_with_getrandbits loop,
                            # so the RNG stream is bit-identical.
                            k = bubble_bits[which]
                            bubble = getrandbits(k)
                            while bubble >= span:
                                bubble = getrandbits(k)
                        else:
                            bubble = 0
                    else:
                        # ---- _EndlessTrace.__next__, sans record rebuild ----
                        try:
                            rec = next(it)
                        except StopIteration:
                            trace.lap_seed += 1
                            trace._stream = workload.trace(lap_chunk, seed=trace.lap_seed)
                            it = trace._it = iter(trace._stream)
                            rec = next(it)
                        pc = rec.pc
                        addr = rec.addr + reloc
                        bubble = rec.bubble
                    block = addr >> 6
                    si1 = block & l1_mask
                    lines1 = l1s[si1]
                    line = lines1.get(block) if lines1 else None
                    if line is None and cycle >= stop_at:
                        # An L1 miss at the bound: this record's shared
                        # accesses belong after the runner-up's records.
                        stash = (pc, addr, block, si1, bubble)
                        break
                else:
                    # No other core can touch this L1, so the probe's
                    # miss verdict from stash time still holds.
                    pc, addr, block, si1, bubble = stash
                    stash = None
                    lines1 = l1s[si1]
                    line = None

                # ---- O3Core.step front end ----------------------------------
                retire = retire_frac + bubble
                cycle += retire // width
                retire_frac = retire % width
                seq += 1
                while outstanding and outstanding[0][0] <= cycle:
                    popleft()
                rob_horizon = seq - rob_size
                while outstanding and outstanding[0][1] <= rob_horizon:
                    c_rob += 1
                    completion = popleft()[0]
                    if completion > cycle:
                        cycle = completion
                    while outstanding and outstanding[0][0] <= cycle:
                        popleft()
                while len(outstanding) >= mlp_limit:
                    c_mlp += 1
                    completion = popleft()[0]
                    if completion > cycle:
                        cycle = completion
                    while outstanding and outstanding[0][0] <= cycle:
                        popleft()
                c_loads += 1

                # ---- L1 lookup (probe result from above) --------------------
                l1_da += 1
                if line is not None:
                    l1_hit += 1
                    if line.is_prefetch and not line.used:
                        l1_useful += 1
                    line.used = True
                    l1o[si1].move_to_end(block)
                    ready = cycle + l1_lat
                    if ready > cycle:
                        push((ready, seq))
                    instructions += bubble + 1
                    seg += 1
                    continue
                l1_miss += 1
                cycle2 = cycle + l1_lat
                page = addr >> 12
                offset = block & 63

                # ---- L2 demand ----------------------------------------------
                si2 = block & l2_mask
                lines2 = l2s[si2]
                line2 = lines2.get(block) if lines2 else None
                l2_da += 1
                if line2 is not None:
                    l2_hit += 1
                    ipf = line2.is_prefetch
                    if ipf and not line2.used:
                        l2_useful += 1
                    line2.used = True
                    l2o[si2].move_to_end(block)
                    fc = line2.fill_cycle
                    ready = (fc if fc > cycle2 else cycle2) + l2_lat
                    if ipf:
                        line2.is_prefetch = False  # count each prefetch useful once
                        p_useful += 1
                        s_useful += 1
                        c_useful_ctr = min(c_useful_ctr + 1, acc_max)
                else:
                    l2_miss += 1
                    cycle3 = cycle2 + l2_lat
                    # ---- LLC demand (shared: counters in ``sh``) ------------
                    si3 = block & ll_mask
                    lines3 = ll_get(si3)
                    line3 = lines3.get(block) if lines3 else None
                    sh[0] += 1  # llc demand_accesses
                    if line3 is not None:
                        sh[1] += 1  # llc demand_hits
                        ipf = line3.is_prefetch
                        if ipf and not line3.used:
                            sh[6] += 1  # llc useful_prefetches
                        line3.used = True
                        ll_ord[si3].move_to_end(block)
                        if ipf:
                            # Credit goes to the accessing core (core i).
                            line3.is_prefetch = False
                            p_useful += 1
                            s_useful += 1
                            c_useful_ctr = min(c_useful_ctr + 1, acc_max)
                        fc = line3.fill_cycle
                        ready = (fc if fc > cycle3 else cycle3) + ll_lat
                    else:
                        sh[2] += 1  # llc demand_misses
                        # ---- DRAM demand access at cycle3 + ll_lat ----------
                        dc = cycle3 + ll_lat
                        ch = block % channels
                        nf = next_free[ch]
                        start = dc if dc > nf else nf
                        sh[13] += start - dc  # dram total_queue_delay
                        row = addr >> 13  # ROW_BITS
                        if open_row[ch] == row:
                            sh[11] += 1  # dram row_hits
                            ready = start + rh_lat
                        else:
                            sh[12] += 1  # dram row_misses
                            open_row[ch] = row
                            ready = start + rm_lat
                        next_free[ch] = start + cpt
                        sh[8] += 1  # dram accesses
                        sh[9] += 1  # dram demand_accesses
                        # ---- LLC demand fill (missed, so not resident) ------
                        if lines3 is None:
                            lines3 = {}
                            ll_sets[si3] = lines3
                        od3 = ll_ord.get(si3)
                        if od3 is None:
                            od3 = _OD()
                            ll_ord[si3] = od3
                        if len(lines3) >= ll_assoc:
                            victim, _ = od3.popitem(last=False)
                            vline = lines3.pop(victim)
                            sh[5] += 1  # llc evictions
                            if vline.is_prefetch and not vline.used:
                                sh[7] += 1  # llc useless_prefetch_evictions
                            # Evicted line objects are unreferenced once
                            # popped: recycle for the incoming fill.
                            vline.block = block
                            vline.is_prefetch = False
                            vline.used = False
                            vline.fill_cycle = ready
                            lines3[block] = vline
                        else:
                            lines3[block] = _Line(block, False, False, ready)
                        od3[block] = None
                        sh[3] += 1  # llc fills
                    # ---- L2 demand fill (missed, so not resident) -----------
                    if lines2 is None:
                        lines2 = {}
                        l2_sets[si2] = lines2
                        l2s[si2] = lines2
                    od2 = l2o[si2]
                    if od2 is None:
                        od2 = _OD()
                        l2_ord[si2] = od2
                        l2o[si2] = od2
                    if len(lines2) >= l2_assoc:
                        victim, _ = od2.popitem(last=False)
                        vline = lines2.pop(victim)
                        l2_evt += 1
                        if vline.is_prefetch and not vline.used:
                            l2_useless += 1
                            # PPF.on_eviction: base counters + table feedback
                            p_useless += 1
                            s_useless += 1
                            vb = vline.block
                            entry = pft_slots[vb & pft_mask]
                            if (
                                entry is not None
                                and entry.valid
                                and entry.tag == (vb >> 10) & 63
                            ):
                                pft_hits += 1
                                if not entry.useful:
                                    train9(entry.feature_indices, False)
                                    entry.valid = False
                        vline.block = block
                        vline.is_prefetch = False
                        vline.used = False
                        vline.fill_cycle = ready
                        lines2[block] = vline
                    else:
                        lines2[block] = _Line(block, False, False, ready)
                    od2[block] = None
                    l2_fill += 1

                # ==== PPF.train(addr, pc, hit, cycle2) =======================
                # Step 3/4 feedback first: prefetch-table hit -> positive.
                tag = (block >> 10) & 63
                entry = pft_slots[block & pft_mask]
                if entry is not None and entry.valid and entry.tag == tag:
                    pft_hits += 1
                    entry.useful = True
                    train9(entry.feature_indices, True)
                    entry.valid = False
                entry = rej_slots[block & rej_mask]
                if entry is not None and entry.valid and entry.tag == tag:
                    rej_hits += 1
                    rej_rec += 1
                    train9(entry.feature_indices, True)
                    entry.valid = False
                pcs_a, pcs_b, pcs_c = pc, pcs_a, pcs_b

                # ==== SPP.train: signature/pattern update ====================
                sentry = sig_get(page)
                if sentry is not None:
                    sig_move(page)
                    signature = sentry.signature
                    last_sig = signature
                    sdelta = offset - sentry.last_offset
                    if sdelta != 0:
                        # _update_pattern(signature, sdelta)
                        pix = (
                            signature & pat_imask
                            if pat_pow2
                            else signature % pat_entries
                        )
                        pentry = plist[pix]
                        if pentry is None:
                            pentry = _Pat()
                            pat_table[pix] = pentry
                            plist[pix] = pentry
                        pdeltas = pentry.deltas
                        if pentry.c_sig >= cmax:
                            pentry.c_sig //= 2
                            for known in list(pdeltas):
                                nv = pdeltas[known] // 2
                                if nv == 0:
                                    del pdeltas[known]
                                else:
                                    pdeltas[known] = nv
                        pentry.c_sig += 1
                        if sdelta in pdeltas:
                            nv = pdeltas[sdelta] + 1
                            pdeltas[sdelta] = nv if nv <= cmax else cmax
                        elif len(pdeltas) < deltas_per:
                            pdeltas[sdelta] = 1
                        else:
                            weakest = min(pdeltas, key=pdeltas.get)
                            del pdeltas[weakest]
                            pdeltas[sdelta] = 1
                        # update_signature, encode_delta via table
                        signature = ((signature << 3) ^ enc_tab[sdelta]) & 0xFFF
                        sentry.signature = signature
                        sentry.last_offset = offset
                else:
                    last_sig = 0
                    # _bootstrap_from_ghr(offset)
                    signature = 0
                    for g in ghr:
                        predicted = g.last_offset + g.delta
                        if (predicted >= 64 and predicted - 64 == offset) or (
                            predicted < 0 and predicted + 64 == offset
                        ):
                            signature = (
                                (g.signature << 3) ^ enc_tab[g.delta]
                            ) & 0xFFF
                            break
                    # _insert_signature_entry
                    if len(sig_table) >= st_entries:
                        sig_table.popitem(last=False)
                    sig_table[page] = _Sig(offset, signature)

                # ==== fused lookahead walk + perceptron decide ===============
                accepted = None
                n_raw = 0
                page6 = page << 6
                path_confidence = 100
                cur_off = offset
                cur_sig = signature
                if c_total < 32:
                    alpha = 100
                else:
                    alpha = (100 * c_useful_ctr) // c_total
                    if alpha > 100:
                        alpha = 100
                ph = (pcs_a ^ (pcs_b >> 1) ^ (pcs_c >> 2)) & 2047
                # Three feature indices are loop-invariant across the
                # whole walk (physical page, upper page bits, PC hash),
                # so their weights are pre-summed per record — and
                # re-summed after any in-walk displacement training,
                # which may touch exactly these rows.
                i1 = page & 4095
                i2 = (page >> 6) & 4095
                wsum3 = w1[i1] + w2[i2] + w4[ph]
                # Mask-free feature indices: every emit-time operand is
                # small enough that the table masks distribute over the
                # XOR/OR (confidence <= 100 < 128, enc < 128, target < 64),
                # so the per-candidate ANDs reduce to these hoists.
                pc10 = pc & 1023
                pl6 = (page & 63) << 6
                # cb >> 10 == page >> 4 (target < 64), and the table
                # masks cover the low six bits, so tag and slot indices
                # are record-invariant up to the OR with ``target``.
                ctag = (page >> 4) & 63
                pfp = page6 & pft_mask
                rjp = page6 & rej_mask
                depth = 1
                while depth <= max_depth:
                    pentry = plist[
                        cur_sig & pat_imask if pat_pow2 else cur_sig % pat_entries
                    ]
                    if pentry is None:
                        break
                    pcsig = pentry.c_sig
                    pdel = pentry.deltas
                    if pcsig == 0 or not pdel:
                        break
                    best_delta = None
                    best_conf = -1
                    i6 = (pc ^ depth) & 1023  # invariant across this depth
                    wsum4 = wsum3 + w6[i6]
                    sig11 = cur_sig & 2047
                    deep = depth > 1
                    for pd_delta, c_delta in pdel.items():
                        if deep:
                            conf = ((100 * c_delta) // pcsig * alpha) // 100
                            p_d = (path_confidence * conf) // 100
                        else:
                            # depth 1: path_confidence == 100, alpha
                            # unapplied — p_d is the raw confidence.
                            p_d = (100 * c_delta) // pcsig
                        if p_d > best_conf:
                            best_conf = p_d
                            best_delta = pd_delta
                        if p_d < pref_th:
                            continue
                        target = cur_off + pd_delta
                        if 0 <= target < 64:
                            # -- emit + decide inline ------------------------
                            # (i1/i2 reduce to page bits: the candidate
                            # stays in the trigger's page, so
                            # cand_addr >> 12 == page.)
                            n_raw += 1
                            confidence = 100 if p_d > 100 else p_d
                            cb = page6 | target
                            enc = enc_tab[pd_delta]
                            i0 = pl6 | target
                            i3 = i1 ^ confidence
                            i5 = sig11 ^ enc
                            i7 = pc10 ^ enc
                            total = (
                                wsum4 + w0[i0] + w3[i3]
                                + w5[i5] + w7[i7] + w8[confidence]
                            )
                            if total >= tau_hi:
                                f_l2 += 1
                                fill_l2 = True
                            elif total >= tau_lo:
                                f_llc += 1
                                fill_l2 = False
                            else:
                                f_rej += 1
                                fill_l2 = None
                            indices = (
                                i0, i1, i2, i3, ph, i5, i6, i7, confidence
                            )
                            if fill_l2 is not None:
                                # prefetch_table.insert + displacement
                                # train; occupied slots are rewritten in
                                # place (field-identical to a fresh
                                # entry, minus the allocation).
                                idx = pfp | target
                                entry = pft_slots[idx]
                                if entry is None:
                                    pft_slots[idx] = _Entry(
                                        True, ctag, False, True, indices, total
                                    )
                                else:
                                    if entry.valid and entry.tag != ctag:
                                        pft_conf += 1
                                        if not entry.useful:
                                            disp_train += 1
                                            train9(entry.feature_indices, False)
                                            # May have touched the
                                            # pre-summed rows: re-sum.
                                            wsum3 = w1[i1] + w2[i2] + w4[ph]
                                            wsum4 = wsum3 + w6[i6]
                                    entry.valid = True
                                    entry.tag = ctag
                                    entry.useful = False
                                    entry.perc_decision = True
                                    entry.feature_indices = indices
                                    entry.perc_sum = total
                                pft_ins += 1
                                cand_addr = cb << 6
                                if accepted is None:
                                    accepted = [(cand_addr, cb, fill_l2)]
                                else:
                                    accepted.append((cand_addr, cb, fill_l2))
                            else:
                                # reject_table.insert (displacements
                                # ignored); same in-place slot reuse.
                                idx = rjp | target
                                entry = rej_slots[idx]
                                if entry is None:
                                    rej_slots[idx] = _Entry(
                                        True, ctag, False, False, indices, total
                                    )
                                else:
                                    if entry.valid and entry.tag != ctag:
                                        rej_conf += 1
                                    entry.valid = True
                                    entry.tag = ctag
                                    entry.useful = False
                                    entry.perc_decision = False
                                    entry.feature_indices = indices
                                    entry.perc_sum = total
                                rej_ins += 1
                        else:
                            # _record_ghr: pattern crossed the page boundary
                            ghr.append(_GHR(cur_sig, p_d, cur_off, pd_delta))
                            if len(ghr) > ghr_entries:
                                ghr.pop(0)
                    if best_delta is None or best_conf < la_th:
                        break
                    next_off = cur_off + best_delta
                    if not 0 <= next_off < 64:
                        break
                    cur_off = next_off
                    cur_sig = ((cur_sig << 3) ^ enc_tab[best_delta]) & 0xFFF
                    path_confidence = best_conf
                    depth += 1
                if depth > 1:
                    depth_sum += depth - 1
                    depth_count += 1
                if n_raw:
                    s_cand += n_raw  # SPP sees the raw candidate count
                    f_inf += n_raw  # one inference per in-page candidate

                # ==== prefetch issue (after all decides) =====================
                if accepted:
                    n_acc = len(accepted)
                    p_cand += n_acc  # PPF sees the accepted count
                    if n_acc > max_pft:
                        accepted = accepted[:max_pft]
                    for cand_addr, cb, fill_l2 in accepted:
                        # _issue_prefetch(i, candidate, cycle2)
                        lset = l2s[cb & l2_mask]
                        if lset and cb in lset:
                            continue  # redundant with L2 residency
                        if fill_l2:
                            in_llc = None  # not yet probed
                        else:
                            lset = ll_get(cb & ll_mask)
                            in_llc = bool(lset) and cb in lset
                            if in_llc:
                                continue  # redundant with LLC residency
                        for done in inflight:
                            if done <= cycle2:  # rebuild only on expiry
                                inflight = [d for d in inflight if d > cycle2]
                                break
                        if len(inflight) >= queue_size:
                            dropped += 1
                            continue
                        # on_prefetch_issued: PPF base + SPP base + alpha
                        p_iss += 1
                        s_iss += 1
                        if fill_l2:
                            p_iss2 += 1
                            s_iss2 += 1
                        else:
                            p_iss3 += 1
                            s_iss3 += 1
                        c_total += 1
                        if c_total >= acc_max:
                            c_total //= 2
                            c_useful_ctr //= 2
                        if in_llc is None:
                            lset = ll_get(cb & ll_mask)
                            in_llc = bool(lset) and cb in lset
                        if in_llc:
                            data_cycle = cycle2 + ll_lat
                        else:
                            # DRAM prefetch access at cycle2 (shared ``sh``)
                            ch = cb % channels
                            nf = next_free[ch]
                            start = cycle2 if cycle2 > nf else nf
                            sh[13] += start - cycle2  # dram total_queue_delay
                            row = cand_addr >> 13
                            if open_row[ch] == row:
                                sh[11] += 1  # dram row_hits
                                data_cycle = start + rh_lat
                            else:
                                sh[12] += 1  # dram row_misses
                                open_row[ch] = row
                                data_cycle = start + rm_lat
                            next_free[ch] = start + cpt
                            sh[8] += 1  # dram accesses
                            sh[10] += 1  # dram prefetch_accesses
                        inflight.append(data_cycle)
                        if not in_llc:
                            # LLC prefetch fill (not resident)
                            si3 = cb & ll_mask
                            lines3 = ll_get(si3)
                            if lines3 is None:
                                lines3 = {}
                                ll_sets[si3] = lines3
                            od3 = ll_ord.get(si3)
                            if od3 is None:
                                od3 = _OD()
                                ll_ord[si3] = od3
                            if len(lines3) >= ll_assoc:
                                victim, _ = od3.popitem(last=False)
                                vline = lines3.pop(victim)
                                sh[5] += 1  # llc evictions
                                if vline.is_prefetch and not vline.used:
                                    sh[7] += 1  # llc useless_prefetch_evictions
                                vline.block = cb
                                vline.is_prefetch = True
                                vline.used = False
                                vline.fill_cycle = data_cycle
                                lines3[cb] = vline
                            else:
                                lines3[cb] = _Line(cb, True, False, data_cycle)
                            od3[cb] = None
                            sh[3] += 1  # llc fills
                            sh[4] += 1  # llc prefetch_fills
                        if fill_l2:
                            # L2 prefetch fill (not resident: checked above)
                            si2p = cb & l2_mask
                            lines2 = l2s[si2p]
                            if lines2 is None:
                                lines2 = {}
                                l2_sets[si2p] = lines2
                                l2s[si2p] = lines2
                            od2 = l2o[si2p]
                            if od2 is None:
                                od2 = _OD()
                                l2_ord[si2p] = od2
                                l2o[si2p] = od2
                            if len(lines2) >= l2_assoc:
                                victim, _ = od2.popitem(last=False)
                                vline = lines2.pop(victim)
                                l2_evt += 1
                                if vline.is_prefetch and not vline.used:
                                    l2_useless += 1
                                    p_useless += 1
                                    s_useless += 1
                                    vb = vline.block
                                    entry = pft_slots[vb & pft_mask]
                                    if (
                                        entry is not None
                                        and entry.valid
                                        and entry.tag == (vb >> 10) & 63
                                    ):
                                        pft_hits += 1
                                        if not entry.useful:
                                            train9(entry.feature_indices, False)
                                            entry.valid = False
                                vline.block = cb
                                vline.is_prefetch = True
                                vline.used = False
                                vline.fill_cycle = data_cycle
                                lines2[cb] = vline
                            else:
                                lines2[cb] = _Line(cb, True, False, data_cycle)
                            od2[cb] = None
                            l2_fill += 1
                            l2_pfill += 1

                # ---- L1 demand fill (missed on entry, so not resident) ------
                # ``lines1`` still holds the entry probe's set view: no
                # L1 mutation happens between probe and fill.
                if lines1 is None:
                    lines1 = {}
                    l1_sets[si1] = lines1
                    l1s[si1] = lines1
                od1 = l1o[si1]
                if od1 is None:
                    od1 = _OD()
                    l1_ord[si1] = od1
                    l1o[si1] = od1
                if len(lines1) >= l1_assoc:
                    victim, _ = od1.popitem(last=False)
                    vline = lines1.pop(victim)
                    l1_evt += 1
                    if vline.is_prefetch and not vline.used:
                        l1_useless += 1
                    vline.block = block
                    vline.is_prefetch = False
                    vline.used = False
                    vline.fill_cycle = ready
                    lines1[block] = vline
                else:
                    lines1[block] = _Line(block, False, False, ready)
                od1[block] = None
                l1_fill += 1

                # ---- O3Core.step tail ---------------------------------------
                if ready > cycle:
                    push((ready, seq))
                instructions += bubble + 1
                seg += 1
            stop_at, budget = yield (cycle, seg, stash is not None)
    finally:
        # ---- writeback (the flush point: close() lands here) ----------------
        if stash is not None:
            # Measurement completed with this record pulled but never
            # processed: park it (un-relocated, as the stream would have
            # yielded it) so the stream replays it first.
            trace._pending = TraceRecord(stash[0], stash[1] - reloc, stash[4])
        if fast_trace:
            stream.emitted = emitted
        core.cycle = cycle
        core.instructions = instructions
        core._retire_frac = retire_frac
        core._seq = seq
        cstats.loads = c_loads
        cstats.rob_stalls = c_rob
        cstats.mlp_stalls = c_mlp
        l1_stats.demand_accesses = l1_da
        l1_stats.demand_hits = l1_hit
        l1_stats.demand_misses = l1_miss
        l1_stats.fills = l1_fill
        l1_stats.evictions = l1_evt
        l1_stats.useful_prefetches = l1_useful
        l1_stats.useless_prefetch_evictions = l1_useless
        l2_stats.demand_accesses = l2_da
        l2_stats.demand_hits = l2_hit
        l2_stats.demand_misses = l2_miss
        l2_stats.fills = l2_fill
        l2_stats.prefetch_fills = l2_pfill
        l2_stats.evictions = l2_evt
        l2_stats.useful_prefetches = l2_useful
        l2_stats.useless_prefetch_evictions = l2_useless
        hier._inflight_prefetches[i] = inflight
        hier.prefetches_dropped[i] = dropped
        pft.inserts = pft_ins
        pft.hits = pft_hits
        pft.conflicts = pft_conf
        rej.inserts = rej_ins
        rej.hits = rej_hits
        rej.conflicts = rej_conf
        ppf_stats.displacement_trainings = disp_train
        ppf_stats.reject_recoveries = rej_rec
        p_base.candidates = p_cand
        p_base.issued = p_iss
        p_base.issued_l2 = p_iss2
        p_base.issued_llc = p_iss3
        p_base.useful = p_useful
        p_base.useless_evictions = p_useless
        fstats.inferences = f_inf
        fstats.accepted_l2 = f_l2
        fstats.accepted_llc = f_llc
        fstats.rejected = f_rej
        fstats.suppressed_updates = f_sup
        fstats.positive_updates = f_pos
        fstats.negative_updates = f_neg
        fw = fstats.per_feature_updates
        # Merge in first-update order so keys new to the dict land exactly
        # where the live ``filter.train`` path would have inserted them.
        for k in f_order:
            name = fnames[k]
            fw[name] = fw.get(name, 0) + f_upd[k]
        ppf._pcs = (pcs_a, pcs_b, pcs_c)
        spp._c_total = c_total
        spp._c_useful = c_useful_ctr
        spp.last_signature = last_sig
        spp.depth_sum = depth_sum
        spp.depth_count = depth_count
        sstats.candidates = s_cand
        sstats.issued = s_iss
        sstats.issued_l2 = s_iss2
        sstats.issued_llc = s_iss3
        sstats.useful = s_useful
        sstats.useless_evictions = s_useless


_RUNNERS = {"generic": _generic_runner, "step": _step_runner}
