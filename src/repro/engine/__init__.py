"""Pluggable simulation engines (the ``--engine`` seam).

Importing this package registers the built-in engines; see
:mod:`repro.engine.base` for the protocol and equivalence contract.
"""

from .base import Engine, make_engine
from . import scalar as _scalar  # noqa: F401  (registers "scalar")
from . import batched as _batched  # noqa: F401  (registers "batched")

__all__ = ["Engine", "make_engine"]
