"""The batched engine: chunked trace pull + fused per-record kernel.

The engine pulls the trace in ``engine_chunk``-record chunks, vectorizes
the address decomposition (block / page / page-offset) for the whole
chunk with numpy, and then drives a *fused kernel* that inlines the
scalar hot path — O3 core bookkeeping, L1/L2/LLC indexing and tag match,
DRAM row-buffer timing, SPP's signature/pattern updates and lookahead
walk, and the perceptron's nine-feature index/sum — into one Python
frame with every counter held in locals until the chunk ends.

Equivalence contract (see docs/performance.md, "Batched engine"):

* The kernel replays the scalar engine's events in the *same order*
  within and across records, so results are **bit-identical**, not
  approximately equal.  The golden cells assert exact equality under
  both engines.
* Cross-record vectorization of the *decisions* is impossible by
  design: a demand access's timing depends on the prefetches issued by
  earlier accesses, and — with ``train_on_displacement`` — inserting
  one accepted candidate can move perceptron weights before the next
  candidate of the *same trigger* is scored.  What batching buys is
  chunked trace production, vectorized address decomposition, and the
  removal of ~15 function calls plus several transient objects
  (``FeatureContext``/``PrefetchCandidate``/``meta`` dicts/
  ``AccessResult``) per access.
* All state is flushed before ``advance`` returns: chunk boundaries are
  drain points, so ``state_dict()`` round-trips between engines and
  telemetry probes sampling at chunk boundaries see exactly what the
  scalar engine would show.

The fully fused kernel engages only for the production configuration
(single core, ``MemoryHierarchy``, ``PPF`` over ``SPP`` with the stock
flags, LRU everywhere, production feature catalog).  Anything else runs
the *generic* kernel — inlined core bookkeeping around the real
``hierarchy.access`` call — which is structurally bit-identical for any
hierarchy/prefetcher combination.  Non-``O3Core`` cores fall back to
plain ``core.step``.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict

from ..core.filter import PerceptronFilter
from ..core.ppf import PPF
from ..core.tables import TableEntry
from ..cpu.o3core import O3Core
from ..memory.address import decompose_batch
from ..memory.cache import CacheLine
from ..memory.dram import DRAM
from ..memory.hierarchy import MemoryHierarchy
from ..prefetchers.spp import SPP, _GHREntry, _PatternEntry, _SignatureEntry
from ..registry import register
from .multi_core import _hier_eligible, _ppf_core_eligible, batched_advance_multi

#: Fallback chunk when no SimConfig is supplied via ``configure``.
DEFAULT_CHUNK = 4_096


@register("engine", "batched")
class BatchedEngine:
    """Chunked driver with a fused fast path for the PPF configuration."""

    name = "batched"

    def __init__(self, chunk: int = DEFAULT_CHUNK, quantum: int = DEFAULT_CHUNK) -> None:
        self.chunk = chunk
        self.quantum = quantum

    def configure(self, config) -> None:
        chunk = int(getattr(config, "engine_chunk", 0) or 0)
        if chunk > 0:
            self.chunk = chunk
        # 0 is a valid setting (uncapped turns), so no or-fallback here.
        self.quantum = int(getattr(config, "engine_quantum", DEFAULT_CHUNK))

    def advance(self, sim, n_records: int) -> int:
        if n_records <= 0:
            return 0
        # Mode is re-selected per advance (not cached): checkpoint
        # restores rebind the underlying containers, and re-checking a
        # handful of types here is free at chunk granularity.
        mode = _select_mode(sim)
        chunk = self.chunk
        trace = sim.trace
        taken_total = 0
        remaining = n_records
        while remaining > 0:
            want = chunk if chunk < remaining else remaining
            records = list(itertools.islice(trace, want))
            if not records:
                break
            if mode == "ppf":
                _run_ppf_chunk(sim, records)
            elif mode == "generic":
                _run_generic_chunk(sim, records)
            else:  # unknown core type: defer to its own step()
                step = sim.core.step
                for rec in records:
                    step(rec)
            taken = len(records)
            sim.consumed += taken
            taken_total += taken
            remaining -= taken
            if taken < want:
                break  # trace exhausted
        return taken_total

    def advance_multi(self, sim, n_records: int) -> int:
        # The cycle-quantum driver over per-core suspended runners; see
        # repro.engine.multi_core for the schedule-preservation argument.
        return batched_advance_multi(sim, n_records, self.quantum)


def _select_mode(sim) -> str:
    if type(sim.core) is not O3Core:
        return "step"
    return "ppf" if _ppf_eligible(sim) else "generic"


def _ppf_eligible(sim) -> bool:
    """True when the fully fused kernel reproduces the scalar events.

    The hierarchy- and core-level predicates are shared with the
    multi-core runners (``repro.engine.multi_core``); this wrapper adds
    only the single-core framing.
    """
    hier = sim.hierarchy
    if not _hier_eligible(hier) or hier.num_cores != 1:
        return False
    core = sim.core
    if core.core_id != 0:
        return False
    pf = hier.prefetchers[0]
    if pf is not sim.prefetcher:
        return False
    return _ppf_core_eligible(hier, core, pf)


def _run_generic_chunk(sim, records) -> None:
    """Inlined O3Core bookkeeping around the real ``hierarchy.access``.

    Works for any hierarchy/prefetcher: every memory-side event goes
    through the exact scalar code, so this path is bit-identical by
    construction.  Only the core's own arithmetic is held in locals.
    """
    core = sim.core
    access = core.hierarchy.access
    core_id = core.core_id
    cfg = core.config
    width = cfg.width
    rob_size = cfg.rob_size
    mlp_limit = cfg.mlp_limit
    stats = core.stats
    loads = stats.loads
    rob_stalls = stats.rob_stalls
    mlp_stalls = stats.mlp_stalls
    outstanding = core._outstanding
    popleft = outstanding.popleft
    push = outstanding.append
    cycle = core.cycle
    instructions = core.instructions
    retire_frac = core._retire_frac
    seq = core._seq
    for rec in records:
        bubble = rec.bubble
        retire = retire_frac + bubble
        cycle += retire // width
        retire_frac = retire % width
        seq += 1
        while outstanding and outstanding[0][0] <= cycle:
            popleft()
        rob_horizon = seq - rob_size
        while outstanding and outstanding[0][1] <= rob_horizon:
            rob_stalls += 1
            completion = popleft()[0]
            if completion > cycle:
                cycle = completion
            while outstanding and outstanding[0][0] <= cycle:
                popleft()
        while len(outstanding) >= mlp_limit:
            mlp_stalls += 1
            completion = popleft()[0]
            if completion > cycle:
                cycle = completion
            while outstanding and outstanding[0][0] <= cycle:
                popleft()
        loads += 1
        ready = access(core_id, rec.pc, rec.addr, cycle).ready_cycle
        if ready > cycle:
            push((ready, seq))
        instructions += bubble + 1
    core.cycle = cycle
    core.instructions = instructions
    core._retire_frac = retire_frac
    core._seq = seq
    stats.loads = loads
    stats.rob_stalls = rob_stalls
    stats.mlp_stalls = mlp_stalls


def _run_ppf_chunk(sim, records) -> None:
    addrs = [rec.addr for rec in records]
    try:
        blocks, pages, offsets = decompose_batch(addrs)
    except OverflowError:  # address beyond int64: scalar decomposition
        blocks = [a >> 6 for a in addrs]
        pages = [a >> 12 for a in addrs]
        offsets = [(a >> 6) & 63 for a in addrs]
    pcs = [rec.pc for rec in records]
    bubbles = [rec.bubble for rec in records]
    _ppf_kernel(sim, pcs, addrs, bubbles, blocks, pages, offsets)


def _ppf_kernel(sim, rec_pcs, addrs, bubbles, blocks, pages, offsets) -> None:
    """One chunk of the fully fused PPF fast path.

    Replays, record for record and event for event, exactly what the
    scalar engine does for the production configuration:

      core front-end -> L1 lookup -> (L2 -> LLC -> DRAM demand path with
      inline fills/evictions) -> PPF demand feedback -> SPP signature/
      pattern update -> fused lookahead+decide with table inserts and
      displacement training -> prefetch issue at the L2-demand cycle ->
      L1 fill -> core tail.

    Every hot counter lives in a local and is written back once at the
    end; mutable containers (cache sets, LRU orders, SPP tables, weight
    lists, decision-table slots) are shared in place.  Training goes
    through the live ``filter.train`` bound method so its stats/weights
    always have exactly one owner.
    """
    # -- core ----------------------------------------------------------------
    core = sim.core
    ccfg = core.config
    width = ccfg.width
    rob_size = ccfg.rob_size
    mlp_limit = ccfg.mlp_limit
    cstats = core.stats
    c_loads = cstats.loads
    c_rob = cstats.rob_stalls
    c_mlp = cstats.mlp_stalls
    outstanding = core._outstanding
    popleft = outstanding.popleft
    push = outstanding.append
    cycle = core.cycle
    instructions = core.instructions
    retire_frac = core._retire_frac
    seq = core._seq

    # -- hierarchy / caches ---------------------------------------------------
    hier = sim.hierarchy
    hcfg = hier.config
    max_pft = hcfg.max_prefetches_per_trigger
    queue_size = hcfg.prefetch_queue_size
    l1_sets, l1_ord, l1_stats, l1_assoc, l1_mask, l1_lat = hier.l1[0].engine_view()
    l2_sets, l2_ord, l2_stats, l2_assoc, l2_mask, l2_lat = hier.l2[0].engine_view()
    ll_sets, ll_ord, ll_stats, ll_assoc, ll_mask, ll_lat = hier.llc.engine_view()
    l1_da = l1_stats.demand_accesses
    l1_hit = l1_stats.demand_hits
    l1_miss = l1_stats.demand_misses
    l1_fill = l1_stats.fills
    l1_evt = l1_stats.evictions
    l1_useful = l1_stats.useful_prefetches
    l1_useless = l1_stats.useless_prefetch_evictions
    l2_da = l2_stats.demand_accesses
    l2_hit = l2_stats.demand_hits
    l2_miss = l2_stats.demand_misses
    l2_fill = l2_stats.fills
    l2_pfill = l2_stats.prefetch_fills
    l2_evt = l2_stats.evictions
    l2_useful = l2_stats.useful_prefetches
    l2_useless = l2_stats.useless_prefetch_evictions
    ll_da = ll_stats.demand_accesses
    ll_hit = ll_stats.demand_hits
    ll_miss = ll_stats.demand_misses
    ll_fill = ll_stats.fills
    ll_pfill = ll_stats.prefetch_fills
    ll_evt = ll_stats.evictions
    ll_useful = ll_stats.useful_prefetches
    ll_useless = ll_stats.useless_prefetch_evictions
    inflight = hier._inflight_prefetches[0]
    dropped = hier.prefetches_dropped[0]

    # -- DRAM -----------------------------------------------------------------
    dram = hier.dram
    dcfg = dram.config
    channels = dcfg.channels
    cpt = dcfg.cycles_per_transfer
    rh_lat = dcfg.row_hit_latency
    rm_lat = dcfg.row_miss_latency
    next_free = dram._next_free
    open_row = dram._open_row
    dstats = dram.stats
    d_acc = dstats.accesses
    d_dem = dstats.demand_accesses
    d_pref = dstats.prefetch_accesses
    d_rh = dstats.row_hits
    d_rm = dstats.row_misses
    d_qd = dstats.total_queue_delay

    # -- PPF / filter / tables ------------------------------------------------
    ppf = hier.prefetchers[0]
    (spp, filt, pft, rej, ppf_stats, p_base, _use_rej, _tod, _rec) = ppf.engine_view()
    pft_slots, pft_mask = pft.engine_view()
    rej_slots, rej_mask = rej.engine_view()
    pft_ins = pft.inserts
    pft_hits = pft.hits
    pft_conf = pft.conflicts
    rej_ins = rej.inserts
    rej_hits = rej.hits
    rej_conf = rej.conflicts
    disp_train = ppf_stats.displacement_trainings
    rej_rec = ppf_stats.reject_recoveries
    p_cand = p_base.candidates
    p_iss = p_base.issued
    p_iss2 = p_base.issued_l2
    p_iss3 = p_base.issued_llc
    p_useful = p_base.useful
    p_useless = p_base.useless_evictions
    fcfg, weight_lists, _fnames, fstats, _fused = filt.engine_view()
    tau_hi = fcfg.tau_hi
    tau_lo = fcfg.tau_lo
    w0, w1, w2, w3, w4, w5, w6, w7, w8 = weight_lists
    f_inf = fstats.inferences
    f_l2 = fstats.accepted_l2
    f_llc = fstats.accepted_llc
    f_rej = fstats.rejected
    filt_train = filt.train  # live: training keeps one owner per counter
    pcs_a, pcs_b, pcs_c = ppf._pcs

    # -- SPP ------------------------------------------------------------------
    scfg, sig_table, pat_table, ghr = spp.engine_view()
    st_entries = scfg.signature_table_entries
    pat_entries = scfg.pattern_table_entries
    deltas_per = scfg.deltas_per_entry
    cmax = scfg.counter_max
    pref_th = scfg.prefetch_threshold
    la_th = scfg.lookahead_threshold
    max_depth = scfg.max_depth
    ghr_entries = scfg.ghr_entries
    acc_max = scfg.accuracy_counter_max
    sig_get = sig_table.get
    sig_move = sig_table.move_to_end
    pat_get = pat_table.get
    c_total = spp._c_total
    c_useful_ctr = spp._c_useful
    last_sig = spp.last_signature
    depth_sum = spp.depth_sum
    depth_count = spp.depth_count
    sstats = spp.stats
    s_cand = sstats.candidates
    s_iss = sstats.issued
    s_iss2 = sstats.issued_l2
    s_iss3 = sstats.issued_llc
    s_useful = sstats.useful
    s_useless = sstats.useless_evictions

    _Line = CacheLine
    _Entry = TableEntry
    _OD = OrderedDict
    _GHR = _GHREntry
    _Pat = _PatternEntry
    _Sig = _SignatureEntry

    for pc, addr, bubble, block, page, offset in zip(
        rec_pcs, addrs, bubbles, blocks, pages, offsets
    ):
        # ---- O3Core.step front end ----------------------------------------
        retire = retire_frac + bubble
        cycle += retire // width
        retire_frac = retire % width
        seq += 1
        while outstanding and outstanding[0][0] <= cycle:
            popleft()
        rob_horizon = seq - rob_size
        while outstanding and outstanding[0][1] <= rob_horizon:
            c_rob += 1
            completion = popleft()[0]
            if completion > cycle:
                cycle = completion
            while outstanding and outstanding[0][0] <= cycle:
                popleft()
        while len(outstanding) >= mlp_limit:
            c_mlp += 1
            completion = popleft()[0]
            if completion > cycle:
                cycle = completion
            while outstanding and outstanding[0][0] <= cycle:
                popleft()
        c_loads += 1

        # ---- L1 lookup ------------------------------------------------------
        si1 = block & l1_mask
        lines1 = l1_sets.get(si1)
        line = lines1.get(block) if lines1 else None
        l1_da += 1
        if line is not None:
            l1_hit += 1
            if line.is_prefetch and not line.used:
                l1_useful += 1
            line.used = True
            l1_ord[si1].move_to_end(block)
            ready = cycle + l1_lat
            if ready > cycle:
                push((ready, seq))
            instructions += bubble + 1
            continue
        l1_miss += 1
        cycle2 = cycle + l1_lat

        # ---- L2 demand ------------------------------------------------------
        si2 = block & l2_mask
        lines2 = l2_sets.get(si2)
        line2 = lines2.get(block) if lines2 else None
        l2_da += 1
        if line2 is not None:
            l2_hit += 1
            ipf = line2.is_prefetch
            if ipf and not line2.used:
                l2_useful += 1
            line2.used = True
            l2_ord[si2].move_to_end(block)
            fc = line2.fill_cycle
            ready = (fc if fc > cycle2 else cycle2) + l2_lat
            if ipf:
                line2.is_prefetch = False  # count each prefetch useful once
                p_useful += 1
                s_useful += 1
                c_useful_ctr = min(c_useful_ctr + 1, acc_max)
        else:
            l2_miss += 1
            cycle3 = cycle2 + l2_lat
            # ---- LLC demand -------------------------------------------------
            si3 = block & ll_mask
            lines3 = ll_sets.get(si3)
            line3 = lines3.get(block) if lines3 else None
            ll_da += 1
            if line3 is not None:
                ll_hit += 1
                ipf = line3.is_prefetch
                if ipf and not line3.used:
                    ll_useful += 1
                line3.used = True
                ll_ord[si3].move_to_end(block)
                if ipf:
                    line3.is_prefetch = False
                    p_useful += 1
                    s_useful += 1
                    c_useful_ctr = min(c_useful_ctr + 1, acc_max)
                fc = line3.fill_cycle
                ready = (fc if fc > cycle3 else cycle3) + ll_lat
            else:
                ll_miss += 1
                # ---- DRAM demand access at cycle3 + ll_lat ------------------
                dc = cycle3 + ll_lat
                ch = block % channels
                nf = next_free[ch]
                start = dc if dc > nf else nf
                d_qd += start - dc
                row = addr >> 13  # ROW_BITS
                if open_row[ch] == row:
                    d_rh += 1
                    ready = start + rh_lat
                else:
                    d_rm += 1
                    open_row[ch] = row
                    ready = start + rm_lat
                next_free[ch] = start + cpt
                d_acc += 1
                d_dem += 1
                # ---- LLC demand fill (missed, so not resident) --------------
                if lines3 is None:
                    lines3 = {}
                    ll_sets[si3] = lines3
                od3 = ll_ord.get(si3)
                if od3 is None:
                    od3 = _OD()
                    ll_ord[si3] = od3
                if len(lines3) >= ll_assoc:
                    victim, _ = od3.popitem(last=False)
                    vline = lines3.pop(victim)
                    ll_evt += 1
                    if vline.is_prefetch and not vline.used:
                        ll_useless += 1
                lines3[block] = _Line(block, False, False, ready)
                od3[block] = None
                ll_fill += 1
            # ---- L2 demand fill (missed, so not resident) -------------------
            if lines2 is None:
                lines2 = {}
                l2_sets[si2] = lines2
            od2 = l2_ord.get(si2)
            if od2 is None:
                od2 = _OD()
                l2_ord[si2] = od2
            if len(lines2) >= l2_assoc:
                victim, _ = od2.popitem(last=False)
                vline = lines2.pop(victim)
                l2_evt += 1
                vip = vline.is_prefetch
                vused = vline.used
                if vip and not vused:
                    l2_useless += 1
                    # PPF.on_eviction: base counters + prefetch-table feedback
                    p_useless += 1
                    s_useless += 1
                    vb = vline.block
                    entry = pft_slots[vb & pft_mask]
                    if (
                        entry is not None
                        and entry.valid
                        and entry.tag == (vb >> 10) & 63
                    ):
                        pft_hits += 1
                        if not entry.useful:
                            filt_train(entry.feature_indices, False)
                            entry.valid = False
            lines2[block] = _Line(block, False, False, ready)
            od2[block] = None
            l2_fill += 1

        # ==== PPF.train(addr, pc, hit, cycle2) ================================
        # Step 3/4 feedback first: prefetch-table hit -> positive train.
        tag = (block >> 10) & 63
        entry = pft_slots[block & pft_mask]
        if entry is not None and entry.valid and entry.tag == tag:
            pft_hits += 1
            entry.useful = True
            filt_train(entry.feature_indices, True)
            entry.valid = False
        entry = rej_slots[block & rej_mask]
        if entry is not None and entry.valid and entry.tag == tag:
            rej_hits += 1
            rej_rec += 1
            filt_train(entry.feature_indices, True)
            entry.valid = False
        pcs_a, pcs_b, pcs_c = pc, pcs_a, pcs_b

        # ==== SPP.train: signature/pattern update ============================
        sentry = sig_get(page)
        if sentry is not None:
            sig_move(page)
            signature = sentry.signature
            last_sig = signature
            sdelta = offset - sentry.last_offset
            if sdelta != 0:
                # _update_pattern(signature, sdelta)
                pentry = pat_get(signature % pat_entries)
                if pentry is None:
                    pentry = _Pat()
                    pat_table[signature % pat_entries] = pentry
                pdeltas = pentry.deltas
                if pentry.c_sig >= cmax:
                    pentry.c_sig //= 2
                    for known in list(pdeltas):
                        nv = pdeltas[known] // 2
                        if nv == 0:
                            del pdeltas[known]
                        else:
                            pdeltas[known] = nv
                pentry.c_sig += 1
                if sdelta in pdeltas:
                    nv = pdeltas[sdelta] + 1
                    pdeltas[sdelta] = nv if nv <= cmax else cmax
                elif len(pdeltas) < deltas_per:
                    pdeltas[sdelta] = 1
                else:
                    weakest = min(pdeltas, key=pdeltas.get)
                    del pdeltas[weakest]
                    pdeltas[sdelta] = 1
                # update_signature, inlined with encode_delta
                mag = sdelta if sdelta >= 0 else -sdelta
                if mag > 63:
                    mag = 63
                enc = (64 | mag) if sdelta < 0 else mag
                signature = ((signature << 3) ^ enc) & 0xFFF
                sentry.signature = signature
                sentry.last_offset = offset
        else:
            last_sig = 0
            # _bootstrap_from_ghr(offset)
            signature = 0
            for g in ghr:
                predicted = g.last_offset + g.delta
                if (predicted >= 64 and predicted - 64 == offset) or (
                    predicted < 0 and predicted + 64 == offset
                ):
                    gd = g.delta
                    mag = gd if gd >= 0 else -gd
                    if mag > 63:
                        mag = 63
                    enc = (64 | mag) if gd < 0 else mag
                    signature = ((g.signature << 3) ^ enc) & 0xFFF
                    break
            # _insert_signature_entry
            if len(sig_table) >= st_entries:
                sig_table.popitem(last=False)
            sig_table[page] = _Sig(offset, signature)

        # ==== fused lookahead walk + perceptron decide =======================
        # Decisions interleave with emissions exactly as the scalar code
        # pair does: the walk never reads weights or decision tables, and
        # the decide/insert/displacement-train sequence per candidate is
        # preserved, so event order matches the scalar engine's
        # walk-then-loop structure.
        accepted = None
        n_raw = 0
        page_base = page << 12
        path_confidence = 100
        cur_off = offset
        cur_sig = signature
        alpha = (
            100
            if c_total < 32
            else min(100, (100 * c_useful_ctr) // c_total)
        )
        ph = (pcs_a ^ (pcs_b >> 1) ^ (pcs_c >> 2)) & 2047
        depth = 1
        while depth <= max_depth:
            pentry = pat_get(cur_sig % pat_entries)
            if pentry is None or pentry.c_sig == 0 or not pentry.deltas:
                break
            pcsig = pentry.c_sig
            best_delta = None
            best_conf = -1
            for pd_delta, c_delta in pentry.deltas.items():
                conf = (100 * c_delta) // pcsig
                if depth > 1:
                    conf = (conf * alpha) // 100
                p_d = (path_confidence * conf) // 100
                if p_d > best_conf:
                    best_conf = p_d
                    best_delta = pd_delta
                if p_d < pref_th:
                    continue
                target = cur_off + pd_delta
                if 0 <= target < 64:
                    # -- emit + decide inline --------------------------------
                    n_raw += 1
                    cand_addr = page_base | (target << 6)
                    confidence = 0 if p_d < 0 else (100 if p_d > 100 else p_d)
                    cb = cand_addr >> 6
                    mag = pd_delta if pd_delta >= 0 else -pd_delta
                    if mag > 63:
                        mag = 63
                    enc = (64 | mag) if pd_delta < 0 else mag
                    i0 = cb & 4095
                    i1 = (cand_addr >> 12) & 4095
                    i2 = (cand_addr >> 18) & 4095
                    i3 = (page ^ confidence) & 4095
                    i5 = (cur_sig ^ enc) & 2047
                    i6 = (pc ^ depth) & 1023
                    i7 = (pc ^ enc) & 1023
                    i8 = confidence & 127
                    total = (
                        w0[i0] + w1[i1] + w2[i2] + w3[i3] + w4[ph]
                        + w5[i5] + w6[i6] + w7[i7] + w8[i8]
                    )
                    f_inf += 1
                    if total >= tau_hi:
                        f_l2 += 1
                        fill_l2 = True
                    elif total >= tau_lo:
                        f_llc += 1
                        fill_l2 = False
                    else:
                        f_rej += 1
                        fill_l2 = None
                    indices = (i0, i1, i2, i3, ph, i5, i6, i7, i8)
                    ctag = (cb >> 10) & 63
                    if fill_l2 is not None:
                        # prefetch_table.insert + displacement training
                        idx = cb & pft_mask
                        displaced = pft_slots[idx]
                        if displaced is not None and displaced.valid:
                            if displaced.tag == ctag:
                                displaced = None
                            else:
                                pft_conf += 1
                        else:
                            displaced = None
                        pft_slots[idx] = _Entry(True, ctag, False, True, indices, total)
                        pft_ins += 1
                        if displaced is not None and not displaced.useful:
                            disp_train += 1
                            filt_train(displaced.feature_indices, False)
                        if accepted is None:
                            accepted = [(cand_addr, cb, fill_l2)]
                        else:
                            accepted.append((cand_addr, cb, fill_l2))
                    else:
                        # reject_table.insert (displacements ignored)
                        idx = cb & rej_mask
                        displaced = rej_slots[idx]
                        if displaced is not None and displaced.valid and displaced.tag != ctag:
                            rej_conf += 1
                        rej_slots[idx] = _Entry(True, ctag, False, False, indices, total)
                        rej_ins += 1
                else:
                    # _record_ghr: pattern crossed the page boundary
                    ghr.append(_GHR(cur_sig, p_d, cur_off, pd_delta))
                    if len(ghr) > ghr_entries:
                        ghr.pop(0)
            if best_delta is None or best_conf < la_th:
                break
            next_off = cur_off + best_delta
            if not 0 <= next_off < 64:
                break
            cur_off = next_off
            mag = best_delta if best_delta >= 0 else -best_delta
            if mag > 63:
                mag = 63
            enc = (64 | mag) if best_delta < 0 else mag
            cur_sig = ((cur_sig << 3) ^ enc) & 0xFFF
            path_confidence = best_conf
            depth += 1
        if depth > 1:
            depth_sum += depth - 1
            depth_count += 1
        if n_raw:
            s_cand += n_raw  # SPP sees the raw candidate count

        # ==== prefetch issue (drain point: after all decides) ================
        if accepted:
            n_acc = len(accepted)
            p_cand += n_acc  # PPF sees the accepted count
            if n_acc > max_pft:
                accepted = accepted[:max_pft]
            for cand_addr, cb, fill_l2 in accepted:
                # _issue_prefetch(0, candidate, cycle2)
                lset = l2_sets.get(cb & l2_mask)
                if lset and cb in lset:
                    continue  # redundant with L2 residency
                if fill_l2:
                    in_llc = None  # not yet probed
                else:
                    lset = ll_sets.get(cb & ll_mask)
                    in_llc = bool(lset) and cb in lset
                    if in_llc:
                        continue  # redundant with LLC residency
                if inflight:
                    inflight = [done for done in inflight if done > cycle2]
                if len(inflight) >= queue_size:
                    dropped += 1
                    continue
                # on_prefetch_issued: PPF base + SPP base + alpha C_total
                p_iss += 1
                s_iss += 1
                if fill_l2:
                    p_iss2 += 1
                    s_iss2 += 1
                else:
                    p_iss3 += 1
                    s_iss3 += 1
                c_total += 1
                if c_total >= acc_max:
                    c_total //= 2
                    c_useful_ctr //= 2
                if in_llc is None:
                    lset = ll_sets.get(cb & ll_mask)
                    in_llc = bool(lset) and cb in lset
                if in_llc:
                    data_cycle = cycle2 + ll_lat
                else:
                    # DRAM prefetch access at cycle2
                    ch = cb % channels
                    nf = next_free[ch]
                    start = cycle2 if cycle2 > nf else nf
                    d_qd += start - cycle2
                    row = cand_addr >> 13
                    if open_row[ch] == row:
                        d_rh += 1
                        data_cycle = start + rh_lat
                    else:
                        d_rm += 1
                        open_row[ch] = row
                        data_cycle = start + rm_lat
                    next_free[ch] = start + cpt
                    d_acc += 1
                    d_pref += 1
                inflight.append(data_cycle)
                if not in_llc:
                    # LLC prefetch fill (not resident: contains was False)
                    si3 = cb & ll_mask
                    lines3 = ll_sets.get(si3)
                    if lines3 is None:
                        lines3 = {}
                        ll_sets[si3] = lines3
                    od3 = ll_ord.get(si3)
                    if od3 is None:
                        od3 = _OD()
                        ll_ord[si3] = od3
                    if len(lines3) >= ll_assoc:
                        victim, _ = od3.popitem(last=False)
                        vline = lines3.pop(victim)
                        ll_evt += 1
                        if vline.is_prefetch and not vline.used:
                            ll_useless += 1
                    lines3[cb] = _Line(cb, True, False, data_cycle)
                    od3[cb] = None
                    ll_fill += 1
                    ll_pfill += 1
                if fill_l2:
                    # L2 prefetch fill (not resident: checked on entry)
                    si2p = cb & l2_mask
                    lines2 = l2_sets.get(si2p)
                    if lines2 is None:
                        lines2 = {}
                        l2_sets[si2p] = lines2
                    od2 = l2_ord.get(si2p)
                    if od2 is None:
                        od2 = _OD()
                        l2_ord[si2p] = od2
                    if len(lines2) >= l2_assoc:
                        victim, _ = od2.popitem(last=False)
                        vline = lines2.pop(victim)
                        l2_evt += 1
                        vip = vline.is_prefetch
                        vused = vline.used
                        if vip and not vused:
                            l2_useless += 1
                            p_useless += 1
                            s_useless += 1
                            vb = vline.block
                            entry = pft_slots[vb & pft_mask]
                            if (
                                entry is not None
                                and entry.valid
                                and entry.tag == (vb >> 10) & 63
                            ):
                                pft_hits += 1
                                if not entry.useful:
                                    filt_train(entry.feature_indices, False)
                                    entry.valid = False
                    lines2[cb] = _Line(cb, True, False, data_cycle)
                    od2[cb] = None
                    l2_fill += 1
                    l2_pfill += 1

        # ---- L1 demand fill (missed on entry, so not resident) -------------
        lines1 = l1_sets.get(si1)
        if lines1 is None:
            lines1 = {}
            l1_sets[si1] = lines1
        od1 = l1_ord.get(si1)
        if od1 is None:
            od1 = _OD()
            l1_ord[si1] = od1
        if len(lines1) >= l1_assoc:
            victim, _ = od1.popitem(last=False)
            vline = lines1.pop(victim)
            l1_evt += 1
            if vline.is_prefetch and not vline.used:
                l1_useless += 1
        lines1[block] = _Line(block, False, False, ready)
        od1[block] = None
        l1_fill += 1

        # ---- O3Core.step tail ----------------------------------------------
        if ready > cycle:
            push((ready, seq))
        instructions += bubble + 1

    # ---- chunk-end writeback (the drain point) ------------------------------
    core.cycle = cycle
    core.instructions = instructions
    core._retire_frac = retire_frac
    core._seq = seq
    cstats.loads = c_loads
    cstats.rob_stalls = c_rob
    cstats.mlp_stalls = c_mlp
    l1_stats.demand_accesses = l1_da
    l1_stats.demand_hits = l1_hit
    l1_stats.demand_misses = l1_miss
    l1_stats.fills = l1_fill
    l1_stats.evictions = l1_evt
    l1_stats.useful_prefetches = l1_useful
    l1_stats.useless_prefetch_evictions = l1_useless
    l2_stats.demand_accesses = l2_da
    l2_stats.demand_hits = l2_hit
    l2_stats.demand_misses = l2_miss
    l2_stats.fills = l2_fill
    l2_stats.prefetch_fills = l2_pfill
    l2_stats.evictions = l2_evt
    l2_stats.useful_prefetches = l2_useful
    l2_stats.useless_prefetch_evictions = l2_useless
    ll_stats.demand_accesses = ll_da
    ll_stats.demand_hits = ll_hit
    ll_stats.demand_misses = ll_miss
    ll_stats.fills = ll_fill
    ll_stats.prefetch_fills = ll_pfill
    ll_stats.evictions = ll_evt
    ll_stats.useful_prefetches = ll_useful
    ll_stats.useless_prefetch_evictions = ll_useless
    dstats.accesses = d_acc
    dstats.demand_accesses = d_dem
    dstats.prefetch_accesses = d_pref
    dstats.row_hits = d_rh
    dstats.row_misses = d_rm
    dstats.total_queue_delay = d_qd
    hier._inflight_prefetches[0] = inflight
    hier.prefetches_dropped[0] = dropped
    pft.inserts = pft_ins
    pft.hits = pft_hits
    pft.conflicts = pft_conf
    rej.inserts = rej_ins
    rej.hits = rej_hits
    rej.conflicts = rej_conf
    ppf_stats.displacement_trainings = disp_train
    ppf_stats.reject_recoveries = rej_rec
    p_base.candidates = p_cand
    p_base.issued = p_iss
    p_base.issued_l2 = p_iss2
    p_base.issued_llc = p_iss3
    p_base.useful = p_useful
    p_base.useless_evictions = p_useless
    fstats.inferences = f_inf
    fstats.accepted_l2 = f_l2
    fstats.accepted_llc = f_llc
    fstats.rejected = f_rej
    ppf._pcs = (pcs_a, pcs_b, pcs_c)
    spp._c_total = c_total
    spp._c_useful = c_useful_ctr
    spp.last_signature = last_sig
    spp.depth_sum = depth_sum
    spp.depth_count = depth_count
    sstats.candidates = s_cand
    sstats.issued = s_iss
    sstats.issued_l2 = s_iss2
    sstats.issued_llc = s_iss3
    sstats.useful = s_useful
    sstats.useless_evictions = s_useless
