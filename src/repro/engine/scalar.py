"""The scalar engine: the original record-at-a-time loop, unchanged.

This is the golden-stats oracle.  It is deliberately nothing more than
the loop :meth:`repro.sim.single_core.SingleCoreSim.advance` always ran:
``core.step`` per record via ``islice``.  Any behavioural question about
the batched engine is settled by diffing against this one.
"""

from __future__ import annotations

import itertools

from ..registry import register
from .multi_core import scalar_advance_multi


@register("engine", "scalar")
class ScalarEngine:
    """Record-at-a-time driver; bit-identical with every prior release."""

    name = "scalar"

    def advance(self, sim, n_records: int) -> int:
        step = sim.core.step
        taken = 0
        for rec in itertools.islice(sim.trace, n_records):
            step(rec)
            taken += 1
        sim.consumed += taken
        return taken

    def advance_multi(self, sim, n_records: int) -> int:
        # The verbatim multi-core loop, heap-scheduled (same picks, same
        # tie breaks); extracted to repro.engine.multi_core.
        return scalar_advance_multi(sim, n_records)
