"""Recipe engine: build pattern programs from compact parameter tables.

The cross-validation suites (SPEC CPU 2006, CloudSuite) are defined as
data, not code: each benchmark is a list of ``(kind, params, weight,
bubble)`` tuples.  The engine instantiates the matching primitive from
:mod:`repro.workloads.synthetic` in its own page region, so suites with
dozens of members stay declarative and auditable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from ..cpu.trace import TraceRecord
from .synthetic import (
    AccessPattern,
    HotsetPattern,
    PatternMix,
    PhaseDeltaPattern,
    PointerChasePattern,
    RandomPattern,
    ScatterGatherPattern,
    SequentialPattern,
    StridedPattern,
    interleave,
)

#: (kind, params, weight, bubble_mean)
Ingredient = Tuple[str, Dict[str, object], float, int]


def _build_pattern(kind: str, start_page: int, params: Dict[str, object], seed: int) -> AccessPattern:
    if kind == "stream":
        return SequentialPattern(
            start_page,
            stride_blocks=int(params.get("stride", 1)),
            span_pages=int(params.get("span", 128)),
            region_hop=int(params.get("hop", 1024)),
        )
    if kind == "strided":
        return StridedPattern(
            start_page,
            stride_blocks=int(params.get("stride", 2)),
            page_hop=int(params.get("hop", 1)),
        )
    if kind == "chase":
        return PointerChasePattern(
            start_page,
            working_set_blocks=int(params.get("blocks", 1 << 15)),
            seed=seed + int(params.get("salt", 0)),
        )
    if kind == "phase":
        return PhaseDeltaPattern(
            start_page,
            delta_phases=params.get("phases", [[1], [2]]),  # type: ignore[arg-type]
            phase_length=int(params.get("length", 192)),
        )
    if kind == "scatter":
        return ScatterGatherPattern(
            start_page,
            offset_blocks=int(params.get("offset", 3)),
            touches_per_page=int(params.get("touches", 2)),
            page_span=int(params.get("span", 512)),
        )
    if kind == "hotset":
        return HotsetPattern(
            start_page,
            hot_blocks=int(params.get("blocks", 2048)),
            jump_every=int(params.get("jump", 0)),
        )
    if kind == "random":
        return RandomPattern(start_page, footprint_blocks=int(params.get("blocks", 1 << 16)))
    raise ValueError(f"unknown pattern kind {kind!r}")


@dataclass(frozen=True)
class Recipe:
    """A declarative pattern program."""

    ingredients: Tuple[Ingredient, ...]

    def build(self, n_records: int, seed: int) -> Iterator[TraceRecord]:
        mixes: List[PatternMix] = []
        for slot, (kind, params, weight, bubble) in enumerate(self.ingredients):
            start_page = 1 + slot * (1 << 24)
            pattern = _build_pattern(kind, start_page, dict(params), seed)
            mixes.append(PatternMix(pattern, weight=weight, bubble_mean=bubble))
        return interleave(mixes, n_records, seed)


def recipe(*ingredients: Ingredient) -> Recipe:
    """Convenience constructor for recipe tables."""
    return Recipe(tuple(ingredients))
