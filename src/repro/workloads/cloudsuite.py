"""CloudSuite-like models for the cross-validation study (§6.4, Fig. 13a).

The paper used the four 4-core CloudSuite applications released for the
2nd Cache Replacement Championship, each with several distinct phases.
Scale-out server workloads are "prefetch agnostic": huge instruction
and data footprints, low spatial locality, heavy pointer traversal —
so absolute prefetcher gains are small (the paper reports 3.78% for PPF
vs 3.08% for SPP over no prefetching).  The models below mix large
irregular footprints with modest streaming so every prefetcher earns a
little, and each application exposes multiple phases via its recipe.
"""

from __future__ import annotations

from typing import List

from ..registry import register
from .recipes import recipe
from .spec2017 import WorkloadSpec

_RECIPES = {
    "cassandra": recipe(
        ("chase", {"blocks": 1 << 17, "salt": 21}, 3.0, 8),
        ("random", {"blocks": 1 << 16}, 2.0, 8),
        ("stream", {"span": 24, "hop": 256}, 1.0, 8),
        ("hotset", {"blocks": 8000}, 2.0, 10),
    ),
    "classification": recipe(
        ("random", {"blocks": 1 << 17}, 2.5, 9),
        ("stream", {"span": 48, "hop": 128}, 1.5, 9),
        ("hotset", {"blocks": 6000}, 2.0, 11),
    ),
    "cloud9": recipe(
        ("chase", {"blocks": 1 << 16, "salt": 23}, 3.0, 9),
        ("hotset", {"blocks": 10000, "jump": 60}, 2.5, 10),
        ("stream", {"span": 16, "hop": 512}, 0.8, 9),
    ),
    "nutch": recipe(
        ("random", {"blocks": 1 << 16}, 2.0, 10),
        ("chase", {"blocks": 1 << 15, "salt": 27}, 2.0, 10),
        ("hotset", {"blocks": 12000, "jump": 80}, 2.5, 11),
        ("strided", {"stride": 2}, 0.7, 10),
    ),
}


@register("suite", "cloudsuite")
def cloudsuite_workloads() -> List[WorkloadSpec]:
    """The four CRC-2 CloudSuite application models."""
    return [
        WorkloadSpec(
            name=name,
            suite="cloudsuite",
            memory_intensive=True,
            description="CloudSuite scale-out model (prefetch agnostic)",
            builder=rcp.build,
        )
        for name, rcp in sorted(_RECIPES.items())
    ]
