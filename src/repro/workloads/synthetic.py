"""Composable synthetic access-pattern primitives.

The paper evaluates on SimPoint traces of SPEC CPU 2017/2006 and
CloudSuite.  Those traces are proprietary, so (per the substitution rule
in DESIGN.md) each benchmark is modelled by a *pattern program*: a
weighted interleaving of primitive access patterns whose structure
reproduces the property that matters to a prefetcher — delta
regularity, page residency, pointer-chasing irregularity, phase
changes, working-set size and memory intensity.

Primitives produce block-aligned byte addresses; :func:`interleave`
weaves them into a :class:`~repro.cpu.trace.TraceRecord` stream with
per-pattern PCs and a configurable instruction bubble (memory
intensity).  All randomness flows from one seeded generator, so traces
are fully deterministic.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from bisect import bisect
from dataclasses import dataclass
from itertools import accumulate
from typing import Iterator, Sequence

from ..checkpoint.state import decode_rng, encode_rng
from ..cpu.trace import TraceRecord
from ..memory.address import BLOCK_BITS, BLOCKS_PER_PAGE, PAGE_BITS

_PC_BASE = 0x400000
_PC_STRIDE = 0x40


class AccessPattern(ABC):
    """A stateful stream of block-aligned addresses."""

    @abstractmethod
    def next_address(self, rng: random.Random) -> int:
        """Produce the next byte address of this pattern."""

    def state_dict(self) -> dict:
        """Serializable position state: every int attribute.

        All pattern state is scalar ints (cursors, counters, phases);
        derived containers like :class:`PointerChasePattern`'s ring are
        rebuilt from constructor arguments, never snapshotted.  Config
        ints (strides, spans) ride along harmlessly — restoring into an
        identically-constructed pattern writes them back unchanged.
        """
        return {
            key: value
            for key, value in vars(self).items()
            if isinstance(value, int) and not isinstance(value, bool)
        }

    def load_state(self, state: dict) -> None:
        for key, value in state.items():
            if not hasattr(self, key):
                raise ValueError(
                    f"{type(self).__name__} has no state attribute {key!r}"
                )
            setattr(self, key, int(value))


class SequentialPattern(AccessPattern):
    """Unit (or small-stride) streaming through consecutive pages.

    The classic prefetch-friendly pattern: long runs of constant block
    deltas (bwaves/fotonik3d-like).  After ``span_pages`` pages the
    stream jumps to a fresh region, so coverage requires the prefetcher
    to re-learn page starts (what SPP's GHR bootstraps).
    """

    def __init__(
        self,
        start_page: int,
        stride_blocks: int = 1,
        span_pages: int = 64,
        region_hop: int = 1024,
    ) -> None:
        if stride_blocks == 0:
            raise ValueError("stride must be non-zero")
        self.stride = stride_blocks
        self.span_pages = span_pages
        self.region_hop = region_hop
        self._base_page = start_page
        self._block = start_page * BLOCKS_PER_PAGE if stride_blocks > 0 else (
            (start_page + span_pages) * BLOCKS_PER_PAGE - 1
        )

    def next_address(self, rng: random.Random) -> int:
        addr = self._block << BLOCK_BITS
        self._block += self.stride
        span_blocks = self.span_pages * BLOCKS_PER_PAGE
        start_block = self._base_page * BLOCKS_PER_PAGE
        if not start_block <= self._block < start_block + span_blocks:
            self._base_page += self.region_hop
            self._block = self._base_page * BLOCKS_PER_PAGE
            if self.stride < 0:
                self._block += span_blocks - 1
        return addr


class StridedPattern(AccessPattern):
    """Fixed stride within a page, then the next page: stencil-like."""

    def __init__(self, start_page: int, stride_blocks: int, page_hop: int = 1) -> None:
        if stride_blocks <= 0:
            raise ValueError("stride must be positive")
        self.stride = stride_blocks
        self.page_hop = page_hop
        self._page = start_page
        self._offset = 0

    def next_address(self, rng: random.Random) -> int:
        addr = (self._page << PAGE_BITS) | (self._offset << BLOCK_BITS)
        self._offset += self.stride
        if self._offset >= BLOCKS_PER_PAGE:
            self._offset %= self.stride  # keep phase alignment across pages
            self._page += self.page_hop
        return addr


class PointerChasePattern(AccessPattern):
    """A random permutation cycle over a working set (mcf-like).

    Each block "points to" the next; the walk order is random but fixed,
    so caches see reuse at working-set distance while delta-based
    prefetchers see noise.
    """

    def __init__(self, start_page: int, working_set_blocks: int, seed: int) -> None:
        if working_set_blocks < 2:
            raise ValueError("working set must hold at least two blocks")
        rng = random.Random(seed)
        base = start_page * BLOCKS_PER_PAGE
        blocks = list(range(base, base + working_set_blocks))
        rng.shuffle(blocks)
        self._ring = blocks
        self._position = 0

    def next_address(self, rng: random.Random) -> int:
        addr = self._ring[self._position] << BLOCK_BITS
        self._position = (self._position + 1) % len(self._ring)
        return addr


class PhaseDeltaPattern(AccessPattern):
    """In-page delta pattern that *changes* every ``phase_length`` accesses.

    Models 623.xalancbmk_s: each phase walks pages with a different
    repeating delta sequence.  SPP's compounding confidence collapses at
    phase changes and throttles early; a filter that judges candidates
    individually can keep prefetching deeper (§6.1).
    """

    def __init__(
        self,
        start_page: int,
        delta_phases: Sequence[Sequence[int]],
        phase_length: int = 256,
    ) -> None:
        if not delta_phases or any(not phase for phase in delta_phases):
            raise ValueError("need at least one non-empty delta phase")
        self.delta_phases = [list(phase) for phase in delta_phases]
        self.phase_length = phase_length
        self._page = start_page
        self._offset = 0
        self._count = 0
        self._phase = 0
        self._step = 0

    def next_address(self, rng: random.Random) -> int:
        addr = (self._page << PAGE_BITS) | (self._offset << BLOCK_BITS)
        deltas = self.delta_phases[self._phase]
        delta = deltas[self._step % len(deltas)]
        self._step += 1
        self._offset += delta
        if not 0 <= self._offset < BLOCKS_PER_PAGE:
            self._page += 1
            self._offset %= BLOCKS_PER_PAGE
        self._count += 1
        if self._count >= self.phase_length:
            self._count = 0
            self._step = 0
            self._phase = (self._phase + 1) % len(self.delta_phases)
        return addr


class HotsetPattern(AccessPattern):
    """Skewed reuse over a small set of blocks: cache-resident traffic.

    Models the compute-bound SPEC applications (leela, exchange2 …)
    whose LLC MPKI is below 1 — most accesses hit, so prefetching earns
    nothing but can still pollute.
    """

    def __init__(self, start_page: int, hot_blocks: int, jump_every: int = 0) -> None:
        if hot_blocks < 1:
            raise ValueError("need at least one hot block")
        self._base = start_page * BLOCKS_PER_PAGE
        self.hot_blocks = hot_blocks
        self.jump_every = jump_every
        self._count = 0

    def next_address(self, rng: random.Random) -> int:
        self._count += 1
        if self.jump_every and self._count % self.jump_every == 0:
            # occasional compulsory miss outside the hot set
            block = self._base + self.hot_blocks + rng.randrange(1 << 16)
        else:
            # triangular skew: low indices are hotter
            block = self._base + min(rng.randrange(self.hot_blocks), rng.randrange(self.hot_blocks))
        return block << BLOCK_BITS


class ScatterGatherPattern(AccessPattern):
    """Short, constant-offset visits scattered across many pages.

    Models 607.cactuBSSN_s: a high-dimensional stencil touches each page
    only a couple of times before moving on, so SPP's per-page
    signatures never gain confidence — while a *global* best-offset
    relation holds between successive misses, which is exactly what BOP
    exploits (§6.1).
    """

    def __init__(
        self,
        start_page: int,
        offset_blocks: int = 3,
        touches_per_page: int = 2,
        page_span: int = 512,
    ) -> None:
        self.offset = offset_blocks
        self.touches = touches_per_page
        self.page_span = page_span
        self._start_page = start_page
        self._page_index = 0
        self._touch = 0
        self._lap = 0

    def next_address(self, rng: random.Random) -> int:
        page = self._start_page + self._lap * self.page_span + self._page_index
        offset = (self._touch * self.offset) % BLOCKS_PER_PAGE
        addr = (page << PAGE_BITS) | (offset << BLOCK_BITS)
        self._touch += 1
        if self._touch >= self.touches:
            self._touch = 0
            self._page_index += 1
            if self._page_index >= self.page_span:
                self._page_index = 0
                self._lap += 1
        return addr


class RandomPattern(AccessPattern):
    """Uniform random blocks over a large footprint: prefetch-hostile."""

    def __init__(self, start_page: int, footprint_blocks: int) -> None:
        if footprint_blocks < 1:
            raise ValueError("footprint must be positive")
        self._base = start_page * BLOCKS_PER_PAGE
        self.footprint = footprint_blocks

    def next_address(self, rng: random.Random) -> int:
        return (self._base + rng.randrange(self.footprint)) << BLOCK_BITS


@dataclass
class PatternMix:
    """One pattern plus its interleave weight, bubble and PC pool."""

    pattern: AccessPattern
    weight: float = 1.0
    bubble_mean: int = 4
    pc_pool: int = 4

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("pattern weight must be positive")
        if self.bubble_mean < 0:
            raise ValueError("bubble mean must be non-negative")
        if self.pc_pool < 1:
            raise ValueError("need at least one PC per pattern")


class TraceStream:
    """A deterministic, checkpointable interleaved trace.

    Iteration semantics match the generator this class replaced: the
    record loop itself still runs as a generator (the hot path the
    benchmarks pin), ``__iter__`` hands out *the same* generator every
    time, so partial consumption — ``islice`` for warmup, then ``for``
    for measurement — continues one stream exactly as before.

    On top of that the stream is snapshotable mid-flight: mutable state
    (the RNG, per-pattern PC counters, the emit count, each pattern's
    cursors) lives on the instance, shared with the running generator,
    so ``state_dict()`` between records captures everything needed for
    ``load_state()`` on a freshly built stream — in another process —
    to emit the identical remaining records.
    """

    def __init__(self, mixes: Sequence[PatternMix], n_records: int, seed: int = 1):
        if not mixes:
            raise ValueError("need at least one pattern")
        if n_records < 0:
            raise ValueError("record count must be non-negative")
        self.mixes = list(mixes)
        self.n_records = n_records
        self.seed = seed
        self.rng = random.Random(seed)
        self.pc_counters = [0] * len(self.mixes)
        self.emitted = 0
        self._gen = self._generate()

    def __iter__(self) -> Iterator[TraceRecord]:
        return self._gen

    def __next__(self) -> TraceRecord:
        return next(self._gen)

    def _generate(self) -> Iterator[TraceRecord]:
        mixes = self.mixes
        rng = self.rng
        # The pattern draw replicates ``rng.choices(...)[0]`` inline — one
        # bisect over precomputed cumulative weights, one ``random()`` call —
        # so the RNG stream (and every downstream golden stat) is unchanged
        # while the per-record cum-weight rebuild disappears.
        cum_weights = list(accumulate(mix.weight for mix in mixes))
        total = cum_weights[-1] + 0.0
        hi = len(mixes) - 1
        random_draw = rng.random
        randrange = rng.randrange
        next_addresses = [mix.pattern.next_address for mix in mixes]
        pc_pools = [mix.pc_pool for mix in mixes]
        # A span of 0 marks a zero-mean bubble, which must not consume rng.
        bubble_spans = [2 * mix.bubble_mean + 1 if mix.bubble_mean else 0 for mix in mixes]
        pc_bases = [_PC_BASE + 0x10000 * i for i in range(len(mixes))]
        pc_counters = self.pc_counters
        while self.emitted < self.n_records:
            self.emitted += 1
            which = bisect(cum_weights, random_draw() * total, 0, hi)
            addr = next_addresses[which](rng)
            pc_index = pc_counters[which] % pc_pools[which]
            pc_counters[which] += 1
            span = bubble_spans[which]
            yield TraceRecord(
                pc_bases[which] + pc_index * _PC_STRIDE,
                addr,
                randrange(span) if span else 0,
            )

    def state_dict(self) -> dict:
        return {
            "emitted": self.emitted,
            "rng": encode_rng(self.rng.getstate()),
            "pc_counters": list(self.pc_counters),
            "patterns": [mix.pattern.state_dict() for mix in self.mixes],
        }

    def load_state(self, state: dict) -> None:
        patterns = state["patterns"]
        counters = state["pc_counters"]
        if len(patterns) != len(self.mixes) or len(counters) != len(self.mixes):
            raise ValueError(
                f"trace state holds {len(patterns)} patterns, stream has {len(self.mixes)}"
            )
        self.emitted = int(state["emitted"])
        self.rng.setstate(decode_rng(state["rng"]))
        # In-place: the live generator closed over this exact list.
        self.pc_counters[:] = [int(count) for count in counters]
        for mix, pattern_state in zip(self.mixes, patterns):
            mix.pattern.load_state(pattern_state)


def interleave(
    mixes: Sequence[PatternMix],
    n_records: int,
    seed: int = 1,
) -> TraceStream:
    """Weave patterns into one trace, weighted-randomly, deterministically.

    Each pattern gets a disjoint pool of PCs that cycle per access
    (modelling the handful of load instructions in a loop body), and a
    geometric bubble around its ``bubble_mean``.  The returned
    :class:`TraceStream` iterates like the generator it wraps and adds
    the checkpoint protocol (``state_dict`` / ``load_state``).
    """
    return TraceStream(mixes, n_records, seed)


def _geometric_bubble(rng: random.Random, mean: int) -> int:
    """A small-variance integer bubble with the requested mean."""
    if mean == 0:
        return 0
    # Average of the uniform [0, 2*mean] is `mean`; cheap and bounded.
    return rng.randrange(2 * mean + 1)
