"""SimPoint-style phase sampling (§5.3 methodology).

The paper simulates one-billion-instruction SimPoints: representative
program slices chosen by clustering basic-block vectors, each carrying a
weight, with per-application results computed as the weighted mean over
SimPoints.  This module reproduces that methodology at trace scale:

* a trace is cut into fixed-size windows;
* each window is summarized by a **signature vector** (the analogue of
  a basic-block vector: the distribution of load PCs plus coarse
  access-pattern statistics);
* k-means clustering groups similar windows into phases;
* the window nearest each cluster centroid becomes that phase's
  SimPoint, weighted by the phase's share of the trace.

``weighted_mean`` then aggregates per-SimPoint measurements exactly the
way the paper aggregates per-application speedups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..cpu.trace import TraceRecord


@dataclass(frozen=True)
class SimPoint:
    """One representative window and its phase weight."""

    window_index: int
    weight: float

    def __post_init__(self) -> None:
        if self.window_index < 0:
            raise ValueError("window index must be non-negative")
        if not 0.0 < self.weight <= 1.0:
            raise ValueError("weight must be in (0, 1]")


def signature_vectors(
    trace: Sequence[TraceRecord], window_size: int, pc_buckets: int = 32
) -> np.ndarray:
    """Per-window signature vectors (the basic-block-vector analogue).

    Each vector concatenates a normalized histogram of load PCs (hashed
    into ``pc_buckets``) with two normalized pattern statistics: the
    mean absolute block delta and the fraction of block-sequential
    accesses.  Windows shorter than ``window_size`` (the tail) are
    dropped, as SimPoint drops partial intervals.
    """
    if window_size < 2:
        raise ValueError("window size must be at least 2")
    n_windows = len(trace) // window_size
    if n_windows == 0:
        raise ValueError("trace shorter than one window")
    vectors = np.zeros((n_windows, pc_buckets + 2))
    for w in range(n_windows):
        window = trace[w * window_size : (w + 1) * window_size]
        histogram = np.zeros(pc_buckets)
        deltas = []
        sequential = 0
        previous_block = None
        for rec in window:
            histogram[(rec.pc >> 2) % pc_buckets] += 1
            block = rec.addr >> 6
            if previous_block is not None:
                delta = block - previous_block
                deltas.append(abs(delta))
                if delta == 1:
                    sequential += 1
            previous_block = block
        histogram /= len(window)
        mean_delta = float(np.mean(deltas)) if deltas else 0.0
        vectors[w, :pc_buckets] = histogram
        vectors[w, pc_buckets] = min(1.0, mean_delta / 64.0)
        vectors[w, pc_buckets + 1] = sequential / max(1, len(window) - 1)
    return vectors


def _kmeans(
    vectors: np.ndarray, k: int, seed: int, iterations: int = 25
) -> Tuple[np.ndarray, np.ndarray]:
    """Plain deterministic k-means; returns (assignments, centroids).

    Initialization is farthest-point (a deterministic k-means++): the
    first centroid is the window at ``seed % n``, each further centroid
    is the window farthest from all chosen so far.  This guarantees that
    well-separated phases each seed a cluster.
    """
    n = vectors.shape[0]
    k = min(k, n)
    chosen = [seed % n]
    while len(chosen) < k:
        distances = np.min(
            np.linalg.norm(vectors[:, None, :] - vectors[chosen][None, :, :], axis=2),
            axis=1,
        )
        chosen.append(int(distances.argmax()))
    centroids = vectors[chosen].copy()
    assignments = np.zeros(n, dtype=int)
    for _ in range(iterations):
        distances = np.linalg.norm(vectors[:, None, :] - centroids[None, :, :], axis=2)
        new_assignments = distances.argmin(axis=1)
        if (new_assignments == assignments).all():
            break
        assignments = new_assignments
        for cluster in range(k):
            members = vectors[assignments == cluster]
            if len(members):
                centroids[cluster] = members.mean(axis=0)
    return assignments, centroids


def select_simpoints(
    trace: Sequence[TraceRecord],
    window_size: int,
    max_clusters: int = 4,
    seed: int = 0,
) -> List[SimPoint]:
    """Choose representative windows and weights for a trace.

    Returns one SimPoint per non-empty cluster: the window closest to
    the cluster centroid, weighted by the cluster's share of all
    windows.  Weights sum to 1.
    """
    vectors = signature_vectors(trace, window_size)
    assignments, centroids = _kmeans(vectors, max_clusters, seed)
    simpoints: List[SimPoint] = []
    n_windows = vectors.shape[0]
    for cluster in range(centroids.shape[0]):
        member_indices = np.flatnonzero(assignments == cluster)
        if len(member_indices) == 0:
            continue
        member_vectors = vectors[member_indices]
        distances = np.linalg.norm(member_vectors - centroids[cluster], axis=1)
        representative = int(member_indices[distances.argmin()])
        simpoints.append(
            SimPoint(window_index=representative, weight=len(member_indices) / n_windows)
        )
    simpoints.sort(key=lambda sp: sp.window_index)
    return simpoints


def window_records(
    trace: Sequence[TraceRecord], window_size: int, window_index: int
) -> List[TraceRecord]:
    """Extract the records of one window (to simulate a SimPoint)."""
    start = window_index * window_size
    if start >= len(trace):
        raise IndexError(f"window {window_index} beyond trace")
    return list(trace[start : start + window_size])


def weighted_mean(values: Iterable[float], weights: Iterable[float]) -> float:
    """Per-application aggregate: weighted mean over its SimPoints."""
    values = list(values)
    weights = list(weights)
    if len(values) != len(weights):
        raise ValueError("need one weight per value")
    if not values:
        raise ValueError("weighted mean of no values")
    total = sum(weights)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return sum(v * w for v, w in zip(values, weights)) / total


def phase_count(trace: Sequence[TraceRecord], window_size: int, max_clusters: int = 4,
                seed: int = 0) -> int:
    """Number of distinct phases SimPoint selection finds (diagnostic)."""
    return len(select_simpoints(trace, window_size, max_clusters, seed))
