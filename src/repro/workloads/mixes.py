"""Multi-core workload mixes (§5.3).

The paper builds 100 random mixes from the full SPEC CPU 2017 suite and
another 100 from its memory-intensive subset, for the 4-core and 8-core
studies.  A mix is just a tuple of workload specs, one per core; the
builders here sample them deterministically from a seed so every
experiment (and test) sees the same mixes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .spec2017 import WorkloadSpec, memory_intensive_subset, spec2017_workloads


@dataclass(frozen=True)
class WorkloadMix:
    """One multi-programmed workload: ``cores`` entries, one per core."""

    name: str
    workloads: Tuple[WorkloadSpec, ...]

    @property
    def cores(self) -> int:
        return len(self.workloads)


def build_mixes(
    catalog: Sequence[WorkloadSpec],
    cores: int,
    count: int,
    seed: int = 42,
    prefix: str = "mix",
) -> List[WorkloadMix]:
    """Sample ``count`` mixes of ``cores`` workloads each (with replacement).

    Sampling with replacement matches the paper's methodology — a mix may
    run the same benchmark on several cores.
    """
    if cores < 1:
        raise ValueError("mixes need at least one core")
    if not catalog:
        raise ValueError("cannot build mixes from an empty catalog")
    rng = random.Random(seed)
    mixes = []
    for index in range(count):
        picks = tuple(rng.choice(list(catalog)) for _ in range(cores))
        mixes.append(WorkloadMix(name=f"{prefix}-{index:03d}", workloads=picks))
    return mixes


def memory_intensive_mixes(cores: int, count: int, seed: int = 42) -> List[WorkloadMix]:
    """Mixes drawn from the memory-intensive SPEC CPU 2017 subset."""
    return build_mixes(
        memory_intensive_subset(), cores, count, seed=seed, prefix=f"mem{cores}c"
    )


def random_mixes(cores: int, count: int, seed: int = 43) -> List[WorkloadMix]:
    """Mixes drawn uniformly from the full SPEC CPU 2017 suite."""
    return build_mixes(spec2017_workloads(), cores, count, seed=seed, prefix=f"rnd{cores}c")
