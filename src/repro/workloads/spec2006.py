"""SPEC CPU 2006-like models for the cross-validation study (§6.4, Fig. 13b).

The paper developed PPF's defaults on SPEC CPU 2017 and then validated,
unchanged, on all 29 SPEC CPU 2006 applications (16 of them memory
intensive).  These recipes are deliberately *parameterized differently*
from the 2017 models — different strides, working sets, phase schedules
and intensities — so running them genuinely tests generalization rather
than replaying the tuning set.
"""

from __future__ import annotations

from typing import List

from ..registry import register
from .recipes import recipe
from .spec2017 import WorkloadSpec

_P = [[1, 2], [3, 1, 1], [2, 4], [1, 1, 1, 5]]

_RECIPES = {
    # memory-intensive (16)
    "410.bwaves": (True, recipe(("stream", {"span": 384}, 3.0, 3),
                                ("stream", {"stride": 2, "span": 192}, 2.0, 3),
                                ("hotset", {"blocks": 768}, 1.0, 5))),
    "429.mcf": (True, recipe(("chase", {"blocks": 1 << 17, "salt": 3}, 4.0, 3),
                             ("chase", {"blocks": 1 << 13, "salt": 5}, 2.0, 4),
                             ("hotset", {"blocks": 512}, 1.0, 5))),
    "433.milc": (True, recipe(("strided", {"stride": 4}, 2.5, 4),
                              ("phase", {"phases": [[4], [2], [4, 4, 6]], "length": 600}, 1.5, 4),
                              ("stream", {"span": 128}, 1.5, 4),
                              ("hotset", {"blocks": 1024}, 1.5, 6))),
    "434.zeusmp": (True, recipe(("strided", {"stride": 2}, 2.0, 5),
                                ("stream", {"span": 96}, 2.0, 5),
                                ("hotset", {"blocks": 1024}, 1.0, 7))),
    "435.gromacs": (True, recipe(("strided", {"stride": 3}, 2.0, 6),
                                 ("hotset", {"blocks": 3000}, 2.0, 8))),
    "436.cactusADM": (True, recipe(("scatter", {"offset": 5, "touches": 2}, 4.0, 4),
                                   ("hotset", {"blocks": 768}, 1.0, 6))),
    "437.leslie3d": (True, recipe(("stream", {"span": 256}, 2.5, 4),
                                  ("phase", {"phases": [[1], [2]], "length": 900}, 1.5, 4),
                                  ("strided", {"stride": 2}, 1.5, 4),
                                  ("hotset", {"blocks": 1024}, 1.5, 6))),
    "450.soplex": (True, recipe(("chase", {"blocks": 1 << 15, "salt": 9}, 2.5, 4),
                                ("stream", {"span": 48}, 1.5, 4),
                                ("hotset", {"blocks": 2048}, 1.0, 6))),
    "459.GemsFDTD": (True, recipe(("stream", {"span": 512}, 2.5, 4),
                                  ("phase", {"phases": [[2, 2, 2, 2, 2, 2, 2, 5, 2, 2, 2, 2, 2, 2, 2, 3]], "length": 9000}, 1.5, 4),
                                  ("strided", {"stride": 3}, 1.5, 4),
                                  ("hotset", {"blocks": 1024}, 1.5, 6))),
    "462.libquantum": (True, recipe(("stream", {"span": 1024}, 4.0, 6),
                                    ("hotset", {"blocks": 512}, 1.5, 7))),
    "470.lbm": (True, recipe(("strided", {"stride": 2}, 3.0, 4),
                             ("stream", {"span": 160}, 2.0, 4))),
    "471.omnetpp": (True, recipe(("chase", {"blocks": 1 << 14, "salt": 2}, 3.0, 5),
                                 ("hotset", {"blocks": 3000}, 2.0, 6))),
    "473.astar": (True, recipe(("chase", {"blocks": 1 << 14, "salt": 4}, 2.0, 5),
                               ("phase", {"phases": _P, "length": 224}, 1.5, 5),
                               ("hotset", {"blocks": 1024}, 1.0, 6))),
    "481.wrf": (True, recipe(("strided", {"stride": 4}, 2.0, 5),
                             ("stream", {"span": 80}, 2.0, 5),
                             ("hotset", {"blocks": 1500}, 1.0, 7))),
    "482.sphinx3": (True, recipe(("stream", {"span": 64}, 2.5, 5),
                                 ("random", {"blocks": 1 << 15}, 1.5, 5),
                                 ("hotset", {"blocks": 2048}, 1.0, 6))),
    "483.xalancbmk": (True, recipe(("phase", {"phases": _P, "length": 176}, 4.0, 4),
                                   ("hotset", {"blocks": 1500}, 1.0, 6))),
    # compute-bound (13)
    "400.perlbench": (False, recipe(("hotset", {"blocks": 2500, "jump": 350}, 4.0, 22),
                                    ("stream", {"span": 8, "hop": 64}, 1.0, 22))),
    "401.bzip2": (False, recipe(("hotset", {"blocks": 6000, "jump": 120}, 4.0, 12),
                                ("stream", {"span": 16, "hop": 64}, 1.0, 12))),
    "403.gcc": (False, recipe(("hotset", {"blocks": 7000, "jump": 100}, 4.0, 14),
                              ("random", {"blocks": 1 << 13}, 1.0, 14))),
    "416.gamess": (False, recipe(("hotset", {"blocks": 2000, "jump": 800}, 5.0, 30))),
    "444.namd": (False, recipe(("hotset", {"blocks": 4000, "jump": 400}, 4.0, 24),
                               ("strided", {"stride": 2}, 0.5, 24))),
    "445.gobmk": (False, recipe(("hotset", {"blocks": 3500, "jump": 500}, 5.0, 26))),
    "447.dealII": (False, recipe(("hotset", {"blocks": 5000, "jump": 200}, 4.0, 18),
                                 ("stream", {"span": 12, "hop": 32}, 1.0, 18))),
    "453.povray": (False, recipe(("hotset", {"blocks": 2500, "jump": 900}, 5.0, 32))),
    "454.calculix": (False, recipe(("hotset", {"blocks": 4500, "jump": 300}, 4.0, 20),
                                   ("strided", {"stride": 3}, 0.8, 20))),
    "456.hmmer": (False, recipe(("hotset", {"blocks": 3000, "jump": 700}, 5.0, 24))),
    "458.sjeng": (False, recipe(("hotset", {"blocks": 3500, "jump": 600}, 5.0, 28))),
    "464.h264ref": (False, recipe(("hotset", {"blocks": 7000, "jump": 180}, 4.0, 14),
                                  ("stream", {"span": 10, "hop": 48}, 1.0, 14))),
    "465.tonto": (False, recipe(("hotset", {"blocks": 3000, "jump": 650}, 5.0, 26))),
}


@register("suite", "spec2006")
def spec2006_workloads() -> List[WorkloadSpec]:
    """All 29 SPEC CPU 2006 models (16 memory intensive, §5.3)."""
    specs = []
    for name, (intensive, rcp) in sorted(_RECIPES.items()):
        specs.append(
            WorkloadSpec(
                name=name,
                suite="spec2006",
                memory_intensive=intensive,
                description=f"SPEC CPU 2006 model ({'memory-intensive' if intensive else 'compute-bound'})",
                builder=rcp.build,
            )
        )
    return specs


@register("suite", "spec2006-intensive")
def spec2006_memory_intensive() -> List[WorkloadSpec]:
    """The 16 memory-intensive SPEC CPU 2006 models."""
    return [spec for spec in spec2006_workloads() if spec.memory_intensive]
