"""Workload models: SPEC CPU 2017/2006- and CloudSuite-like generators.

Suites are registered components: ``suite("spec2017")`` (or any name in
``suites()``) resolves through :mod:`repro.registry`, and
:func:`find_workload` looks a benchmark up across every registered
suite — which is how parallel workers rehydrate workloads by name.
"""

from typing import List

from .. import registry
from .batch import BatchMix, batch_interleave, batch_trace
from .cloudsuite import cloudsuite_workloads
from .mixes import WorkloadMix, build_mixes, memory_intensive_mixes, random_mixes
from .recipes import Recipe, recipe
from .simpoint import (
    SimPoint,
    phase_count,
    select_simpoints,
    signature_vectors,
    weighted_mean,
    window_records,
)
from .spec2006 import spec2006_memory_intensive, spec2006_workloads
from .spec2017 import (
    WorkloadSpec,
    memory_intensive_subset,
    spec2017_workloads,
    workload_by_name,
)
from .synthetic import (
    AccessPattern,
    HotsetPattern,
    PatternMix,
    PhaseDeltaPattern,
    PointerChasePattern,
    RandomPattern,
    ScatterGatherPattern,
    SequentialPattern,
    StridedPattern,
    interleave,
)

# Imported for its registrations (suite "traces", kind "trace_format"):
# file-backed workloads resolve through find_workload like any other
# suite, which is how sweep workers rehydrate them by name.  Imported
# after the synthetic suites above so repro.traces can use WorkloadSpec.
from .. import traces as _traces  # noqa: E402,F401

def suite(name: str) -> List[WorkloadSpec]:
    """Instantiate a registered workload suite by name."""
    return registry.create("suite", name)


def suites() -> List[str]:
    """Sorted names of every registered workload suite."""
    return registry.names("suite")


def full_catalog() -> List[WorkloadSpec]:
    """Every workload of every registered suite (intensive subsets,
    being views over their parent suites, are skipped)."""
    out: List[WorkloadSpec] = []
    seen = set()
    for name in suites():
        for spec in registry.create("suite", name):
            if spec.name not in seen:
                seen.add(spec.name)
                out.append(spec)
    return out


def find_workload(name: str) -> WorkloadSpec:
    """Look one benchmark up by name across every registered suite."""
    for spec in full_catalog():
        if spec.name == name:
            return spec
    known = ", ".join(sorted(spec.name for spec in full_catalog()))
    raise registry.UnknownComponentError(
        f"unknown workload {name!r}; known workloads: {known}"
    )


__all__ = [
    "suite",
    "suites",
    "full_catalog",
    "find_workload",
    "cloudsuite_workloads",
    "WorkloadMix",
    "build_mixes",
    "memory_intensive_mixes",
    "random_mixes",
    "Recipe",
    "recipe",
    "SimPoint",
    "phase_count",
    "select_simpoints",
    "signature_vectors",
    "weighted_mean",
    "window_records",
    "spec2006_memory_intensive",
    "spec2006_workloads",
    "WorkloadSpec",
    "memory_intensive_subset",
    "spec2017_workloads",
    "workload_by_name",
    "AccessPattern",
    "HotsetPattern",
    "PatternMix",
    "PhaseDeltaPattern",
    "PointerChasePattern",
    "RandomPattern",
    "ScatterGatherPattern",
    "SequentialPattern",
    "StridedPattern",
    "interleave",
    "BatchMix",
    "batch_interleave",
    "batch_trace",
]
