"""Workload models: SPEC CPU 2017/2006- and CloudSuite-like generators."""

from .cloudsuite import cloudsuite_workloads
from .mixes import WorkloadMix, build_mixes, memory_intensive_mixes, random_mixes
from .recipes import Recipe, recipe
from .simpoint import (
    SimPoint,
    phase_count,
    select_simpoints,
    signature_vectors,
    weighted_mean,
    window_records,
)
from .spec2006 import spec2006_memory_intensive, spec2006_workloads
from .spec2017 import (
    WorkloadSpec,
    memory_intensive_subset,
    spec2017_workloads,
    workload_by_name,
)
from .synthetic import (
    AccessPattern,
    HotsetPattern,
    PatternMix,
    PhaseDeltaPattern,
    PointerChasePattern,
    RandomPattern,
    ScatterGatherPattern,
    SequentialPattern,
    StridedPattern,
    interleave,
)

__all__ = [
    "cloudsuite_workloads",
    "WorkloadMix",
    "build_mixes",
    "memory_intensive_mixes",
    "random_mixes",
    "Recipe",
    "recipe",
    "SimPoint",
    "phase_count",
    "select_simpoints",
    "signature_vectors",
    "weighted_mean",
    "window_records",
    "spec2006_memory_intensive",
    "spec2006_workloads",
    "WorkloadSpec",
    "memory_intensive_subset",
    "spec2017_workloads",
    "workload_by_name",
    "AccessPattern",
    "HotsetPattern",
    "PatternMix",
    "PhaseDeltaPattern",
    "PointerChasePattern",
    "RandomPattern",
    "ScatterGatherPattern",
    "SequentialPattern",
    "StridedPattern",
    "interleave",
]
