"""SPEC CPU 2017-like workload models (the paper's primary suite, §5.3).

Each of the 20 SPEC CPU 2017 speed benchmarks is modelled as a pattern
program (see :mod:`repro.workloads.synthetic`) whose structure matches
the behaviour the paper reports for it:

* 603.bwaves_s — long multi-array unit streams; the Figure 1 benchmark,
  rewarded by deep lookahead but punished by inaccurate over-prefetching;
* 605.mcf_s — pointer chasing over a large working set, prefetch-averse
  for delta prefetchers, big PPF gain from filtering bad guesses;
* 623.xalancbmk_s — delta patterns that change by phase, so SPP's
  compounding confidence throttles early and PPF's per-candidate check
  wins big (§6.1);
* 607.cactuBSSN_s — scattered short page visits with a global constant
  offset; BOP's "aggressive and localized nature" fits, SPP (hence PPF)
  underperforms (§6.1);
* 649.fotonik3d_s — regular strided field sweeps, deep speculation pays.

The **memory-intensive subset** (LLC MPKI > 1) contains 11 of the 20
applications, matching the paper's count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Sequence

from ..cpu.trace import TraceRecord
from ..registry import register
from .synthetic import (
    HotsetPattern,
    PatternMix,
    PhaseDeltaPattern,
    PointerChasePattern,
    RandomPattern,
    ScatterGatherPattern,
    SequentialPattern,
    StridedPattern,
    interleave,
)

TraceBuilder = Callable[[int, int], Iterator[TraceRecord]]


@dataclass(frozen=True)
class WorkloadSpec:
    """One named benchmark model."""

    name: str
    suite: str
    memory_intensive: bool
    description: str
    builder: TraceBuilder

    def trace(self, n_records: int, seed: int = 1) -> Iterator[TraceRecord]:
        """Generate a deterministic trace of ``n_records`` loads."""
        return self.builder(n_records, seed)


def _region(slot: int) -> int:
    """Disjoint page region per pattern slot (16 Mi pages apart)."""
    return 1 + slot * (1 << 24)


# -- individual benchmark models ---------------------------------------------------


def _bwaves(n: int, seed: int) -> Iterator[TraceRecord]:
    # Multi-array sweeps whose unit stride occasionally switches (grid
    # re-blocking): SPP re-learns a new in-page delta within a few
    # accesses, while a single global offset needs a whole new learning
    # phase.
    # The third stream strides by 2 with occasional odd skips: the
    # skipped blocks are never demanded, so the low-confidence skip
    # deltas that an aggressively tuned lookahead emits at every depth
    # are genuinely useless — the Figure 1 waste mechanism.
    skippy = [2, 2, 2, 2, 2, 2, 2, 5, 2, 2, 2, 2, 2, 2, 2, 3]
    mixes = [
        PatternMix(PhaseDeltaPattern(_region(0), [[1], [2]], phase_length=1500), 2.0, bubble_mean=6),
        PatternMix(SequentialPattern(_region(1), 1, span_pages=256), 2.0, bubble_mean=6),
        PatternMix(PhaseDeltaPattern(_region(2), [skippy], phase_length=10_000), 1.5, bubble_mean=6),
        PatternMix(HotsetPattern(_region(3), 1024), 4.0, bubble_mean=8),
    ]
    return interleave(mixes, n, seed)


def _mcf(n: int, seed: int) -> Iterator[TraceRecord]:
    # Pointer chasing over the arc arrays plus a learnable strided sweep.
    # The chase junk drags SPP's global accuracy alpha down, throttling
    # its lookahead on the *predictable* component too; PPF filters the
    # junk, keeping alpha (and hence depth and coverage) up — the
    # paper's mcf win (§6.1).
    mixes = [
        PatternMix(PointerChasePattern(_region(0), 1 << 16, seed=seed + 11), 3.0, bubble_mean=6),
        PatternMix(PointerChasePattern(_region(1), 1 << 14, seed=seed + 13), 1.5, bubble_mean=6),
        PatternMix(PhaseDeltaPattern(_region(2), [[7], [5], [9], [3]], phase_length=300), 2.0, bubble_mean=6),
        PatternMix(SequentialPattern(_region(3), 1, span_pages=64), 1.0, bubble_mean=7),
        PatternMix(HotsetPattern(_region(4), 1024), 4.0, bubble_mean=8),
    ]
    return interleave(mixes, n, seed)


def _cactuBSSN(n: int, seed: int) -> Iterator[TraceRecord]:
    # Stencil sweeps with a large constant stride: roughly one access per
    # page, so SPP's page-local signatures (and AMPM's per-page maps)
    # never warm up, while the *global* block offset is constant —
    # exactly what BOP learns.  "BOP's aggressive and localized nature
    # fits this workload very well" (§6.1).
    mixes = [
        PatternMix(SequentialPattern(_region(0), 96, span_pages=4096), 2.5, bubble_mean=7),
        PatternMix(SequentialPattern(_region(1), 96, span_pages=4096), 1.5, bubble_mean=7),
        PatternMix(ScatterGatherPattern(_region(2), offset_blocks=3, touches_per_page=2), 1.0, bubble_mean=7),
        PatternMix(HotsetPattern(_region(3), 1024), 4.0, bubble_mean=8),
    ]
    return interleave(mixes, n, seed)


def _lbm(n: int, seed: int) -> Iterator[TraceRecord]:
    mixes = [
        PatternMix(StridedPattern(_region(0), 2), 2.0, bubble_mean=7),
        PatternMix(StridedPattern(_region(1), 3), 1.5, bubble_mean=7),
        PatternMix(SequentialPattern(_region(2), 1, span_pages=128), 1.5, bubble_mean=7),
        PatternMix(HotsetPattern(_region(3), 1024), 4.0, bubble_mean=8),
    ]
    return interleave(mixes, n, seed)


def _omnetpp(n: int, seed: int) -> Iterator[TraceRecord]:
    mixes = [
        PatternMix(PointerChasePattern(_region(0), 1 << 15, seed=seed + 7), 2.5, bubble_mean=7),
        PatternMix(HotsetPattern(_region(1), 2048), 4.0, bubble_mean=8),
        PatternMix(SequentialPattern(_region(2), 1, span_pages=32), 1.0, bubble_mean=7),
    ]
    return interleave(mixes, n, seed)


def _wrf(n: int, seed: int) -> Iterator[TraceRecord]:
    mixes = [
        PatternMix(StridedPattern(_region(0), 2), 1.5, bubble_mean=8),
        PatternMix(StridedPattern(_region(1), 4), 1.5, bubble_mean=8),
        PatternMix(SequentialPattern(_region(2), 1, span_pages=64), 1.5, bubble_mean=8),
        PatternMix(HotsetPattern(_region(3), 2048), 4.5, bubble_mean=9),
    ]
    return interleave(mixes, n, seed)


def _xalancbmk(n: int, seed: int) -> Iterator[TraceRecord]:
    phases = [
        [1, 1, 2],
        [2, 3],
        [1, 4, 1],
        [3, 1, 2, 1],
        [2, 2, 5],
    ]
    mixes = [
        PatternMix(PhaseDeltaPattern(_region(0), phases, phase_length=192), 3.0, bubble_mean=7),
        PatternMix(PhaseDeltaPattern(_region(1), phases[::-1], phase_length=160), 1.5, bubble_mean=7),
        PatternMix(HotsetPattern(_region(2), 2048), 4.5, bubble_mean=8),
    ]
    return interleave(mixes, n, seed)


def _cam4(n: int, seed: int) -> Iterator[TraceRecord]:
    mixes = [
        PatternMix(StridedPattern(_region(0), 3), 1.5, bubble_mean=9),
        PatternMix(SequentialPattern(_region(1), 1, span_pages=96), 1.5, bubble_mean=9),
        PatternMix(HotsetPattern(_region(2), 3072), 5.0, bubble_mean=10),
    ]
    return interleave(mixes, n, seed)


def _fotonik3d(n: int, seed: int) -> Iterator[TraceRecord]:
    mixes = [
        PatternMix(PhaseDeltaPattern(_region(0), [[1], [3]], phase_length=2000), 2.0, bubble_mean=6),
        PatternMix(StridedPattern(_region(1), 2), 1.5, bubble_mean=6),
        PatternMix(SequentialPattern(_region(2), 1, span_pages=512), 1.5, bubble_mean=6),
        PatternMix(HotsetPattern(_region(3), 1024), 4.0, bubble_mean=8),
    ]
    return interleave(mixes, n, seed)


def _roms(n: int, seed: int) -> Iterator[TraceRecord]:
    mixes = [
        PatternMix(SequentialPattern(_region(0), 1, span_pages=256), 2.0, bubble_mean=8),
        PatternMix(StridedPattern(_region(1), 4), 1.5, bubble_mean=8),
        PatternMix(HotsetPattern(_region(2), 2048), 4.5, bubble_mean=9),
    ]
    return interleave(mixes, n, seed)


def _xz(n: int, seed: int) -> Iterator[TraceRecord]:
    mixes = [
        PatternMix(RandomPattern(_region(0), 1 << 17), 2.0, bubble_mean=8),
        PatternMix(HotsetPattern(_region(1), 4096), 4.5, bubble_mean=9),
        PatternMix(SequentialPattern(_region(2), 1, span_pages=32), 1.0, bubble_mean=8),
    ]
    return interleave(mixes, n, seed)


def _compute_bound(hot_blocks: int, jump_every: int, bubble: int) -> TraceBuilder:
    """Low-MPKI model: mostly cache-resident with rare compulsory misses.

    The stream component is kept to a few percent of accesses so LLC
    MPKI stays near or below 1 — these applications barely react to
    prefetching in the paper's Figure 9.
    """

    def build(n: int, seed: int) -> Iterator[TraceRecord]:
        mixes = [
            PatternMix(HotsetPattern(_region(0), hot_blocks, jump_every=jump_every), 5.0, bubble_mean=bubble),
            PatternMix(SequentialPattern(_region(1), 1, span_pages=8, region_hop=64), 0.05, bubble_mean=bubble),
        ]
        return interleave(mixes, n, seed)

    return build


@register("suite", "spec2017")
def spec2017_workloads() -> List[WorkloadSpec]:
    """All 20 SPEC CPU 2017 speed-benchmark models."""

    def spec(name: str, intensive: bool, description: str, builder: TraceBuilder) -> WorkloadSpec:
        return WorkloadSpec(
            name=name,
            suite="spec2017",
            memory_intensive=intensive,
            description=description,
            builder=builder,
        )

    return [
        spec("600.perlbench_s", False, "interpreter, cache-resident hot set",
             _compute_bound(3000, 400, 24)),
        spec("602.gcc_s", False, "compiler, mixed hot set with misses",
             _compute_bound(6000, 150, 16)),
        spec("603.bwaves_s", True, "multi-array unit streams (Figure 1 benchmark)", _bwaves),
        spec("605.mcf_s", True, "pointer chasing over large working set", _mcf),
        spec("607.cactuBSSN_s", True, "scattered stencil, BOP-friendly", _cactuBSSN),
        spec("619.lbm_s", True, "lattice-Boltzmann strided streams", _lbm),
        spec("620.omnetpp_s", True, "discrete-event simulation, chasing + reuse", _omnetpp),
        spec("621.wrf_s", True, "weather model, mixed strides", _wrf),
        spec("623.xalancbmk_s", True, "XSLT, phase-varying deltas (PPF showcase)", _xalancbmk),
        spec("625.x264_s", False, "video encoder, tiled hot set",
             _compute_bound(8000, 250, 14)),
        spec("627.cam4_s", True, "atmosphere model, strided + reuse", _cam4),
        spec("628.pop2_s", False, "ocean model, moderate intensity",
             _compute_bound(12000, 80, 10)),
        spec("631.deepsjeng_s", False, "chess search, cache-resident",
             _compute_bound(4000, 500, 28)),
        spec("638.imagick_s", False, "image processing, small streams",
             _compute_bound(6000, 200, 18)),
        spec("641.leela_s", False, "go engine, cache-resident",
             _compute_bound(3000, 600, 30)),
        spec("644.nab_s", False, "molecular dynamics, small working set",
             _compute_bound(5000, 300, 20)),
        spec("648.exchange2_s", False, "puzzle solver, tiny working set",
             _compute_bound(1500, 1000, 34)),
        spec("649.fotonik3d_s", True, "electromagnetic field sweeps", _fotonik3d),
        spec("654.roms_s", True, "ocean model, long streams + strides", _roms),
        spec("657.xz_s", True, "compression, irregular large footprint", _xz),
    ]


@register("suite", "spec2017-intensive")
def memory_intensive_subset() -> List[WorkloadSpec]:
    """The 11 SPEC CPU 2017 applications with LLC MPKI > 1 (§5.3)."""
    return [spec for spec in spec2017_workloads() if spec.memory_intensive]


def workload_by_name(name: str, catalog: Sequence[WorkloadSpec] | None = None) -> WorkloadSpec:
    """Look a workload up by exact name."""
    for spec in catalog if catalog is not None else spec2017_workloads():
        if spec.name == name:
            return spec
    raise KeyError(f"no workload named {name!r}")
